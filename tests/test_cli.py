"""CLI: every subcommand runs and emits its artifact."""

import os

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_cpus(capsys):
    out = run_cli(capsys, "cpus")
    assert "E5-2640v4" in out


@pytest.mark.parametrize("n,needle", [
    (1, "Page Table Isolation"),
    (2, "Broadwell"),
    (3, "swap cr3"),
    (4, "verw"),
    (5, "Generic"),
    (6, "IBPB"),
    (7, "RSB"),
    (8, "lfence"),
])
def test_tables(capsys, n, needle):
    out = run_cli(capsys, "table", str(n), "--iterations", "100")
    assert needle in out


def test_table9_and_10(capsys):
    out9 = run_cli(capsys, "table", "9")
    assert "Table 9" in out9
    out10 = run_cli(capsys, "table", "10")
    assert "N/A" in out10  # Zen has no IBRS


def test_unknown_table_exits(capsys):
    with pytest.raises(SystemExit):
        main(["table", "42"])


def test_figure2_fast_subset(capsys):
    out = run_cli(capsys, "figure", "2", "--fast", "--cpus", "zen2")
    assert "zen2" in out and "Figure 2" in out


def test_figure3_fast_subset(capsys):
    out = run_cli(capsys, "figure", "3", "--fast", "--cpus", "zen3")
    assert "Figure 3" in out


def test_figure5_fast_subset(capsys):
    out = run_cli(capsys, "figure", "5", "--fast", "--cpus", "broadwell")
    assert "swaptions" in out


def test_unknown_figure_exits():
    with pytest.raises(SystemExit):
        main(["figure", "4"])


def test_vm_fast(capsys):
    out = run_cli(capsys, "vm", "--fast", "--cpus", "zen")
    assert "LEBench in a VM" in out and "LFS" in out


def test_parsec_fast(capsys):
    out = run_cli(capsys, "parsec", "--fast", "--cpus", "zen")
    assert "PARSEC" in out


def test_bimodal(capsys):
    out = run_cli(capsys, "bimodal", "--cpu", "cascade_lake",
                  "--entries", "100")
    assert "cycles" in out


def test_attacks(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "broadwell")
    assert "Meltdown, KPTI off : leaked byte 66" in out
    assert "Meltdown, KPTI on  : leaked byte None" in out
    assert "MDS, after verw    : sampled {}" in out


def test_attacks_on_immune_part(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "zen3")
    assert "Meltdown, KPTI off : leaked byte None" in out


def test_attacks_includes_extended_battery(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "cascade_lake")
    assert "SpectreRSB raw     : gadget ran = True" in out
    assert "BHI vs eIBRS       : gadget ran = True" in out
    assert "BHI vs retpolines  : gadget ran = False" in out
    assert "SMT V2, STIBP      : injected = False" in out


def test_attacks_skips_smt_section_on_zen(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "zen")
    assert "SMT V2" not in out  # Ryzen 3 1200 has no hyperthreads


def test_sweep_opsize(capsys):
    out = run_cli(capsys, "sweep", "opsize", "--cpu", "broadwell")
    assert "overhead drops below" in out


def test_sweep_ssbd(capsys):
    out = run_cli(capsys, "sweep", "ssbd", "--cpu", "zen3")
    assert "slowdown" in out


def test_export_table9_is_valid_json(capsys):
    import json
    out = run_cli(capsys, "export", "table9", "--cpus", "zen3")
    payload = json.loads(out)
    assert payload["zen3"]["user->user (direct)"] is False


def test_export_figure5_is_valid_json(capsys):
    import json
    out = run_cli(capsys, "export", "figure5", "--fast", "--cpus", "zen")
    payload = json.loads(out)
    assert {entry["workload"] for entry in payload} == \
        {"swaptions", "facesim", "bodytrack"}


def test_regress_command(capsys, tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text('[{"cpu": "zen3", "workload": "swaptions", '
                   '"overhead_percent": 34.0, "significant": true}]')
    new.write_text('[{"cpu": "zen3", "workload": "swaptions", '
                   '"overhead_percent": 20.0, "significant": true}]')
    out = run_cli(capsys, "regress", str(old), str(new))
    assert "zen3/swaptions" in out
    out_same = run_cli(capsys, "regress", str(old), str(old))
    assert "no changes" in out_same


def test_all_writes_artifacts(capsys, tmp_path):
    out = run_cli(capsys, "all", "--fast", "--outdir", str(tmp_path))
    assert "wrote" in out
    assert (tmp_path / "table9.txt").exists()
    assert (tmp_path / "figure2.txt").exists()
    assert (tmp_path / "bimodal.txt").exists()


def test_summary_command(capsys):
    out = run_cli(capsys, "summary")
    assert "Q1:" in out and "Q2:" in out and "Q3:" in out
    assert "IBPB" in out

"""CLI: every subcommand runs and emits its artifact."""

import os

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_cpus(capsys):
    out = run_cli(capsys, "cpus")
    assert "E5-2640v4" in out


@pytest.mark.parametrize("n,needle", [
    (1, "Page Table Isolation"),
    (2, "Broadwell"),
    (3, "swap cr3"),
    (4, "verw"),
    (5, "Generic"),
    (6, "IBPB"),
    (7, "RSB"),
    (8, "lfence"),
])
def test_tables(capsys, n, needle):
    out = run_cli(capsys, "table", str(n), "--iterations", "100")
    assert needle in out


def test_table9_and_10(capsys):
    out9 = run_cli(capsys, "table", "9")
    assert "Table 9" in out9
    out10 = run_cli(capsys, "table", "10")
    assert "N/A" in out10  # Zen has no IBRS


def test_unknown_table_exits(capsys):
    with pytest.raises(SystemExit):
        main(["table", "42"])


def test_figure2_fast_subset(capsys):
    out = run_cli(capsys, "figure", "2", "--fast", "--cpus", "zen2")
    assert "zen2" in out and "Figure 2" in out


def test_figure3_fast_subset(capsys):
    out = run_cli(capsys, "figure", "3", "--fast", "--cpus", "zen3")
    assert "Figure 3" in out


def test_figure5_fast_subset(capsys):
    out = run_cli(capsys, "figure", "5", "--fast", "--cpus", "broadwell")
    assert "swaptions" in out


def test_unknown_figure_exits():
    with pytest.raises(SystemExit):
        main(["figure", "4"])


def test_vm_fast(capsys):
    out = run_cli(capsys, "vm", "--fast", "--cpus", "zen")
    assert "LEBench in a VM" in out and "LFS" in out


def test_parsec_fast(capsys):
    out = run_cli(capsys, "parsec", "--fast", "--cpus", "zen")
    assert "PARSEC" in out


def test_bimodal(capsys):
    out = run_cli(capsys, "bimodal", "--cpu", "cascade_lake",
                  "--entries", "100")
    assert "cycles" in out


def test_attacks(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "broadwell")
    assert "Meltdown, KPTI off : leaked byte 66" in out
    assert "Meltdown, KPTI on  : leaked byte None" in out
    assert "MDS, after verw    : sampled {}" in out


def test_attacks_on_immune_part(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "zen3")
    assert "Meltdown, KPTI off : leaked byte None" in out


def test_attacks_includes_extended_battery(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "cascade_lake")
    assert "SpectreRSB raw     : gadget ran = True" in out
    assert "BHI vs eIBRS       : gadget ran = True" in out
    assert "BHI vs retpolines  : gadget ran = False" in out
    assert "SMT V2, STIBP      : injected = False" in out


def test_attacks_skips_smt_section_on_zen(capsys):
    out = run_cli(capsys, "attacks", "--cpu", "zen")
    assert "SMT V2" not in out  # Ryzen 3 1200 has no hyperthreads


def test_sweep_opsize(capsys):
    out = run_cli(capsys, "sweep", "opsize", "--cpu", "broadwell")
    assert "overhead drops below" in out


def test_sweep_ssbd(capsys):
    out = run_cli(capsys, "sweep", "ssbd", "--cpu", "zen3")
    assert "slowdown" in out


def test_export_table9_is_valid_json(capsys):
    import json
    out = run_cli(capsys, "export", "table9", "--cpus", "zen3")
    payload = json.loads(out)
    assert payload["results"]["zen3"]["user->user (direct)"] is False
    assert payload["provenance"]["cpus"] == ["zen3"]


def test_export_figure5_is_valid_json(capsys):
    import json
    out = run_cli(capsys, "export", "figure5", "--fast", "--cpus", "zen")
    payload = json.loads(out)
    assert {entry["workload"] for entry in payload["results"]} == \
        {"swaptions", "facesim", "bodytrack"}
    prov = payload["provenance"]
    assert prov["command"] == "export figure5"
    assert prov["seed"] is not None
    assert "zen" in prov["config"]
    assert prov["version"]


def test_regress_command(capsys, tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text('[{"cpu": "zen3", "workload": "swaptions", '
                   '"overhead_percent": 34.0, "significant": true}]')
    new.write_text('[{"cpu": "zen3", "workload": "swaptions", '
                   '"overhead_percent": 20.0, "significant": true}]')
    out = run_cli(capsys, "regress", str(old), str(new))
    assert "zen3/swaptions" in out
    out_same = run_cli(capsys, "regress", str(old), str(old))
    assert "no changes" in out_same


def test_all_writes_artifacts(capsys, tmp_path):
    out = run_cli(capsys, "all", "--fast", "--outdir", str(tmp_path))
    assert "wrote" in out
    assert (tmp_path / "table9.txt").exists()
    assert (tmp_path / "figure2.txt").exists()
    assert (tmp_path / "bimodal.txt").exists()


def test_summary_command(capsys):
    out = run_cli(capsys, "summary")
    assert "Q1:" in out and "Q2:" in out and "Q3:" in out
    assert "IBPB" in out


def test_profile_figure_writes_trace_artifacts(capsys, tmp_path):
    import json
    trace_path = tmp_path / "t.json"
    flame_path = tmp_path / "t.folded"
    metrics_path = tmp_path / "m.json"
    out = run_cli(capsys, "profile", "figure", "2", "--fast",
                  "--cpus", "broadwell",
                  "--trace-out", str(trace_path),
                  "--flame-out", str(flame_path),
                  "--metrics-out", str(metrics_path))
    assert "coverage:" in out and "Figure 2" in out
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert any(e.get("ph") == "X" for e in events)
    names = {e["name"] for e in events}
    assert "study.figure2.broadwell" in names
    assert "kernel.syscall" in names
    # The acceptance bar: >=95% of simulated cycles in named spans.
    assert trace["otherData"]["coverage"] >= 0.95
    prov = trace["otherData"]["provenance"]
    assert prov["seed"] is not None and prov["cpus"] == ["broadwell"]
    assert "kernel.syscall" in flame_path.read_text()
    assert json.loads(metrics_path.read_text())


def test_profile_table(capsys, tmp_path):
    import json
    trace_path = tmp_path / "t.json"
    out = run_cli(capsys, "profile", "table", "3", "--iterations", "50",
                  "--trace-out", str(trace_path))
    assert "table.3" in out
    trace = json.loads(trace_path.read_text())
    assert any(e["name"] == "table.3" for e in trace["traceEvents"])


def test_global_trace_flag(capsys, tmp_path):
    import json
    trace_path = tmp_path / "t.json"
    out = run_cli(capsys, "--trace", str(trace_path),
                  "figure", "5", "--fast", "--cpus", "broadwell")
    assert "[trace]" in out
    trace = json.loads(trace_path.read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert "study.figure5.broadwell" in names


def test_profile_leaves_null_tracer_installed(capsys, tmp_path):
    from repro.obs import NULL_TRACER, current_tracer
    run_cli(capsys, "profile", "table", "1",
            "--trace-out", str(tmp_path / "t.json"))
    assert current_tracer() is NULL_TRACER


def test_bench_then_check_round_trip(capsys, tmp_path):
    bench_path = str(tmp_path / "BENCH_1.json")
    out = run_cli(capsys, "bench", "--fast", "--cpus", "broadwell",
                  "--drivers", "figure2", "--out", bench_path, "--no-cache")
    assert "bench:" in out and "BENCH_1.json" in out
    import json
    payload = json.load(open(bench_path))
    assert payload["kind"] == "spectresim-bench"
    assert payload["values"] and payload["ledger"]["broadwell"]["total"] > 0

    out = run_cli(capsys, "check", "--against", bench_path, "--no-cache")
    assert "0 regressions" in out and "OK" in out


def test_bench_numbers_into_dir(capsys, tmp_path):
    run_cli(capsys, "bench", "--fast", "--cpus", "broadwell",
            "--drivers", "figure2", "--dir", str(tmp_path), "--no-cache")
    assert (tmp_path / "BENCH_1.json").exists()
    run_cli(capsys, "bench", "--fast", "--cpus", "broadwell",
            "--drivers", "figure2", "--dir", str(tmp_path), "--no-cache")
    assert (tmp_path / "BENCH_2.json").exists()


def test_check_fails_on_a_doctored_baseline(capsys, tmp_path):
    import json
    bench_path = str(tmp_path / "BENCH_1.json")
    run_cli(capsys, "bench", "--fast", "--cpus", "broadwell",
            "--drivers", "figure2", "--out", bench_path, "--no-cache")
    payload = json.load(open(bench_path))
    key = "figure2/broadwell/lebench:pti"
    payload["values"][key]["value"] -= 50.0   # pretend pti used to be free
    with open(bench_path, "w") as f:
        json.dump(payload, f)
    with pytest.raises(SystemExit) as exc:
        main(["check", "--against", bench_path, "--no-cache"])
    assert exc.value.code == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and key in out and "FAIL" in out


def test_profile_ledger_out(capsys, tmp_path):
    ledger_path = str(tmp_path / "run.ledger")
    out = run_cli(capsys, "profile", "figure", "2", "--fast",
                  "--cpus", "broadwell", "--ledger-out", ledger_path)
    assert "invariant verified" in out
    report = open(ledger_path).read()
    assert "cycle ledger" in report
    assert "pti/mov_cr3" in report  # broadwell's default config has KPTI


# --------------------------------------------------------------------------- #
# Run history
# --------------------------------------------------------------------------- #

def _bench_to(capsys, tmp_path, name, extra=()):
    path = str(tmp_path / name)
    # history flags are global, so they precede the subcommand
    run_cli(capsys, *extra, "bench", "--fast", "--cpus", "broadwell",
            "--drivers", "figure2", "--out", path, "--no-cache")
    return path


def test_bench_auto_records_into_history(capsys, tmp_path):
    db = os.environ["SPECTRESIM_HISTORY_DB"]  # hermetic per-test path
    _bench_to(capsys, tmp_path, "B1.json")
    out = run_cli(capsys, "history", "list")
    assert "bench" in out
    assert os.path.exists(db)


def test_no_history_suppresses_recording(capsys, tmp_path):
    _bench_to(capsys, tmp_path, "B1.json", extra=("--no-history",))
    out = run_cli(capsys, "history", "list")
    assert "0 run(s)" in out or "no runs" in out


def test_check_auto_records_even_on_failure(capsys, tmp_path):
    import json
    bench_path = _bench_to(capsys, tmp_path, "B1.json")
    payload = json.load(open(bench_path))
    payload["values"]["figure2/broadwell/lebench:pti"]["value"] -= 5.0
    with open(bench_path, "w") as f:
        json.dump(payload, f)
    with pytest.raises(SystemExit):
        main(["check", "--against", bench_path, "--no-cache"])
    capsys.readouterr()
    out = run_cli(capsys, "history", "list")
    assert "check" in out


def test_history_record_diff_report_gc(capsys, tmp_path):
    bench_path = _bench_to(capsys, tmp_path, "B1.json", extra=("--no-history",))
    out = run_cli(capsys, "history", "record", bench_path)
    assert "recorded" in out
    run_cli(capsys, "history", "record", bench_path)

    out = run_cli(capsys, "history", "diff", "prev", "latest")
    assert "0 regressions" in out and "0 changed cells" in out

    html_path = str(tmp_path / "dash.html")
    out = run_cli(capsys, "history", "report", "--out", html_path)
    assert "dashboard" in out
    html = open(html_path).read()
    assert "<svg" in html and 'id="self-perf"' in html
    # byte-stable across invocations
    run_cli(capsys, "history", "report", "--out", html_path + ".2")
    assert open(html_path + ".2").read() == html

    out = run_cli(capsys, "history", "gc", "--keep", "1")
    assert "removed" in out
    out = run_cli(capsys, "history", "list")
    assert len(out.strip().splitlines()) == 2  # header + one surviving run


def test_history_diff_flags_regression_with_blame(capsys, tmp_path):
    import json
    bench_path = _bench_to(capsys, tmp_path, "B1.json", extra=("--no-history",))
    run_cli(capsys, "history", "record", bench_path)
    payload = json.load(open(bench_path))
    payload["values"]["figure2/broadwell/lebench:pti"]["value"] += 5.0
    for cell in payload["ledger"].values():
        bumped = {}
        for path, cycles in cell["entries"].items():
            if "/pti/" in path:
                cycles += 10_000
                cell["total"] += 10_000
            bumped[path] = cycles
        cell["entries"] = bumped
    doctored = str(tmp_path / "B2.json")
    with open(doctored, "w") as f:
        json.dump(payload, f)
    run_cli(capsys, "history", "record", doctored)

    with pytest.raises(SystemExit):
        main(["history", "diff", "prev", "latest"])
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "pti" in out
    assert "(exact)" in out


def test_history_record_refuses_stale_fingerprint(capsys, tmp_path):
    import json
    bench_path = _bench_to(capsys, tmp_path, "B1.json", extra=("--no-history",))
    payload = json.load(open(bench_path))
    payload["provenance"]["code_fingerprint"] = "0123456789abcdef"
    with open(bench_path, "w") as f:
        json.dump(payload, f)
    with pytest.raises(SystemExit, match="history:"):
        main(["history", "record", bench_path])
    capsys.readouterr()
    out = run_cli(capsys, "history", "record", bench_path, "--allow-dirty")
    assert "dirty" in out


def test_history_db_flag_overrides_default(capsys, tmp_path):
    bench_path = _bench_to(capsys, tmp_path, "B1.json", extra=("--no-history",))
    alt = str(tmp_path / "alt.db")
    run_cli(capsys, "history", "--db", alt, "record", bench_path)
    assert os.path.exists(alt)
    assert not os.path.exists(os.environ["SPECTRESIM_HISTORY_DB"])
    out = run_cli(capsys, "history", "--db", alt, "list")
    assert "bench" in out


def test_profile_records_telemetry_run(capsys, tmp_path):
    run_cli(capsys, "profile", "table", "1", "--iterations", "20",
            "--trace-out", str(tmp_path / "t.json"))
    out = run_cli(capsys, "history", "list")
    assert "profile" in out


def test_jobs_rejected_at_parse_time(capsys):
    # Satellite fix: a bad --jobs is an argparse usage error (exit 2,
    # one line on stderr), not a ValueError traceback from the executor.
    for argv in (["figure", "2", "--jobs", "0"],
                 ["export", "figure2", "--jobs", "-3"],
                 ["fuzz", "--jobs", "x"]):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "expected a positive integer" in err


def test_fuzz_campaign_smoke(capsys, tmp_path):
    out_dir = str(tmp_path / "fuzz-out")
    out = run_cli(capsys, "fuzz", "--seed", "1", "--programs", "2",
                  "--cpus", "broadwell", "--out", out_dir)
    assert "0 violation(s)" in out
    assert "2 cells" not in out  # 2 programs x 1 cpu x 3 policies = 6
    assert "6 cells" in out
    # The summary lands in --out even on a clean campaign (CI artifact).
    assert open(os.path.join(out_dir, "summary.txt")).read() == out


def test_fuzz_auto_records_into_history(capsys, tmp_path):
    run_cli(capsys, "fuzz", "--programs", "1", "--cpus", "zen2",
            "--out", str(tmp_path / "f"))
    out = run_cli(capsys, "history", "list")
    assert "fuzz" in out
    html_path = str(tmp_path / "dash.html")
    run_cli(capsys, "history", "report", "--out", html_path)
    html = open(html_path).read()
    assert "Differential fuzzing" in html and "clean" in html


def test_fuzz_replay_of_a_fixed_reproducer_is_clean(capsys, tmp_path):
    from repro.fuzz import (FuzzConfig, fuzz_campaign, parity_fault,
                            write_reproducer)
    from repro.core.probe import POLICY_OFF
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,))
    with parity_fault("verw"):
        result = fuzz_campaign(config)
        violation = result.violations[0]
        program = next(p for p in result.programs
                       if p.name == violation.program)
        path = write_reproducer(str(tmp_path), program, violation,
                                base_seed=3)
    # The "bug" is gone outside the fault scope: replay exits 0.
    out = run_cli(capsys, "--no-history", "fuzz", "--replay", path)
    assert "no longer violates" in out


def test_fuzz_smoke_flag_runs_reduced_grid(capsys, tmp_path):
    out = run_cli(capsys, "--no-history", "fuzz", "--smoke",
                  "--out", str(tmp_path / "f"))
    assert "programs=6 cpus=3" in out
    assert "0 violation(s)" in out


def test_fuzz_violations_exit_nonzero_with_reproducers(capsys, tmp_path):
    from repro.fuzz import parity_fault
    out_dir = str(tmp_path / "f")
    with parity_fault("verw"):
        with pytest.raises(SystemExit) as exc:
            main(["--no-history", "fuzz", "--seed", "3", "--programs",
                  "6", "--cpus", "broadwell", "--out", out_dir])
    assert exc.value.code == 1
    out = capsys.readouterr().out
    assert "engine_parity" in out
    assert "minimized to" in out
    progs = [f for f in os.listdir(out_dir) if f.endswith(".prog")]
    assert progs  # one minimized reproducer per violating cell
    assert "summary.txt" in os.listdir(out_dir)


# --------------------------------------------------------------------------- #
# First-divergence explainer
# --------------------------------------------------------------------------- #

def _faulted_reproducer(tmp_path):
    from repro.fuzz import (FuzzConfig, fuzz_campaign, parity_fault,
                            write_reproducer)
    from repro.core.probe import POLICY_OFF
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,))
    with parity_fault("verw"):
        result = fuzz_campaign(config)
        violation = result.violations[0]
        program = next(p for p in result.programs
                       if p.name == violation.program)
        path = write_reproducer(str(tmp_path), program, violation,
                                base_seed=3)
    return path, violation


def test_explain_replay_pinpoints_the_injected_fault(capsys, tmp_path):
    path, violation = _faulted_reproducer(tmp_path)
    out = run_cli(capsys, "--no-history", "explain", "--replay", path)
    div = violation.divergence
    assert f"first divergence at event #{div['index']}" in out
    assert f"tsc={div['tsc']}" in out
    assert f"instr={div['instr']}" in out
    assert div["structure"] in out
    assert "faulted" in out


def test_explain_cell_json_and_trace(capsys, tmp_path):
    import json
    trace_path = str(tmp_path / "t.json")
    out = run_cli(capsys, "--no-history", "explain", "--cell",
                  "broadwell:off", "--seed", "1", "--program", "3",
                  "--fault", "verw", "--json", "--trace-out", trace_path)
    payload = json.loads(out)
    assert payload["divergence"] is not None
    assert payload["divergence"]["structure"] == "mds"
    assert payload["fault_op"] == "verw"
    assert payload["base"]["total"] > 0
    trace = json.load(open(trace_path))
    instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
    assert len(instants) == payload["base"]["held"]
    assert trace["otherData"]["timeline"]["total"] \
        == payload["base"]["total"]


def test_explain_clean_cell_agrees(capsys):
    out = run_cli(capsys, "--no-history", "explain", "--cell",
                  "broadwell:off")
    assert "agree" in out


def test_explain_requires_exactly_one_source(capsys):
    for argv in (["explain"],
                 ["explain", "--replay", "x.prog", "--cell",
                  "broadwell:off"]):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["--no-history"] + argv)
        capsys.readouterr()


def test_explain_records_and_compares_against_history(capsys):
    run_cli(capsys, "explain", "--cell", "broadwell:off", "--program", "3",
            "--fault", "verw")
    out = run_cli(capsys, "history", "list")
    assert "explain" in out
    # Same cell again: digests and counts must match the recorded run.
    out = run_cli(capsys, "explain", "--cell", "broadwell:off",
                  "--program", "3", "--fault", "verw",
                  "--against", "latest")
    assert "match" in out
    # A different program mismatches.
    out = run_cli(capsys, "--no-history", "explain", "--cell",
                  "broadwell:off", "--program", "0",
                  "--against", "latest")
    assert "mismatch" in out


def test_explain_against_non_explain_run_exits(capsys, tmp_path):
    bench_path = _bench_to(capsys, tmp_path, "B1.json")
    with pytest.raises(SystemExit, match="no\\s+timeline telemetry"):
        main(["explain", "--cell", "broadwell:off", "--against", "latest"])
    capsys.readouterr()


def test_fuzz_writes_machine_readable_summary(capsys, tmp_path):
    import json
    from repro.fuzz import parity_fault
    out_dir = str(tmp_path / "f")
    with parity_fault("verw"):
        with pytest.raises(SystemExit):
            main(["--no-history", "fuzz", "--seed", "3", "--programs",
                  "6", "--cpus", "broadwell", "--out", out_dir])
    capsys.readouterr()
    summary = json.load(open(os.path.join(out_dir, "summary.json")))
    assert summary["seed"] == 3
    assert summary["violations"]
    first = summary["violations"][0]
    assert first["problems"]
    assert {p["kind"] for p in first["problems"]} >= {"tsc",
                                                      "injected_fault"}
    assert first["divergence"]["structure"] == "mds"
    assert summary["reproducers"]


def test_history_gc_dry_run_does_not_mutate(capsys, tmp_path):
    bench_path = _bench_to(capsys, tmp_path, "B1.json")
    _bench_to(capsys, tmp_path, "B2.json")
    before = run_cli(capsys, "history", "list")
    out = run_cli(capsys, "history", "gc", "--keep", "1", "--dry-run")
    assert "would remove 1 run(s)" in out
    assert "keeping 1" in out
    assert run_cli(capsys, "history", "list") == before
    out = run_cli(capsys, "history", "gc", "--keep", "1")
    assert "removed 1 run(s)" in out

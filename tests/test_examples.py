"""Every example script runs end to end and produces its key output."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, capsys, argv=()):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Meltdown vs unmitigated kernel" in out
    assert "blocked" in out
    assert "LEBench overhead" in out


def test_cloud_upgrade_study(capsys):
    out = run_example("cloud_upgrade_study.py", capsys)
    assert "Mitigation tax" in out
    assert "Ice Lake Server" in out
    assert "the upgrade, not the boot flag" in out


def test_browser_vendor_tuning(capsys):
    out = run_example("browser_vendor_tuning.py", capsys)
    assert "with index masking=safe" in out
    assert "kernel 5.16" in out


def test_security_audit_default_cpu(capsys):
    out = run_example("security_audit.py", capsys)
    assert "mitigations=off:" in out
    assert "Linux defaults:" in out
    # The proposal knocks out exactly the MDS defence.
    proposal = out.split("performance-team proposal")[1]
    assert "mds                LEAKS" in proposal
    assert "meltdown           blocked" in proposal


def test_security_audit_amd(capsys):
    out = run_example("security_audit.py", capsys, argv=["zen2"])
    # AMD: Meltdown never leaks, even with everything off.
    first_block = out.split("Linux defaults:")[0]
    assert "meltdown           blocked" in first_block


def test_probe_new_silicon(capsys):
    out = run_example("probe_new_silicon.py", capsys)
    assert "Nextgen Lake" in out
    assert "SPECULATES" not in out  # the fictional part resists the probe


def test_capacity_planning(capsys):
    out = run_example("capacity_planning.py", capsys)
    assert "Mitigation tax on the request handler" in out
    assert "pairs/iter" in out


def test_speculation_probe_tour(capsys):
    out = run_example("speculation_probe_tour.py", capsys)
    assert "speculated to the pad!" in out        # Broadwell
    assert "the prediction was not consumed" in out  # Cascade Lake
    assert "mispredict delta = 1, divider delta = 0" in out
    assert "S" in out.split("fingerprint")[-1]

"""Dashboard edge cases: empty stores and only-dirty histories must
still render byte-stable, well-formed, self-contained HTML, and the
timeline panel must degrade to a note when no explain runs exist."""

from html.parser import HTMLParser

import pytest

from repro.obs.history import HistoryStore
from repro.obs.provenance import build_manifest
from repro.obs.report import render_report, write_report

#: Elements the report legitimately leaves unclosed.
_VOID = {"br", "hr", "meta", "link", "img", "input", "path", "rect",
         "line", "circle", "polyline"}


class _TagBalance(HTMLParser):
    def __init__(self):
        super().__init__()
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack:
            self.errors.append(f"stray </{tag}>")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"</{tag}> closes <{self.stack[-1]}>")
        else:
            self.stack.pop()


def _assert_well_formed(html):
    parser = _TagBalance()
    parser.feed(html)
    assert not parser.errors, parser.errors
    assert not parser.stack, f"unclosed tags: {parser.stack}"
    assert html.lower().startswith("<!doctype html>")
    # Self-contained: no external fetches.
    assert "http://" not in html and "https://" not in html
    assert 'src="' not in html


def _payload(bump=0.0, fingerprint=None, kind_command="bench"):
    manifest = build_manifest(command=kind_command, seed=3,
                              cpus=["broadwell"], wall_time_s=1.0 + bump)
    prov = manifest.to_dict()
    if fingerprint is not None:
        prov["code_fingerprint"] = fingerprint
    return {
        "values": {"figure2/broadwell/lebench:total":
                   {"value": 10.0 + bump, "uncertainty": 0.1}},
        "ledger": {"broadwell": {
            "entries": {"kernel/pti/cr3_write": 1000 + int(bump * 10)},
            "total": 1000 + int(bump * 10)}},
        "telemetry": {"cells_per_s": 2.0},
        "tolerance": {},
        "provenance": prov,
    }


@pytest.fixture
def store(tmp_path):
    with HistoryStore(str(tmp_path / "edge.db")) as s:
        yield s


def test_empty_store_renders_well_formed_and_stable(store):
    first = render_report(store)
    second = render_report(store)
    assert first == second
    _assert_well_formed(first)
    # Every panel is present and degrades to its note.
    for anchor in ('id="self-perf"', 'id="trends"', 'id="mitigations"',
                   'id="leakage"', 'id="fuzz"', 'id="timeline"',
                   'id="waterfall"', 'id="annotations"'):
        assert anchor in first
    assert "0 recorded run(s)" in first


def test_only_dirty_runs_render_well_formed_and_stable(store):
    for bump in (0.0, 1.0, 2.0):
        store.record_payload(_payload(bump, fingerprint="feedfacecafe"),
                             allow_dirty=True)
    assert all(run.dirty for run in store.runs())
    first = render_report(store)
    assert first == render_report(store)
    _assert_well_formed(first)
    assert "dirty" in first


def test_timeline_panel_degrades_to_note_without_explain_runs(store):
    store.record_payload(_payload())
    html = render_report(store)
    _assert_well_formed(html)
    assert 'id="timeline"' in html
    assert "no explain runs recorded yet" in html


def test_timeline_panel_lists_explain_runs(store):
    payload = _payload()
    payload["telemetry"] = {"timeline": {
        "events": 114.0, "dropped": 0.0, "digest": 3735928559.0,
        "diverged": 1.0, "divergence_index": 29.0,
        "divergence_tsc": 2966.0, "divergence_instr": 37.0,
        "count.mds": 9.0, "count.cache": 40.0}}
    store.record_payload(payload, kind="explain")
    html = render_report(store)
    _assert_well_formed(html)
    assert "diverged" in html
    assert "#29" in html and "instr 37" in html
    assert f"{3735928559:08x}" in html


def test_self_perf_panel_shows_replica_tiles(store):
    payload = _payload()
    payload["telemetry"] = {"cells_per_s": 2.0, "replicas_per_s": 48.5,
                            "replicas": {"batches": 2, "replicas": 8,
                                         "batched": 5, "scalar_fallbacks": 1,
                                         "probe_runs": 2, "hit_rate": 0.75}}
    store.record_payload(payload)
    first = render_report(store)
    assert first == render_report(store)  # byte-stable with replica tiles
    _assert_well_formed(first)
    assert "replicas / sec" in first
    assert "batch hit rate" in first
    assert "48.5" in first
    assert ">75<" in first  # hit rate 0.75 rendered as a percentage tile


def test_write_report_round_trips(tmp_path, store):
    out = str(tmp_path / "dash.html")
    path = write_report(store, out)
    with open(path) as handle:
        _assert_well_formed(handle.read())

"""Leakage tracer: taint propagation, mitigation clears, transport."""

from repro.cpu import Machine, Mode, get_cpu, isa
from repro.obs import leakage as lk
from repro.obs.leakage import (
    LeakageTracer,
    current_leakage,
    use_leakage,
)

SECRET = 0x1000
DEST = 0x2000
BRANCH_PC = 0x50_0000
PAD = 0x61_0000          # attacker-controlled landing pad
NOP_PAD = 0x62_0000


def traced_machine(cpu_key="broadwell", policy="test"):
    machine = Machine(get_cpu(cpu_key), seed=0)
    tracer = LeakageTracer(policy=policy)
    machine.attach_leakage(tracer)
    return machine, tracer


def train(machine, target, rounds=8):
    for _ in range(rounds):
        machine.execute(isa.branch_indirect(target, pc=BRANCH_PC))


# --------------------------------------------------------------------------- #
# Taint propagation
# --------------------------------------------------------------------------- #

def test_store_to_load_forwarding_propagates_taint():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    assert not tracer.is_tainted(DEST)
    # Storing the secret value taints the destination line...
    machine.store_buffer.push(DEST, value=SECRET)
    assert tracer.is_tainted(DEST)
    # ...and a speculative store bypass against it is a v4 leak.
    assert machine.store_buffer.speculative_bypass_possible(DEST, ssbd=False)
    assert tracer.count(lk.CACHE_SET) == 1
    event = tracer.events[0]
    assert event.primitive == lk.SPECTRE_STL
    assert event.cpu == "broadwell"
    assert event.policy == "test"


def test_stale_secret_still_leaks_under_a_clean_store():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    machine.store_buffer.push(DEST, value=SECRET)
    # A younger clean store does NOT launder the line: the v4 bypass
    # observes the *stale* value, which is still the secret.
    machine.store_buffer.push(DEST, value=0)
    machine.store_buffer.speculative_bypass_possible(DEST, ssbd=False)
    assert tracer.count(lk.CACHE_SET) == 1


def test_drain_clears_pending_store_taint():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    machine.store_buffer.push(DEST, value=SECRET)
    machine.store_buffer.drain()
    # A fresh clean store to a clean line is not an observable bypass.
    machine.store_buffer.push(0x9000, value=0)
    assert machine.store_buffer.speculative_bypass_possible(0x9000,
                                                            ssbd=False)
    assert tracer.total_events() == 0


def test_untraced_machine_has_no_observers():
    machine = Machine(get_cpu("broadwell"), seed=0)
    assert machine.leakage is None
    assert machine.store_buffer.observer is None
    assert machine.btb.observer is None
    assert machine.rsb.observer is None
    assert machine.caches.observer is None
    assert machine.tlb.observer is None
    assert machine.mds_buffers.observer is None


def test_ambient_tracer_adopted_at_construction():
    tracer = LeakageTracer()
    with use_leakage(tracer):
        machine = Machine(get_cpu("zen3"), seed=0)
        assert machine.leakage is tracer
        assert tracer.cpu_model == "zen3"
    assert current_leakage() is None
    assert Machine(get_cpu("zen3"), seed=0).leakage is None


# --------------------------------------------------------------------------- #
# Tainted windows: BTB steering, divider sink, lfence suppression
# --------------------------------------------------------------------------- #

def test_tainted_btb_redirect_files_port_timing_event():
    machine, tracer = traced_machine()
    tracer.taint_code(PAD)
    machine.register_code(PAD, [isa.div()])
    train(machine, PAD)
    machine.execute(isa.branch_indirect(NOP_PAD, pc=BRANCH_PC))
    assert tracer.count(lk.PORT_TIMING) == 1
    assert tracer.events[-1].primitive == lk.SPECTRE_BTB


def test_lfence_in_tainted_window_blocks_and_attributes():
    machine, tracer = traced_machine()
    tracer.taint_code(PAD)
    machine.register_code(PAD, [isa.lfence(), isa.div()])
    train(machine, PAD)
    machine.execute(isa.branch_indirect(NOP_PAD, pc=BRANCH_PC))
    assert tracer.count(lk.PORT_TIMING) == 0
    assert tracer.blocked.get("spectre_v1/lfence") == 1


def test_ibpb_clears_tainted_btb_entry():
    machine, tracer = traced_machine()
    tracer.taint_code(PAD)
    machine.register_code(PAD, [isa.div()])
    train(machine, PAD)
    machine.btb.barrier()
    assert tracer.blocked.get("spectre_v2/ibpb") == 1
    machine.execute(isa.branch_indirect(NOP_PAD, pc=BRANCH_PC))
    assert tracer.count(lk.PORT_TIMING) == 0


def test_rsb_stuffing_clears_tainted_return_predictions():
    machine, tracer = traced_machine()
    tracer.taint_code(PAD)
    machine.rsb.push(PAD)
    machine.rsb.stuff()
    assert tracer.blocked.get("spectre_v2/rsb_fill") == 1
    # The stuffed RSB holds only benign entries now.
    machine.rsb.push(NOP_PAD)
    machine.rsb.stuff()
    assert tracer.blocked.get("spectre_v2/rsb_fill") == 1


# --------------------------------------------------------------------------- #
# MDS residue: verw clearing, verw-less boundary events
# --------------------------------------------------------------------------- #

def test_verw_clears_tainted_residue_with_attribution():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    machine.mode = Mode.KERNEL
    machine.mds_buffers.deposit_load(SECRET, Mode.KERNEL)
    machine.execute(isa.verw())
    # fill buffer + load port both held tainted residue.
    assert tracer.blocked.get("mds/verw") == 2
    assert tracer.count(lk.BUFFER_RESIDUE) == 0


def test_verwless_boundary_crossing_files_residue_event():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    machine.execute(isa.syscall_instr())
    assert machine.mode is Mode.KERNEL
    machine.mds_buffers.deposit_load(SECRET, Mode.KERNEL)
    machine.execute(isa.sysret_instr())
    assert machine.mode is Mode.USER
    assert tracer.count(lk.BUFFER_RESIDUE) == 1
    event = tracer.events[-1]
    assert event.primitive == lk.MDS_BUFFER
    assert event.boundary == "kernel->user"
    assert "fill_buffer" in event.sink


def test_immune_part_files_no_residue_event():
    machine, tracer = traced_machine("ice_lake_client")
    assert not machine.cpu.vulns.mds
    tracer.taint_address(SECRET)
    machine.execute(isa.syscall_instr())
    machine.mds_buffers.deposit_load(SECRET, Mode.KERNEL)
    machine.execute(isa.sysret_instr())
    assert tracer.count(lk.BUFFER_RESIDUE) == 0


# --------------------------------------------------------------------------- #
# Aggregation and transport
# --------------------------------------------------------------------------- #

def test_state_merge_matches_single_tracer():
    machine_a, tracer_a = traced_machine()
    tracer_a.taint_address(SECRET)
    machine_a.store_buffer.push(DEST, value=SECRET)
    machine_a.store_buffer.speculative_bypass_possible(DEST, ssbd=False)

    machine_b, tracer_b = traced_machine("zen2")
    tracer_b.taint_code(PAD)
    machine_b.register_code(PAD, [isa.div()])
    train(machine_b, PAD)
    machine_b.execute(isa.branch_indirect(NOP_PAD, pc=BRANCH_PC))
    # The victim execute retrained the entry to the harmless target;
    # re-poison it so the barrier has a tainted entry to clear.
    train(machine_b, PAD)
    machine_b.btb.barrier()

    merged = LeakageTracer(policy="merge")
    merged.merge_state(tracer_a.state())
    merged.merge_state(tracer_b.state())
    assert merged.total_events() == (tracer_a.total_events()
                                     + tracer_b.total_events())
    assert merged.count(lk.CACHE_SET) == 1
    assert merged.count(lk.PORT_TIMING) >= 1
    assert merged.blocked.get("spectre_v2/ibpb") == 1
    summary = merged.summary()
    assert summary.events == merged.total_events()
    assert summary.blocked == merged.blocked


def test_report_lists_paths_and_attributions():
    machine, tracer = traced_machine()
    tracer.taint_address(SECRET)
    machine.store_buffer.push(DEST, value=SECRET)
    machine.store_buffer.speculative_bypass_possible(DEST, ssbd=False)
    text = tracer.report()
    assert "LEAK" in text
    assert lk.SPECTRE_STL in text

"""Span tracer: clock, nesting, attribution, and the null fast path."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.kernel import GETPID, Kernel
from repro.mitigations import linux_default
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    current_tracer,
    install_tracer,
    use_tracer,
)


@pytest.fixture
def tracer():
    with use_tracer(SpanTracer()) as t:
        yield t


def test_null_tracer_is_default():
    assert current_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_null_tracer_span_is_shared_noop():
    a = NULL_TRACER.span("anything", key="value")
    b = NULL_TRACER.span("else")
    assert a is b  # one shared object, nothing allocates
    with a as span:
        assert span.set(more=1) is span
    NULL_TRACER.instant("nothing")
    NULL_TRACER.bind_machine(object())


def test_use_tracer_installs_and_restores():
    t = SpanTracer()
    with use_tracer(t):
        assert current_tracer() is t
        assert current_tracer().enabled
    assert current_tracer() is NULL_TRACER


def test_install_tracer_returns_previous():
    t = SpanTracer()
    previous = install_tracer(t)
    try:
        assert previous is NULL_TRACER
        assert current_tracer() is t
    finally:
        install_tracer(previous)


def test_clock_follows_machine_tsc(tracer):
    m = Machine(get_cpu("broadwell"))  # binds itself on construction
    before = tracer.now()
    m.execute(isa.work(123))
    assert tracer.now() - before == 123


def test_clock_monotonic_across_machines(tracer):
    m1 = Machine(get_cpu("broadwell"))
    m1.execute(isa.work(100))
    assert tracer.now() == 100
    m2 = Machine(get_cpu("zen3"))  # fresh TSC; clock must not jump back
    assert tracer.now() == 100
    m2.execute(isa.work(50))
    assert tracer.now() == 150


def test_span_nesting_and_cycle_attribution(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("outer") as outer:
        m.execute(isa.work(100))
        with tracer.span("inner") as inner:
            m.execute(isa.work(40))
        m.execute(isa.work(10))
    assert inner.parent is outer
    assert inner in outer.children
    assert inner.cycles == 40
    assert outer.cycles == 150
    assert outer.self_cycles == 110
    assert inner.path() == ("outer", "inner")
    assert outer.depth == 0 and inner.depth == 1


def test_span_counter_delta(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("loads") as span:
        m.execute(isa.load(0x1000))
    assert span.counter_delta is not None
    assert span.counter_delta.get("inst_retired.any") == 1


def test_span_attrs_and_set(tracer):
    with tracer.span("s", cpu="zen") as span:
        span.set(extra=7)
    assert span.attrs == {"cpu": "zen", "extra": 7}


def test_coverage_and_find(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("covered"):
        m.execute(isa.work(90))
    m.execute(isa.work(10))  # outside any span
    assert tracer.total_cycles() == 100
    assert tracer.attributed_cycles() == 90
    assert tracer.coverage() == pytest.approx(0.9)
    (span,) = tracer.find("covered")
    assert span.cycles == 90
    assert tracer.find("missing") == []


def test_finish_feeds_metrics_histogram(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("timed"):
        m.execute(isa.work(42))
    hist = tracer.metrics.histogram("span.timed.cycles")
    assert hist.count == 1
    assert hist.sum == 42


def test_instants_recorded_with_timestamps(tracer):
    m = Machine(get_cpu("broadwell"))
    m.execute(isa.work(10))
    tracer.instant("event", detail="x")
    assert tracer.instants == [(10, "event", {"detail": "x"})]


def test_transient_window_emits_instant(tracer):
    m = Machine(get_cpu("broadwell"))
    m.speculate([isa.div()])
    names = [name for _, name, _ in tracer.instants]
    assert "cpu.transient_window" in names


def test_syscall_produces_nested_spans(tracer):
    cpu = get_cpu("broadwell")
    kernel = Kernel(Machine(cpu), linux_default(cpu))
    kernel.syscall(GETPID)
    (syscall,) = tracer.find("kernel.syscall")
    child_names = [child.name for child in syscall.children]
    assert child_names == ["kernel.entry", "kernel.handler.getpid",
                           "kernel.exit"]
    assert syscall.cycles == sum(c.cycles for c in syscall.children)


def test_syscall_attribution_covers_all_cycles(tracer):
    """The acceptance bar: >=95% of committed cycles in named spans."""
    cpu = get_cpu("broadwell")
    kernel = Kernel(Machine(cpu), linux_default(cpu))
    with tracer.span("run"):
        for _ in range(10):
            kernel.syscall(GETPID)
    assert tracer.coverage() >= 0.95


def test_report_mentions_spans_and_coverage(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("alpha"):
        m.execute(isa.work(10))
    out = tracer.report()
    assert "alpha" in out
    assert "% attributed" in out


def test_untraced_machine_behaves_identically():
    """Null path and traced path must agree on simulated cycle counts."""
    cpu = get_cpu("broadwell")

    def run():
        kernel = Kernel(Machine(cpu), linux_default(cpu))
        return sum(kernel.syscall(GETPID) for _ in range(5))

    baseline = run()
    with use_tracer(SpanTracer()):
        traced = run()
    assert traced == baseline


def test_null_tracer_type_is_reusable():
    t = NullTracer()
    assert t.span("x") is t.span("y")
    assert not t.enabled


def test_to_payload_serializes_timeline(tracer):
    m = Machine(get_cpu("broadwell"))
    with tracer.span("outer", cpu="bw") as outer:
        m.execute(isa.work(30))
        with tracer.span("inner"):
            m.execute(isa.work(10))
    tracer.instant("mark", n=1)
    payload = tracer.to_payload()
    assert payload["total_cycles"] == 40
    records = payload["spans"]
    assert [r["name"] for r in records] == ["outer", "inner"]
    assert records[0]["parent"] is None
    assert records[1]["parent"] == 0          # parent by index, not identity
    assert records[0]["attrs"] == {"cpu": "bw"}
    assert records[0]["start"] == 0 and records[0]["end"] == 40
    assert payload["instants"] == [[40, "mark", {"n": 1}]]
    assert "span.outer.cycles" in payload["metrics"]
    import json as _json
    _json.dumps(payload)                       # plain JSON types only
    assert outer.end == 40


def test_to_payload_closes_open_spans_at_now(tracer):
    m = Machine(get_cpu("broadwell"))
    span = tracer.span("open").__enter__()
    m.execute(isa.work(25))
    payload = tracer.to_payload()
    assert payload["spans"][0]["end"] == 25    # closed at now() in transit
    assert span.end is None                    # ...without mutating the live span
    span.__exit__(None, None, None)


def test_absorb_rebases_child_timeline(tracer):
    m = Machine(get_cpu("broadwell"))
    m.execute(isa.work(100))                   # parent clock at 100

    child = SpanTracer()
    with use_tracer(child):
        cm = Machine(get_cpu("zen3"))          # binds to the child's clock
        with child.span("worker.job") as job:
            cm.execute(isa.work(40))
            child.instant("worker.event")
        child.metrics.counter("worker.cells").inc(8)

    tracer.absorb(child.to_payload())
    (absorbed,) = tracer.find("worker.job")
    assert absorbed.start == 100 and absorbed.end == 140
    assert absorbed is not job                 # rebuilt, not shared
    assert (140, "worker.event", {}) in tracer.instants
    assert tracer.now() == 140                 # clock advanced past the child
    assert tracer.metrics.counter("worker.cells").value == 8


def test_absorb_preserves_parent_links_and_coverage(tracer):
    child = SpanTracer()
    with use_tracer(child):
        cm = Machine(get_cpu("broadwell"))
        with child.span("outer"):
            with child.span("inner"):
                cm.execute(isa.work(60))
    tracer.absorb(child.to_payload())
    (outer,) = tracer.find("outer")
    (inner,) = tracer.find("inner")
    assert inner.parent is outer
    assert inner in outer.children
    assert outer in tracer.roots and inner not in tracer.roots
    assert tracer.coverage() == pytest.approx(1.0)
    # successive absorptions stay monotonic
    tracer.absorb(child.to_payload())
    assert tracer.total_cycles() == 120


def test_advance_rejects_negative(tracer):
    with pytest.raises(ValueError):
        tracer.advance(-1)

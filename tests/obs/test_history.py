"""Run-history store: schema round-trip, diff blame, HTML determinism."""

import os
import sqlite3

import pytest

from repro.errors import HistoryError
from repro.obs.history import (
    HistoryStore,
    blame_paths,
    cell_waterfall,
    default_history_db,
    diff_payloads,
    diff_values,
    render_diff,
)
from repro.obs.provenance import build_manifest, code_fingerprint
from repro.obs.report import render_report


def make_payload(bump=0.0, fingerprint=None, command="bench"):
    """A bench-shaped payload with two CPUs and a handful of knobs."""
    manifest = build_manifest(command=command, seed=7,
                              cpus=["broadwell", "cascade_lake"],
                              wall_time_s=2.5 + bump)
    prov = manifest.to_dict()
    if fingerprint is not None:
        prov["code_fingerprint"] = fingerprint
    shift = int(bump * 100)
    return {
        "values": {
            "figure2/broadwell/lebench:total":
                {"value": 20.0 + bump, "uncertainty": 0.1},
            "figure2/broadwell/lebench:pti":
                {"value": 11.0 + bump, "uncertainty": 0.05},
            "figure2/broadwell/lebench:retpoline":
                {"value": 4.0, "uncertainty": 0.05},
            "figure2/cascade_lake/lebench:total":
                {"value": 6.0, "uncertainty": 0.1},
            "figure3/broadwell/octane:js_index_masking":
                {"value": 1.5, "uncertainty": 0.02},
        },
        "ledger": {
            "broadwell": {
                "entries": {
                    "kernel/pti/cr3_write": 4000 + shift,
                    "kernel/retpoline/thunk": 1500,
                    "js/spectre_v1/index_mask": 300,
                },
                "total": 5800 + shift,
            },
            "cascade_lake": {
                "entries": {"kernel/retpoline/thunk": 900},
                "total": 900,
            },
        },
        "telemetry": {
            "cells_per_s": 3.0 + bump,
            "cache_hit_rate": 0.5,
            "engine": {"block_hits": 100 + shift, "hit_rate": 0.9},
            "phases": {"figure2": 1.25, "ledger": 0.5},
        },
        "tolerance": {"sigma_multiplier": 3.0, "min_percent_points": 0.25,
                      "ledger_rel_tol": 0.0},
        "provenance": prov,
    }


@pytest.fixture
def store(tmp_path):
    with HistoryStore(str(tmp_path / "h.db")) as s:
        yield s


# --------------------------------------------------------------------------- #
# Store: round-trip, refs, retention
# --------------------------------------------------------------------------- #

def test_record_and_load_round_trips(store):
    payload = make_payload()
    run_id = store.record_payload(payload, kind="bench")
    loaded = store.load_run(run_id)
    assert loaded["values"] == payload["values"]
    assert loaded["ledger"] == payload["ledger"]
    assert loaded["tolerance"] == payload["tolerance"]
    assert loaded["provenance"] == payload["provenance"]
    # telemetry is flattened to dotted numeric series
    assert loaded["telemetry"]["cells_per_s"] == 3.0
    assert loaded["telemetry"]["engine.hit_rate"] == 0.9
    assert loaded["telemetry"]["phases.figure2"] == 1.25


def test_runs_listing_and_info(store):
    store.record_payload(make_payload(), kind="bench")
    store.record_payload(make_payload(1.0), kind="check")
    runs = store.runs()
    assert [r.id for r in runs] == [1, 2]
    assert [r.kind for r in runs] == ["bench", "check"]
    assert runs[0].values == 5
    assert runs[0].ledger_cycles == 5800 + 900
    assert runs[0].fingerprint == code_fingerprint()
    assert not runs[0].dirty
    assert store.run_info(2).kind == "check"
    with pytest.raises(HistoryError):
        store.run_info(99)


def test_resolve_refs(store):
    with pytest.raises(HistoryError):
        store.resolve("latest")       # empty db
    store.record_payload(make_payload())
    with pytest.raises(HistoryError):
        store.resolve("prev")         # only one run
    store.record_payload(make_payload(1.0))
    assert store.resolve("latest") == 2
    assert store.resolve("prev") == 1
    assert store.resolve("1") == 1
    assert store.resolve(2) == 2
    with pytest.raises(HistoryError):
        store.resolve("nope")
    with pytest.raises(HistoryError):
        store.resolve(42)


def test_trend_and_value_keys(store):
    store.record_payload(make_payload(0.0))
    store.record_payload(make_payload(2.0))
    trend = store.trend("figure2/broadwell/lebench:total")
    assert trend == [(1, 20.0, 0.1), (2, 22.0, 0.1)]
    assert "figure2/cascade_lake/lebench:total" in store.value_keys()
    assert store.telemetry_trend("cells_per_s") == [(1, 3.0), (2, 5.0)]


def test_gc_drops_oldest(store):
    for bump in (0.0, 1.0, 2.0):
        store.record_payload(make_payload(bump))
    removed = store.gc(keep=1)
    assert removed == [1, 2]
    assert [r.id for r in store.runs()] == [3]
    # no orphaned rows survive in the satellite tables
    db = sqlite3.connect(store.path)
    for table in ("cells", "ledger", "telemetry"):
        owners = {row[0] for row in
                  db.execute(f"SELECT DISTINCT run_id FROM {table}")}
        assert owners == {3}
    with pytest.raises(HistoryError):
        store.gc(-1)


def test_schema_version_mismatch_refused(tmp_path):
    path = str(tmp_path / "old.db")
    with HistoryStore(path):
        pass
    db = sqlite3.connect(path)
    db.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
    db.commit()
    db.close()
    with pytest.raises(HistoryError, match="schema v999"):
        HistoryStore(path)


def test_default_history_db_env_override(monkeypatch):
    monkeypatch.setenv("SPECTRESIM_HISTORY_DB", "/tmp/custom.db")
    assert default_history_db() == "/tmp/custom.db"
    monkeypatch.delenv("SPECTRESIM_HISTORY_DB")
    assert default_history_db() == os.path.join(
        "benchmarks", "baselines", "history.db")


# --------------------------------------------------------------------------- #
# Fingerprint hygiene
# --------------------------------------------------------------------------- #

def test_record_refuses_foreign_fingerprint(store):
    with pytest.raises(HistoryError, match="allow-dirty"):
        store.record_payload(make_payload(fingerprint="deadbeefdeadbeef"))
    assert len(store) == 0


def test_allow_dirty_records_flagged(store):
    run_id = store.record_payload(
        make_payload(fingerprint="deadbeefdeadbeef"), allow_dirty=True)
    assert store.run_info(run_id).dirty
    clean = store.record_payload(make_payload())
    assert not store.run_info(clean).dirty


def test_diff_reports_fingerprint_change(store):
    store.record_payload(make_payload(fingerprint="aaaa"), allow_dirty=True)
    store.record_payload(make_payload())
    diff = store.diff(1, 2)
    assert diff.fingerprint_changed
    assert "fingerprint changed" in render_diff(diff)


# --------------------------------------------------------------------------- #
# Diff engine: blame waterfalls sum exactly
# --------------------------------------------------------------------------- #

def test_diff_blame_steps_sum_exactly_to_cell_delta(store):
    store.record_payload(make_payload(0.0))
    store.record_payload(make_payload(2.0))
    diff = store.diff("prev", "latest")
    assert diff.cells, "broadwell ledger moved; a cell delta is due"
    for cell in diff.cells:
        assert sum(step for _m, step in cell.steps) == cell.delta
        assert cell.delta == cell.new_total - cell.old_total
    (cell,) = diff.cells
    assert cell.cpu == "broadwell"
    assert cell.delta == 200
    assert dict(cell.steps) == {"pti": 200}


def test_cell_waterfall_groups_by_mitigation():
    old = {"kernel/pti/cr3_write": 100, "kernel/pti/tlb_flush": 50,
           "kernel/retpoline/thunk": 30}
    new = {"kernel/pti/cr3_write": 140, "kernel/pti/tlb_flush": 45,
           "kernel/retpoline/thunk": 10, "js/spectre_v1/index_mask": 5}
    cell = cell_waterfall("broadwell", old, new)
    assert cell.old_total == 180 and cell.new_total == 200
    assert dict(cell.steps) == {"pti": 35, "retpoline": -20, "spectre_v1": 5}
    # ordered by decreasing magnitude
    assert [m for m, _d in cell.steps] == ["pti", "retpoline", "spectre_v1"]
    assert sum(d for _m, d in cell.steps) == cell.delta == 20


def test_diff_values_noise_aware_and_generic_keys():
    old = {("a", "x"): (10.0, 0.5), ("a", "y"): (5.0, 0.0),
           ("gone",): (1.0, 0.0)}
    new = {("a", "x"): (10.4, 0.5), ("a", "y"): (9.0, 0.0),
           ("fresh",): (2.0, 0.0)}
    diff = diff_values(old, new, sigma_multiplier=3.0, floor=0.25)
    # x moved 0.4 < 3*hypot(.5,.5)+.25: inside noise
    assert [d.key for d in diff.regressions] == [("a", "y")]
    assert diff.missing == [("gone",)]
    assert diff.new_keys == [("fresh",)]
    assert diff.compared == 2


def test_blame_paths_matches_knob_and_js_primitives():
    from repro.obs.history import LedgerDrift
    drifts = [LedgerDrift("bw", "kernel/pti/cr3_write", 10, 20),
              LedgerDrift("bw", "js/spectre_v1/index_mask", 5, 9)]
    assert len(blame_paths("f2/bw/lebench:pti", drifts)) == 1
    assert len(blame_paths("f3/bw/octane:js_index_masking", drifts)) == 1
    assert len(blame_paths("f2/bw/lebench:total", drifts)) == 2
    assert blame_paths("f2/bw/lebench:ssbd", drifts) == []


def test_diff_payloads_uses_old_payloads_tolerance():
    old = make_payload()
    new = make_payload()
    new["values"]["figure2/broadwell/lebench:total"]["value"] += 0.5
    # within 3-sigma + 0.25 floor of the recorded uncertainties
    assert not diff_payloads(old, new).failed
    old["tolerance"] = {"sigma_multiplier": 0.0, "min_percent_points": 0.1}
    assert diff_payloads(old, new).failed


def test_render_diff_lists_every_changed_cell(store):
    store.record_payload(make_payload(0.0))
    store.record_payload(make_payload(2.0))
    text = render_diff(store.diff(1, 2), "run 1", "run 2")
    assert "CELL broadwell" in text
    assert "(exact)" in text
    assert "REGRESSION figure2/broadwell/lebench:pti" in text
    assert "blame: broadwell:kernel/pti/cr3_write" in text


# --------------------------------------------------------------------------- #
# Dashboard: deterministic, self-contained
# --------------------------------------------------------------------------- #

def test_report_byte_stable_and_sectioned(store):
    store.record_payload(make_payload(0.0))
    store.record_payload(make_payload(2.0))
    first = render_report(store)
    second = render_report(store)
    assert first == second
    for anchor in ('id="trends"', 'id="waterfall"', 'id="self-perf"',
                   'id="mitigations"', 'id="annotations"'):
        assert anchor in first
    assert "<svg" in first
    # self-contained: no external fetches
    assert "http://" not in first and "https://" not in first
    assert 'src="' not in first


def test_report_flags_dirty_rows(store):
    store.record_payload(make_payload(fingerprint="feedface"),
                         allow_dirty=True)
    store.record_payload(make_payload())
    html = render_report(store)
    assert "dirty" in html
    assert "fingerprint changed" in html


def test_report_renders_empty_db(store):
    html = render_report(store)
    assert "0 recorded run(s)" in html
    assert render_report(store) == html


# --------------------------------------------------------------------------- #
# Leakage surface (schema v2)
# --------------------------------------------------------------------------- #

def make_leakage_block():
    def cell(leaked, blocked_by=(), events=0):
        return {"primitive": "spectre_btb", "leaked": leaked,
                "events": events, "blocked_by": list(blocked_by)}
    return {
        "policy": "default",
        "matrix": {
            "broadwell": {
                "user->kernel (syscall)":
                    cell(False, ["spectre_v2/retpoline"]),
                "user->user (syscall)":
                    cell(False, ["spectre_v2/retpoline"]),
            },
            "cascade_lake": {
                "user->kernel (syscall)":
                    cell(False, ["hardware/btb_isolation"]),
                "user->user (syscall)": cell(True, events=6),
            },
        },
        "state": {"events": {}, "channels": {}, "blocked": {}, "dropped": 0},
        "summary": {"events": 6, "unique_sinks": 1, "by_path": {},
                    "blocked": {}, "dropped": 0},
    }


def test_leakage_round_trips_through_the_store(store):
    payload = make_payload()
    payload["leakage"] = make_leakage_block()
    run_id = store.record_payload(payload)
    loaded = store.load_run(run_id)
    surface = loaded["leakage"]
    assert surface["policy"] == "default"
    leak = surface["matrix"]["cascade_lake"]["user->user (syscall)"]
    assert leak["leaked"] and leak["events"] == 6
    blocked = surface["matrix"]["broadwell"]["user->kernel (syscall)"]
    assert not blocked["leaked"]
    assert blocked["blocked_by"] == ["spectre_v2/retpoline"]


def test_leakage_absent_payload_omits_block(store):
    run_id = store.record_payload(make_payload())
    assert "leakage" not in store.load_run(run_id)
    assert store.leakage_matrix(run_id)["matrix"] == {}


def test_v1_store_migrates_in_place(tmp_path):
    path = str(tmp_path / "v1.db")
    with HistoryStore(path) as store:
        store.record_payload(make_payload())
    # Rewind the store to schema v1: no leakage table, old version stamp.
    db = sqlite3.connect(path)
    db.execute("DROP TABLE leakage")
    db.execute("DROP INDEX IF EXISTS leakage_by_cpu")
    db.execute("UPDATE meta SET value = '1' WHERE key = 'schema_version'")
    db.commit()
    db.close()
    with HistoryStore(path) as store:
        # Opened, stamped to the current version, table recreated, and
        # the pre-migration run is intact.
        assert len(store) == 1
        assert store.leakage_matrix(1)["matrix"] == {}
        payload = make_payload()
        payload["leakage"] = make_leakage_block()
        run_id = store.record_payload(payload)
        assert store.leakage_matrix(run_id)["matrix"]
    db = sqlite3.connect(path)
    version = db.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()[0]
    db.close()
    assert int(version) == 2


def test_gc_drops_leakage_rows(store):
    for _ in range(3):
        payload = make_payload()
        payload["leakage"] = make_leakage_block()
        store.record_payload(payload)
    store.gc(1)
    db = sqlite3.connect(store.path)
    owners = {row[0] for row in
              db.execute("SELECT DISTINCT run_id FROM leakage")}
    db.close()
    assert owners == {3}


def test_report_renders_leakage_panel(store):
    payload = make_payload()
    payload["leakage"] = make_leakage_block()
    store.record_payload(payload)
    html = render_report(store)
    assert 'id="leakage"' in html
    assert "LEAK" in html
    assert "spectre_v2/retpoline" in html
    assert html == render_report(store)  # byte-stable


def test_report_notes_missing_leakage(store):
    store.record_payload(make_payload())
    html = render_report(store)
    assert 'id="leakage"' in html
    assert "no leakage surface recorded" in html

"""Bench snapshots and the noise-aware regression gate."""

import dataclasses
import json

import pytest

from repro.core.executor import StudyExecutor
from repro.core.study import Settings
from repro.cpu.model import get_cpu as real_get_cpu
from repro.errors import BaselineError
from repro.obs import baseline


FAST = Settings.fast()


def _fresh_executor():
    # The persistent cache keys cells by (cpu key, config, settings) —
    # which a monkeypatched cost table does NOT change — so the gate
    # tests must simulate for real every time.
    return StudyExecutor(cache_dir=None)


def _collect_fast(**kwargs):
    return baseline.collect(cpus=["broadwell"], settings=FAST,
                            drivers=("figure2",),
                            executor=_fresh_executor(), **kwargs)


# ---------------------------------------------------------------------- #
# Persistence and schema
# ---------------------------------------------------------------------- #

def test_next_bench_path_numbers_from_one(tmp_path):
    assert baseline.next_bench_path(str(tmp_path)).endswith("BENCH_1.json")
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_03.txt").write_text("not a bench")
    assert baseline.next_bench_path(str(tmp_path)).endswith("BENCH_8.json")


def test_load_bench_rejects_garbage(tmp_path):
    with pytest.raises(BaselineError):
        baseline.load_bench(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    with pytest.raises(BaselineError):
        baseline.load_bench(str(bad))
    wrong_kind = tmp_path / "kind.json"
    wrong_kind.write_text(json.dumps({"kind": "something-else", "schema": 1}))
    with pytest.raises(BaselineError):
        baseline.load_bench(str(wrong_kind))
    wrong_schema = tmp_path / "schema.json"
    wrong_schema.write_text(json.dumps(
        {"kind": baseline.BENCH_KIND, "schema": 999}))
    with pytest.raises(BaselineError):
        baseline.load_bench(str(wrong_schema))


def test_write_then_load_round_trip(tmp_path):
    payload = {"schema": baseline.SCHEMA_VERSION, "kind": baseline.BENCH_KIND,
               "values": {}, "ledger": {}}
    path = baseline.write_bench(payload, str(tmp_path / "b" / "BENCH_1.json"))
    assert baseline.load_bench(path) == payload


# ---------------------------------------------------------------------- #
# Comparison semantics on synthetic payloads
# ---------------------------------------------------------------------- #

def _payload(values, ledger_entries=None):
    return {
        "schema": baseline.SCHEMA_VERSION,
        "kind": baseline.BENCH_KIND,
        "tolerance": {"sigma_multiplier": 3.0, "min_percent_points": 0.25,
                      "ledger_rel_tol": 0.0},
        "values": values,
        "ledger": {"broadwell": {"entries": ledger_entries or {},
                                 "total": sum((ledger_entries or {}).values())}},
    }


def test_noise_within_tolerance_is_not_a_regression():
    old = _payload({"figure2/broadwell/lebench:pti":
                    {"value": 10.0, "uncertainty": 0.5}})
    new = _payload({"figure2/broadwell/lebench:pti":
                    {"value": 11.0, "uncertainty": 0.5}})
    diff = baseline.compare(old, new)
    # allowed = 3*hypot(0.5, 0.5) + 0.25 ≈ 2.37pp > 1pp delta
    assert not diff.failed and not diff.regressions
    assert diff.compared == 1


def test_regression_beyond_tolerance_fails_with_blame():
    old = _payload({"figure2/broadwell/lebench:pti":
                    {"value": 10.0, "uncertainty": 0.1}},
                   {"kernel.entry/pti/mov_cr3": 1000,
                    "kernel.handler/base/work": 5000})
    new = _payload({"figure2/broadwell/lebench:pti":
                    {"value": 14.0, "uncertainty": 0.1}},
                   {"kernel.entry/pti/mov_cr3": 1400,
                    "kernel.handler/base/work": 5000})
    diff = baseline.compare(old, new)
    assert diff.failed
    (reg,) = diff.regressions
    assert reg.key.endswith(":pti")
    assert any("kernel.entry/pti/mov_cr3" in blame for blame in reg.blame)
    # The unrelated base entry did not drift and is not blamed.
    assert not any("base/work" in blame for blame in reg.blame)
    assert "REGRESSION" in baseline.render_report(diff)


def test_js_knob_blame_matches_by_primitive():
    old = _payload({"figure3/broadwell/octane2:js_index_masking":
                    {"value": 4.0, "uncertainty": 0.05}},
                   {"jsengine/spectre_v1/index_mask": 1000,
                    "jsengine/spectre_v1/object_guard": 1000})
    new = _payload({"figure3/broadwell/octane2:js_index_masking":
                    {"value": 9.0, "uncertainty": 0.05}},
                   {"jsengine/spectre_v1/index_mask": 2000,
                    "jsengine/spectre_v1/object_guard": 1000})
    diff = baseline.compare(old, new)
    (reg,) = diff.regressions
    assert any("index_mask" in blame for blame in reg.blame)
    assert not any("object_guard" in blame for blame in reg.blame)


def test_improvements_and_missing_keys_are_reported():
    old = _payload({"a:total": {"value": 10.0, "uncertainty": 0.1},
                    "b:total": {"value": 10.0, "uncertainty": 0.1}})
    new = _payload({"a:total": {"value": 5.0, "uncertainty": 0.1}})
    diff = baseline.compare(old, new)
    assert [d.key for d in diff.improvements] == ["a:total"]
    assert diff.missing == ["b:total"]
    assert diff.failed  # a vanished cell fails the gate


def test_ledger_drift_alone_is_flagged():
    old = _payload({}, {"kernel.sched/lazyfp/xsave": 100})
    new = _payload({}, {"kernel.sched/lazyfp/xsave": 101})
    diff = baseline.compare(old, new)
    assert diff.failed
    (drift,) = diff.ledger_regressions
    assert drift.path == "kernel.sched/lazyfp/xsave"
    assert drift.delta == 1


# ---------------------------------------------------------------------- #
# End to end: self-check passes, a perturbed cost table is caught
# ---------------------------------------------------------------------- #

def test_self_snapshot_shows_zero_regressions():
    """Acceptance: bench then check against the snapshot -> no diff."""
    snapshot = _collect_fast()
    fresh = _collect_fast()
    diff = baseline.compare(snapshot, fresh)
    assert not diff.failed
    assert not diff.regressions and not diff.ledger_regressions
    assert diff.compared == len(snapshot["values"]) > 0


def test_ledger_snapshot_is_deterministic_and_verified():
    a = baseline.ledger_snapshot("broadwell")
    b = baseline.ledger_snapshot("broadwell")
    assert a.paths() == b.paths()
    assert a.total() > 0
    # Coverage: the reference run must exercise every instrumented layer.
    layers = {path.split("/")[0] for path in a.paths()}
    assert {"kernel.entry", "kernel.handler", "kernel.exit", "kernel.sched",
            "jsengine", "hv.exit"} <= layers


def test_perturbed_pti_cost_is_flagged_with_mov_cr3_blame(monkeypatch):
    """Acceptance: inflate broadwell's CR3-swap cost; the gate must fail
    the PTI cell and blame kernel.*/pti/mov_cr3."""
    snapshot = _collect_fast()

    stock = real_get_cpu("broadwell")
    slower = dataclasses.replace(
        stock, costs=dataclasses.replace(stock.costs,
                                         swap_cr3=stock.costs.swap_cr3 * 3))

    def patched_get_cpu(key):
        return slower if key == "broadwell" else real_get_cpu(key)

    # Both resolution seams: study cells and the ledger reference run.
    monkeypatch.setattr("repro.core.study.get_cpu", patched_get_cpu)
    monkeypatch.setattr("repro.obs.baseline.get_cpu", patched_get_cpu)

    perturbed = _collect_fast()
    diff = baseline.compare(snapshot, perturbed)
    assert diff.failed
    pti_regressions = [d for d in diff.regressions if d.key.endswith(":pti")]
    assert pti_regressions, "the PTI cell must regress"
    assert any("pti/mov_cr3" in blame
               for reg in pti_regressions for blame in reg.blame)
    drifted = {d.path for d in diff.ledger_regressions}
    assert "kernel.entry/pti/mov_cr3" in drifted
    assert "kernel.exit/pti/mov_cr3" in drifted
    report = baseline.render_report(diff)
    assert "pti/mov_cr3" in report and "FAIL" in report

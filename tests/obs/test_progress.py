"""The live progress line: rate limiting, TTY gating, rendering."""

import io

from repro.obs.progress import ProgressLine


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TtyStringIO(io.StringIO):
    def isatty(self):
        return True


def _line(total=10, **kwargs):
    clock = FakeClock()
    stream = TtyStringIO()
    kwargs.setdefault("enabled", True)
    return ProgressLine(total, stream=stream, clock=clock, **kwargs), \
        stream, clock


def test_disabled_on_non_tty_by_default():
    stream = io.StringIO()  # isatty() -> False
    meter = ProgressLine(10, stream=stream)
    assert not meter.enabled
    meter.update(5)
    meter.close()
    assert stream.getvalue() == ""


def test_tty_enables_by_default():
    assert ProgressLine(10, stream=TtyStringIO()).enabled


def test_renders_count_percent_rate_and_eta():
    meter, stream, clock = _line(total=10)
    clock.advance(2.0)
    meter.update(4)
    out = stream.getvalue()
    assert "4/10" in out
    assert "40.0%" in out
    assert "2.0/s" in out
    assert "eta" in out and "3.0s" in out  # 6 left at 2/s


def test_rate_limited_between_updates():
    meter, stream, clock = _line(total=100, min_interval=0.5)
    clock.advance(0.1)
    meter.update(1)
    painted = stream.getvalue()
    clock.advance(0.1)
    meter.update(2)  # too soon: suppressed
    assert stream.getvalue() == painted
    clock.advance(1.0)
    meter.update(3)  # interval elapsed: repaints
    assert "3/100" in stream.getvalue()


def test_final_update_always_paints():
    meter, stream, clock = _line(total=5, min_interval=10.0)
    clock.advance(0.1)
    meter.update(1)
    clock.advance(0.1)
    meter.update(5)  # final: bypasses the rate limit
    assert "5/5" in stream.getvalue()


def test_updates_rewrite_one_line_and_close_ends_it():
    meter, stream, clock = _line(total=3)
    for done in (1, 2, 3):
        clock.advance(1.0)
        meter.update(done)
    meter.close()
    out = stream.getvalue()
    assert out.count("\r") == 3
    assert out.endswith("\n")


def test_close_without_updates_stays_silent():
    meter, stream, _ = _line(total=3)
    meter.close()
    assert stream.getvalue() == ""


def test_total_can_arrive_with_the_update():
    """fuzz_campaign reports (done, total) pairs; total lands lazily."""
    meter, stream, clock = _line(total=0)
    clock.advance(1.0)
    meter.update(2, 8)
    assert meter.total == 8
    assert "2/8" in stream.getvalue()

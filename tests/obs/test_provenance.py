"""Run manifests: what every exported artifact must carry."""

import json

from repro import __version__
from repro.core.study import Settings
from repro.cpu import get_cpu
from repro.mitigations import linux_default
from repro.obs.provenance import (
    SCHEMA_VERSION,
    build_manifest,
    config_to_dict,
    manifest_comment_lines,
    settings_to_dict,
    stamp_payload,
)


def test_build_manifest_fills_environment():
    manifest = build_manifest(command="export figure2", cpus=["zen3"])
    assert manifest.version == __version__
    assert manifest.schema_version == SCHEMA_VERSION
    assert manifest.created_at  # ISO timestamp
    assert manifest.python and manifest.platform
    assert manifest.cpus == ["zen3"]
    assert manifest.seed is None  # unknown context is explicit null


def test_seed_adopted_from_settings():
    manifest = build_manifest(command="c", settings=Settings(seed=99))
    assert manifest.seed == 99
    assert manifest.settings["iterations"] == Settings().iterations
    # An explicit seed wins over the settings seed.
    manifest = build_manifest(command="c", seed=5, settings=Settings(seed=99))
    assert manifest.seed == 5


def test_config_to_dict_serializes_enums():
    config = config_to_dict(linux_default(get_cpu("cascade_lake")))
    assert config["pti"] in (True, False)
    for value in config.values():  # everything must be JSON-ready
        json.dumps(value)


def test_settings_to_dict():
    d = settings_to_dict(Settings.fast())
    assert d["iterations"] == Settings.fast().iterations
    assert d["seed"] == Settings.fast().seed


def test_extra_fields_flatten_into_dict():
    manifest = build_manifest(command="c", note="hello", runs=3)
    data = manifest.to_dict()
    assert data["note"] == "hello"
    assert data["runs"] == 3
    assert "extra" not in data


def test_stamp_payload_envelope():
    manifest = build_manifest(command="c", cpus=["zen"])
    envelope = stamp_payload([{"x": 1}], manifest)
    assert set(envelope) == {"provenance", "results"}
    assert envelope["results"] == [{"x": 1}]
    json.dumps(envelope)  # must be fully serializable


def test_manifest_comment_lines():
    manifest = build_manifest(
        command="export", cpus=["zen"], seed=4,
        config={"pti": True})
    lines = manifest_comment_lines(manifest)
    assert all(line.startswith("#") for line in lines)
    joined = "\n".join(lines)
    assert "# seed: 4" in joined
    assert "# command: export" in joined
    assert "# config:" in joined
    assert f"# version: {__version__}" in joined


def test_fingerprint_inputs_cover_history_and_report_modules():
    """The run-history store and dashboard renderer are fingerprinted:
    editing either invalidates cached cells and marks new recordings."""
    from repro.obs.provenance import fingerprint_inputs
    paths = fingerprint_inputs()
    assert "obs/history.py" in paths
    assert "obs/report.py" in paths
    assert "cpu/engine.py" in paths
    assert paths == fingerprint_inputs()  # stable hashing order


def test_manifest_carries_code_fingerprint():
    from repro.obs.provenance import code_fingerprint
    manifest = build_manifest(command="bench")
    assert manifest.code_fingerprint == code_fingerprint()
    assert len(manifest.code_fingerprint) == 16
    assert manifest.to_dict()["code_fingerprint"] == code_fingerprint()

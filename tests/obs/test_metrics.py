"""Metrics registry: instrument semantics and the layer bridges."""

import json

import pytest

from repro.core.stats import Measurement
from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    c = Counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_function():
    g = Gauge("depth")
    g.set(3.5)
    assert g.value == 3.5
    g.set_function(lambda: 9.0)
    assert g.value == 9.0
    g.set(1.0)  # a plain set clears the function
    assert g.value == 1.0


def test_histogram_summary_stats():
    h = Histogram("lat")
    for v in (1, 10, 100, 1000):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 1111
    assert h.mean == pytest.approx(277.75)
    assert h.min == 1 and h.max == 1000
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) >= 1000
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_collect_shape():
    h = Histogram("lat")
    h.observe(50)
    data = h.collect()
    assert set(data) == {"count", "sum", "mean", "min", "max", "p50", "p99"}


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    a = reg.counter("x")
    assert reg.counter("x") is a
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert "x" in reg
    assert len(reg) == 1


def test_registry_names_and_collect_prefix():
    reg = MetricsRegistry()
    reg.counter("cpu.a").inc()
    reg.gauge("study.b").set(2)
    assert reg.names("cpu") == ["cpu.a"]
    assert reg.collect("cpu") == {"cpu.a": 1}
    parsed = json.loads(reg.to_json())
    assert parsed["study.b"] == 2


def test_merge_perf_counters_accumulates():
    reg = MetricsRegistry()
    m = Machine(get_cpu("broadwell"))
    m.execute(isa.work(10))
    reg.merge_perf_counters(m.counters)
    reg.merge_perf_counters(m.counters)
    assert reg.gauge("cpu.tsc").value == 2 * m.counters.tsc
    assert reg.gauge("cpu.inst_retired.any").value == 2


def test_record_measurement():
    reg = MetricsRegistry()
    reg.record_measurement("study.lebench", Measurement(12.0, 0.5, 30))
    assert reg.gauge("study.lebench.mean").value == 12.0
    assert reg.gauge("study.lebench.ci_half_width").value == 0.5
    assert reg.gauge("study.lebench.samples").value == 30


def test_state_dumps_every_instrument_losslessly():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.gauge("g").set(2.5)
    h = reg.histogram("h")
    h.observe(4)
    h.observe(40)
    state = reg.state()
    assert state["c"] == {"kind": "counter", "value": 3}
    assert state["g"] == {"kind": "gauge", "value": 2.5}
    dump = state["h"]
    assert dump["kind"] == "histogram"
    assert dump["count"] == 2 and dump["sum"] == 44
    assert dump["min"] == 4 and dump["max"] == 40
    assert sum(dump["bucket_counts"]) == 2
    json.dumps(state)  # transportable as-is


def test_merge_state_accumulates_counters_and_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("jobs").inc(2)
    a.gauge("cells").set(5.0)
    b.counter("jobs").inc(3)
    b.gauge("cells").set(7.0)
    a.merge_state(b.state())
    assert a.counter("jobs").value == 5
    assert a.gauge("cells").value == 12.0
    # merging into an empty registry creates the instruments
    fresh = MetricsRegistry()
    fresh.merge_state(a.state())
    assert fresh.counter("jobs").value == 5


def test_merge_state_folds_histograms_bucket_by_bucket():
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in (1, 10):
        a.histogram("lat").observe(v)
    for v in (100, 1000):
        b.histogram("lat").observe(v)
    a.merge_state(b.state())
    h = a.histogram("lat")
    assert h.count == 4
    assert h.sum == 1111
    assert h.min == 1 and h.max == 1000
    assert sum(h.bucket_counts) == 4


def test_merge_state_rejects_mismatched_bounds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", bounds=(1, 2, 3)).observe(1)
    b.histogram("lat", bounds=(10, 20)).observe(15)
    with pytest.raises(ValueError, match="bounds differ"):
        a.merge_state(b.state())


def test_merge_state_rejects_unknown_kind():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="unknown instrument kind"):
        reg.merge_state({"x": {"kind": "summary", "value": 1}})


def test_merge_state_round_trip_identity():
    """state() -> merge_state() into an empty registry reproduces collect()."""
    reg = MetricsRegistry()
    reg.counter("n").inc(7)
    reg.gauge("v").set(1.5)
    reg.histogram("d").observe(9)
    clone = MetricsRegistry()
    clone.merge_state(reg.state())
    assert clone.collect() == reg.collect()

"""Metrics registry: instrument semantics and the layer bridges."""

import json

import pytest

from repro.core.stats import Measurement
from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotonic():
    c = Counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_function():
    g = Gauge("depth")
    g.set(3.5)
    assert g.value == 3.5
    g.set_function(lambda: 9.0)
    assert g.value == 9.0
    g.set(1.0)  # a plain set clears the function
    assert g.value == 1.0


def test_histogram_summary_stats():
    h = Histogram("lat")
    for v in (1, 10, 100, 1000):
        h.observe(v)
    assert h.count == 4
    assert h.sum == 1111
    assert h.mean == pytest.approx(277.75)
    assert h.min == 1 and h.max == 1000
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) >= 1000
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_collect_shape():
    h = Histogram("lat")
    h.observe(50)
    data = h.collect()
    assert set(data) == {"count", "sum", "mean", "min", "max", "p50", "p99"}


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    a = reg.counter("x")
    assert reg.counter("x") is a
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert "x" in reg
    assert len(reg) == 1


def test_registry_names_and_collect_prefix():
    reg = MetricsRegistry()
    reg.counter("cpu.a").inc()
    reg.gauge("study.b").set(2)
    assert reg.names("cpu") == ["cpu.a"]
    assert reg.collect("cpu") == {"cpu.a": 1}
    parsed = json.loads(reg.to_json())
    assert parsed["study.b"] == 2


def test_merge_perf_counters_accumulates():
    reg = MetricsRegistry()
    m = Machine(get_cpu("broadwell"))
    m.execute(isa.work(10))
    reg.merge_perf_counters(m.counters)
    reg.merge_perf_counters(m.counters)
    assert reg.gauge("cpu.tsc").value == 2 * m.counters.tsc
    assert reg.gauge("cpu.inst_retired.any").value == 2


def test_record_measurement():
    reg = MetricsRegistry()
    reg.record_measurement("study.lebench", Measurement(12.0, 0.5, 30))
    assert reg.gauge("study.lebench.mean").value == 12.0
    assert reg.gauge("study.lebench.ci_half_width").value == 0.5
    assert reg.gauge("study.lebench.samples").value == 30

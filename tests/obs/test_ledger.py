"""Cycle-attribution ledger: taxonomy, invariant, merge, integration."""

import pytest

from repro.core.executor import StudyExecutor
from repro.core.study import Settings, figure2
from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.errors import LedgerInvariantError
from repro.jsengine import octane
from repro.kernel import HandlerProfile, Kernel
from repro.mitigations import MitigationConfig
from repro.mitigations.policy import linux_default
from repro.obs.ledger import (
    BASE,
    OTHER,
    CycleLedger,
    current_ledger,
    join_path,
    ledger_scope,
    split_path,
    use_ledger,
)


# ---------------------------------------------------------------------- #
# Unit: charging, tags, layers, splits
# ---------------------------------------------------------------------- #

def test_untagged_charge_lands_in_cpu_base_other():
    ledger = CycleLedger()
    ledger.charge(7)
    assert ledger.paths() == {"cpu/base/other": 7}


def test_tagged_charge_and_clear():
    ledger = CycleLedger()
    ledger.set_tag("pti", "mov_cr3")
    ledger.charge(10)
    ledger.clear_tag()
    ledger.charge(3)
    assert ledger.paths() == {"cpu/pti/mov_cr3": 10, "cpu/base/other": 3}


def test_layer_scopes_nest_and_restore():
    ledger = CycleLedger()
    with ledger.layer("kernel.entry"):
        ledger.charge(4)
        with ledger.layer("jsengine"):
            ledger.charge(5)
        assert ledger.current_layer == "kernel.entry"
    ledger.charge(1)
    assert ledger.paths() == {
        "kernel.entry/base/other": 4,
        "jsengine/base/other": 5,
        "cpu/base/other": 1,
    }


def test_pop_past_root_raises():
    with pytest.raises(LedgerInvariantError):
        CycleLedger().pop_layer()


def test_split_redirects_part_of_the_next_charge():
    ledger = CycleLedger()
    ledger.add_split(6, "ssbd", "stlf_block")
    ledger.charge(10)
    assert ledger.paths() == {"cpu/ssbd/stlf_block": 6, "cpu/base/other": 4}


def test_split_is_capped_to_the_charged_amount():
    ledger = CycleLedger()
    ledger.add_split(100, "ssbd", "stlf_block")
    ledger.charge(10)
    assert ledger.paths() == {"cpu/ssbd/stlf_block": 10}
    # Consumed: the next charge is unaffected.
    ledger.charge(5)
    assert ledger.paths()["cpu/base/other"] == 5


def test_rollups_and_mitigation_cycles():
    ledger = CycleLedger()
    with ledger.layer("kernel.entry"):
        ledger.set_tag("pti", "mov_cr3")
        ledger.charge(10)
        ledger.clear_tag()
        ledger.charge(2)
    ledger.charge(3)
    assert ledger.rollup("layer") == {"kernel.entry": 12, "cpu": 3}
    assert ledger.rollup("mitigation") == {"pti": 10, BASE: 5}
    assert ledger.rollup("primitive") == {"mov_cr3": 10, OTHER: 5}
    assert ledger.mitigation_cycles() == {"pti": 10}
    with pytest.raises(ValueError):
        ledger.rollup("nonsense")


def test_path_join_split_round_trip():
    key = ("kernel.entry", "pti", "mov_cr3")
    assert split_path(join_path(*key)) == key
    with pytest.raises(LedgerInvariantError):
        split_path("only/two")


# ---------------------------------------------------------------------- #
# Unit: invariant and merge
# ---------------------------------------------------------------------- #

def test_verify_passes_when_all_charges_route_through_counters():
    from repro.cpu.counters import PerfCounters
    ledger = CycleLedger()
    counters = PerfCounters(ledger=ledger)
    ledger.attach(counters)
    counters.add_cycles(25)
    counters.add_cycles(17)
    assert ledger.verify() == 42


def test_verify_catches_a_bypassing_charge_site():
    from repro.cpu.counters import PerfCounters
    ledger = CycleLedger()
    counters = PerfCounters(ledger=ledger)
    ledger.attach(counters)
    counters.add_cycles(10)
    counters.tsc += 3  # a charge site that dodged add_cycles
    with pytest.raises(LedgerInvariantError):
        ledger.verify()


def test_merge_state_folds_workers_and_keeps_the_invariant():
    worker = CycleLedger()
    worker.set_tag("pti", "mov_cr3")
    worker.charge(10)
    worker.clear_tag()
    worker._merged_expected = 0
    state = worker.state()
    state["expected"] = 10  # as a worker with an attached machine reports

    parent = CycleLedger()
    parent.charge(5)
    parent.merge_state(state)
    assert parent.paths() == {"cpu/base/other": 5, "cpu/pti/mov_cr3": 10}
    # Parent has no attached counters for its own 5 cycles, so expected
    # covers only the merged worker; drop the local charge to verify.
    merged_only = CycleLedger()
    merged_only.merge_state(state)
    assert merged_only.verify() == 10


def test_renderers_mention_totals_and_paths():
    ledger = CycleLedger()
    ledger.set_tag("mds", "verw")
    ledger.charge(9)
    tree = ledger.render_tree()
    table = ledger.render_markdown()
    assert "9" in tree and "mds/verw" in tree
    assert "| cpu | mds | verw | 9 |" in table
    assert "100.00%" in table


def test_ambient_ledger_install_and_restore():
    assert current_ledger() is None
    ledger = CycleLedger()
    with use_ledger(ledger):
        assert current_ledger() is ledger
        with use_ledger(None):
            assert current_ledger() is None
        assert current_ledger() is ledger
    assert current_ledger() is None


def test_ledger_scope_is_free_without_a_ledger():
    with ledger_scope(None, "kernel.entry"):
        pass  # no-op scope: nothing to assert beyond not crashing
    ledger = CycleLedger()
    with ledger_scope(ledger, "kernel.entry"):
        ledger.charge(1)
    assert ledger.paths() == {"kernel.entry/base/other": 1}


# ---------------------------------------------------------------------- #
# Integration: machines, kernel, JS engine
# ---------------------------------------------------------------------- #

SYSCALL = HandlerProfile("test_call", work_cycles=400, loads=6, stores=4,
                         indirect_branches=2)


def test_machine_adopts_ambient_ledger_and_sums_to_tsc(broadwell):
    ledger = CycleLedger()
    with use_ledger(ledger):
        machine = Machine(broadwell, seed=0)
        machine.run([isa.work(100), isa.load(0x1000), isa.store(0x2000)])
    assert ledger.verify() == machine.read_tsc()


def test_kernel_syscall_files_pti_under_entry_and_exit(broadwell):
    """The acceptance path: KPTI's CR3 swaps must appear as
    kernel.entry/pti/mov_cr3 and kernel.exit/pti/mov_cr3 on a
    Meltdown-vulnerable part running the Linux default config."""
    config = linux_default(broadwell)
    assert config.pti, "broadwell's default config must enable KPTI"
    ledger = CycleLedger()
    with use_ledger(ledger):
        machine = Machine(broadwell, seed=0)
        kernel = Kernel(machine, config)
        kernel.syscall(SYSCALL)
    paths = ledger.paths()
    assert paths.get("kernel.entry/pti/mov_cr3", 0) > 0
    assert paths.get("kernel.exit/pti/mov_cr3", 0) > 0
    assert ledger.verify() == machine.read_tsc()


def test_untagged_syscall_work_lands_in_handler_base(broadwell):
    ledger = CycleLedger()
    with use_ledger(ledger):
        machine = Machine(broadwell, seed=0)
        kernel = Kernel(machine, linux_default(broadwell))
        kernel.syscall(SYSCALL)
    assert ledger.paths().get("kernel.handler/base/work", 0) > 0


def test_js_hardening_is_attributed_to_spectre_v1_primitives(broadwell):
    config = MitigationConfig(js_index_masking=True, js_object_guards=True,
                              js_other=True)
    ledger = CycleLedger()
    with use_ledger(ledger):
        machine = Machine(broadwell, seed=0)
        runner = octane.OctaneRunner(machine, config)
        runner.measure(octane.get_workload("richards"), iterations=3,
                       warmup=1)
    paths = ledger.paths()
    assert paths.get("jsengine/spectre_v1/index_mask", 0) > 0
    assert paths.get("jsengine/spectre_v1/object_guard", 0) > 0
    assert paths.get("jsengine/spectre_v1/pointer_poison", 0) > 0
    assert ledger.verify() == machine.read_tsc()


def test_ledger_off_by_default_and_harmless(broadwell):
    machine = Machine(broadwell, seed=0)
    assert machine.ledger is None
    machine.run([isa.work(10)])  # no ledger: plain TSC accounting
    assert machine.read_tsc() > 0


# ---------------------------------------------------------------------- #
# Integration: study executor, serial vs parallel
# ---------------------------------------------------------------------- #

def _figure2_ledger(jobs: int):
    ledger = CycleLedger()
    with use_ledger(ledger):
        results = figure2([get_cpu("broadwell")], Settings.fast(),
                          executor=StudyExecutor(jobs=jobs, cache_dir=None))
    assert results
    return ledger


def test_study_cells_keep_the_invariant_serial_and_parallel():
    """Acceptance: the invariant holds for every study cell on the serial
    path and under ``--jobs N``, and the merged attribution matches."""
    serial = _figure2_ledger(jobs=1)
    serial.verify()
    parallel = _figure2_ledger(jobs=2)
    parallel.verify()
    assert serial.paths() == parallel.paths()
    assert serial.total() == parallel.total() > 0

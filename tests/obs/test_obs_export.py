"""Exporters: Chrome trace-event JSON schema and collapsed stacks."""

import json

from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.obs.export import (
    to_chrome_trace,
    to_chrome_trace_json,
    to_collapsed_stacks,
    write_chrome_trace,
    write_flamegraph,
)
from repro.obs.provenance import build_manifest
from repro.obs.spans import SpanTracer, use_tracer


def traced_run():
    tracer = SpanTracer()
    with use_tracer(tracer):
        m = Machine(get_cpu("broadwell"))
        with tracer.span("outer", cpu="broadwell"):
            m.execute(isa.work(100))
            with tracer.span("inner"):
                m.execute(isa.work(30))
            tracer.instant("tick", n=1)
    return tracer


def test_chrome_trace_schema():
    trace = to_chrome_trace(traced_run())
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = trace["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {m["name"] for m in metadata} == {"process_name", "thread_name"}
    assert len(spans) == 2 and len(instants) == 1
    for e in spans:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                          "args"}
        assert e["ts"] >= 0 and e["dur"] >= 0
    outer = next(e for e in spans if e["name"] == "outer")
    assert outer["dur"] == 130
    assert outer["args"]["cpu"] == "broadwell"
    assert outer["args"]["self_cycles"] == 100
    inner = next(e for e in spans if e["name"] == "inner")
    assert inner["ts"] == 100 and inner["dur"] == 30
    (instant,) = instants
    assert instant["s"] == "g" and instant["args"] == {"n": 1}


def test_chrome_trace_other_data():
    trace = to_chrome_trace(traced_run())
    other = trace["otherData"]
    assert other["total_cycles"] == 130
    assert other["attributed_cycles"] == 130
    assert other["coverage"] == 1.0
    assert "span.outer.cycles" in other["metrics"]


def test_chrome_trace_embeds_provenance():
    manifest = build_manifest(command="test", cpus=["broadwell"], seed=3)
    trace = to_chrome_trace(traced_run(), provenance=manifest)
    prov = trace["otherData"]["provenance"]
    assert prov["seed"] == 3
    assert prov["cpus"] == ["broadwell"]
    assert prov["version"]


def test_chrome_trace_json_round_trips():
    text = to_chrome_trace_json(traced_run())
    assert json.loads(text)["traceEvents"]


def test_write_chrome_trace_and_flamegraph(tmp_path):
    tracer = traced_run()
    trace_path = tmp_path / "t.json"
    flame_path = tmp_path / "t.folded"
    write_chrome_trace(str(trace_path), tracer)
    write_flamegraph(str(flame_path), tracer)
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert "outer;inner 30" in flame_path.read_text()


def test_collapsed_stacks_merge_and_weight():
    tracer = SpanTracer()
    with use_tracer(tracer):
        m = Machine(get_cpu("broadwell"))
        for _ in range(2):
            with tracer.span("a"):
                m.execute(isa.work(10))
                with tracer.span("b"):
                    m.execute(isa.work(5))
    lines = to_collapsed_stacks(tracer).splitlines()
    assert "a 20" in lines        # two identical stacks merged
    assert "a;b 10" in lines


def test_collapsed_stacks_empty_tracer():
    assert to_collapsed_stacks(SpanTracer()) == ""


def test_chrome_trace_carries_ledger_counter_tracks():
    from repro.obs.ledger import CycleLedger
    tracer = SpanTracer()
    with use_tracer(tracer):
        machine = Machine(get_cpu("broadwell"), seed=0)
        with tracer.span("cpu.block"):
            machine.run([isa.work(50)])
    ledger = CycleLedger()
    ledger.set_tag("pti", "mov_cr3")
    ledger.charge(30)
    ledger.clear_tag()
    ledger.charge(12)

    trace = to_chrome_trace(tracer, ledger=ledger)
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    by_name = {e["name"]: e["args"]["cycles"] for e in counters}
    assert by_name == {"cycles.pti": 30, "cycles.base": 12}
    assert trace["otherData"]["ledger"]["entries"] == {
        "cpu/base/other": 12, "cpu/pti/mov_cr3": 30}


def test_counter_tracks_one_per_mitigation_sorted_at_total():
    """Multi-mitigation ledgers export one "C" track per mitigation, all
    sampled at the final ledger total (the ledger is cumulative), in
    deterministic name order."""
    from repro.obs.export import TRACE_PID, TRACE_TID, _ledger_counter_events
    from repro.obs.ledger import CycleLedger
    ledger = CycleLedger()
    for mitigation, primitive, cycles in (
            ("pti", "mov_cr3", 400),
            ("pti", "tlb_flush", 100),
            ("retpoline", "thunk", 60),
            ("ssbd", "stlf_block", 25)):
        ledger.set_tag(mitigation, primitive)
        ledger.charge(cycles)
    ledger.clear_tag()
    ledger.charge(15)  # untagged -> base

    events = _ledger_counter_events(ledger)
    assert [e["name"] for e in events] == [
        "cycles.base", "cycles.pti", "cycles.retpoline", "cycles.ssbd"]
    assert all(e["ph"] == "C" for e in events)
    assert all(e["ts"] == ledger.total() == 600 for e in events)
    assert all(e["pid"] == TRACE_PID and e["tid"] == TRACE_TID
               for e in events)
    by_name = {e["name"]: e["args"]["cycles"] for e in events}
    assert by_name["cycles.pti"] == 500       # both primitives fold in
    assert sum(by_name.values()) == ledger.total()


def test_counter_tracks_survive_json_round_trip():
    import json as _json
    from repro.obs.ledger import CycleLedger
    tracer = SpanTracer()
    with use_tracer(tracer):
        machine = Machine(get_cpu("broadwell"), seed=0)
        with tracer.span("cpu.block"):
            machine.run([isa.work(10)])
    ledger = CycleLedger()
    ledger.set_tag("ibpb", "barrier")
    ledger.charge(75)
    text = to_chrome_trace_json(tracer, ledger=ledger)
    trace = _json.loads(text)
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counters == [{"name": "cycles.ibpb", "ph": "C", "ts": 75,
                         "pid": counters[0]["pid"],
                         "tid": counters[0]["tid"],
                         "args": {"cycles": 75}}]


def test_no_counter_tracks_without_ledger():
    tracer = SpanTracer()
    with use_tracer(tracer):
        machine = Machine(get_cpu("broadwell"), seed=0)
        with tracer.span("cpu.block"):
            machine.run([isa.work(10)])
    trace = to_chrome_trace(tracer)
    assert not [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert "ledger" not in trace["otherData"]

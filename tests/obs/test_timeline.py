"""Microarchitectural event timeline: recorder, ring bound, tee with the
leakage tracer, engine-mode composition, worker transport, and the
first-divergence differ."""

import pytest

from repro.core.executor import CellSpec, StudyExecutor
from repro.core.probe import _policy_machine
from repro.core.study import Settings
from repro.cpu import Machine, engine, get_cpu
from repro.fuzz import generate_program
from repro.obs import (
    EventTimeline,
    LeakageTracer,
    current_timeline,
    first_divergence,
    install_timeline,
    render_divergence,
    use_leakage,
    use_timeline,
)
from repro.obs.timeline import TeeObserver, TimelineEvent


def _record_program(engine_mode=engine.ENGINE_INTERP, capacity=None,
                    repeats=3, program_seed=7, policy="default",
                    cpu_key="broadwell"):
    """Run a generated program under a fresh timeline; returns it."""
    program = generate_program(program_seed)
    with engine.use_engine(engine_mode):
        timeline = EventTimeline(capacity=capacity)
        with use_timeline(timeline):
            machine, retpoline = _policy_machine(get_cpu(cpu_key), policy, 11)
            program.install(machine, retpoline=retpoline)
            stream = program.instructions(retpoline=retpoline)
            for _ in range(repeats):
                machine.run(stream)
    return timeline


# --------------------------------------------------------------------------- #
# Recorder
# --------------------------------------------------------------------------- #

class TestRecorder:
    def test_machines_adopt_the_ambient_timeline(self):
        timeline = EventTimeline()
        with use_timeline(timeline):
            machine = Machine(get_cpu("broadwell"))
        assert machine.timeline is timeline
        assert current_timeline() is None
        assert Machine(get_cpu("broadwell")).timeline is None

    def test_records_events_across_structures(self):
        timeline = _record_program()
        assert timeline.total > 0
        structures = set(timeline.structure_counts())
        # A generated program must at least touch the memory hierarchy.
        assert "cache" in structures
        assert "tlb" in structures

    def test_events_carry_machine_stamps(self):
        timeline = _record_program()
        events = timeline.events
        assert all(isinstance(e, TimelineEvent) for e in events)
        assert all(e.tsc >= 0 and e.instr >= 0 for e in events)
        # tsc is monotone within the recording (each run continues the
        # same machine clock).
        tscs = [e.tsc for e in events]
        assert tscs == sorted(tscs)
        # seq is dense from 0 when nothing was dropped.
        assert [e.seq for e in events] == list(range(len(events)))

    def test_counts_match_recorded_events(self):
        timeline = _record_program()
        assert sum(timeline.counts.values()) == timeline.total
        per_structure = timeline.structure_counts()
        assert sum(per_structure.values()) == timeline.total

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTimeline(capacity=0)

    def test_stats_and_summary_agree(self):
        timeline = _record_program()
        stats = timeline.stats()
        assert stats["total"] == timeline.total
        assert stats["held"] == len(timeline.events)
        assert stats["digest"] == timeline.digest()
        assert str(timeline.total) in timeline.summary()


# --------------------------------------------------------------------------- #
# Ring bound
# --------------------------------------------------------------------------- #

class TestRingBound:
    def test_bounded_ring_drops_oldest_and_keeps_invariant(self):
        capacity = 16
        timeline = _record_program(capacity=capacity)
        assert timeline.total > capacity  # the program overflows the ring
        assert len(timeline.events) == capacity
        assert timeline.dropped == timeline.total - capacity
        # The survivors are the newest events.
        assert timeline.events[0].seq == timeline.dropped
        assert timeline.events[-1].seq == timeline.total - 1

    def test_unbounded_holds_everything(self):
        timeline = _record_program(capacity=None)
        assert timeline.dropped == 0
        assert len(timeline.events) == timeline.total


# --------------------------------------------------------------------------- #
# Composition with the leakage tracer (shared observer slots)
# --------------------------------------------------------------------------- #

class TestTee:
    def test_timeline_tees_behind_an_attached_leakage_tracer(self):
        timeline = EventTimeline()
        with use_timeline(timeline):
            machine = Machine(get_cpu("broadwell"))
            tracer = LeakageTracer()
            machine.attach_leakage(tracer)
        assert isinstance(machine.caches.observer, TeeObserver)
        assert machine.caches.observer.first is tracer
        assert machine.caches.observer.timeline is timeline

    def test_leakage_first_then_timeline(self):
        with use_leakage(LeakageTracer()) as tracer:
            timeline = EventTimeline()
            with use_timeline(timeline):
                machine = Machine(get_cpu("broadwell"))
        assert machine.leakage is tracer
        assert machine.timeline is timeline
        assert isinstance(machine.caches.observer, TeeObserver)

    def test_both_observers_see_the_same_traffic(self):
        """Events recorded through the tee match a timeline-only run."""
        program = generate_program(5)

        def run(with_leakage):
            timeline = EventTimeline()
            with use_timeline(timeline):
                machine, retpoline = _policy_machine(
                    get_cpu("broadwell"), "default", 11)
                if with_leakage:
                    machine.attach_leakage(LeakageTracer())
                program.install(machine, retpoline=retpoline)
                machine.run(program.instructions(retpoline=retpoline))
            return timeline

        solo = run(with_leakage=False)
        teed = run(with_leakage=True)
        assert solo.total == teed.total
        assert [e.signature() for e in solo.events] \
            == [e.signature() for e in teed.events]

    def test_cond_predictor_reports_through_timeline_only(self):
        """The conditional predictor is a timeline-only hook site — the
        leakage tracer never claims its slot."""
        timeline = EventTimeline()
        with use_timeline(timeline):
            machine = Machine(get_cpu("broadwell"))
            machine.attach_leakage(LeakageTracer())
        assert machine.cond_predictor.observer is timeline


# --------------------------------------------------------------------------- #
# Engine-mode composition
# --------------------------------------------------------------------------- #

class TestEngineComposition:
    def test_block_engine_records_the_same_stream_as_interp(self):
        """With a timeline attached the block engine replays interpreted
        (bit-identical by its differential contract), so --engine=block
        yields the interpreter's event stream exactly."""
        interp = _record_program(engine.ENGINE_INTERP)
        block = _record_program(engine.ENGINE_BLOCK)
        assert interp.total == block.total
        assert [e.signature() for e in interp.events] \
            == [e.signature() for e in block.events]
        assert first_divergence(interp, block) is None

    def test_attached_timeline_forces_interp_fallback(self):
        """Machine.run skips the engine when a timeline is attached, and
        even a direct engine call replays interpreted."""
        program = generate_program(7)
        with engine.use_engine(engine.ENGINE_BLOCK):
            timeline = EventTimeline()
            with use_timeline(timeline):
                machine, retpoline = _policy_machine(
                    get_cpu("broadwell"), "default", 11)
                program.install(machine, retpoline=retpoline)
                stream = list(program.instructions(retpoline=retpoline))
                assert machine.engine is not None
                engine.STATS.reset()
                machine.engine.run(stream)
        assert engine.STATS.interp_fallbacks == 1


# --------------------------------------------------------------------------- #
# Worker transport (state/merge_state + the parallel executor)
# --------------------------------------------------------------------------- #

class TestWorkerTransport:
    def test_state_merge_round_trips(self):
        source = _record_program()
        sink = EventTimeline(capacity=None)
        sink.merge_state(source.state())
        assert sink.total == source.total
        assert sink.counts == source.counts
        assert [e.signature() for e in sink.events] \
            == [e.signature() for e in source.events]

    def test_merge_respects_the_ring_bound(self):
        source = _record_program()
        assert source.total > 8
        sink = EventTimeline(capacity=8)
        sink.merge_state(source.state())
        assert len(sink.events) == 8
        assert sink.total == source.total
        assert sink.dropped == source.total - 8

    def test_parallel_executor_ships_worker_timelines_home(self):
        settings = Settings.fast()
        specs = [CellSpec("vm_lebench", cpu, "vm_lebench", settings)
                 for cpu in ("zen", "zen2", "broadwell", "skylake_client")]
        timeline = EventTimeline(capacity=None)
        with use_timeline(timeline):
            StudyExecutor(jobs=2).run(specs)
        assert timeline.total > 0
        assert sum(timeline.counts.values()) == timeline.total
        assert timeline.total == len(timeline.events) + timeline.dropped

    def test_parallel_counts_match_serial(self):
        settings = Settings.fast()
        specs = [CellSpec("vm_lebench", cpu, "vm_lebench", settings)
                 for cpu in ("zen", "zen2", "broadwell", "skylake_client")]

        def sweep(jobs):
            timeline = EventTimeline(capacity=None)
            with use_timeline(timeline):
                StudyExecutor(jobs=jobs).run(specs)
            return timeline

        serial = sweep(1)
        parallel = sweep(2)
        # Merge order across cells is completion-order, so only the
        # aggregate view is order-free — and it must match exactly.
        assert parallel.total == serial.total
        assert parallel.counts == serial.counts


# --------------------------------------------------------------------------- #
# First divergence
# --------------------------------------------------------------------------- #

def _skewed(timeline, at, delta=1):
    """Copy of a timeline's events with tsc skewed from index ``at``."""
    events = []
    for i, e in enumerate(timeline.events):
        tsc = e.tsc + (delta if i >= at else 0)
        events.append(TimelineEvent(seq=e.seq, structure=e.structure,
                                    action=e.action, key=e.key, tsc=tsc,
                                    mode=e.mode, instr=e.instr))
    return events


class TestFirstDivergence:
    def test_identical_streams_have_no_divergence(self):
        a = _record_program()
        b = _record_program()
        assert first_divergence(a, b) is None

    def test_pinpoints_the_first_skewed_event(self):
        base = _record_program()
        assert base.total >= 10
        skewed = _skewed(base, at=7)
        div = first_divergence(base, skewed)
        assert div is not None
        assert div.index == 7
        assert div.event_a.tsc + 1 == div.event_b.tsc
        assert div.structure == base.events[7].structure
        assert div.instr == base.events[7].instr

    def test_length_mismatch_diverges_at_the_shorter_end(self):
        base = _record_program()
        truncated = list(base.events)[:-3]
        div = first_divergence(base, truncated)
        assert div is not None
        assert div.index == len(truncated)
        assert div.event_b is None  # that side's stream ended

    def test_window_and_context(self):
        base = _record_program()
        skewed = _skewed(base, at=9)
        div = first_divergence(base, skewed, window=3)
        assert len(div.window_a) <= 7  # 3 before + the event + 3 after
        assert div.window_a[0].seq == 6
        assert div.counts  # common-prefix per-path counts
        assert all(count > 0 for count in div.counts.values())
        # last_seen holds the final pre-divergence event per structure.
        for structure, event in div.last_seen.items():
            assert event.structure == structure
            assert event.seq < div.index

    def test_render_marks_the_divergent_event(self):
        base = _record_program()
        skewed = _skewed(base, at=5)
        div = first_divergence(base, skewed)
        text = render_divergence(div, label_a="left", label_b="right")
        assert f"first divergence at event #{div.index}" in text
        assert "left" in text and "right" in text
        assert ">" in text  # the in-window marker

    def test_to_dict_is_json_shaped(self):
        import json
        base = _record_program()
        div = first_divergence(base, _skewed(base, at=4))
        payload = div.to_dict()
        json.dumps(payload)  # fully serializable
        assert payload["index"] == 4
        assert payload["structure"] == div.structure
        assert payload["instr"] == div.instr


# --------------------------------------------------------------------------- #
# Ambient install
# --------------------------------------------------------------------------- #

def test_install_returns_previous():
    timeline = EventTimeline()
    assert install_timeline(timeline) is None
    assert install_timeline(None) is timeline
    assert current_timeline() is None

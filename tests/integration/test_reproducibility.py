"""Bit-for-bit reproducibility: rerunning any experiment with the same
seeds produces identical results — the property EXPERIMENTS.md's numbers
rely on."""

import json

import pytest

from repro.core import export, study
from repro.core.probe import speculation_matrix
from repro.core.study import Settings
from repro.cpu import Machine, get_cpu
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads import lebench

SETTINGS = Settings.fast()


def test_machine_streams_are_identical():
    from repro.cpu import isa
    cpu = get_cpu("cascade_lake")
    def run():
        machine = Machine(cpu, seed=9)
        machine.msr.set_ibrs(True)
        return [machine.execute(isa.syscall_instr()) for _ in range(100)]
    assert run() == run()  # includes the seeded eIBRS scrub schedule


def test_lebench_suite_is_deterministic():
    cpu = get_cpu("broadwell")
    a = lebench.run_suite(Machine(cpu, seed=3), linux_default(cpu),
                          iterations=8, warmup=2)
    b = lebench.run_suite(Machine(cpu, seed=3), linux_default(cpu),
                          iterations=8, warmup=2)
    assert a == b


def _stable_parts(text):
    """Everything in an export envelope that must be bit-stable: the
    results, and the provenance minus the wall-clock fields."""
    payload = json.loads(text)
    provenance = dict(payload["provenance"])
    provenance.pop("created_at")
    provenance.pop("wall_time_s")
    return payload["results"], provenance


def test_figure2_export_is_stable_across_runs():
    cpus = [get_cpu("zen2")]
    first = export.attributions_to_json(study.figure2(cpus, SETTINGS))
    second = export.attributions_to_json(study.figure2(cpus, SETTINGS))
    assert _stable_parts(first) == _stable_parts(second)


def test_figure5_export_is_stable_across_runs():
    cpus = [get_cpu("zen3")]
    first = export.paired_to_json(study.figure5(cpus, settings=SETTINGS))
    second = export.paired_to_json(study.figure5(cpus, settings=SETTINGS))
    assert _stable_parts(first) == _stable_parts(second)


def test_speculation_matrices_are_stable():
    cpus = (get_cpu("cascade_lake"), get_cpu("zen3"))
    assert speculation_matrix(cpus, ibrs=True) == \
        speculation_matrix(cpus, ibrs=True)


def test_different_seeds_differ_only_in_noise():
    """Changing the seed moves measurements within the noise band but
    never changes behavioural outcomes."""
    cpu = get_cpu("broadwell")
    results = [study.figure2([cpu], Settings(iterations=8, warmup=2,
                                             max_samples=20, rel_tol=0.01,
                                             seed=s))[0]
               for s in (1, 2)]
    a, b = (r.total_overhead_percent for r in results)
    assert a == pytest.approx(b, abs=4.0)
    assert a != b  # noise genuinely differs


def test_noise_seed_does_not_affect_attack_outcomes():
    from repro.mitigations.meltdown import attempt_meltdown
    for seed in (0, 1, 42):
        machine = Machine(get_cpu("broadwell"), seed=seed)
        assert attempt_meltdown(machine, 0x2A) == 0x2A

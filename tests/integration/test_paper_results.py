"""Acceptance tests: the paper's headline findings must hold in shape.

These are the reproduction criteria from DESIGN.md — not absolute-number
matches (our substrate is a simulator), but who wins, by roughly what
factor, and where the crossovers fall.
"""

import numpy as np
import pytest

from repro.cpu import CPU_ORDER, Machine, all_cpus, get_cpu
from repro.core import study
from repro.core.study import Settings
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads import lebench
from repro.workloads.parsec import SWAPTIONS, run_workload


SETTINGS = Settings(iterations=14, warmup=4, max_samples=48, rel_tol=0.004)


def lebench_overhead(cpu_key):
    cpu = get_cpu(cpu_key)
    off = lebench.run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                            iterations=12, warmup=3)
    on = lebench.run_suite(Machine(cpu, seed=1), linux_default(cpu),
                           iterations=12, warmup=3)
    return float(np.exp(np.mean([np.log(on[n] / off[n]) for n in off]))) - 1


class TestFigure2Shape:
    """'Overheads on LEBench have gone from over 30% on older Intel CPUs
    to under 3% on the latest models' (section 4.6)."""

    def test_old_intel_over_30_percent(self):
        assert lebench_overhead("broadwell") > 0.30
        assert lebench_overhead("skylake_client") > 0.25

    def test_new_intel_under_5_percent(self):
        assert lebench_overhead("ice_lake_client") < 0.05
        assert lebench_overhead("ice_lake_server") < 0.05

    def test_cascade_lake_in_between(self):
        cl = lebench_overhead("cascade_lake")
        assert lebench_overhead("ice_lake_server") < cl < \
            lebench_overhead("broadwell")

    def test_amd_never_above_10_percent(self):
        for key in ("zen", "zen2", "zen3"):
            assert lebench_overhead(key) < 0.10, key

    def test_order_of_magnitude_decline(self):
        """The '10x decline' headline."""
        assert lebench_overhead("broadwell") > \
            8 * lebench_overhead("ice_lake_server")

    def test_pti_and_mds_dominate_old_intel(self):
        (result,) = study.figure2([get_cpu("broadwell")], SETTINGS)
        contributions = result.as_dict()
        top_two = sorted(contributions, key=contributions.get)[-2:]
        assert set(top_two) == {"pti", "mds"}

    def test_spectre_v1_invisible_on_lebench(self):
        """'Software mitigations for [V1] had no measurable impact on
        LEBench performance' (section 4.6)."""
        (result,) = study.figure2([get_cpu("broadwell")], SETTINGS)
        v1 = result.contribution_for("spectre_v1")
        assert v1 is None or abs(v1.percent) < 2.0


class TestFigure3Shape:
    """'Overhead on Octane 2 has remained in the range of 15% to 25%'."""

    @pytest.mark.parametrize("key", CPU_ORDER)
    def test_every_cpu_in_the_15_to_25_band(self, key):
        (result,) = study.figure3([get_cpu(key)], SETTINGS)
        assert 13.0 < result.total_overhead_percent < 27.0

    def test_js_mitigations_are_about_half_the_overhead(self):
        (result,) = study.figure3([get_cpu("cascade_lake")], SETTINGS)
        js = sum(c.percent for c in result.contributions
                 if c.knob.startswith("js_"))
        assert 0.3 < js / result.total_overhead_percent < 0.8

    def test_masking_about_4_object_about_6_percent(self):
        (result,) = study.figure3([get_cpu("ice_lake_server")], SETTINGS)
        masking = result.contribution_for("js_index_masking").percent
        guards = result.contribution_for("js_object_guards").percent
        assert 2.0 < masking < 6.0
        assert 4.0 < guards < 9.0
        assert guards > masking


class TestFigure5Shape:
    """SSBD: up to ~34%, trending worse, swaptions worst."""

    def test_peak_at_zen3_swaptions(self):
        cpu = get_cpu("zen3")
        base = run_workload(Machine(cpu, seed=1), linux_default(cpu),
                            SWAPTIONS, iterations=16, warmup=4)
        ssbd = run_workload(Machine(cpu, seed=1), linux_default(cpu),
                            SWAPTIONS, force_ssbd=True, iterations=16,
                            warmup=4)
        assert 0.28 < ssbd / base - 1 < 0.40

    def test_every_cpu_pays_something(self):
        results = study.figure5(all_cpus(),
                                workloads=[SWAPTIONS], settings=SETTINGS)
        for r in results:
            assert r.overhead_percent > 5.0, r.cpu


class TestQuietWorkloads:
    """Sections 4.4/4.5: VMs and compute workloads show ~no overhead."""

    def test_parsec_default_under_2_percent(self):
        for r in study.parsec_default_overheads(
                [get_cpu("broadwell"), get_cpu("zen3")], settings=SETTINGS):
            assert abs(r.overhead_percent) < 2.0

    def test_vm_lebench_within_3_percent(self):
        for r in study.vm_lebench_overheads(
                [get_cpu("broadwell"), get_cpu("cascade_lake")], SETTINGS):
            assert abs(r.overhead_percent) < 3.0

    def test_lfs_median_under_2_percent(self):
        results = study.lfs_overheads(
            [get_cpu("broadwell"), get_cpu("cascade_lake"), get_cpu("zen")],
            settings=SETTINGS)
        values = sorted(r.overhead_percent for r in results)
        assert values[len(values) // 2] < 2.0


class TestSummaryFindings:
    """Section 8's three answers, as testable claims."""

    def test_remaining_overhead_is_v1_v2_ssbd_on_new_parts(self):
        (result,) = study.figure2([get_cpu("ice_lake_server")], SETTINGS)
        named = {c.knob for c in result.contributions if c.percent > 1.0}
        assert named <= {"spectre_v2", "ssbd", "lazyfp"}

    def test_replacing_old_cpus_beats_any_single_knob(self):
        """'A simple way to reduce overheads significantly ... is to
        replace older CPUs with newer models.'"""
        old = lebench_overhead("broadwell")
        new = lebench_overhead("ice_lake_server")
        (result,) = study.figure2([get_cpu("broadwell")], SETTINGS)
        best_knob = max(c.percent for c in result.contributions)
        assert (old - new) * 100 > best_knob

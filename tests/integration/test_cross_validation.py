"""Cross-validation: the microbenchmarks must *predict* the end-to-end
results.

The paper's analytical chain is: Tables 3-8 price the primitives, the
boundary-crossing counts explain the workload results.  If our model is
coherent, the same arithmetic must hold internally — e.g. the PTI
contribution Figure 2 attributes to Broadwell must equal (2 x Table 3's
swap-cr3 cost x syscalls per op) within measurement noise.  These tests
close that loop.
"""

import numpy as np
import pytest

from repro.core import microbench
from repro.cpu import Machine, get_cpu
from repro.kernel import GETPID, HandlerProfile, Kernel
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads import lebench


def steady(kernel, profile, n=10):
    for _ in range(4):
        kernel.syscall(profile)
    return sum(kernel.syscall(profile) for _ in range(n)) / n


class TestPrimitiveComposition:
    """Per-syscall mitigation cost == sum of its primitives' costs."""

    @pytest.mark.parametrize("key", ["broadwell", "skylake_client"])
    def test_pti_delta_equals_two_swap_cr3(self, key):
        cpu = get_cpu(key)
        measured_cr3 = microbench.table3_row(cpu, 300).swap_cr3
        bare = steady(Kernel(Machine(cpu), MitigationConfig.all_off()), GETPID)
        pti = steady(Kernel(Machine(cpu), MitigationConfig(pti=True)), GETPID)
        assert pti - bare == pytest.approx(2 * measured_cr3, abs=3)

    @pytest.mark.parametrize("key", ["broadwell", "cascade_lake"])
    def test_mds_delta_equals_one_verw(self, key):
        cpu = get_cpu(key)
        measured_verw = microbench.table4_value(cpu, 300)
        bare = steady(Kernel(Machine(cpu), MitigationConfig.all_off()), GETPID)
        mds = steady(Kernel(Machine(cpu), MitigationConfig(mds_verw=True)),
                     GETPID)
        assert mds - bare == pytest.approx(measured_verw, abs=3)

    def test_v1_delta_equals_one_lfence(self):
        cpu = get_cpu("zen")  # the part with the priciest lfence
        measured = microbench.table8_value(cpu, 300)
        bare = steady(Kernel(Machine(cpu), MitigationConfig.all_off()), GETPID)
        hardened = steady(Kernel(Machine(cpu),
                                 MitigationConfig(v1_lfence_swapgs=True)),
                          GETPID)
        assert hardened - bare == pytest.approx(measured, abs=3)

    def test_full_stack_composes_additively_on_broadwell(self):
        """The whole default entry/exit tax equals the sum of its parts
        (primitives don't interact on this path)."""
        cpu = get_cpu("broadwell")
        profile = HandlerProfile("medium", work_cycles=1000, loads=8,
                                 stores=4, indirect_branches=4)
        bare = steady(Kernel(Machine(cpu), MitigationConfig.all_off()),
                      profile)
        full = steady(Kernel(Machine(cpu), linux_default(cpu)), profile)
        expected_delta = (
            2 * cpu.costs.swap_cr3            # PTI
            + cpu.costs.verw_clear            # MDS
            + cpu.costs.lfence                # V1 swapgs fence
            + 4 * cpu.costs.generic_retpoline_extra  # V2 on 4 branches
        )
        assert full - bare == pytest.approx(expected_delta, abs=5)


class TestMicrobenchPredictsFigure2:
    """Tables 3/4 plus crossing counts predict the attribution stack."""

    def test_predicted_pti_share_matches_attribution(self):
        cpu = get_cpu("broadwell")
        # Measured end-to-end, per LEBench case: one syscall-ish crossing
        # per op for syscall/fault cases.
        off = lebench.run_suite(Machine(cpu, seed=1),
                                MitigationConfig.all_off(),
                                iterations=10, warmup=3)
        pti_only = lebench.run_suite(Machine(cpu, seed=1),
                                     MitigationConfig(pti=True),
                                     iterations=10, warmup=3)
        measured_geo = float(np.exp(np.mean(
            [np.log(pti_only[n] / off[n]) for n in off]))) - 1

        # Predicted from the microbenchmark: each op pays 2*cr3 per
        # crossing; ctx/spawn ops make 2 crossings (+switch cr3 already
        # present in baseline).
        cr3 = microbench.table3_row(cpu, 300).swap_cr3
        crossings = {case.name: (2 if case.kind in ("ctx",) else 1)
                     for case in lebench.SUITE}
        predicted_geo = float(np.exp(np.mean([
            np.log(1 + 2 * cr3 * crossings[name] / off[name])
            for name in off]))) - 1
        assert measured_geo == pytest.approx(predicted_geo, rel=0.25)

    def test_verw_share_scales_with_crossing_rate(self):
        """Double the syscalls per op, double the verw tax (relative to
        fixed work)."""
        cpu = get_cpu("cascade_lake")
        profile = HandlerProfile("fixed", work_cycles=4000)

        def tax(crossings):
            bare = Kernel(Machine(cpu), MitigationConfig.all_off())
            mds = Kernel(Machine(cpu), MitigationConfig(mds_verw=True))
            for _ in range(3):
                for _ in range(crossings):
                    bare.syscall(profile)
                    mds.syscall(profile)
            bare_cost = sum(bare.syscall(profile) for _ in range(crossings))
            mds_cost = sum(mds.syscall(profile) for _ in range(crossings))
            return mds_cost - bare_cost

        assert tax(4) == pytest.approx(2 * tax(2), rel=0.05)

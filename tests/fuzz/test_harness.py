"""Differential harness: oracles, promises, campaign determinism."""

import pytest

from repro.core.probe import (
    POLICY_DEFAULT,
    POLICY_IBRS,
    POLICY_OFF,
    SCENARIOS,
)
from repro.core.stats import derive_seed
from repro.cpu import get_cpu
from repro.fuzz import (
    CampaignResult,
    ExplainReport,
    FuzzConfig,
    blocked_promise,
    cell_supported,
    check_cell,
    explain_cell,
    fuzz_campaign,
    generate_corpus,
    generate_program,
    parity_fault,
)


def _scenario(label):
    for scenario in SCENARIOS:
        if scenario.label == label:
            return scenario
    raise AssertionError(label)


def test_small_campaign_is_clean():
    config = FuzzConfig(seed=1, programs=3,
                        cpu_keys=("broadwell", "zen3"))
    result = fuzz_campaign(config)
    assert result.cells == 3 * 2 * 3
    assert result.skipped == 0
    assert result.violations == []


def test_unsupported_policy_cells_are_skipped():
    # zen has neither IBRS nor eIBRS: its POLICY_IBRS column is the
    # Table 10 N/A row, not a fuzzed cell.
    assert not cell_supported(get_cpu("zen"), POLICY_IBRS)
    assert cell_supported(get_cpu("zen"), POLICY_OFF)
    config = FuzzConfig(seed=2, programs=2, cpu_keys=("zen",))
    result = fuzz_campaign(config)
    assert result.skipped == 2
    assert result.cells == 2 * 2


def test_parallel_verdicts_match_serial():
    serial = fuzz_campaign(FuzzConfig(seed=3, programs=4,
                                      cpu_keys=("broadwell", "zen3"),
                                      jobs=1))
    parallel = fuzz_campaign(FuzzConfig(seed=3, programs=4,
                                        cpu_keys=("broadwell", "zen3"),
                                        jobs=4))
    assert serial.verdict_map() == parallel.verdict_map()
    assert [p.to_text() for p in serial.programs] \
        == [p.to_text() for p in parallel.programs]


def test_corpus_is_seed_deterministic():
    a = generate_corpus(FuzzConfig(seed=9, programs=5))
    b = generate_corpus(FuzzConfig(seed=9, programs=5))
    assert [p.to_text() for p in a] == [p.to_text() for p in b]
    c = generate_corpus(FuzzConfig(seed=10, programs=5))
    assert [p.to_text() for p in a] != [p.to_text() for p in c]


def test_clean_cell_has_no_violations():
    program = generate_program(11)
    violations = check_cell(program, get_cpu("cascade_lake"),
                            POLICY_DEFAULT, base_seed=1)
    assert violations == []


def test_parity_fault_is_caught():
    """The test-only fault hook must surface as an engine_parity
    violation — the harness's own end-to-end sanity check."""
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,))
    with parity_fault("verw"):
        result = fuzz_campaign(config)
    assert result.violations
    assert all(v.oracle == "engine_parity" for v in result.violations)
    assert all("tsc" in v.detail for v in result.violations)


def test_parity_fault_travels_to_workers():
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,), jobs=4)
    with parity_fault("verw"):
        parallel = fuzz_campaign(config)
    with parity_fault("verw"):
        serial = fuzz_campaign(FuzzConfig(seed=3, programs=6,
                                          cpu_keys=("broadwell",),
                                          policies=(POLICY_OFF,)))
    assert parallel.verdict_map() == serial.verdict_map()
    assert parallel.violations


class TestBlockedPromise:
    """Spot-checks of the Table 9/10 shape the leakage oracle enforces."""

    def test_retpoline_always_promises(self):
        scenario = _scenario(SCENARIOS[0].label)
        for key in ("broadwell", "zen3", "cascade_lake"):
            promises = blocked_promise(get_cpu(key), POLICY_OFF, scenario,
                                       retpoline=True)
            assert "spectre_v2/retpoline" in promises

    def test_classic_ibrs_blocks_all_prediction(self):
        for scenario in SCENARIOS:
            promises = blocked_promise(get_cpu("broadwell"), POLICY_IBRS,
                                       scenario, retpoline=False)
            assert "spectre_v2/ibrs_no_predict" in promises

    def test_off_policy_promises_nothing_on_broadwell(self):
        for scenario in SCENARIOS:
            assert blocked_promise(get_cpu("broadwell"), POLICY_OFF,
                                   scenario, retpoline=False) == ()

    def test_zen3_opaque_index_is_unconditional(self):
        for policy in (POLICY_OFF, POLICY_DEFAULT, POLICY_IBRS):
            for scenario in SCENARIOS:
                promises = blocked_promise(get_cpu("zen3"), policy,
                                           scenario, retpoline=False)
                assert "hardware/btb_isolation" in promises

    def test_eibrs_mode_tags_block_cross_mode_only(self):
        cpu = get_cpu("cascade_lake")
        for scenario in SCENARIOS:
            promises = blocked_promise(cpu, POLICY_OFF, scenario,
                                       retpoline=False)
            cross = scenario.train_mode is not scenario.victim_mode
            assert ("hardware/btb_isolation" in promises) == cross


def test_telemetry_is_numeric_and_complete():
    config = FuzzConfig(seed=4, programs=2, cpu_keys=("zen2",))
    result = fuzz_campaign(config)
    fuzz = result.telemetry()["fuzz"]
    assert set(fuzz) == {"seed", "programs", "cells", "skipped",
                         "violations"}
    assert all(isinstance(v, int) for v in fuzz.values())


def test_campaign_result_verdict_map_keys():
    config = FuzzConfig(seed=5, programs=1, cpu_keys=("skylake_client",))
    result = fuzz_campaign(config)
    assert isinstance(result, CampaignResult)
    name = result.programs[0].name
    assert set(result.verdict_map()) == {
        f"{name}/skylake_client/{policy}" for policy in config.policies}


# --------------------------------------------------------------------------- #
# Structured problems + the divergence explainer
# --------------------------------------------------------------------------- #

def _faulted_campaign():
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,))
    with parity_fault("verw"):
        return fuzz_campaign(config)


def _cell_stream(result, violation):
    """Rebuild the violating cell's instruction stream."""
    from repro.core.probe import _policy_machine
    program = next(p for p in result.programs
                   if p.name == violation.program)
    seed = derive_seed(3, "fuzz", program.name, "broadwell", POLICY_OFF)
    _, retpoline = _policy_machine(get_cpu("broadwell"), POLICY_OFF, seed)
    return program, list(program.instructions(retpoline=retpoline))


def test_parity_violation_carries_structured_problems():
    result = _faulted_campaign()
    assert result.violations
    for violation in result.violations:
        kinds = [p["kind"] for p in violation.problems]
        assert "tsc" in kinds
        assert "injected_fault" in kinds
        assert all("detail" in p for p in violation.problems)
        # detail stays the rendered join of the structured problems.
        assert violation.detail == "; ".join(
            p["detail"] for p in violation.problems)
        payload = violation.to_dict()
        assert payload["problems"] == list(violation.problems)
        assert payload["divergence"] is not None


def test_divergence_pinpoints_the_injected_instruction():
    result = _faulted_campaign()
    violation = result.violations[0]
    div = violation.divergence
    assert div is not None
    assert div["structure"] == "mds"
    _, stream = _cell_stream(result, violation)
    faulted = stream[div["instr"] % len(stream)]
    assert faulted.op.name.lower() == "verw"


def test_explain_cell_without_fault_agrees():
    program = generate_program(derive_seed(1, "fuzz-program", "0"))
    report = explain_cell(program, get_cpu("broadwell"), POLICY_OFF,
                          base_seed=1)
    assert isinstance(report, ExplainReport)
    assert not report.diverged()
    assert report.divergence is None
    assert "agree" in report.render()
    telemetry = report.telemetry()["timeline"]
    assert telemetry["diverged"] == 0.0
    assert all(isinstance(v, float) for v in telemetry.values())


def test_explain_cell_with_fault_diverges():
    # Program index 3 of the seed-1 corpus contains a verw.
    program = generate_program(derive_seed(1, "fuzz-program", "3"))
    report = explain_cell(program, get_cpu("broadwell"), POLICY_OFF,
                          base_seed=1, fault_op="verw")
    assert report.diverged()
    div = report.divergence
    assert div.structure == "mds"
    text = report.render()
    assert f"first divergence at event #{div.index}" in text
    assert "faulted" in text
    telemetry = report.telemetry()["timeline"]
    assert telemetry["diverged"] == 1.0
    assert telemetry["divergence_instr"] == float(div.instr)
    payload = report.to_dict()
    assert payload["divergence"]["index"] == div.index
    assert payload["fault_op"] == "verw"


def test_reproducer_fault_directive_round_trips(tmp_path):
    from repro.fuzz import explain_reproducer, load_reproducer, \
        write_reproducer
    result = _faulted_campaign()
    violation = result.violations[0]
    program = next(p for p in result.programs
                   if p.name == violation.program)
    path = write_reproducer(str(tmp_path), program, violation, base_seed=3)
    with open(path) as handle:
        text = handle.read()
    assert "# fault: verw" in text
    _, directives = load_reproducer(path)
    assert directives.get("fault") == "verw"
    report = explain_reproducer(path)
    assert report.diverged()
    assert report.divergence.to_dict() == violation.divergence


def test_campaign_progress_callback_reports_each_cell():
    def run(jobs):
        seen = []
        config = FuzzConfig(seed=1, programs=2,
                            cpu_keys=("broadwell", "zen3"), jobs=jobs)
        fuzz_campaign(config, progress=lambda done, total:
                      seen.append((done, total)))
        return seen, config

    for jobs in (1, 2):
        seen, config = run(jobs)
        total = 2 * 2 * len(config.policies)
        assert [done for done, _ in seen] == list(range(1, total + 1))
        assert all(t == total for _, t in seen)

"""Minimizer + reproducer pipeline: an injected parity bug must shrink
to a minimal printable reproducer that still replays."""

import pytest

from repro.core.probe import POLICY_OFF
from repro.cpu import get_cpu
from repro.fuzz import (
    FuzzConfig,
    check_cell,
    fuzz_campaign,
    generate_program,
    load_reproducer,
    minimize_program,
    minimize_violation,
    parity_fault,
    replay_reproducer,
    write_reproducer,
)


def _faulted_violation():
    """One (program, violation) pair from the seeded fault campaign."""
    config = FuzzConfig(seed=3, programs=6, cpu_keys=("broadwell",),
                        policies=(POLICY_OFF,))
    result = fuzz_campaign(config)
    assert result.violations, "parity_fault must be active"
    violation = result.violations[0]
    program = next(p for p in result.programs
                   if p.name == violation.program)
    return program, violation


def test_injected_fault_minimizes_to_a_tiny_reproducer():
    with parity_fault("verw"):
        program, violation = _faulted_violation()
        minimized = minimize_violation(program, violation, base_seed=3)
        # The fault is one op: the reproducer must shrink to (nearly)
        # just that op.  The acceptance bound is <= 8 instructions.
        assert minimized.instruction_count() <= 8
        assert minimized.instruction_count() < program.instruction_count()
        # The minimized program still violates the same oracle.
        found = check_cell(minimized, get_cpu(violation.cpu),
                           violation.policy, base_seed=3)
        assert any(v.oracle == violation.oracle for v in found)
    # Outside the fault scope the reproducer is clean again.
    assert check_cell(minimized, get_cpu(violation.cpu), violation.policy,
                      base_seed=3) == []


def test_minimize_requires_a_failing_input():
    program = generate_program(1)
    with pytest.raises(ValueError):
        minimize_program(program, lambda p: False)


def test_minimize_is_deterministic():
    with parity_fault("verw"):
        program, violation = _faulted_violation()
        a = minimize_violation(program, violation, base_seed=3)
        b = minimize_violation(program, violation, base_seed=3)
    assert a.to_text() == b.to_text()


def test_reproducer_round_trip(tmp_path):
    with parity_fault("verw"):
        program, violation = _faulted_violation()
        minimized = minimize_violation(program, violation, base_seed=3)
        path = write_reproducer(str(tmp_path), minimized, violation,
                                base_seed=3)
        loaded, directives = load_reproducer(path)
        assert loaded.to_text() == minimized.to_text()
        assert directives["cpu"] == violation.cpu
        assert directives["policy"] == violation.policy
        assert directives["oracle"] == violation.oracle
        assert directives["base-seed"] == "3"
        # Replay inside the fault scope: still violating.
        assert replay_reproducer(path)
    # Replay with the engine fixed (fault scope exited): clean.
    assert replay_reproducer(path) == []

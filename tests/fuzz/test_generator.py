"""Program generator: determinism, printable round-trip, legality."""

from repro.cpu import Machine, Mode, get_cpu
from repro.fuzz import generate_program, parse_program

SEEDS = range(40)


def test_same_seed_same_text():
    for seed in SEEDS:
        assert (generate_program(seed).to_text()
                == generate_program(seed).to_text())


def test_distinct_seeds_differ():
    texts = {generate_program(seed).to_text() for seed in SEEDS}
    assert len(texts) > len(SEEDS) // 2


def test_round_trip_is_byte_identical():
    for seed in SEEDS:
        text = generate_program(seed).to_text()
        assert parse_program(text).to_text() == text


def test_parse_skips_comment_lines():
    program = generate_program(5)
    commented = "# a directive: x\n" + program.to_text()
    assert parse_program(commented).to_text() == program.to_text()


def test_every_program_has_a_landing_block():
    for seed in SEEDS:
        program = generate_program(seed)
        assert any(block.landing for block in program.blocks)


def test_programs_run_repeatedly_and_end_in_user_mode():
    """End-of-program mode normalization: three back-to-back runs of the
    same stream must be legal (no syscall-from-kernel etc.)."""
    cpu = get_cpu("broadwell")
    for seed in SEEDS:
        program = generate_program(seed)
        machine = Machine(cpu, seed=1)
        program.install(machine)
        stream = program.instructions()
        for _ in range(3):
            machine.run(stream)
            assert machine.mode is Mode.USER


def test_data_addresses_are_user_space():
    for seed in SEEDS:
        for addr in generate_program(seed).data_addresses():
            assert addr < 0xC0_0000  # below the kernel-data pool


def test_instruction_count_matches_stream():
    for seed in SEEDS:
        program = generate_program(seed)
        assert program.instruction_count() == len(program.instructions())
        assert program.instruction_count() > 0

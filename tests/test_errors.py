"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    SegmentationFault,
    SpectreSimError,
    StatisticsError,
    UnknownCPUError,
    UnsupportedFeatureError,
    WorkloadError,
)


def test_everything_derives_from_spectresimerror():
    for exc_type in (ConfigurationError, SegmentationFault, StatisticsError,
                     UnknownCPUError, UnsupportedFeatureError, WorkloadError):
        assert issubclass(exc_type, SpectreSimError)


def test_unknown_cpu_is_also_a_keyerror():
    assert issubclass(UnknownCPUError, KeyError)
    error = UnknownCPUError("i486", ("broadwell", "zen"))
    assert "i486" in str(error)
    assert "broadwell" in str(error)
    assert error.key == "i486"


def test_segfault_carries_address_and_mode():
    fault = SegmentationFault(0xFFFF_8880_0000_0000, "user")
    assert fault.address == 0xFFFF_8880_0000_0000
    assert fault.mode == "user"
    assert "0xffff888000000000" in str(fault)


def test_one_except_clause_catches_the_library():
    from repro.cpu import Machine, get_cpu
    from repro.cpu import isa
    machine = Machine(get_cpu("zen"))
    with pytest.raises(SpectreSimError):
        machine.execute(isa.load(0xFFFF_8880_0000_0000, kernel=True))
    with pytest.raises(SpectreSimError):
        get_cpu("i486")

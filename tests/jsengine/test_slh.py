"""Speculative Load Hardening: blanket protection, blanket cost."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu.isa import Op
from repro.jsengine.jit import JITCompiler, OpMix
from repro.jsengine.slh import SLHCompiler, slh_blocks_all_v1_variants
from repro.mitigations import MitigationConfig


MIX = OpMix(arith_cycles=10000, array_accesses=200, object_accesses=150,
            pointer_derefs=500, store_load_pairs=40, calls=100)


def work_cycles(block):
    # Hardening rides as separately tagged WORK blocks; sum them all.
    work = [i for i in block if i.op is Op.WORK]
    assert work
    return sum(i.value for i in work)


def test_slh_costs_more_than_targeted_mitigations(machine):
    """Why JITs ship index masking instead of SLH: SLH masks *every*
    load class, so its tax strictly dominates the targeted one."""
    slh = SLHCompiler(machine)
    targeted = JITCompiler(machine, MitigationConfig(
        js_index_masking=True, js_object_guards=True, js_other=True))
    slh_cost = work_cycles(slh.compile_iteration(MIX, heap_base=0x4000_0000))
    targeted_cost = work_cycles(
        targeted.compile_iteration(MIX, heap_base=0x4000_0000))
    assert slh_cost > targeted_cost


def test_slh_overhead_is_considerable(machine):
    """The paper's phrase is 'considerable overhead': tens of percent."""
    bare = JITCompiler(machine, MitigationConfig.all_off())
    bare_cost = work_cycles(bare.compile_iteration(MIX, heap_base=0x4000_0000))
    slh_cost = work_cycles(
        SLHCompiler(machine).compile_iteration(MIX, heap_base=0x4000_0000))
    overhead = slh_cost / bare_cost - 1
    assert 0.10 < overhead < 0.80


def test_slh_blocks_the_v1_gadget(every_cpu):
    assert slh_blocks_all_v1_variants(Machine(every_cpu))


def test_slh_emits_the_same_memory_traffic(machine):
    """SLH changes cycle counts, not the workload's memory behaviour."""
    block = SLHCompiler(machine).compile_iteration(MIX, heap_base=0x4000_0000)
    assert sum(1 for i in block if i.op is Op.STORE) == MIX.store_load_pairs
    assert sum(1 for i in block if i.op is Op.LOAD) == MIX.store_load_pairs


def test_slh_tax_scales_with_total_load_count(machine):
    slh = SLHCompiler(machine)
    light = OpMix(arith_cycles=10000, array_accesses=10, object_accesses=10,
                  pointer_derefs=10, store_load_pairs=0, calls=10)
    heavy = OpMix(arith_cycles=10000, array_accesses=500, object_accesses=500,
                  pointer_derefs=500, store_load_pairs=0, calls=10)
    bare = JITCompiler(machine, MitigationConfig.all_off())

    def tax(mix):
        return (work_cycles(slh.compile_iteration(mix, 0x4000_0000))
                - work_cycles(bare.compile_iteration(mix, 0x4000_0000)))

    assert tax(heavy) > 10 * tax(light)

"""Sandbox boundary: OOB reads, type confusion, timer clamping."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.jsengine.sandbox import (
    ClampedClock,
    attempt_sandbox_oob_read,
    attempt_type_confusion,
    can_distinguish_cache_hit,
    new_realm,
)


@pytest.fixture
def m():
    return Machine(get_cpu("skylake_client"))


def test_oob_read_escapes_sandbox_without_masking(m):
    attacker, victim = new_realm("attacker"), new_realm("victim")
    assert attempt_sandbox_oob_read(m, attacker, victim,
                                    index_masking=False) is True


def test_index_masking_contains_the_read(m):
    attacker, victim = new_realm("attacker"), new_realm("victim")
    assert attempt_sandbox_oob_read(m, attacker, victim,
                                    index_masking=True) is False


def test_type_confusion_leaks_without_guards(m):
    realm = new_realm()
    assert attempt_type_confusion(m, realm, object_guards=False) is True


def test_object_guards_stop_type_confusion(m):
    realm = new_realm()
    assert attempt_type_confusion(m, realm, object_guards=True) is False


class TestClampedClock:
    def test_quantizes_downward(self, m):
        clock = ClampedClock(m, resolution_cycles=100)
        m.counters.add_cycles(250)
        assert clock.now() == 200

    def test_full_resolution_passthrough(self, m):
        clock = ClampedClock(m, resolution_cycles=1)
        m.counters.add_cycles(123)
        assert clock.now() == m.read_tsc()

    def test_rejects_zero_resolution(self, m):
        with pytest.raises(ValueError):
            ClampedClock(m, resolution_cycles=0)

    def test_precise_timer_sees_cache_state(self, m):
        clock = ClampedClock(m, resolution_cycles=1)
        assert can_distinguish_cache_hit(m, clock) is True

    def test_clamped_timer_blinds_the_probe(self, m):
        """Firefox's mitigation: quantize below the hit/miss delta and the
        cache covert channel's receiver goes blind."""
        clock = ClampedClock(m, resolution_cycles=10_000)
        assert can_distinguish_cache_hit(m, clock) is False

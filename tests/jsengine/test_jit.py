"""Model JIT: hardening insertion and its per-access pricing."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu.isa import Op
from repro.jsengine.jit import JITCompiler, OpMix
from repro.mitigations import MitigationConfig


MIX = OpMix(arith_cycles=1000, array_accesses=100, object_accesses=50,
            pointer_derefs=200, store_load_pairs=8, calls=20)


def compiled_cycles(machine, config, mix=MIX):
    """Total WORK cycles in one compiled iteration.

    Hardening is emitted as separately tagged WORK blocks (so the cycle
    ledger can attribute it); the cost model sums over all of them.
    """
    jit = JITCompiler(machine, config)
    block = jit.compile_iteration(mix, heap_base=0x4000_0000)
    work = [i for i in block if i.op is Op.WORK]
    assert work, "compiled iteration carries no WORK"
    return sum(i.value for i in work)


def test_store_load_pairs_are_real_instructions(machine):
    jit = JITCompiler(machine, MitigationConfig.all_off())
    block = jit.compile_iteration(MIX, heap_base=0x4000_0000)
    assert sum(1 for i in block if i.op is Op.STORE) == 8
    assert sum(1 for i in block if i.op is Op.LOAD) == 8


def test_index_masking_adds_per_array_access_cost(machine):
    base = compiled_cycles(machine, MitigationConfig.all_off())
    masked = compiled_cycles(machine, MitigationConfig(js_index_masking=True))
    jit = JITCompiler(machine, MitigationConfig.all_off())
    assert masked - base == MIX.array_accesses * jit.mask_extra_per_access()


def test_object_guards_add_per_object_access_cost(machine):
    base = compiled_cycles(machine, MitigationConfig.all_off())
    guarded = compiled_cycles(machine, MitigationConfig(js_object_guards=True))
    jit = JITCompiler(machine, MitigationConfig.all_off())
    assert guarded - base == MIX.object_accesses * jit.guard_extra_per_access()


def test_js_other_adds_pointer_and_call_hardening(machine):
    base = compiled_cycles(machine, MitigationConfig.all_off())
    other = compiled_cycles(machine, MitigationConfig(js_other=True))
    expected = (MIX.pointer_derefs * machine.costs.alu
                + MIX.calls * machine.costs.alu)
    assert other - base == expected


def test_guard_costs_exceed_mask_costs(machine):
    """Object guards re-check the shape: strictly pricier than masking,
    matching the paper's 6% vs 4% ordering."""
    jit = JITCompiler(machine, MitigationConfig.all_off())
    assert jit.guard_extra_per_access() > jit.mask_extra_per_access()


def test_mitigations_compose_additively(machine):
    base = compiled_cycles(machine, MitigationConfig.all_off())
    all_js = compiled_cycles(machine, MitigationConfig(
        js_index_masking=True, js_object_guards=True, js_other=True))
    sum_of_parts = (
        compiled_cycles(machine, MitigationConfig(js_index_masking=True))
        + compiled_cycles(machine, MitigationConfig(js_object_guards=True))
        + compiled_cycles(machine, MitigationConfig(js_other=True))
        - 2 * base
    )
    assert all_js == sum_of_parts


def test_cursor_rotates_pair_addresses(machine):
    jit = JITCompiler(machine, MitigationConfig.all_off())
    block_a = jit.compile_iteration(MIX, heap_base=0x4000_0000, cursor=0)
    block_b = jit.compile_iteration(MIX, heap_base=0x4000_0000, cursor=3)
    addrs_a = [i.address for i in block_a if i.op is Op.STORE]
    addrs_b = [i.address for i in block_b if i.op is Op.STORE]
    assert addrs_a != addrs_b

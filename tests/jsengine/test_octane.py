"""Octane suite: scores, the seccomp/SSBD interaction, suite geomean."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.jsengine.octane import (
    OctaneRunner,
    SUITE,
    WORKLOAD_NAMES,
    get_workload,
    run_suite,
    suite_score,
)
from repro.mitigations import MitigationConfig, SSBDMode, linux_default


def test_suite_has_fifteen_octane_parts():
    assert len(SUITE) == 15
    assert "richards" in WORKLOAD_NAMES
    assert "navier-stokes" in WORKLOAD_NAMES


def test_get_workload():
    assert get_workload("splay").name == "splay"
    with pytest.raises(KeyError):
        get_workload("octane-nonexistent")


def test_scores_are_positive_and_higher_without_mitigations():
    cpu = get_cpu("skylake_client")
    base = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                     iterations=6, warmup=2)
    full = run_suite(Machine(cpu, seed=1), linux_default(cpu),
                     iterations=6, warmup=2)
    for name in base:
        assert base[name] > 0
        assert base[name] > full[name], name


def test_firefox_process_is_seccomp_sandboxed():
    cpu = get_cpu("zen3")
    runner = OctaneRunner(Machine(cpu), linux_default(cpu))
    assert runner.firefox.uses_seccomp


def test_seccomp_policy_turns_ssbd_on_for_the_js_process():
    """The Figure 3 mechanism: pre-5.16 kernels SSBD Firefox via seccomp."""
    cpu = get_cpu("zen3")
    old = OctaneRunner(Machine(cpu), linux_default(cpu, kernel=(5, 14)))
    assert old.machine.msr.ssbd_enabled
    new = OctaneRunner(Machine(cpu), linux_default(cpu, kernel=(5, 16)))
    assert not new.machine.msr.ssbd_enabled


def test_linux_5_16_recovers_score():
    cpu = get_cpu("zen3")
    old = suite_score(run_suite(Machine(cpu, seed=1),
                                linux_default(cpu, kernel=(5, 14)),
                                iterations=6, warmup=2))
    new = suite_score(run_suite(Machine(cpu, seed=1),
                                linux_default(cpu, kernel=(5, 16)),
                                iterations=6, warmup=2))
    assert new > old


def test_suite_score_is_geometric_mean():
    assert suite_score({"a": 4.0, "b": 16.0}) == pytest.approx(8.0)


def test_array_heavy_workload_pays_most_for_masking():
    """navier-stokes (array heavy) loses more to index masking than
    splay (pointer heavy) — per-part sensitivity, like the real suite."""
    cpu = get_cpu("cascade_lake")
    base_cfg = MitigationConfig.all_off()
    mask_cfg = MitigationConfig(js_index_masking=True)

    def slowdown(name):
        workload = get_workload(name)
        base = OctaneRunner(Machine(cpu, seed=1), base_cfg).measure(
            workload, iterations=6, warmup=2)
        masked = OctaneRunner(Machine(cpu, seed=1), mask_cfg).measure(
            workload, iterations=6, warmup=2)
        return masked / base - 1

    assert slowdown("navier-stokes") > slowdown("splay")


def test_os_side_mitigations_touch_octane_through_gc_syscalls():
    """The 'other OS' sliver of Figure 3: the engine's occasional GC /
    housekeeping syscalls pay the kernel boundary tax, visibly on
    PTI+MDS parts and negligibly on new ones."""
    def slowdown(key):
        cpu = get_cpu(key)
        js_only = MitigationConfig(js_index_masking=True,
                                   js_object_guards=True, js_other=True)
        kernel_too = linux_default(cpu, kernel=(5, 16))  # no SSBD via seccomp
        base = suite_score(run_suite(Machine(cpu, seed=1), js_only,
                                     iterations=6, warmup=2))
        full = suite_score(run_suite(Machine(cpu, seed=1), kernel_too,
                                     iterations=6, warmup=2))
        return 1 - full / base

    assert slowdown("broadwell") > slowdown("ice_lake_server")
    assert slowdown("broadwell") < 0.05  # a sliver, not a stack

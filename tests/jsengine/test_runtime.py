"""JS runtime object model: arrays, shapes, realms."""

from repro.jsengine.runtime import REALM_HEAP_BYTES, JSArray, Realm, Shape


def test_array_element_addressing():
    array = JSArray(address=0x1000, length=4)
    assert array.element_address(0) == 0x1000
    assert array.element_address(3) == 0x1000 + 24


def test_bounds_check():
    array = JSArray(address=0x1000, length=4)
    assert array.in_bounds(0) and array.in_bounds(3)
    assert not array.in_bounds(4)
    assert not array.in_bounds(-1)


def test_masked_index_clamps_oob_to_zero():
    array = JSArray(address=0x1000, length=4)
    assert array.masked_index(2) == 2
    assert array.masked_index(100) == 0
    assert array.masked_index(-5) == 0


def test_shape_assigns_slot_offsets():
    shape = Shape.of("x", "y", "z")
    assert shape.fields == {"x": 0, "y": 8, "z": 16}


def test_shapes_have_unique_ids():
    assert Shape.of("a").shape_id != Shape.of("a").shape_id


def test_object_slot_addresses():
    realm = Realm(1)
    obj = realm.new_object(Shape.of("x", "y"), x=1, y=2)
    assert obj.slot_address("y") == obj.slot_address("x") + 8
    assert obj.values == {"x": 1, "y": 2}


def test_realm_heaps_are_disjoint():
    a, b = Realm(1), Realm(2)
    assert b.heap_base - a.heap_base == REALM_HEAP_BYTES
    array = a.new_array(16)
    assert a.owns(array.address)
    assert not b.owns(array.address)


def test_allocations_are_line_aligned_and_monotonic():
    realm = Realm(3)
    first = realm.new_array(1)
    second = realm.new_array(1)
    assert first.address % 64 == 0
    assert second.address > first.address

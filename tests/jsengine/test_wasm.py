"""WASM sandboxing and Swivel-style hardening."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu.isa import Op
from repro.jsengine.wasm import (
    WasmCompiler,
    attempt_wasm_indirect_escape,
    attempt_wasm_sandbox_escape,
    instantiate,
)


@pytest.fixture
def m():
    return Machine(get_cpu("skylake_client"))


def test_modules_get_disjoint_memories():
    a, b = instantiate(1 << 20), instantiate(1 << 20)
    assert a.memory_base != b.memory_base
    assert not a.contains(b.memory_base)
    assert b.contains(b.memory_base)


def test_masked_offset_always_in_bounds():
    module = instantiate(4096)
    for offset in (0, 4095, 4096, 100_000, (1 << 40) + 7):
        assert 0 <= module.masked_offset(offset) < module.memory_bytes


def test_raw_compiler_emits_check_then_access(m):
    module = instantiate()
    block = WasmCompiler(m, hardened=False).load(module, 64)
    assert [i.op for i in block] == [Op.BRANCH_COND, Op.LOAD]


def test_hardened_compiler_emits_mask_then_access(m):
    module = instantiate()
    block = WasmCompiler(m, hardened=True).load(module, 64)
    assert [i.op for i in block] == [Op.ALU, Op.LOAD]
    assert module.contains(block[1].address)


def test_hardened_oob_access_is_wrapped_inside(m):
    module = instantiate(4096)
    block = WasmCompiler(m, hardened=True).load(module, 1 << 30)
    assert module.contains(block[1].address)


def test_v1_escape_works_raw_on_every_cpu(every_cpu):
    machine = Machine(every_cpu)
    attacker, victim = instantiate(), instantiate()
    assert attempt_wasm_sandbox_escape(machine, attacker, victim,
                                       hardened=False) is True


def test_swivel_masking_contains_the_v1_escape(every_cpu):
    machine = Machine(every_cpu)
    attacker, victim = instantiate(), instantiate()
    assert attempt_wasm_sandbox_escape(machine, attacker, victim,
                                       hardened=True) is False


def test_v2_escape_works_raw_where_btb_is_steerable(m):
    module = instantiate()
    assert attempt_wasm_indirect_escape(m, module, hardened=False) is True


def test_swivel_pinned_calls_stop_the_v2_escape(m):
    module = instantiate()
    assert attempt_wasm_indirect_escape(m, module, hardened=True) is False


def test_v2_escape_already_impossible_on_zen3():
    machine = Machine(get_cpu("zen3"))
    module = instantiate()
    assert attempt_wasm_indirect_escape(machine, module,
                                        hardened=False) is False


def test_hardening_cost_is_one_alu_per_access(m):
    module = instantiate()
    raw = WasmCompiler(m, hardened=False)
    hard = WasmCompiler(m, hardened=True)
    offset = 4096
    # Warm the line through both paths, then compare steady-state cost.
    raw.access_cost(module, offset)
    hard.access_cost(module, offset)
    delta = hard.access_cost(module, offset) - raw.access_cost(module, offset)
    assert delta == m.costs.alu - m.costs.cond_branch

"""Site isolation: structural immunity and its process-model cost."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.jsengine.site_isolation import (
    Browser,
    PROCESS_PER_SITE,
    SHARED_RENDERER,
)
from repro.kernel import Kernel
from repro.mitigations import MitigationConfig, linux_default


def make_browser(policy, cpu_key="skylake_client", config=None):
    cpu = get_cpu(cpu_key)
    kernel = Kernel(Machine(cpu, seed=1),
                    config if config is not None else linux_default(cpu))
    return Browser(kernel, policy)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        make_browser("hope")


def test_process_per_site_allocates_distinct_processes():
    browser = make_browser(PROCESS_PER_SITE)
    a = browser.open_site("bank.example")
    b = browser.open_site("ads.example")
    assert a.process is not b.process
    assert a.process.mm is not b.process.mm


def test_shared_renderer_reuses_one_process():
    browser = make_browser(SHARED_RENDERER)
    a = browser.open_site("bank.example")
    b = browser.open_site("ads.example")
    assert a.process is b.process


def test_reopening_a_site_is_idempotent():
    browser = make_browser(PROCESS_PER_SITE)
    assert browser.open_site("x.example") is browser.open_site("x.example")


class TestSecurity:
    def setup_pair(self, policy):
        browser = make_browser(policy)
        browser.open_site("ads.example")
        browser.open_site("bank.example")
        return browser

    def test_shared_renderer_leaks_without_masking(self):
        browser = self.setup_pair(SHARED_RENDERER)
        assert browser.cross_site_speculative_read_possible(
            "ads.example", "bank.example", index_masking=False) is True

    def test_shared_renderer_needs_the_jit_mitigation(self):
        browser = self.setup_pair(SHARED_RENDERER)
        assert browser.cross_site_speculative_read_possible(
            "ads.example", "bank.example", index_masking=True) is False

    def test_process_per_site_is_structurally_immune(self):
        """No masking required: the victim heap isn't mapped at all."""
        browser = self.setup_pair(PROCESS_PER_SITE)
        assert browser.cross_site_speculative_read_possible(
            "ads.example", "bank.example", index_masking=False) is False


class TestCost:
    SEQUENCE = ["a.example", "b.example"] * 6

    def test_process_per_site_pays_switches(self):
        isolated = make_browser(PROCESS_PER_SITE)
        shared = make_browser(SHARED_RENDERER, config=linux_default(
            get_cpu("skylake_client")))
        cost_isolated = isolated.tab_switch_cost(list(self.SEQUENCE))
        cost_shared = shared.tab_switch_cost(list(self.SEQUENCE))
        assert cost_isolated > cost_shared

    def test_switches_fire_ibpb_for_seccomp_renderers(self):
        """Renderers are seccomp'd, so the conditional IBPB policy treats
        them as protection-requesting — every cross-site switch pays the
        Table 6 cost."""
        browser = make_browser(PROCESS_PER_SITE, cpu_key="broadwell")
        browser.tab_switch_cost(list(self.SEQUENCE))
        assert browser.kernel.machine.counters.read(ctr.IBPB_COUNT) >= 10

    def test_no_switches_within_one_site(self):
        browser = make_browser(PROCESS_PER_SITE)
        browser.tab_switch_cost(["solo.example"] * 5)
        assert browser.kernel.machine.counters.read(
            ctr.CONTEXT_SWITCHES) == 1  # the initial placement only
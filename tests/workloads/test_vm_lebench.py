"""LEBench-in-a-VM: the ±3% host-mitigation band (section 4.4)."""

import numpy as np
import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads.lebench import get_case
from repro.workloads.vm_lebench import (
    GuestLEBenchRunner,
    TIMER_EXIT_PERIOD,
    run_suite,
)


def test_guest_ops_mostly_avoid_exits():
    runner = GuestLEBenchRunner(Machine(get_cpu("broadwell")),
                                MitigationConfig.all_off(),
                                MitigationConfig.all_off())
    case = get_case("getpid")
    for _ in range(TIMER_EXIT_PERIOD - 1):
        runner.run_op(case)
    assert runner.hypervisor.stats.exits == 0
    runner.run_op(case)
    assert runner.hypervisor.stats.exits == 1


def test_host_mitigations_within_three_percent(every_cpu):
    off = run_suite(Machine(every_cpu, seed=1), MitigationConfig.all_off(),
                    iterations=12, warmup=3)
    on = run_suite(Machine(every_cpu, seed=1), linux_default(every_cpu),
                   iterations=12, warmup=3)
    geo = float(np.exp(np.mean([np.log(on[n] / off[n]) for n in off])))
    assert abs(geo - 1) < 0.03, every_cpu.key


def test_guest_mitigations_still_cost_inside_the_vm():
    """The guest pays for its *own* config; only host work is ~free."""
    cpu = get_cpu("broadwell")
    guest_off = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                          guest_config=MitigationConfig.all_off(),
                          iterations=10, warmup=3)
    guest_on = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                         guest_config=linux_default(cpu),
                         iterations=10, warmup=3)
    assert guest_on["getpid"] > guest_off["getpid"] * 1.5


def test_default_selection_excludes_cross_process_cases():
    results = run_suite(Machine(get_cpu("zen"), seed=1),
                        MitigationConfig.all_off(), iterations=2, warmup=1)
    assert "context_switch" not in results
    assert "fork" not in results
    assert "getpid" in results

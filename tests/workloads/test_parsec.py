"""PARSEC workloads: default ~zero overhead, SSBD penalties (Figure 5)."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations import MitigationConfig, SSBDMode, linux_default
from repro.workloads.parsec import (
    BODYTRACK,
    FACESIM,
    SUITE,
    SWAPTIONS,
    get_workload,
    run_workload,
)


def test_suite_is_the_paper_trio():
    assert {w.name for w in SUITE} == {"swaptions", "facesim", "bodytrack"}


def test_get_workload_unknown():
    with pytest.raises(KeyError):
        get_workload("blackscholes")


def test_working_set_ordering():
    assert SWAPTIONS.working_set_kb < BODYTRACK.working_set_kb < \
        FACESIM.working_set_kb


def test_default_mitigations_are_nearly_free(every_cpu):
    """Section 4.5: within a fraction of a percent, never above 2%."""
    base = run_workload(Machine(every_cpu, seed=1), MitigationConfig.all_off(),
                        SWAPTIONS, iterations=20, warmup=5)
    full = run_workload(Machine(every_cpu, seed=1), linux_default(every_cpu),
                        SWAPTIONS, iterations=20, warmup=5)
    overhead = full / base - 1
    assert abs(overhead) < 0.02, every_cpu.key


def test_forced_ssbd_slows_swaptions_substantially():
    cpu = get_cpu("zen3")
    base = run_workload(Machine(cpu, seed=1), linux_default(cpu), SWAPTIONS,
                        force_ssbd=False, iterations=20, warmup=5)
    ssbd = run_workload(Machine(cpu, seed=1), linux_default(cpu), SWAPTIONS,
                        force_ssbd=True, iterations=20, warmup=5)
    assert ssbd / base - 1 > 0.25  # the paper's "as much as 34%"


def test_ssbd_ordering_swaptions_worst_facesim_least():
    cpu = get_cpu("cascade_lake")
    config = linux_default(cpu)

    def slowdown(workload):
        base = run_workload(Machine(cpu, seed=1), config, workload,
                            iterations=16, warmup=4)
        ssbd = run_workload(Machine(cpu, seed=1), config, workload,
                            force_ssbd=True, iterations=16, warmup=4)
        return ssbd / base - 1

    s, f, b = slowdown(SWAPTIONS), slowdown(FACESIM), slowdown(BODYTRACK)
    assert s > b > f


def test_ssbd_trend_worsens_across_intel_generations():
    def swaptions_slowdown(key):
        cpu = get_cpu(key)
        config = linux_default(cpu)
        base = run_workload(Machine(cpu, seed=1), config, SWAPTIONS,
                            iterations=16, warmup=4)
        ssbd = run_workload(Machine(cpu, seed=1), config, SWAPTIONS,
                            force_ssbd=True, iterations=16, warmup=4)
        return ssbd / base - 1

    values = [swaptions_slowdown(k) for k in
              ("broadwell", "cascade_lake", "ice_lake_server")]
    assert values == sorted(values)


def test_force_ssbd_requires_permissive_policy():
    """SSBD opt-in needs a policy that honors prctl; OFF ignores it."""
    cpu = get_cpu("zen3")
    off_policy = MitigationConfig.all_off()  # ssbd_mode == OFF
    base = run_workload(Machine(cpu, seed=1), off_policy, SWAPTIONS,
                        iterations=10, warmup=3)
    forced = run_workload(Machine(cpu, seed=1), off_policy, SWAPTIONS,
                          force_ssbd=True, iterations=10, warmup=3)
    assert forced == pytest.approx(base, rel=0.001)


def test_timer_tick_fires():
    from repro.cpu import counters as ctr
    from repro.kernel import Kernel
    from repro.workloads.parsec import PARSECRunner, TIMER_PERIOD
    kernel = Kernel(Machine(get_cpu("zen")), MitigationConfig.all_off())
    runner = PARSECRunner(kernel, SWAPTIONS)
    for _ in range(TIMER_PERIOD):
        runner.run_iteration()
    assert kernel.machine.counters.read(ctr.KERNEL_ENTRIES) >= 1

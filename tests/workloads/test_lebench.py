"""LEBench workload: suite composition, runner behaviour, overhead shape."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.kernel import Kernel
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads.lebench import (
    CASE_NAMES,
    CTX,
    FAULT,
    LEBenchRunner,
    SPAWN,
    SUITE,
    SYSCALL,
    get_case,
    run_suite,
)


def test_suite_covers_the_lebench_operation_classes():
    kinds = {case.kind for case in SUITE}
    assert kinds == {SYSCALL, FAULT, CTX, SPAWN}
    assert len(SUITE) == 18
    for name in ("getpid", "context_switch", "big_read", "fork", "epoll"):
        assert name in CASE_NAMES


def test_get_case_unknown_raises():
    with pytest.raises(KeyError):
        get_case("frobnicate")


def test_invalid_kind_rejected():
    from repro.workloads.lebench import LEBenchCase
    from repro.kernel import HandlerProfile
    with pytest.raises(ValueError):
        LEBenchCase("bad", "hypercall", HandlerProfile("bad"))


def test_ops_return_positive_cycles():
    kernel = Kernel(Machine(get_cpu("zen")), MitigationConfig.all_off())
    runner = LEBenchRunner(kernel)
    for case in SUITE:
        assert runner.run_op(case) > 0, case.name


def test_operation_sizes_span_orders_of_magnitude():
    """LEBench mixes ns-scale getpid with tens-of-us fork: the geomean
    only lands in the paper's bands because the suite is size-diverse."""
    results = run_suite(Machine(get_cpu("zen2"), seed=1),
                        MitigationConfig.all_off(), iterations=8, warmup=2)
    assert results["big_fork"] > 50 * results["getpid"]


def test_ctx_case_switches_processes():
    from repro.cpu import counters as ctr
    kernel = Kernel(Machine(get_cpu("zen")), MitigationConfig.all_off())
    runner = LEBenchRunner(kernel)
    before = kernel.machine.counters.read(ctr.CONTEXT_SWITCHES)
    runner.run_op(get_case("context_switch"))
    assert kernel.machine.counters.read(ctr.CONTEXT_SWITCHES) == before + 2


def test_thread_create_switches_to_same_mm():
    kernel = Kernel(Machine(get_cpu("zen")), MitigationConfig.all_off())
    runner = LEBenchRunner(kernel)
    assert runner.thread.mm is runner.proc_a.mm
    assert runner.child.mm is not runner.proc_a.mm


def test_mitigations_slow_every_syscall_case_on_broadwell():
    cpu = get_cpu("broadwell")
    off = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                    iterations=8, warmup=2)
    on = run_suite(Machine(cpu, seed=1), linux_default(cpu),
                   iterations=8, warmup=2)
    for case in SUITE:
        assert on[case.name] > off[case.name], case.name


def test_getpid_is_the_worst_case_relative_overhead():
    cpu = get_cpu("broadwell")
    off = run_suite(Machine(cpu, seed=1), MitigationConfig.all_off(),
                    iterations=8, warmup=2)
    on = run_suite(Machine(cpu, seed=1), linux_default(cpu),
                   iterations=8, warmup=2)
    ratios = {name: on[name] / off[name] for name in off}
    assert max(ratios, key=ratios.get) == "getpid"
    assert ratios["big_fork"] < 1.1  # big operations amortize the cost


def test_subset_run():
    subset = (get_case("getpid"), get_case("mmap"))
    results = run_suite(Machine(get_cpu("zen3"), seed=1),
                        MitigationConfig.all_off(), iterations=4, warmup=1,
                        cases=subset)
    assert set(results) == {"getpid", "mmap"}

"""The custom workload builder."""

import pytest

from repro.cpu import get_cpu
from repro.cpu import Machine
from repro.errors import WorkloadError
from repro.kernel import HandlerProfile
from repro.mitigations import MitigationConfig, SSBDMode, linux_default
from repro.workloads.custom import WorkloadBuilder

RECV = HandlerProfile("custom_recv", work_cycles=2000, loads=10, stores=4,
                      indirect_branches=6, copy_bytes=256)


def webserver():
    return (WorkloadBuilder("webserver")
            .user_work(3000)
            .syscall(RECV)
            .syscall(RECV)
            .store_load_pairs(10))


def test_empty_workload_rejected():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("empty").build_runner(
            Machine(get_cpu("zen")), MitigationConfig.all_off())


def test_negative_user_work_rejected():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("w").user_work(-1)


def test_bad_ctx_period_rejected():
    with pytest.raises(WorkloadError):
        WorkloadBuilder("w").context_switch_every(0)


def test_builder_is_fluent():
    builder = WorkloadBuilder("w")
    assert builder.user_work(10) is builder
    assert builder.streaming_loads(5) is builder


def test_measure_returns_positive_cycles():
    cpu = get_cpu("zen2")
    assert webserver().measure(cpu, MitigationConfig.all_off()) > 3000


def test_overhead_reflects_boundary_crossings():
    """A syscall-heavy custom workload pays on Broadwell; a pure-compute
    one does not."""
    cpu = get_cpu("broadwell")
    config = linux_default(cpu)
    syscall_heavy = webserver().overhead_percent(cpu, config)
    compute_only = (WorkloadBuilder("compute").user_work(20000)
                    .overhead_percent(cpu, config))
    assert syscall_heavy > 10
    assert abs(compute_only) < 1


def test_context_switch_period_fires():
    from repro.cpu import counters as ctr
    builder = webserver().context_switch_every(4)
    runner = builder.build_runner(Machine(get_cpu("zen")),
                                  MitigationConfig.all_off())
    for _ in range(8):
        runner.run_iteration()
    # Initial placement + 2 per period boundary (out and back).
    assert runner.machine.counters.read(ctr.CONTEXT_SWITCHES) == 1 + 2 * 2


def test_process_attributes_feed_the_ssbd_policy():
    """A seccomp'd custom workload pays SSBD under pre-5.16 policy."""
    cpu = get_cpu("zen3")
    config = MitigationConfig(ssbd_mode=SSBDMode.SECCOMP)

    def cost(seccomp):
        builder = (WorkloadBuilder("sandboxed")
                   .user_work(2000)
                   .store_load_pairs(60)
                   .process(uses_seccomp=seccomp))
        return builder.measure(cpu, config)

    assert cost(True) > cost(False) * 1.05


def test_streaming_loads_touch_distinct_lines():
    builder = WorkloadBuilder("reader").streaming_loads(8)
    runner = builder.build_runner(Machine(get_cpu("zen")),
                                  MitigationConfig.all_off())
    first = runner.run_iteration()
    second = runner.run_iteration()  # different cursor -> cold lines again
    assert first > 0 and second > 0


def test_page_fault_step_uses_the_exception_path():
    from repro.kernel import EXCEPTION_EXTRA_CYCLES
    cpu = get_cpu("zen")
    fault_wl = (WorkloadBuilder("faulty").page_fault(RECV))
    sys_wl = (WorkloadBuilder("sysy").syscall(RECV))
    fault_cost = fault_wl.measure(cpu, MitigationConfig.all_off(),
                                  iterations=10, warmup=3)
    sys_cost = sys_wl.measure(cpu, MitigationConfig.all_off(),
                              iterations=10, warmup=3)
    assert fault_cost - sys_cost == pytest.approx(EXCEPTION_EXTRA_CYCLES,
                                                  abs=2)

"""The consolidation-host workload."""

import pytest

from repro.cpu import get_cpu
from repro.cpu import counters as ctr
from repro.errors import WorkloadError
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads.consolidation import (
    ConsolidationMix,
    build_tasks,
    consolidation_overhead_percent,
    run_host,
)


def test_mix_validation():
    with pytest.raises(WorkloadError):
        ConsolidationMix(plain_tasks=0, sandboxed_tasks=0)
    with pytest.raises(WorkloadError):
        ConsolidationMix(work_per_task=0)


def test_task_population_shape():
    mix = ConsolidationMix(plain_tasks=2, sandboxed_tasks=3)
    tasks = build_tasks(mix)
    assert len(tasks) == 5
    assert sum(1 for t in tasks if t.process.uses_seccomp) == 3


def test_all_work_completes():
    cpu = get_cpu("zen2")
    mix = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                           work_per_task=40_000)
    _, scheduler = run_host(cpu, MitigationConfig.all_off(), mix)
    assert scheduler.ticks > 0


def test_seccomp_services_draw_ibpb_on_switches():
    """Switching between plain and sandboxed tasks fires the conditional
    barrier; an all-plain population never does."""
    cpu = get_cpu("broadwell")
    config = linux_default(cpu)
    mixed = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                             work_per_task=40_000)
    plain = ConsolidationMix(plain_tasks=4, sandboxed_tasks=0,
                             work_per_task=40_000)
    _, sched_mixed = run_host(cpu, config, mixed)
    _, sched_plain = run_host(cpu, config, plain)
    assert sched_mixed.kernel.machine.counters.read(ctr.IBPB_COUNT) > 0
    assert sched_plain.kernel.machine.counters.read(ctr.IBPB_COUNT) == 0


def test_mixed_population_costs_more_than_plain():
    cpu = get_cpu("zen")  # the priciest IBPB (Table 6)
    config = linux_default(cpu)
    mixed = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                             work_per_task=40_000)
    plain = ConsolidationMix(plain_tasks=4, sandboxed_tasks=0,
                             work_per_task=40_000)
    assert consolidation_overhead_percent(cpu, config, mixed) > \
        consolidation_overhead_percent(cpu, config, plain)


def test_longer_timeslices_amortize_the_tax():
    cpu = get_cpu("broadwell")
    config = linux_default(cpu)
    chatty = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                              work_per_task=60_000, timeslice_cycles=6_000)
    calm = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                            work_per_task=60_000, timeslice_cycles=30_000)
    assert consolidation_overhead_percent(cpu, config, chatty) > \
        consolidation_overhead_percent(cpu, config, calm)


def test_overhead_shrinks_on_new_silicon():
    mix = ConsolidationMix(plain_tasks=2, sandboxed_tasks=2,
                           work_per_task=40_000)
    old = consolidation_overhead_percent(get_cpu("broadwell"),
                                         linux_default(get_cpu("broadwell")),
                                         mix)
    new = consolidation_overhead_percent(
        get_cpu("ice_lake_server"),
        linux_default(get_cpu("ice_lake_server")), mix)
    assert old > new

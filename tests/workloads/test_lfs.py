"""LFS workloads: exit rates and the <2% host-mitigation band."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations import MitigationConfig, linux_default
from repro.workloads.lfs import (
    LARGEFILE,
    LFSRunner,
    SMALLFILE,
    SUITE,
    get_workload,
    run_workload,
)


def test_suite_is_smallfile_and_largefile():
    assert {w.name for w in SUITE} == {"smallfile", "largefile"}


def test_get_workload_unknown():
    with pytest.raises(KeyError):
        get_workload("mediumfile")


def test_smallfile_fsyncs_largefile_streams():
    assert SMALLFILE.fsync_per_file and not LARGEFILE.fsync_per_file
    assert LARGEFILE.submit_batch > SMALLFILE.submit_batch


def test_smallfile_has_higher_exit_rate_than_largefile():
    def exits_per_cycle(workload):
        runner = LFSRunner(Machine(get_cpu("zen2")),
                           MitigationConfig.all_off(),
                           MitigationConfig.all_off())
        cycles = runner.run_iteration(workload)
        return runner.hypervisor.stats.exits / cycles
    assert exits_per_cycle(SMALLFILE) > exits_per_cycle(LARGEFILE)


def test_guest_work_dominates_host_work():
    """The section 4.4 rate argument: most cycles are guest-side."""
    runner = LFSRunner(Machine(get_cpu("broadwell")),
                       MitigationConfig.all_off(), MitigationConfig.all_off())
    runner.run_iteration(SMALLFILE)
    stats = runner.hypervisor.stats
    assert stats.guest_cycles > 2 * stats.host_cycles


def test_host_mitigation_overhead_under_the_paper_band():
    """Median under 2%; the flush-heavy smallfile worst case stays ~2.5%."""
    overheads = []
    for key in ("broadwell", "cascade_lake", "zen"):
        cpu = get_cpu(key)
        for workload in SUITE:
            base = run_workload(Machine(cpu, seed=1),
                                MitigationConfig.all_off(), workload,
                                iterations=4, warmup=1)
            full = run_workload(Machine(cpu, seed=1), linux_default(cpu),
                                workload, iterations=4, warmup=1)
            overheads.append(full / base - 1)
    overheads.sort()
    median = overheads[len(overheads) // 2]
    assert median < 0.02
    assert max(overheads) < 0.04


def test_block_allocation_wraps():
    runner = LFSRunner(Machine(get_cpu("zen")), MitigationConfig.all_off(),
                       MitigationConfig.all_off())
    runner._next_block = runner.disk.capacity_blocks - 1
    runner.run_iteration(LARGEFILE)  # must not raise out-of-range

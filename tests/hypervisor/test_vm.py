"""Hypervisor: exit paths, guest kernel isolation, mitigation work."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import counters as ctr
from repro.hypervisor import Hypervisor
from repro.kernel import GETPID
from repro.mitigations import MitigationConfig, linux_default


def make(cpu_key="broadwell", host_config=None):
    cpu = get_cpu(cpu_key)
    machine = Machine(cpu)
    host = host_config if host_config is not None else MitigationConfig.all_off()
    return Hypervisor(machine, host)


def test_vm_exit_counts_and_costs():
    hv = make()
    cycles = hv.vm_exit(handler_cycles=1000)
    assert hv.stats.exits == 1
    assert cycles >= hv.machine.costs.vmexit + hv.machine.costs.vmenter + 1000


def test_exit_returns_machine_to_guest_mode():
    hv = make()
    hv.machine.mode = Mode.GUEST_KERNEL
    hv.vm_exit(0)
    assert hv.machine.mode is Mode.GUEST_KERNEL


def test_mds_host_clears_buffers_before_reentry():
    cpu = get_cpu("broadwell")
    hv = Hypervisor(Machine(cpu), MitigationConfig(mds_verw=True))
    hv.machine.mds_buffers.deposit_load(0xAA, Mode.KERNEL)
    hv.vm_exit(0)
    assert hv.machine.mds_buffers.sample(Mode.GUEST_KERNEL) == {}


def test_l1tf_flush_only_on_tainting_exits():
    """KVM's conditional flush: fast-path exits skip it."""
    cpu = get_cpu("broadwell")
    hv = Hypervisor(Machine(cpu), MitigationConfig(l1d_flush_on_vmentry=True))
    hv.vm_exit(0, taints_l1=False)
    assert hv.machine.counters.read(ctr.L1D_FLUSHES) == 0
    hv.vm_exit(0, taints_l1=True)
    assert hv.machine.counters.read(ctr.L1D_FLUSHES) == 1


def test_l1tf_flush_erases_host_l1_data():
    from repro.cpu import isa
    cpu = get_cpu("skylake_client")
    hv = Hypervisor(Machine(cpu), MitigationConfig(l1d_flush_on_vmentry=True))
    hv.machine.mode = Mode.KERNEL
    hv.machine.execute(isa.load(0x1234_0000, kernel=True))
    hv.machine.mode = Mode.GUEST_KERNEL
    hv.vm_exit(0, taints_l1=True)
    assert not hv.machine.caches.probe_l1(0x1234_0000)


def test_guest_syscall_does_not_exit():
    hv = make()
    guest = hv.create_guest()
    guest.syscall(GETPID)
    assert hv.stats.exits == 0
    assert hv.stats.guest_cycles > 0


def test_guest_syscall_restores_mode():
    hv = make()
    guest = hv.create_guest()
    hv.machine.mode = Mode.USER
    guest.syscall(GETPID)
    assert hv.machine.mode is Mode.USER


def test_hypercall_exits():
    hv = make()
    guest = hv.create_guest()
    guest.hypercall(500)
    assert hv.stats.exits == 1


def test_host_mitigations_make_exits_pricier():
    cpu = get_cpu("broadwell")
    bare = Hypervisor(Machine(cpu), MitigationConfig.all_off())
    full = Hypervisor(Machine(cpu), linux_default(cpu))
    assert full.vm_exit(0, taints_l1=True) > bare.vm_exit(0, taints_l1=True)


def test_guest_runs_its_own_mitigation_config():
    cpu = get_cpu("broadwell")
    guest_cfg = MitigationConfig(pti=True)
    hv = Hypervisor(Machine(cpu), MitigationConfig.all_off(), guest_cfg)
    guest = hv.create_guest()
    assert guest.kernel.config.pti

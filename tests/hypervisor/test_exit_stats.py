"""Exit accounting: the rate bookkeeping section 4.4's argument rests on."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.hypervisor import EXIT_DISPATCH_CYCLES, Hypervisor
from repro.kernel import GETPID, HandlerProfile
from repro.mitigations import MitigationConfig, linux_default


def make(host_config=None, cpu_key="broadwell"):
    return Hypervisor(Machine(get_cpu(cpu_key)),
                      host_config if host_config is not None
                      else MitigationConfig.all_off())


def test_guest_and_host_cycles_tracked_separately():
    hv = make()
    guest = hv.create_guest()
    guest.syscall(GETPID)
    guest.hypercall(1000)
    assert hv.stats.guest_cycles > 0
    assert hv.stats.host_cycles > 0
    assert hv.stats.exits == 1


def test_exit_cost_floor():
    hv = make()
    cycles = hv.vm_exit(0)
    machine_costs = hv.machine.costs
    assert cycles >= machine_costs.vmexit + EXIT_DISPATCH_CYCLES + \
        machine_costs.vmenter


def test_handler_cycles_add_linearly():
    hv = make()
    small = hv.vm_exit(1000)
    big = hv.vm_exit(9000)
    assert big - small == pytest.approx(8000, abs=700)  # modulo verw etc.


def test_exit_rate_computation_matches_the_paper_shape():
    """Guest-heavy workloads keep cycles-per-exit high: the 4.4 regime."""
    hv = make(linux_default(get_cpu("broadwell")))
    guest = hv.create_guest()
    heavy = HandlerProfile("guest_fs", work_cycles=40_000, loads=16,
                           stores=16, indirect_branches=6)
    total = 0
    for _ in range(10):
        total += guest.syscall(heavy)
    total += guest.hypercall(8000)
    cycles_per_exit = (hv.stats.guest_cycles + hv.stats.host_cycles) / \
        hv.stats.exits
    assert cycles_per_exit > 100_000


def test_exits_preserve_user_guest_mode_distinction():
    hv = make()
    hv.machine.mode = Mode.GUEST_USER
    guest = hv.create_guest()
    guest.syscall(GETPID)
    assert hv.machine.mode is Mode.GUEST_USER


def test_mds_clearing_per_exit_counts():
    from repro.cpu import counters as ctr
    hv = make(MitigationConfig(mds_verw=True))
    for _ in range(5):
        hv.vm_exit(100)
    assert hv.machine.counters.read(ctr.VERW_CLEARS) == 5

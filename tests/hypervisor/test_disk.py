"""Emulated disk: batching, exits per operation, bounds."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.hypervisor import EmulatedDisk, Hypervisor
from repro.mitigations import MitigationConfig


@pytest.fixture
def disk():
    hv = Hypervisor(Machine(get_cpu("zen2")), MitigationConfig.all_off())
    return EmulatedDisk(hv.create_guest()), hv


def test_queue_write_does_not_exit(disk):
    d, hv = disk
    d.queue_write(5)
    assert hv.stats.exits == 0
    assert d.pending == 1


def test_kick_submits_batch_in_one_exit(disk):
    d, hv = disk
    for block in range(10):
        d.queue_write(block)
    cycles = d.kick()
    assert hv.stats.exits == 1
    assert hv.stats.kicks if hasattr(hv.stats, 'kicks') else True
    assert d.stats.writes == 10
    assert d.pending == 0
    assert cycles > 0


def test_empty_kick_is_free(disk):
    d, hv = disk
    assert d.kick() == 0
    assert hv.stats.exits == 0


def test_write_block_is_queue_plus_kick(disk):
    d, hv = disk
    d.write_block(1)
    assert hv.stats.exits == 1
    assert d.stats.writes == 1


def test_read_block_exits(disk):
    d, hv = disk
    d.read_block(7)
    assert hv.stats.exits == 1
    assert d.stats.reads == 1


def test_flush_submits_pending_then_drains(disk):
    d, hv = disk
    d.queue_write(1)
    d.flush()
    assert d.stats.writes == 1
    assert d.stats.flushes == 1
    assert hv.stats.exits == 2  # kick + flush


def test_batched_writes_cost_less_per_block_than_unbatched():
    def run(batch):
        hv = Hypervisor(Machine(get_cpu("zen2")), MitigationConfig.all_off())
        d = EmulatedDisk(hv.create_guest())
        total = 0
        for block in range(16):
            d.queue_write(block)
            if d.pending >= batch:
                total += d.kick()
        total += d.kick()
        return total
    assert run(16) < run(1)


def test_out_of_range_blocks_rejected(disk):
    d, _ = disk
    with pytest.raises(ValueError):
        d.read_block(d.capacity_blocks)
    with pytest.raises(ValueError):
        d.queue_write(-1)


def test_request_counter(disk):
    d, _ = disk
    d.write_block(0)
    d.read_block(0)
    d.flush()
    assert d.stats.requests == 3

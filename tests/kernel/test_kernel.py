"""The booted kernel: syscall round trips, boot-time decisions."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import counters as ctr
from repro.cpu.machine import AMD_RETPOLINE, GENERIC_RETPOLINE
from repro.errors import ConfigurationError
from repro.kernel import EXCEPTION_EXTRA_CYCLES, GETPID, HandlerProfile, Kernel
from repro.mitigations import MitigationConfig, V2Strategy, linux_default


def make(cpu_key="broadwell", config=None):
    cpu = get_cpu(cpu_key)
    machine = Machine(cpu)
    return Kernel(machine, config if config is not None else
                  MitigationConfig.all_off())


def test_boot_validates_config():
    with pytest.raises(ConfigurationError):
        make("zen", MitigationConfig(v2_strategy=V2Strategy.IBRS))


def test_boot_sets_kpti_mapping_state():
    assert make("broadwell", MitigationConfig(pti=True))\
        .machine.kernel_mapped_in_user is False
    assert make("broadwell").machine.kernel_mapped_in_user is True


def test_boot_selects_retpoline_variant():
    k = make("zen2", MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_AMD))
    assert k.machine.retpoline_variant == AMD_RETPOLINE
    k = make("broadwell",
             MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC))
    assert k.machine.retpoline_variant == GENERIC_RETPOLINE


def test_boot_enables_eibrs_once():
    k = make("cascade_lake", MitigationConfig(v2_strategy=V2Strategy.EIBRS))
    assert k.machine.msr.eibrs_active


def test_syscall_returns_to_user_mode():
    k = make()
    k.syscall(GETPID)
    assert k.machine.mode is Mode.USER


def test_syscall_cycles_scale_with_mitigations():
    cpu = get_cpu("broadwell")
    bare = Kernel(Machine(cpu), MitigationConfig.all_off())
    full = Kernel(Machine(cpu), linux_default(cpu))
    for _ in range(4):  # warm both
        bare.syscall(GETPID)
        full.syscall(GETPID)
    assert full.syscall(GETPID) > bare.syscall(GETPID) + 800


def test_pti_syscall_extra_is_two_cr3_swaps():
    cpu = get_cpu("broadwell")
    bare = Kernel(Machine(cpu), MitigationConfig.all_off())
    pti = Kernel(Machine(cpu), MitigationConfig(pti=True))
    for _ in range(4):
        bare.syscall(GETPID)
        pti.syscall(GETPID)
    delta = pti.syscall(GETPID) - bare.syscall(GETPID)
    assert delta == 2 * cpu.costs.swap_cr3


def test_mds_syscall_extra_is_one_verw():
    cpu = get_cpu("skylake_client")
    bare = Kernel(Machine(cpu), MitigationConfig.all_off())
    mds = Kernel(Machine(cpu), MitigationConfig(mds_verw=True))
    for _ in range(4):
        bare.syscall(GETPID)
        mds.syscall(GETPID)
    assert mds.syscall(GETPID) - bare.syscall(GETPID) == cpu.costs.verw_clear


def test_retpoline_extra_scales_with_branch_count():
    cpu = get_cpu("ice_lake_server")
    profile = HandlerProfile("branchy", work_cycles=0, loads=0, stores=0,
                             indirect_branches=6)
    bare = Kernel(Machine(cpu), MitigationConfig.all_off())
    retp = Kernel(Machine(cpu),
                  MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC))
    for _ in range(4):
        bare.syscall(profile)
        retp.syscall(profile)
    delta = retp.syscall(profile) - bare.syscall(profile)
    assert delta == 6 * cpu.costs.generic_retpoline_extra


def test_page_fault_costs_more_than_syscall():
    k = make()
    for _ in range(4):
        k.syscall(GETPID)
        k.page_fault(GETPID)
    assert k.page_fault(GETPID) - k.syscall(GETPID) == EXCEPTION_EXTRA_CYCLES


def test_handler_compilation_is_cached():
    k = make()
    k.syscall(GETPID)
    first = k._compiled(GETPID)
    assert k._compiled(GETPID) is first


def test_kernel_entries_counted():
    k = make()
    k.syscall(GETPID)
    k.syscall(GETPID)
    assert k.machine.counters.read(ctr.KERNEL_ENTRIES) == 2


def test_meltdown_fails_against_pti_booted_kernel():
    from repro.mitigations.meltdown import attempt_meltdown
    k = make("broadwell", MitigationConfig(pti=True))
    assert attempt_meltdown(k.machine, 0x42) is None


def test_meltdown_works_against_unmitigated_kernel():
    from repro.mitigations.meltdown import attempt_meltdown
    k = make("broadwell")
    assert attempt_meltdown(k.machine, 0x42) == 0x42

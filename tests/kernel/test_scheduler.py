"""Context switch path: IBPB policy, RSB stuffing, FPU, SSBD toggling."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.kernel import Kernel, Process
from repro.mitigations import MitigationConfig, SSBDMode, V2Strategy
from repro.mitigations import linux_default


def kernel_with(config, cpu_key="broadwell"):
    return Kernel(Machine(get_cpu(cpu_key)), config)


def switch_pair(kernel):
    a, b = Process("a"), Process("b")
    kernel.context_switch(a)
    return a, b


def test_switch_sets_current():
    k = kernel_with(MitigationConfig.all_off())
    a, b = switch_pair(k)
    k.context_switch(b)
    assert k.current_process is b


def test_plain_processes_get_no_ibpb_under_conditional_policy():
    """Linux's default: the Table 6 cost only hits opted-in tasks."""
    k = kernel_with(MitigationConfig(v2_ibpb=True))
    a, b = switch_pair(k)
    k.context_switch(b)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 0


def test_opted_in_process_gets_ibpb():
    k = kernel_with(MitigationConfig(v2_ibpb=True))
    a = Process("a")
    b = Process("b", ibpb_protect=True)
    k.context_switch(a)
    k.context_switch(b)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 1


def test_seccomp_process_gets_ibpb():
    k = kernel_with(MitigationConfig(v2_ibpb=True))
    a = Process("a")
    b = Process("b", uses_seccomp=True)
    k.context_switch(a)
    k.context_switch(b)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 1


def test_ibpb_always_fires_on_every_cross_mm_switch():
    k = kernel_with(MitigationConfig(v2_ibpb=True, v2_ibpb_always=True))
    a, b = switch_pair(k)
    k.context_switch(b)
    k.context_switch(a)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 2


def test_threads_of_one_mm_never_get_ibpb():
    k = kernel_with(MitigationConfig(v2_ibpb=True, v2_ibpb_always=True))
    a = Process("a", ibpb_protect=True)
    t = a.thread()
    k.context_switch(a)
    k.context_switch(t)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 0


def test_ibpb_disabled_config_never_fires():
    k = kernel_with(MitigationConfig(v2_ibpb=False))
    a = Process("a", ibpb_protect=True)
    b = Process("b", ibpb_protect=True)
    k.context_switch(a)
    k.context_switch(b)
    assert k.machine.counters.read(ctr.IBPB_COUNT) == 0


def test_rsb_stuffing_fills_buffer_on_switch():
    k = kernel_with(MitigationConfig(v2_rsb_stuffing=True))
    a, b = switch_pair(k)
    k.machine.rsb.clear()
    k.context_switch(b)
    assert len(k.machine.rsb) == k.machine.cpu.rsb_depth


def test_eager_fpu_costs_xsave_xrstor():
    cpu = get_cpu("zen3")
    lazy = Kernel(Machine(cpu), MitigationConfig(eager_fpu=False))
    eager = Kernel(Machine(cpu), MitigationConfig(eager_fpu=True))
    a1, b1 = Process("a"), Process("b")
    a2, b2 = Process("a"), Process("b")
    lazy.context_switch(a1)
    eager.context_switch(a2)
    delta = eager.context_switch(b2) - lazy.context_switch(b1)
    assert delta == cpu.costs.xsave + cpu.costs.xrstor


def test_lazy_fpu_charges_trap_for_fpu_tasks():
    cpu = get_cpu("broadwell")
    k = Kernel(Machine(cpu), MitigationConfig(eager_fpu=False))
    a = Process("a")
    b = Process("b", uses_fpu=True)
    k.context_switch(a)
    cost = k.context_switch(b)
    assert cost >= cpu.costs.fpu_trap


def test_lazyfp_leak_closed_by_eager_config():
    from repro.mitigations.lazyfp import attempt_lazyfp
    cpu = get_cpu("broadwell")
    victim = Process("victim", uses_fpu=True)
    victim.fpu_secret = 0xFEED
    attacker = Process("attacker")

    lazy = Kernel(Machine(cpu), MitigationConfig(eager_fpu=False))
    lazy.context_switch(victim)
    lazy.scheduler.fpu.secret = victim.fpu_secret
    lazy.scheduler.fpu.owner_pid = victim.pid
    lazy.context_switch(attacker)
    assert attempt_lazyfp(lazy.machine, lazy.scheduler.fpu,
                          attacker.pid) == 0xFEED

    eager = Kernel(Machine(cpu), MitigationConfig(eager_fpu=True))
    eager.context_switch(victim)
    eager.context_switch(attacker)
    assert attempt_lazyfp(eager.machine, eager.scheduler.fpu,
                          attacker.pid) is None


def test_ssbd_msr_toggles_with_process_policy():
    config = MitigationConfig(ssbd_mode=SSBDMode.SECCOMP)
    k = kernel_with(config)
    plain = Process("plain")
    sandboxed = Process("firefox", uses_seccomp=True)
    k.context_switch(plain)
    assert not k.machine.msr.ssbd_enabled
    k.context_switch(sandboxed)
    assert k.machine.msr.ssbd_enabled
    k.context_switch(plain)
    assert not k.machine.msr.ssbd_enabled


def test_ssbd_off_policy_never_sets_msr():
    k = kernel_with(MitigationConfig(ssbd_mode=SSBDMode.OFF))
    k.context_switch(Process("p", uses_seccomp=True, ssbd_prctl=True))
    assert not k.machine.msr.ssbd_enabled


def test_context_switch_counter():
    k = kernel_with(MitigationConfig.all_off())
    a, b = switch_pair(k)
    k.context_switch(b)
    assert k.machine.counters.read(ctr.CONTEXT_SWITCHES) == 2

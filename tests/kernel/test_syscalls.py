"""Handler profiles and their compilation."""

import pytest

from repro.cpu.isa import Op
from repro.kernel.syscalls import GETPID, HandlerProfile
from repro.mitigations import MitigationConfig, V2Strategy


def compile_profile(profile, config=None, region=0):
    return profile.compile(config or MitigationConfig.all_off(), region)


def test_compiled_shape_counts():
    profile = HandlerProfile("p", work_cycles=100, loads=3, stores=2,
                             indirect_branches=4, copy_bytes=128)
    block = compile_profile(profile)
    ops = [i.op for i in block]
    assert ops.count(Op.WORK) == 1
    assert ops.count(Op.LOAD) == 3 + 2   # loads + copy source lines
    assert ops.count(Op.STORE) == 2 + 2  # stores + copy dest lines
    assert ops.count(Op.BRANCH_INDIRECT) == 4


def test_zero_work_emits_no_work_instruction():
    profile = HandlerProfile("p", work_cycles=0, loads=1, stores=0,
                             indirect_branches=0)
    assert all(i.op is not Op.WORK for i in compile_profile(profile))


def test_copy_rounds_up_to_lines():
    profile = HandlerProfile("p", work_cycles=0, loads=0, stores=0,
                             indirect_branches=0, copy_bytes=65)
    block = compile_profile(profile)
    assert len([i for i in block if i.op is Op.LOAD]) == 2  # ceil(65/64)


def test_retpoline_config_marks_branches():
    profile = HandlerProfile("p", indirect_branches=3)
    config = MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC)
    branches = [i for i in compile_profile(profile, config)
                if i.op is Op.BRANCH_INDIRECT]
    assert branches and all(i.retpoline for i in branches)


def test_plain_config_leaves_branches_raw():
    profile = HandlerProfile("p", indirect_branches=3)
    branches = [i for i in compile_profile(profile)
                if i.op is Op.BRANCH_INDIRECT]
    assert branches and not any(i.retpoline for i in branches)


def test_branch_pcs_are_distinct():
    profile = HandlerProfile("p", indirect_branches=5)
    pcs = [i.pc for i in compile_profile(profile) if i.op is Op.BRANCH_INDIRECT]
    assert len(set(pcs)) == 5


def test_regions_do_not_overlap():
    profile = HandlerProfile("p", loads=4)
    def memory_addrs(region):
        return {i.address for i in compile_profile(profile, region=region)
                if i.op in (Op.LOAD, Op.STORE)}
    assert not memory_addrs(0) & memory_addrs(1)


def test_memory_ops_are_kernel_addresses():
    block = compile_profile(HandlerProfile("p", loads=2, stores=2))
    for instr in block:
        if instr.op in (Op.LOAD, Op.STORE):
            assert instr.kernel_address


def test_getpid_reference_profile_is_small():
    block = compile_profile(GETPID)
    assert len(block) < 10


def test_usercopy_masking_adds_one_cmov_per_transfer():
    profile = HandlerProfile("p", copy_bytes=256)
    hardened = MitigationConfig(v1_usercopy_masking=True)
    plain_block = compile_profile(profile)
    hard_block = compile_profile(profile, hardened)
    assert sum(1 for i in hard_block if i.op is Op.CMOV) == 1
    assert sum(1 for i in plain_block if i.op is Op.CMOV) == 0


def test_usercopy_masking_skipped_without_copies():
    profile = HandlerProfile("p", copy_bytes=0)
    block = compile_profile(profile, MitigationConfig(v1_usercopy_masking=True))
    assert not any(i.op is Op.CMOV for i in block)


def test_usercopy_masking_cost_is_unmeasurable_end_to_end():
    """The paper's 4.6 finding: kernel V1 mitigations don't move LEBench."""
    from repro.cpu import Machine, get_cpu
    from repro.kernel import Kernel
    cpu = get_cpu("broadwell")
    profile = HandlerProfile("read_like", work_cycles=1200, copy_bytes=512)
    def cost(config):
        kernel = Kernel(Machine(cpu), config)
        for _ in range(4):
            kernel.syscall(profile)
        return kernel.syscall(profile)
    delta = cost(MitigationConfig(v1_usercopy_masking=True)) - \
        cost(MitigationConfig.all_off())
    assert delta == cpu.costs.cmov  # ~2 cycles on a ~1500-cycle op

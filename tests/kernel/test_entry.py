"""Kernel entry/exit path construction under different configs."""

from repro.cpu.isa import Op
from repro.mitigations.base import MitigationConfig, V2Strategy


from repro.kernel.entry import build_entry_sequence, build_exit_sequence


def ops(seq):
    return [i.op for i in seq]


def test_bare_entry_is_syscall_swapgs():
    seq = build_entry_sequence(MitigationConfig.all_off())
    assert ops(seq) == [Op.SYSCALL, Op.SWAPGS]


def test_bare_exit_is_swapgs_sysret():
    seq = build_exit_sequence(MitigationConfig.all_off())
    assert ops(seq) == [Op.SWAPGS, Op.SYSRET]


def test_v1_adds_lfence_after_swapgs():
    seq = build_entry_sequence(MitigationConfig(v1_lfence_swapgs=True))
    assert ops(seq) == [Op.SYSCALL, Op.SWAPGS, Op.LFENCE]


def test_pti_adds_cr3_swaps_both_ways():
    config = MitigationConfig(pti=True)
    assert Op.MOV_CR3 in ops(build_entry_sequence(config))
    assert Op.MOV_CR3 in ops(build_exit_sequence(config))


def test_mds_adds_verw_on_exit_only():
    config = MitigationConfig(mds_verw=True)
    assert Op.VERW not in ops(build_entry_sequence(config))
    assert ops(build_exit_sequence(config))[0] is Op.VERW


def test_legacy_ibrs_writes_msr_both_ways():
    config = MitigationConfig(v2_strategy=V2Strategy.IBRS)
    assert Op.WRMSR in ops(build_entry_sequence(config))
    assert Op.WRMSR in ops(build_exit_sequence(config))


def test_eibrs_adds_no_per_entry_msr_write():
    """The whole point of enhanced IBRS (section 6.2.2)."""
    config = MitigationConfig(v2_strategy=V2Strategy.EIBRS)
    assert Op.WRMSR not in ops(build_entry_sequence(config))
    assert Op.WRMSR not in ops(build_exit_sequence(config))


def test_full_config_ordering():
    config = MitigationConfig(pti=True, mds_verw=True, v1_lfence_swapgs=True)
    entry = ops(build_entry_sequence(config))
    exit_ = ops(build_exit_sequence(config))
    # Entry: hardware event, gs swap, V1 fence, then the PTI switch.
    assert entry == [Op.SYSCALL, Op.SWAPGS, Op.LFENCE, Op.MOV_CR3]
    # Exit: clear buffers while still on kernel tables, then switch, leave.
    assert exit_ == [Op.VERW, Op.MOV_CR3, Op.SWAPGS, Op.SYSRET]

"""Virtual memory: VMAs, demand paging, KPTI views, L1TF-safe unmap."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.errors import SegmentationFault, WorkloadError
from repro.kernel import Process
from repro.kernel.memory import PAGE, MemoryManager, VMA
from repro.mitigations import MitigationConfig
from repro.mitigations.l1tf import UNCACHEABLE_FRAME, attempt_l1tf


def make_mm(cpu_key="broadwell", config=None):
    machine = Machine(get_cpu(cpu_key))
    return MemoryManager(machine,
                         config if config is not None else
                         MitigationConfig.all_off())


def test_vma_bounds():
    vma = VMA(start=0x1000, pages=2)
    assert vma.contains(0x1000)
    assert vma.contains(0x2FFF)
    assert not vma.contains(0x3000)


def test_mmap_reserves_distinct_ranges():
    mm = make_mm()
    process = Process("p")
    a, _ = mm.mmap(process, pages=4)
    b, _ = mm.mmap(process, pages=4)
    assert b >= a + 4 * PAGE


def test_mmap_rejects_empty():
    with pytest.raises(WorkloadError):
        make_mm().mmap(Process("p"), pages=0)


def test_touch_outside_any_vma_faults():
    mm = make_mm()
    with pytest.raises(SegmentationFault):
        mm.touch(Process("p"), 0x7000_0000_0000)


def test_first_touch_is_a_minor_fault_second_is_not():
    mm = make_mm()
    process = Process("p")
    start, _ = mm.mmap(process, pages=1)
    first = mm.touch(process, start)
    assert mm.minor_faults == 1
    second = mm.touch(process, start)
    assert mm.minor_faults == 1
    assert first > second  # the fault path dominates the warm access


def test_each_page_faults_once():
    mm = make_mm()
    process = Process("p")
    start, _ = mm.mmap(process, pages=3)
    for i in range(3):
        mm.touch(process, start + i * PAGE)
    assert mm.minor_faults == 3


def test_views_are_per_mm_not_per_task():
    mm = make_mm()
    a = Process("a")
    thread = a.thread()
    start, _ = mm.mmap(a, pages=1)
    mm.touch(a, start)
    # The thread shares the mm: no second fault.
    mm.touch(thread, start)
    assert mm.minor_faults == 1


def test_munmap_unknown_vma_rejected():
    mm = make_mm()
    with pytest.raises(WorkloadError):
        mm.munmap(Process("p"), 0x1234_0000)


def test_munmap_then_touch_faults():
    mm = make_mm()
    process = Process("p")
    start, _ = mm.mmap(process, pages=1)
    mm.touch(process, start)
    mm.munmap(process, start)
    with pytest.raises(SegmentationFault):
        mm.touch(process, start)


class TestKPTIViews:
    def test_without_kpti_kernel_is_in_user_views(self):
        mm = make_mm(config=MitigationConfig(pti=False))
        assert mm.kernel_reachable_from_user(Process("p")) is True
        assert mm.machine.kernel_mapped_in_user is True

    def test_with_kpti_user_views_carry_no_kernel(self):
        mm = make_mm(config=MitigationConfig(pti=True))
        assert mm.kernel_reachable_from_user(Process("p")) is False
        assert mm.machine.kernel_mapped_in_user is False


class TestL1TFLinkage:
    def _stale_pte(self, config):
        """mmap, touch, munmap: what PTE does the teardown leave?"""
        mm = make_mm(cpu_key="skylake_client", config=config)
        process = Process("victim")
        start, _ = mm.mmap(process, pages=1)
        mm.touch(process, start)
        mm.munmap(process, start)
        (pte,) = mm.not_present_ptes(process)
        return mm, pte

    def test_unmitigated_teardown_leaves_an_aimable_pte(self):
        mm, pte = self._stale_pte(MitigationConfig(pte_inversion=False))
        assert not pte.present
        assert pte.physical_address < UNCACHEABLE_FRAME
        # Warm the stale frame's line in L1 and the attack goes through.
        from repro.cpu import isa
        mm.machine.execute(isa.load(pte.physical_address))
        assert attempt_l1tf(mm.machine, pte) is True

    def test_pte_inversion_points_the_pte_into_nowhere(self):
        mm, pte = self._stale_pte(MitigationConfig(pte_inversion=True))
        assert pte.physical_address >= UNCACHEABLE_FRAME
        assert attempt_l1tf(mm.machine, pte) is False


def test_munmap_invalidates_tlb():
    mm = make_mm()
    process = Process("p")
    start, _ = mm.mmap(process, pages=2)
    mm.touch(process, start)
    resident_before = mm.machine.tlb.resident()
    assert resident_before > 0
    mm.munmap(process, start)
    assert mm.machine.tlb.resident() == 0

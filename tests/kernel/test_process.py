"""Process and address space model."""

from repro.kernel import AddressSpace, Process


def test_pids_are_unique():
    a, b = Process("a"), Process("b")
    assert a.pid != b.pid


def test_each_process_gets_its_own_mm():
    a, b = Process("a"), Process("b")
    assert a.mm is not b.mm
    assert a.mm.mm_id != b.mm.mm_id


def test_thread_shares_mm():
    a = Process("a")
    t = a.thread()
    assert t.mm is a.mm
    assert t.pid != a.pid


def test_thread_inherits_security_attributes():
    a = Process("a", uses_fpu=True, uses_seccomp=True, ssbd_prctl=True)
    t = a.thread("worker")
    assert t.uses_fpu and t.uses_seccomp and t.ssbd_prctl
    assert t.name == "worker"


def test_kpti_pcid_pair_differs_by_high_bit():
    mm = AddressSpace()
    assert mm.user_pcid == mm.kernel_pcid | 0x800
    assert mm.kernel_pcid < 0x800


def test_defaults_are_unprivileged_and_unopted():
    p = Process()
    assert not p.uses_seccomp
    assert not p.ssbd_prctl
    assert not p.ibpb_protect

"""Interrupt delivery, timeslice scheduling, interrupted retpolines."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.errors import ConfigurationError
from repro.kernel import HandlerProfile, Kernel, Process
from repro.kernel.interrupts import (
    DEVICE_VECTOR,
    InterruptController,
    TIMER_VECTOR,
    TaskState,
    TimesliceScheduler,
    interrupted_retpoline_is_safe,
)
from repro.mitigations import MitigationConfig, linux_default


def make_kernel(cpu_key="zen2", config=None):
    cpu = get_cpu(cpu_key)
    return Kernel(Machine(cpu, seed=1),
                  config if config is not None else MitigationConfig.all_off())


class TestController:
    def test_deliver_counts_and_costs(self):
        controller = InterruptController(make_kernel())
        cycles = controller.deliver(TIMER_VECTOR)
        assert cycles > 700  # handler work plus entry/exit
        assert controller.delivered[TIMER_VECTOR] == 1

    def test_unknown_vector_rejected(self):
        controller = InterruptController(make_kernel())
        with pytest.raises(ConfigurationError):
            controller.deliver(0x99)

    def test_register_custom_vector(self):
        controller = InterruptController(make_kernel())
        controller.register(0x30, HandlerProfile("nic", work_cycles=100))
        assert controller.deliver(0x30) > 100

    def test_register_rejects_reserved_vectors(self):
        controller = InterruptController(make_kernel())
        with pytest.raises(ConfigurationError):
            controller.register(0x0E, HandlerProfile("pf"))

    def test_interrupt_pays_boundary_mitigations(self):
        """IRQs cross the same boundary as syscalls: PTI/MDS bill here."""
        cpu_key = "broadwell"
        bare = InterruptController(make_kernel(cpu_key))
        full = InterruptController(
            make_kernel(cpu_key, linux_default(get_cpu(cpu_key))))
        for _ in range(3):
            bare.deliver(DEVICE_VECTOR)
            full.deliver(DEVICE_VECTOR)
        assert full.deliver(DEVICE_VECTOR) > bare.deliver(DEVICE_VECTOR) + 800


class TestTimesliceScheduler:
    def tasks(self, n=3, work=50_000):
        return [TaskState(Process(f"task{i}"), work_remaining=work)
                for i in range(n)]

    def test_all_work_completes(self):
        scheduler = TimesliceScheduler(make_kernel(), timeslice_cycles=20_000)
        tasks = self.tasks()
        scheduler.run(tasks)
        assert all(t.work_remaining == 0 for t in tasks)
        assert all(t.work_done == 50_000 for t in tasks)

    def test_preemption_produces_ticks_and_switches(self):
        kernel = make_kernel()
        scheduler = TimesliceScheduler(kernel, timeslice_cycles=10_000)
        scheduler.run(self.tasks(n=2, work=30_000))
        assert scheduler.ticks >= 4  # 2 tasks x 3 slices, minus the tail
        assert kernel.machine.counters.read(ctr.CONTEXT_SWITCHES) >= 6

    def test_invalid_timeslice_rejected(self):
        with pytest.raises(ConfigurationError):
            TimesliceScheduler(make_kernel(), timeslice_cycles=0)

    def test_mitigations_tax_preemptive_multitasking(self):
        """The scheduler pays entry/exit + switch mitigation work on every
        slice; with slices this small the tax is visible."""
        def total(cpu_key, config):
            kernel = make_kernel(cpu_key, config)
            scheduler = TimesliceScheduler(kernel, timeslice_cycles=5_000)
            return scheduler.run(self.tasks(n=2, work=40_000))
        cpu = get_cpu("broadwell")
        assert total("broadwell", linux_default(cpu)) > \
            1.10 * total("broadwell", MitigationConfig.all_off())

    def test_single_task_needs_no_tick(self):
        scheduler = TimesliceScheduler(make_kernel(),
                                       timeslice_cycles=100_000)
        scheduler.run(self.tasks(n=1, work=50_000))
        assert scheduler.ticks == 0


class TestInterruptedRetpoline:
    """Section 5.3's reason for RSB stuffing, as a concrete scenario."""

    def test_unsafe_without_stuffing(self):
        machine = Machine(get_cpu("broadwell"))
        assert interrupted_retpoline_is_safe(machine,
                                             rsb_stuffing=False) is False

    def test_safe_with_stuffing(self, every_cpu):
        machine = Machine(every_cpu)
        assert interrupted_retpoline_is_safe(machine,
                                             rsb_stuffing=True) is True

"""The eBPF boundary: verifier, sanitation, JIT costs, the V1 demo."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu.isa import Op
from repro.errors import ConfigurationError
from repro.kernel.ebpf import (
    BPFJit,
    BPFMap,
    BPFProgram,
    MAX_PROGRAM_INSNS,
    Verifier,
    VerifierPolicy,
    attempt_bpf_v1,
)
from repro.mitigations import MitigationConfig, V2Strategy, linux_default


def unprivileged():
    return Verifier(VerifierPolicy(unprivileged=True))


def privileged(sanitize=False):
    return Verifier(VerifierPolicy(unprivileged=False, sanitize_v1=sanitize))


class TestVerifier:
    def test_oversized_program_rejected(self):
        program = BPFProgram("huge", insns=MAX_PROGRAM_INSNS + 1)
        with pytest.raises(ConfigurationError):
            unprivileged().check(program)

    def test_unbounded_loop_rejected(self):
        program = BPFProgram("spin", insns=10, has_unbounded_loop=True)
        with pytest.raises(ConfigurationError):
            unprivileged().check(program)

    def test_reasonable_program_admitted(self):
        unprivileged().check(BPFProgram("ok", insns=100))

    def test_unprivileged_always_sanitized(self):
        """Linux forces Spectre sanitation on unprivileged loaders even
        if someone asks it not to."""
        verifier = Verifier(VerifierPolicy(unprivileged=True,
                                           sanitize_v1=False))
        assert verifier.sanitizes

    def test_privileged_may_opt_out(self):
        assert not privileged(sanitize=False).sanitizes
        assert privileged(sanitize=True).sanitizes


class TestJit:
    def compile(self, config=None, verifier=None, **program_kwargs):
        machine = Machine(get_cpu("broadwell"))
        jit = BPFJit(machine, config or MitigationConfig.all_off(),
                     verifier or unprivileged())
        return jit.compile(BPFProgram("p", insns=100, **program_kwargs))

    def test_sanitized_accesses_carry_the_mask(self):
        block = self.compile(map_accesses=3)
        assert sum(1 for i in block if i.op is Op.CMOV) == 3

    def test_unsanitized_accesses_have_no_mask(self):
        block = self.compile(verifier=privileged(), map_accesses=3)
        assert not any(i.op is Op.CMOV for i in block)

    def test_tail_calls_are_retpolined_under_kernel_policy(self):
        config = MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC)
        block = self.compile(config=config, tail_calls=2)
        branches = [i for i in block if i.op is Op.BRANCH_INDIRECT]
        assert len(branches) == 2 and all(i.retpoline for i in branches)

    def test_map_loads_stay_inside_the_map(self):
        block = self.compile(map_accesses=8)
        map_ = BPFProgram("p", insns=1).map
        for instr in block:
            if instr.op is Op.LOAD:
                assert map_.address_of(0) <= instr.address < \
                    map_.address_of(map_.entries)

    def test_sanitation_costs_cycles(self):
        machine = Machine(get_cpu("zen2"))
        program = BPFProgram("p", insns=200, map_accesses=16)
        clean = BPFJit(machine, MitigationConfig.all_off(),
                       privileged()).invocation_cost(program)
        masked = BPFJit(machine, MitigationConfig.all_off(),
                        unprivileged()).invocation_cost(program)
        assert masked - clean == pytest.approx(
            16 * machine.costs.cmov, abs=1)

    def test_retpolines_tax_tail_call_heavy_programs(self):
        cpu = get_cpu("ice_lake_server")
        machine = Machine(cpu)
        program = BPFProgram("dispatch", insns=100, tail_calls=8)
        raw = BPFJit(machine, MitigationConfig.all_off(),
                     unprivileged()).invocation_cost(program)
        retp = BPFJit(Machine(cpu),
                      MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC),
                      unprivileged()).invocation_cost(program)
        assert retp - raw == pytest.approx(
            8 * cpu.costs.generic_retpoline_extra, abs=2)


class TestAttack:
    def test_unsanitized_map_read_leaks(self, every_cpu):
        machine = Machine(every_cpu)
        assert attempt_bpf_v1(machine, privileged(), 0x6B) == 0x6B

    def test_sanitation_blocks_the_leak(self, every_cpu):
        machine = Machine(every_cpu)
        assert attempt_bpf_v1(machine, unprivileged(), 0x6B) is None

    def test_distinct_secrets_recovered(self):
        machine = Machine(get_cpu("cascade_lake"))
        for secret in (1, 128, 255):
            assert attempt_bpf_v1(machine, privileged(), secret) == secret

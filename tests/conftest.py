"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cpu import Machine, all_cpus, get_cpu
from repro.core.study import Settings
from repro.mitigations import MitigationConfig, linux_default


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Point the study executor's default persistent cache at a per-test
    directory so tests never read or write the user's real cache."""
    monkeypatch.setenv("SPECTRESIM_CACHE_DIR",
                       str(tmp_path / "spectresim-cache"))


@pytest.fixture(autouse=True)
def _hermetic_history_db(tmp_path, monkeypatch):
    """Point the default run-history database at a per-test path so
    bench/check/profile auto-recording never mutates the committed
    fixture db in the repository."""
    monkeypatch.setenv("SPECTRESIM_HISTORY_DB",
                       str(tmp_path / "history.db"))


@pytest.fixture
def broadwell():
    return get_cpu("broadwell")


@pytest.fixture
def cascade_lake():
    return get_cpu("cascade_lake")


@pytest.fixture
def zen3():
    return get_cpu("zen3")


@pytest.fixture
def machine(broadwell):
    """A fresh Broadwell machine (the most-vulnerable part: every attack
    demo works there, so mitigations are what change outcomes)."""
    return Machine(broadwell, seed=0)


@pytest.fixture(params=[cpu.key for cpu in all_cpus()])
def every_cpu(request):
    """Parametrized over all eight catalog CPUs."""
    return get_cpu(request.param)


@pytest.fixture
def all_off():
    return MitigationConfig.all_off()


@pytest.fixture
def fast_settings():
    return Settings.fast()


def default_config(cpu):
    return linux_default(cpu)

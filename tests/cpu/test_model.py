"""CPU catalog: Table 2 identity data and calibration invariants."""

import pytest

from repro.cpu import CATALOG, CPU_ORDER, all_cpus, get_cpu
from repro.cpu import msr as msrdef
from repro.errors import UnknownCPUError


def test_catalog_has_eight_cpus():
    assert len(CATALOG) == 8
    assert len(CPU_ORDER) == 8


def test_order_is_intel_then_amd_oldest_first():
    cpus = all_cpus()
    vendors = [c.vendor for c in cpus]
    assert vendors == ["Intel"] * 5 + ["AMD"] * 3
    intel_years = [c.year for c in cpus[:5]]
    amd_years = [c.year for c in cpus[5:]]
    assert intel_years == sorted(intel_years)
    assert amd_years == sorted(amd_years)


def test_get_cpu_unknown_raises():
    with pytest.raises(UnknownCPUError):
        get_cpu("pentium3")


@pytest.mark.parametrize("key,model,power,clock,cores", [
    ("broadwell", "E5-2640v4", 90, 2.4, 10),
    ("skylake_client", "i7-6600U", 15, 2.6, 2),
    ("cascade_lake", "Xeon Silver 4210R", 100, 2.4, 10),
    ("ice_lake_client", "i5-10351G1", 15, 1.0, 4),
    ("ice_lake_server", "Xeon Gold 6354", 205, 3.0, 18),
    ("zen", "Ryzen 3 1200", 65, 3.1, 4),
    ("zen2", "EPYC 7452", 155, 2.35, 32),
    ("zen3", "Ryzen 5 5600X", 65, 3.7, 6),
])
def test_table2_identity(key, model, power, clock, cores):
    cpu = get_cpu(key)
    assert cpu.model == model
    assert cpu.power_watts == power
    assert cpu.clock_ghz == pytest.approx(clock)
    assert cpu.cores == cores


def test_only_ryzen3_lacks_smt():
    for cpu in all_cpus():
        assert cpu.smt == (cpu.key != "zen")


def test_threads_property():
    assert get_cpu("zen").threads == 4
    assert get_cpu("zen2").threads == 64


def test_meltdown_only_on_old_intel():
    vulnerable = {c.key for c in all_cpus() if c.vulns.meltdown}
    assert vulnerable == {"broadwell", "skylake_client"}


def test_l1tf_matches_meltdown_set():
    assert {c.key for c in all_cpus() if c.vulns.l1tf} == \
        {"broadwell", "skylake_client"}


def test_mds_on_old_intel_including_cascade_lake():
    vulnerable = {c.key for c in all_cpus() if c.vulns.mds}
    assert vulnerable == {"broadwell", "skylake_client", "cascade_lake"}


def test_every_cpu_vulnerable_to_ssb_and_spectre(every_cpu):
    # Paper: no CPU sets SSB_NO; V1/V2 apply everywhere.
    assert every_cpu.vulns.ssb
    assert every_cpu.vulns.spectre_v1
    assert every_cpu.vulns.spectre_v2


def test_arch_capabilities_bits(every_cpu):
    caps = every_cpu.arch_capabilities
    assert bool(caps & msrdef.ARCH_CAP_RDCL_NO) == (not every_cpu.vulns.meltdown)
    assert bool(caps & msrdef.ARCH_CAP_MDS_NO) == (not every_cpu.vulns.mds)
    assert bool(caps & msrdef.ARCH_CAP_IBRS_ALL) == \
        every_cpu.predictor.supports_eibrs
    # No shipping CPU advertises SSB immunity (paper section 4.3).
    assert not caps & msrdef.ARCH_CAP_SSB_NO


def test_eibrs_only_on_cascade_and_ice_lake():
    eibrs = {c.key for c in all_cpus() if c.predictor.supports_eibrs}
    assert eibrs == {"cascade_lake", "ice_lake_client", "ice_lake_server"}


def test_zen_has_no_ibrs_support():
    assert not get_cpu("zen").predictor.supports_ibrs


def test_zen3_btb_is_opaque_only_there():
    opaque = {c.key for c in all_cpus() if c.predictor.btb_opaque_index}
    assert opaque == {"zen3"}


@pytest.mark.parametrize("key,syscall,sysret", [
    ("broadwell", 49, 40), ("skylake_client", 42, 42), ("cascade_lake", 70, 43),
    ("ice_lake_client", 21, 29), ("ice_lake_server", 45, 32),
    ("zen", 63, 53), ("zen2", 53, 46), ("zen3", 83, 55),
])
def test_table3_calibration(key, syscall, sysret):
    costs = get_cpu(key).costs
    assert costs.syscall == syscall
    assert costs.sysret == sysret


@pytest.mark.parametrize("key,verw", [
    ("broadwell", 610), ("skylake_client", 518), ("cascade_lake", 458),
])
def test_table4_calibration(key, verw):
    assert get_cpu(key).costs.verw_clear == verw


def test_table4_na_on_immune_parts():
    for key in ("ice_lake_client", "ice_lake_server", "zen", "zen2", "zen3"):
        assert get_cpu(key).costs.verw_clear is None


@pytest.mark.parametrize("key,base,ibrs,generic,amd", [
    ("broadwell", 16, 32, 28, None),
    ("skylake_client", 11, 15, 19, None),
    ("cascade_lake", 3, 0, 49, None),
    ("ice_lake_client", 5, 0, 21, None),
    ("ice_lake_server", 1, 1, 50, None),
    ("zen", 30, None, 25, 28),
    ("zen2", 3, 13, 14, 0),
    ("zen3", 23, 19, 13, 18),
])
def test_table5_calibration(key, base, ibrs, generic, amd):
    costs = get_cpu(key).costs
    assert costs.indirect_base == base
    assert costs.ibrs_extra == ibrs
    assert costs.generic_retpoline_extra == generic
    assert costs.amd_retpoline_extra == amd


@pytest.mark.parametrize("key,ibpb", [
    ("broadwell", 5600), ("skylake_client", 4500), ("cascade_lake", 340),
    ("ice_lake_client", 2500), ("ice_lake_server", 840),
    ("zen", 7400), ("zen2", 1100), ("zen3", 800),
])
def test_table6_calibration(key, ibpb):
    assert get_cpu(key).costs.ibpb == ibpb


@pytest.mark.parametrize("key,rsb", [
    ("broadwell", 130), ("skylake_client", 130), ("cascade_lake", 120),
    ("ice_lake_client", 40), ("ice_lake_server", 69),
    ("zen", 114), ("zen2", 68), ("zen3", 94),
])
def test_table7_calibration(key, rsb):
    assert get_cpu(key).costs.rsb_fill == rsb


@pytest.mark.parametrize("key,lfence", [
    ("broadwell", 28), ("skylake_client", 20), ("cascade_lake", 15),
    ("ice_lake_client", 8), ("ice_lake_server", 13),
    ("zen", 48), ("zen2", 4), ("zen3", 30),
])
def test_table8_calibration(key, lfence):
    assert get_cpu(key).costs.lfence == lfence


def test_ssbd_penalty_trends_worse_on_newer_parts():
    """The Figure 5 driver: newer generations pay more under SSBD."""
    intel = [get_cpu(k).ssbd_load_penalty for k in
             ("broadwell", "skylake_client", "cascade_lake",
              "ice_lake_client", "ice_lake_server")]
    assert intel == sorted(intel)
    amd = [get_cpu(k).ssbd_load_penalty for k in ("zen", "zen2", "zen3")]
    assert amd == sorted(amd)
    assert get_cpu("zen3").ssbd_load_penalty == max(
        c.ssbd_load_penalty for c in all_cpus())


def test_effective_verw_selects_clear_or_legacy():
    broadwell = get_cpu("broadwell").costs
    assert broadwell.effective_verw(True) == 610
    assert broadwell.effective_verw(True, microcode_patched=False) == \
        broadwell.verw_legacy
    zen3 = get_cpu("zen3").costs
    assert zen3.effective_verw(False) == zen3.verw_legacy

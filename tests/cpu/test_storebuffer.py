"""Store buffer: forwarding, the SSB bypass predicate, drain."""

from repro.cpu.storebuffer import StoreBuffer


def test_match_after_push():
    sb = StoreBuffer()
    sb.push(0x1000, value=7)
    assert sb.match(0x1000)
    assert sb.match(0x1030)       # same 64-byte line
    assert not sb.match(0x2000)


def test_forward_returns_youngest_value():
    sb = StoreBuffer()
    sb.push(0x1000, value=1)
    sb.push(0x1000, value=2)
    assert sb.forward(0x1000) == 2
    assert sb.forward(0x9000) is None


def test_depth_bound_drains_oldest():
    sb = StoreBuffer(depth=4)
    for i in range(8):
        sb.push(i * 64, value=i)
    assert len(sb) == 4
    assert not sb.match(0)         # oldest drained to memory
    assert sb.match(7 * 64)


def test_bypass_possible_only_without_ssbd():
    """The SSB attack predicate and the SSBD fix, in one place."""
    sb = StoreBuffer()
    sb.push(0x1000)
    assert sb.speculative_bypass_possible(0x1000, ssbd=False)
    assert not sb.speculative_bypass_possible(0x1000, ssbd=True)
    assert not sb.speculative_bypass_possible(0x9000, ssbd=False)


def test_drain_counts_and_empties():
    sb = StoreBuffer()
    sb.push(0x1000)
    sb.push(0x2000)
    assert sb.drain() == 2
    assert len(sb) == 0
    assert not sb.match(0x1000)


def test_repushing_same_line_moves_to_youngest():
    sb = StoreBuffer(depth=2)
    sb.push(0x1000)
    sb.push(0x2000)
    sb.push(0x1000)   # rejuvenate
    sb.push(0x3000)   # evicts 0x2000, not 0x1000
    assert sb.match(0x1000)
    assert not sb.match(0x2000)

"""Canonical counter names: the lint-style contract of repro.cpu.counters.

A typo'd counter name creates a fresh counter and silently drops events,
so the simulator treats the name set as closed: every chargeable name is
a module constant, ``ALL_COUNTERS`` collects them, strict counter files
reject strangers, and no source file outside the registry spells a
counter name as a string literal.
"""

import pathlib
import re

import pytest

from repro.cpu import counters as ctr
from repro.cpu.counters import ALL_COUNTERS, PerfCounters, require_known
from repro.errors import UnknownCounterError

SRC_ROOT = pathlib.Path(ctr.__file__).resolve().parents[2]


def _constant_names():
    """The module's UPPER_CASE string constants (the canonical names)."""
    return {name: value for name, value in vars(ctr).items()
            if name.isupper() and isinstance(value, str)
            and name not in ("ALL_COUNTERS",)}


def test_every_constant_is_registered_and_unique():
    constants = _constant_names()
    values = list(constants.values())
    assert len(values) == len(set(values)), "duplicate counter name"
    assert set(values) == set(ALL_COUNTERS), (
        "ALL_COUNTERS out of sync with the module constants")


def test_constants_are_exported_via_all():
    for name in _constant_names():
        assert name in ctr.__all__, f"{name} missing from __all__"
    assert "ALL_COUNTERS" in ctr.__all__


def test_require_known_accepts_canonical_rejects_unknown():
    assert require_known(ctr.DIVIDER_ACTIVE) == ctr.DIVIDER_ACTIVE
    with pytest.raises(UnknownCounterError) as exc:
        require_known("inst_retired.anyy")
    assert exc.value.name == "inst_retired.anyy"


def test_strict_counters_reject_unknown_names():
    counters = PerfCounters(strict=True)
    counters.bump(ctr.VERW_CLEARS)
    assert counters.read(ctr.VERW_CLEARS) == 1
    with pytest.raises(UnknownCounterError):
        counters.bump("vrew.clears")
    with pytest.raises(UnknownCounterError):
        counters.read("vrew.clears")


def test_lax_counters_still_accept_anything():
    # The default stays permissive: scratch counters in demos/tests are
    # allowed, only opted-in files enforce the registry.
    counters = PerfCounters()
    counters.bump("scratch.counter")
    assert counters.read("scratch.counter") == 1


_LITERAL_CALL = re.compile(
    r"\.(?:bump|read)\(\s*f?[\"']([^\"']+)[\"']")


def test_no_string_literal_counter_names_in_src():
    """Lint: every ``bump()``/``read()`` in the package goes through the
    constants; a literal means a name the registry cannot vouch for."""
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.name == "counters.py":
            continue  # the registry itself
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = _LITERAL_CALL.search(line)
            if match:
                offenders.append(f"{path}:{lineno}: {match.group(1)!r}")
    assert not offenders, (
        "string-literal counter names (use repro.cpu.counters constants):\n"
        + "\n".join(offenders))


def test_machine_only_charges_canonical_counters(machine):
    """Dynamic check backing the static lint: a kernel-heavy run on a
    strict counter file never trips UnknownCounterError."""
    from repro.kernel import HandlerProfile, Kernel
    from repro.mitigations.policy import linux_default
    machine.counters.strict = True
    kernel = Kernel(machine, linux_default(machine.cpu))
    kernel.syscall(HandlerProfile("lint_probe", work_cycles=300, loads=4,
                                  stores=2, indirect_branches=2))
    assert set(machine.counters.snapshot()) <= set(ALL_COUNTERS)

"""Unit tests for the block-compilation engine (``repro.cpu.engine``).

The differential grid test (``test_engine_differential.py``) proves
bit-identity at workload scale; these tests pin the mechanisms — instruction
interning, precomputed attribution tags, compile-on-second-sighting,
cache-safety under list mutation, guard re-recording, memo check fallback,
and the stats/priming plumbing.
"""

from __future__ import annotations

import pytest

from repro.cpu import Machine, get_cpu, isa
from repro.cpu import engine
from repro.cpu.isa import Op
from repro.cpu.msr import (
    IA32_PRED_CMD,
    IA32_SPEC_CTRL,
    PRED_CMD_IBPB,
    SPEC_CTRL_SSBD,
)
from repro.obs.provenance import fingerprint_inputs


# --------------------------------------------------------------------------
# Instruction interning (the alu(n) O(n)-allocation fix).

def test_argless_constructors_return_singletons():
    assert isa.nop() is isa.nop()
    assert isa.mul() is isa.mul()
    assert isa.div() is isa.div()
    assert isa.swapgs() is isa.swapgs()
    assert isa.syscall_instr() is isa.syscall_instr()
    assert isa.rdtsc() is isa.rdtsc()


def test_alu_blocks_share_one_interned_instruction():
    assert isa.alu(4)[0] is isa.alu(4)[0]
    assert isa.alu(4) is isa.alu(4)          # the tuple itself is cached
    assert isa.alu(4)[0] is isa.alu(9)[3]    # one singleton across sizes
    assert len(isa.alu(7)) == 7


def test_parameterised_constructors_memoize():
    assert isa.load(0x1000) is isa.load(0x1000)
    assert isa.store(0x2000, value=3) is isa.store(0x2000, value=3)
    assert isa.work(50) is isa.work(50)
    assert isa.wrmsr(IA32_SPEC_CTRL, 1) is isa.wrmsr(IA32_SPEC_CTRL, 1)
    assert isa.load(0x1000) is not isa.load(0x1040)


def test_instruction_has_slots():
    instr = isa.nop()
    assert not hasattr(instr, "__dict__")
    with pytest.raises(AttributeError):
        instr.scratch = 1


# --------------------------------------------------------------------------
# Precomputed attribution tags.

def test_attr_tag_defaults_for_plain_ops():
    assert isa.nop().attr_tag == (None, Op.NOP.value)
    assert isa.load(0x1000).attr_tag == (None, Op.LOAD.value)


def test_attr_tag_op_default_tags():
    assert isa.verw().attr_tag == ("mds", "verw")
    assert isa.rsb_fill().attr_tag == ("spectre_v2", "rsb_fill")
    assert isa.l1d_flush().attr_tag == ("l1tf", "l1d_flush")


def test_attr_tag_wrmsr_dispatches_on_payload():
    assert isa.wrmsr(IA32_PRED_CMD, PRED_CMD_IBPB).attr_tag == \
        ("spectre_v2", "ibpb")
    assert isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_SSBD).attr_tag == \
        ("spectre_v2", "wrmsr_spec_ctrl")
    assert isa.wrmsr(0x999, 0).attr_tag == (None, Op.WRMSR.value)


def test_attr_tag_explicit_tags_win():
    instr = isa.verw(mitigation="custom", primitive="probe")
    assert instr.attr_tag == ("custom", "probe")
    # Explicit mitigation without primitive falls back to the op name.
    instr = isa.lfence(mitigation="spectre_v1")
    assert instr.attr_tag == ("spectre_v1", Op.LFENCE.value)


# --------------------------------------------------------------------------
# Engine mode plumbing.

def test_set_default_engine_rejects_unknown_modes():
    with pytest.raises(ValueError):
        engine.set_default_engine("turbo")


def test_use_engine_restores_previous_mode():
    before = engine.default_engine()
    with engine.use_engine(engine.ENGINE_INTERP):
        assert engine.default_engine() == engine.ENGINE_INTERP
        machine = Machine(get_cpu("broadwell"))
        assert machine.engine is None
    assert engine.default_engine() == before


def test_machine_engine_kwarg_overrides_ambient():
    with engine.use_engine(engine.ENGINE_INTERP):
        machine = Machine(get_cpu("broadwell"), engine=engine.ENGINE_BLOCK)
    assert machine.engine is not None
    assert machine.engine_mode == engine.ENGINE_BLOCK


# --------------------------------------------------------------------------
# Parity helpers.

def _pair(key="broadwell", seed=0):
    fast = Machine(get_cpu(key), seed=seed, engine=engine.ENGINE_BLOCK)
    slow = Machine(get_cpu(key), seed=seed, engine=engine.ENGINE_INTERP)
    return fast, slow


def _assert_parity(fast, slow):
    assert fast.read_tsc() == slow.read_tsc()
    assert fast.counters.events == slow.counters.events


# --------------------------------------------------------------------------
# Compilation lifecycle.

def test_pure_block_compiles_on_second_sighting_with_parity():
    fast, slow = _pair()
    seq = [isa.nop(), *isa.alu(8), isa.mul(), isa.div(), isa.work(40),
           isa.lfence(), isa.rdtsc()]
    hits_before = engine.STATS.block_hits
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    entry = fast.engine._blocks[id(seq)]
    assert entry.compiled is not None
    # First run interprets, runs 2-4 take the compiled path.
    assert engine.STATS.block_hits - hits_before == 3


def test_single_instruction_sequences_bypass_the_engine():
    fast, _ = _pair()
    seq = [isa.nop()]
    fast.run(seq)
    fast.run(seq)
    assert id(seq) not in fast.engine._blocks


def test_in_place_mutation_triggers_recompilation():
    fast, slow = _pair()
    seq = [isa.nop(), *isa.alu(4)]
    fast.run(seq)
    fast.run(seq)                      # compiled now
    seq[0] = isa.mul()                 # mutate in place: same id
    for _ in range(3):                 # re-warm and re-compile
        assert fast.run(seq) == slow.run(list(seq))
    slow.run([isa.nop(), *isa.alu(4)])
    slow.run([isa.nop(), *isa.alu(4)])
    _assert_parity(fast, slow)
    assert fast.engine._blocks[id(seq)].instrs == tuple(seq)


def test_prime_block_compiles_before_first_run():
    fast, slow = _pair()
    seq = [*isa.alu(6), isa.work(25)]
    fast.prime_block(seq)
    assert fast.engine._blocks[id(seq)].compiled is not None
    hits_before = engine.STATS.block_hits
    assert fast.run(seq) == slow.run(list(seq))
    assert engine.STATS.block_hits == hits_before + 1
    _assert_parity(fast, slow)


def test_terminators_split_blocks_but_keep_parity():
    fast, slow = _pair()
    # Conditional branches and returns are terminators; the blocks around
    # them still compile.
    seq = [*isa.alu(4), isa.branch_cond(target=0x4200, pc=0x4300),
           *isa.alu(4), isa.ret(pc=0x4400), isa.nop()]
    for _ in range(3):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    steps = fast.engine._blocks[id(seq)].compiled.steps
    kinds = [step[0] for step in steps]
    assert kinds.count(1) == 2         # two terminator steps (_TERM == 1)


def test_flush_ops_compile_as_pure_effects():
    fast, slow = _pair()
    # VERW, CLFLUSH and accepted WRMSR writes carry deterministic side
    # effects; they compile into pure steps instead of splitting blocks.
    seq = [*isa.alu(2), isa.verw(), isa.clflush(0x3000),
           isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_SSBD), isa.nop()]
    for _ in range(3):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    assert fast.msr.read(IA32_SPEC_CTRL) == slow.msr.read(IA32_SPEC_CTRL)
    steps = fast.engine._blocks[id(seq)].compiled.steps
    assert [step[0] for step in steps] == [0]   # one pure step, no splits


def test_verw_clear_interleaved_with_loads_keeps_residue_state():
    fast, slow = _pair()
    # The MDS residue left after the block must reflect the last clear:
    # load -> verw -> load leaves only the second load's residue.
    seq = [isa.load(0xA000), isa.verw(), isa.load(0xB000)]
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    assert fast.mds_buffers._residue == slow.mds_buffers._residue


# --------------------------------------------------------------------------
# Recorded segments: memoization, guard keys, check fallback.

def test_loads_and_stores_memoize_with_parity():
    fast, slow = _pair()
    seq = [isa.store(0x5000, value=7), isa.load(0x5000), *isa.alu(3),
           isa.load(0x5040)]
    records_before = engine.STATS.memo_records
    hits_before = engine.STATS.memo_hits
    for _ in range(6):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    assert engine.STATS.memo_records > records_before
    assert engine.STATS.memo_hits > hits_before


def test_guard_change_re_records():
    fast, slow = _pair()
    seq = [isa.load(0x6000), *isa.alu(2), isa.load(0x6000)]
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    # Flip an IA32_SPEC_CTRL bit: the guard key changes, so the memo for
    # the old guard must not be replayed.
    ssbd_on = [isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_SSBD), isa.nop()]
    fast.run(ssbd_on)
    slow.run(list(ssbd_on))
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    rec_steps = [step for step
                 in fast.engine._blocks[id(seq)].compiled.steps
                 if step[0] == 2]
    assert rec_steps, "expected a recorded step for the load segment"
    assert len(rec_steps[0][1].memos) == 2   # one memo per guard


def test_memo_check_failure_falls_back_and_recovers():
    fast, slow = _pair()
    seq = [isa.load(0x7000), *isa.alu(2)]
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    # Invalidate the cached line behind the memo's back: the membership
    # check must fail and the engine must re-record, not replay stale
    # deltas.
    fast.caches.flush_line(0x7000 // 64)
    slow.caches.flush_line(0x7000 // 64)
    for _ in range(4):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)


def test_store_buffer_heavy_blocks_stay_bit_identical():
    fast, slow = _pair()
    # More stores than the store buffer holds: the recorder must refuse to
    # memoize the unverifiable load (or bound the pushes) — either way the
    # observable state must match the interpreter exactly.
    depth = fast.store_buffer.depth
    seq = [isa.store(0x8000 + 64 * i, value=i) for i in range(depth + 4)]
    seq.append(isa.load(0x8000))
    for _ in range(5):
        assert fast.run(seq) == slow.run(list(seq))
    _assert_parity(fast, slow)
    assert list(fast.store_buffer._pending.items()) == \
        list(slow.store_buffer._pending.items())


# --------------------------------------------------------------------------
# Stats and provenance.

def test_stats_merge_and_hit_rate():
    stats = engine.EngineStats()
    stats.merge({"blocks_compiled": 2, "block_hits": 6,
                 "interp_fallbacks": 2})
    stats.merge({"block_hits": 2, "memo_hits": 5, "memo_records": 1})
    assert stats.blocks_compiled == 2
    assert stats.block_hits == 8
    assert stats.hit_rate() == pytest.approx(0.8)
    assert "2 blocks compiled" in stats.summary()


def test_fingerprint_covers_engine_module():
    inputs = fingerprint_inputs()
    assert "cpu/engine.py" in inputs
    assert "cpu/machine.py" in inputs
    assert "cpu/isa.py" in inputs
    assert inputs == fingerprint_inputs()   # deterministic hashing order

"""BTB and BHB models: tagging, IBPB semantics, Zen 3 opacity."""

from repro.cpu.btb import (
    HARMLESS_TARGET,
    BranchHistoryBuffer,
    BranchTargetBuffer,
)
from repro.cpu.modes import Mode


def test_train_then_lookup():
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.lookup(0x100, Mode.USER) == 0x2000
    assert btb.lookup(0x104, Mode.USER) is None


def test_retraining_updates_target():
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.USER)
    btb.train(0x100, 0x3000, Mode.USER)
    assert btb.lookup(0x100, Mode.USER) == 0x3000


def test_untagged_btb_crosses_modes():
    """Pre-eIBRS parts: user training steers kernel branches (Table 9)."""
    btb = BranchTargetBuffer(mode_tagged=False)
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.lookup(0x100, Mode.KERNEL) == 0x2000


def test_mode_tagged_btb_blocks_cross_mode():
    """eIBRS parts: entries only predict in their training mode."""
    btb = BranchTargetBuffer(mode_tagged=True)
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.lookup(0x100, Mode.KERNEL) is None
    assert btb.lookup(0x100, Mode.USER) == 0x2000


def test_opaque_index_blocks_redirect_but_not_lookup():
    """Zen 3: prediction still works for timing; the probe cannot land."""
    btb = BranchTargetBuffer(opaque_index=True)
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.lookup(0x100, Mode.USER) == 0x2000
    assert btb.redirect_target(0x100, Mode.USER) is None


def test_redirect_matches_lookup_on_normal_parts():
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.KERNEL)
    assert btb.redirect_target(0x100, Mode.KERNEL) == 0x2000


def test_barrier_rewrites_to_harmless_not_invalid():
    """IBPB: entries predict the harmless gadget, so branches still
    mispredict afterwards — the paper's performance counter observation."""
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.barrier() == 1
    assert btb.lookup(0x100, Mode.USER) == HARMLESS_TARGET
    assert btb.contains(0x100)


def test_flush_invalidates():
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.USER)
    assert btb.flush() == 1
    assert btb.lookup(0x100, Mode.USER) is None
    assert len(btb) == 0


def test_capacity_eviction():
    btb = BranchTargetBuffer(entries=4)
    for i in range(10):
        btb.train(0x100 + 16 * i, 0x2000, Mode.USER)
    assert len(btb) == 4


class TestBHB:
    def test_push_changes_hash(self):
        bhb = BranchHistoryBuffer()
        before = bhb.value
        bhb.push(0x1234)
        assert bhb.value != before

    def test_same_history_same_hash(self):
        a, b = BranchHistoryBuffer(), BranchHistoryBuffer()
        for pc in (0x10, 0x20, 0x30):
            a.push(pc)
            b.push(pc)
        assert a.value == b.value

    def test_order_matters(self):
        a, b = BranchHistoryBuffer(), BranchHistoryBuffer()
        a.push(0x10)
        a.push(0x20)
        b.push(0x20)
        b.push(0x10)
        assert a.value != b.value

    def test_reset(self):
        bhb = BranchHistoryBuffer()
        bhb.push(0x10)
        bhb.reset()
        assert bhb.value == 0

    def test_hash_bounded_by_depth(self):
        bhb = BranchHistoryBuffer(depth=29)
        for pc in range(0, 1 << 16, 97):
            bhb.push(pc)
            assert 0 <= bhb.value < (1 << 29)

"""Performance counter bag and TSC."""

from repro.cpu.counters import (
    BTB_HITS,
    BTB_MISSES,
    DIVIDER_ACTIVE,
    L1_MISSES,
    PerfCounters,
)


def test_tsc_accumulates():
    counters = PerfCounters()
    counters.add_cycles(10)
    counters.add_cycles(5)
    assert counters.tsc == 15


def test_untouched_counter_reads_zero():
    assert PerfCounters().read(L1_MISSES) == 0


def test_bump_default_and_amount():
    counters = PerfCounters()
    counters.bump(DIVIDER_ACTIVE)
    counters.bump(DIVIDER_ACTIVE, 17)
    assert counters.read(DIVIDER_ACTIVE) == 18


def test_snapshot_is_a_copy():
    counters = PerfCounters()
    counters.bump(BTB_HITS)
    snap = counters.snapshot()
    counters.bump(BTB_HITS)
    assert snap[BTB_HITS] == 1
    assert counters.read(BTB_HITS) == 2


def test_delta_reports_only_changes():
    counters = PerfCounters()
    counters.bump(BTB_HITS)
    counters.bump(BTB_MISSES, 3)
    before = counters.snapshot()
    counters.bump(BTB_MISSES, 2)
    counters.bump(L1_MISSES)
    assert counters.delta(before) == {BTB_MISSES: 2, L1_MISSES: 1}


def test_reset_clears_events_not_tsc():
    counters = PerfCounters()
    counters.add_cycles(100)
    counters.bump(BTB_HITS)
    counters.reset()
    assert counters.read(BTB_HITS) == 0
    assert counters.tsc == 100

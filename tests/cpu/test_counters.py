"""Performance counter bag and TSC."""

from repro.cpu.counters import DIVIDER_ACTIVE, PerfCounters


def test_tsc_accumulates():
    counters = PerfCounters()
    counters.add_cycles(10)
    counters.add_cycles(5)
    assert counters.tsc == 15


def test_untouched_counter_reads_zero():
    assert PerfCounters().read("nonexistent.event") == 0


def test_bump_default_and_amount():
    counters = PerfCounters()
    counters.bump(DIVIDER_ACTIVE)
    counters.bump(DIVIDER_ACTIVE, 17)
    assert counters.read(DIVIDER_ACTIVE) == 18


def test_snapshot_is_a_copy():
    counters = PerfCounters()
    counters.bump("a")
    snap = counters.snapshot()
    counters.bump("a")
    assert snap["a"] == 1
    assert counters.read("a") == 2


def test_delta_reports_only_changes():
    counters = PerfCounters()
    counters.bump("a")
    counters.bump("b", 3)
    before = counters.snapshot()
    counters.bump("b", 2)
    counters.bump("c")
    assert counters.delta(before) == {"b": 2, "c": 1}


def test_reset_clears_events_not_tsc():
    counters = PerfCounters()
    counters.add_cycles(100)
    counters.bump("a")
    counters.reset()
    assert counters.read("a") == 0
    assert counters.tsc == 100

"""Differential tests: the block engine must be bit-identical to the
interpreter.

This is the contract that makes the engine a pure optimisation: for the
same seed, CPU, mitigation config and workload, engine-on and engine-off
runs must produce the same TSC, the same value for every counter in
``ALL_COUNTERS``, and the same ledger paths (which ``verify()`` checks
against the TSC).  Two layers of evidence:

* a seeded grid over all eight CPU models x {linux default, all-off}
  policies running a LEBench subset through the full kernel path
  (entry/exit blocks, handlers, context switches, faults);
* a hypothesis property over random instruction sequences mixing pure,
  recordable and terminator ops, executed repeatedly so blocks compile
  and memos replay.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, all_cpus, get_cpu, isa
from repro.cpu import engine
from repro.cpu.counters import ALL_COUNTERS
from repro.mitigations import MitigationConfig, linux_default
from repro.obs import ledger as obs_ledger
from repro.workloads.lebench import SUITE, run_suite

#: One case per workload kind keeps the grid fast while still exercising
#: syscalls, faults, context switches and process spawns.
_KINDS_SEEN = set()
GRID_CASES = tuple(
    case for case in SUITE
    if case.kind not in _KINDS_SEEN and not _KINDS_SEEN.add(case.kind)
)

CPU_KEYS = [cpu.key for cpu in all_cpus()]


def _run_grid_cell(cpu, config, mode):
    """One suite run under ``mode``; returns (results, machine, ledger)."""
    with engine.use_engine(mode):
        ledger = obs_ledger.CycleLedger()
        with obs_ledger.use_ledger(ledger):
            machine = Machine(cpu, seed=7)
            results = run_suite(machine, config, iterations=3, warmup=1,
                                cases=GRID_CASES)
    return results, machine, ledger


@pytest.mark.parametrize("policy", ["default", "off"])
@pytest.mark.parametrize("key", CPU_KEYS)
def test_lebench_grid_bit_identical(key, policy):
    cpu = get_cpu(key)
    config = (linux_default(cpu) if policy == "default"
              else MitigationConfig.all_off())
    blk_results, blk_machine, blk_ledger = \
        _run_grid_cell(cpu, config, engine.ENGINE_BLOCK)
    int_results, int_machine, int_ledger = \
        _run_grid_cell(cpu, config, engine.ENGINE_INTERP)

    assert blk_results == int_results
    assert blk_machine.read_tsc() == int_machine.read_tsc()
    for name in sorted(ALL_COUNTERS):
        assert blk_machine.counters.events.get(name, 0) == \
            int_machine.counters.events.get(name, 0), name
    assert blk_ledger.paths() == int_ledger.paths()
    assert blk_ledger.rollup() == int_ledger.rollup()
    # verify() raises if attributed cycles drifted from the charged TSC.
    assert blk_ledger.verify() == int_ledger.verify()


# --------------------------------------------------------------------------
# Random-sequence property.

_USER_ADDRS = [0x1000, 0x1040, 0x2000, 0x2040, 0x9000]

_MAKERS = st.sampled_from([
    isa.nop,
    isa.mul,
    isa.div,
    isa.cmov,
    isa.lfence,
    isa.verw,
    isa.rsb_fill,
    isa.swapgs,
    isa.rdtsc,
    isa.rdpmc,
    lambda: isa.work(30),
    lambda: isa.alu(3)[0],
    lambda: isa.load(0x1000),
    lambda: isa.load(0x2000),
    lambda: isa.store(0x1000, value=5),
    lambda: isa.store(0x2040, value=9),
    lambda: isa.clflush(0x1000),
    lambda: isa.call(target=0x4000, pc=0x4100),
    lambda: isa.branch_cond(target=0x4200, pc=0x4300, taken=True),
])


@pytest.mark.parametrize("key", CPU_KEYS)
def test_lebench_bit_identical_with_leakage_tracing(key):
    """Tracing on must not perturb execution: the block engine falls back
    to interpretation (taint is a guard-key input), and a traced run
    matches an untraced one bit for bit."""
    from repro.obs import leakage as obs_leakage

    cpu = get_cpu(key)
    config = linux_default(cpu)

    def traced_cell(mode):
        with engine.use_engine(mode):
            tracer = obs_leakage.LeakageTracer()
            with obs_leakage.use_leakage(tracer):
                machine = Machine(cpu, seed=7)
                tracer.taint_region(0x1000, 256)
                results = run_suite(machine, config, iterations=3, warmup=1,
                                    cases=GRID_CASES)
        return results, machine, tracer

    blk_results, blk_machine, blk_tracer = traced_cell(engine.ENGINE_BLOCK)
    int_results, int_machine, int_tracer = traced_cell(engine.ENGINE_INTERP)
    _, bare_machine, _ = _run_grid_cell(cpu, config, engine.ENGINE_INTERP)

    # Traced block == traced interp == untraced, on every counter.
    assert blk_results == int_results
    assert blk_machine.read_tsc() == int_machine.read_tsc()
    assert blk_machine.read_tsc() == bare_machine.read_tsc()
    for name in sorted(ALL_COUNTERS):
        assert blk_machine.counters.events.get(name, 0) == \
            int_machine.counters.events.get(name, 0), name
        assert blk_machine.counters.events.get(name, 0) == \
            bare_machine.counters.events.get(name, 0), name
    # And the tracers themselves agree (same taints, same events).
    assert blk_tracer.state() == int_tracer.state()


@pytest.mark.parametrize("key", CPU_KEYS)
def test_lebench_bit_identical_with_timeline_recording(key):
    """An attached timeline must not perturb execution either, and the
    block engine (which replays interpreted under a timeline) must emit
    the interpreter's event stream exactly."""
    from repro.obs import timeline as obs_timeline

    cpu = get_cpu(key)
    config = linux_default(cpu)

    def recorded_cell(mode):
        with engine.use_engine(mode):
            timeline = obs_timeline.EventTimeline(capacity=None)
            with obs_timeline.use_timeline(timeline):
                machine = Machine(cpu, seed=7)
                results = run_suite(machine, config, iterations=3, warmup=1,
                                    cases=GRID_CASES)
        return results, machine, timeline

    blk_results, blk_machine, blk_timeline = \
        recorded_cell(engine.ENGINE_BLOCK)
    int_results, int_machine, int_timeline = \
        recorded_cell(engine.ENGINE_INTERP)
    _, bare_machine, _ = _run_grid_cell(cpu, config, engine.ENGINE_INTERP)

    assert blk_results == int_results
    assert blk_machine.read_tsc() == int_machine.read_tsc()
    assert blk_machine.read_tsc() == bare_machine.read_tsc()
    for name in sorted(ALL_COUNTERS):
        assert blk_machine.counters.events.get(name, 0) == \
            int_machine.counters.events.get(name, 0), name
    # Same event stream, event for event.
    assert blk_timeline.total == int_timeline.total
    assert blk_timeline.digest() == int_timeline.digest()
    assert obs_timeline.first_divergence(blk_timeline, int_timeline) is None


@given(st.sampled_from(CPU_KEYS),
       st.lists(_MAKERS, min_size=2, max_size=24),
       st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_random_sequences_bit_identical(key, makers, repeats):
    cpu = get_cpu(key)
    fast = Machine(cpu, seed=3, engine=engine.ENGINE_BLOCK)
    slow = Machine(cpu, seed=3, engine=engine.ENGINE_INTERP)
    seq = [make() for make in makers]
    for _ in range(repeats):
        assert fast.run(seq) == slow.run(list(seq))
    assert fast.read_tsc() == slow.read_tsc()
    assert fast.counters.events == slow.counters.events
    assert list(fast.store_buffer._pending.items()) == \
        list(slow.store_buffer._pending.items())
    assert list(fast.tlb._entries.items()) == list(slow.tlb._entries.items())

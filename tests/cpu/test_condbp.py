"""The 2-bit conditional predictor and its machine integration."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa
from repro.cpu.condbp import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
    ConditionalPredictor,
)


class TestPredictor:
    def test_initial_state(self):
        predictor = ConditionalPredictor()
        assert not predictor.predict(0x100)

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            ConditionalPredictor(initial=7)

    def test_training_saturates_taken(self):
        predictor = ConditionalPredictor()
        for _ in range(10):
            predictor.update(0x100, taken=True)
        assert predictor.state(0x100) == STRONG_TAKEN
        assert predictor.predict(0x100)

    def test_two_bit_hysteresis(self):
        """One contrary outcome doesn't flip a strong prediction."""
        predictor = ConditionalPredictor()
        for _ in range(4):
            predictor.update(0x100, taken=True)
        predictor.update(0x100, taken=False)
        assert predictor.predict(0x100)      # still predicts taken
        predictor.update(0x100, taken=False)
        assert not predictor.predict(0x100)  # two flips it

    def test_pcs_are_independent(self):
        predictor = ConditionalPredictor()
        predictor.update(0x100, taken=True)
        predictor.update(0x100, taken=True)
        assert predictor.predict(0x100)
        assert not predictor.predict(0x200)

    def test_flush(self):
        predictor = ConditionalPredictor()
        predictor.update(0x100, taken=True)
        predictor.flush()
        assert len(predictor) == 0


class TestMachineIntegration:
    GADGET = 0x4F_2000

    def test_correctly_predicted_branch_is_cheap(self):
        machine = Machine(get_cpu("zen2"))
        branch = isa.branch_cond(pc=0x100, taken=False)
        assert machine.execute(branch) == machine.costs.cond_branch

    def test_mispredicted_branch_pays_penalty(self):
        machine = Machine(get_cpu("zen2"))
        taken = isa.branch_cond(pc=0x100, taken=True)
        cost = machine.execute(taken)  # predictor said not-taken
        assert cost == machine.costs.cond_branch + \
            machine.costs.mispredict_penalty

    def test_training_then_correct_prediction(self):
        machine = Machine(get_cpu("zen2"))
        taken = isa.branch_cond(pc=0x100, taken=True)
        machine.execute(taken)
        machine.execute(taken)
        assert machine.execute(taken) == machine.costs.cond_branch

    def test_mistrained_branch_runs_taken_path_transiently(self):
        machine = Machine(get_cpu("broadwell"))
        machine.register_code(self.GADGET, [isa.div()])
        trained = isa.branch_cond(target=self.GADGET, pc=0x100, taken=True)
        for _ in range(4):
            machine.execute(trained)
        machine.counters.reset()
        machine.execute(isa.branch_cond(target=self.GADGET, pc=0x100,
                                        taken=False))
        assert machine.counters.read(ctr.DIVIDER_ACTIVE) > 0

    def test_untrained_not_taken_branch_runs_nothing(self):
        machine = Machine(get_cpu("broadwell"))
        machine.register_code(self.GADGET, [isa.div()])
        machine.execute(isa.branch_cond(target=self.GADGET, pc=0x100,
                                        taken=False))
        assert machine.counters.read(ctr.DIVIDER_ACTIVE) == 0


class TestTrainedV1:
    def test_trained_v1_leaks(self, every_cpu):
        from repro.mitigations.spectre_v1 import attempt_bounds_bypass_trained
        machine = Machine(every_cpu)
        assert attempt_bounds_bypass_trained(machine, 0x3D) == 0x3D

    def test_lfence_stops_the_trained_variant(self):
        from repro.mitigations.spectre_v1 import attempt_bounds_bypass_trained
        machine = Machine(get_cpu("broadwell"))
        assert attempt_bounds_bypass_trained(machine, 0x3D,
                                             lfence_hardened=True) is None

    def test_masking_stops_the_trained_variant(self):
        from repro.mitigations.spectre_v1 import attempt_bounds_bypass_trained
        machine = Machine(get_cpu("zen3"))
        assert attempt_bounds_bypass_trained(machine, 0x3D,
                                             masked=True) is None

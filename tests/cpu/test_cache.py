"""Cache model: residency, LRU, flushes, and the probe interface."""

import pytest

from repro.cpu.cache import Cache, CacheHierarchy


def make_cache(size=4096, ways=4, line=64):
    return Cache(size, ways, line)


def test_size_must_be_multiple_of_way_times_line():
    with pytest.raises(ValueError):
        Cache(1000, 3, 64)


def test_cold_access_misses_then_hits():
    cache = make_cache()
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True


def test_same_line_different_offsets_share_residency():
    cache = make_cache()
    cache.access(0x1000)
    assert cache.access(0x1004) is True
    assert cache.access(0x103F) is True
    assert cache.access(0x1040) is False  # next line


def test_probe_does_not_fill():
    cache = make_cache()
    assert cache.probe(0x2000) is False
    assert cache.probe(0x2000) is False  # still cold: probe is passive
    cache.access(0x2000)
    assert cache.probe(0x2000) is True


def test_probe_does_not_touch_lru():
    cache = Cache(4 * 64, 4, 64)  # one set, 4 ways
    sets = cache.num_sets
    assert sets == 1
    for i in range(4):
        cache.access(i * 64 * sets)
    # Probing the oldest line must not rejuvenate it.
    cache.probe(0)
    cache.access(4 * 64 * sets)  # evicts the true LRU: line 0
    assert cache.probe(0) is False


def test_lru_eviction_order():
    cache = Cache(4 * 64, 4, 64)
    for addr in (0, 64, 128, 192):
        cache.access(addr)
    cache.access(0)        # rejuvenate line 0
    cache.access(256)      # evicts line 64 (the LRU), not line 0
    assert cache.probe(0) is True
    assert cache.probe(64) is False


def test_flush_line():
    cache = make_cache()
    cache.access(0x3000)
    cache.flush_line(0x3000)
    assert cache.probe(0x3000) is False


def test_flush_all_reports_evictions():
    cache = make_cache()
    for i in range(10):
        cache.access(i * 64)
    assert cache.flush_all() == 10
    assert cache.resident_lines() == 0


def test_contains_dunder():
    cache = make_cache()
    cache.access(0x5000)
    assert 0x5000 in cache
    assert 0x9000 not in cache


def test_capacity_respected():
    cache = Cache(8 * 64, 8, 64)  # 8 lines capacity
    for i in range(100):
        cache.access(i * 64)
    assert cache.resident_lines() <= 8


class TestHierarchy:
    def make(self):
        return CacheHierarchy(Cache(4096, 4), Cache(16384, 4))

    def test_miss_fills_both_levels(self):
        h = self.make()
        assert h.access(0x1000) == 0  # memory
        assert h.access(0x1000) == 1  # now L1

    def test_l1_eviction_falls_back_to_l2(self):
        h = CacheHierarchy(Cache(4 * 64, 4, 64), Cache(64 * 64, 8, 64))
        for i in range(8):  # overflow the 4-line L1
            h.access(i * 64 * h.l1.num_sets)
        level = h.access(0)
        assert level == 2  # evicted from L1, still in L2

    def test_flush_l1_keeps_l2(self):
        h = self.make()
        h.access(0x2000)
        h.flush_l1()
        assert not h.probe_l1(0x2000)
        assert h.access(0x2000) == 2

    def test_flush_line_removes_from_both(self):
        h = self.make()
        h.access(0x2000)
        h.flush_line(0x2000)
        assert h.access(0x2000) == 0

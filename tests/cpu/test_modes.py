"""Privilege mode enum."""

from repro.cpu.modes import Mode


def test_kernel_predicate():
    assert Mode.KERNEL.is_kernel
    assert Mode.GUEST_KERNEL.is_kernel
    assert not Mode.USER.is_kernel
    assert not Mode.GUEST_USER.is_kernel


def test_guest_predicate():
    assert Mode.GUEST_USER.is_guest
    assert Mode.GUEST_KERNEL.is_guest
    assert not Mode.USER.is_guest
    assert not Mode.KERNEL.is_guest


def test_str_is_the_value():
    assert str(Mode.USER) == "user"
    assert str(Mode.GUEST_KERNEL) == "guest_kernel"


def test_modes_are_distinct_domains():
    assert len({m for m in Mode}) == 4

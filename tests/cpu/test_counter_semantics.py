"""Transient-vs-retired counter semantics (the Figure 6 probe contract).

The speculation probe only works because ``ARITH.DIVIDER_ACTIVE`` is a
*occupancy* counter — the divider is busy even on a squashed wrong path —
while ``INST_RETIRED.ANY`` and the TSC only move at retirement.  These
tests pin that asymmetry down explicitly.
"""

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa


def snapshot(machine):
    return (machine.read_tsc(),
            machine.counters.read(ctr.INSTRUCTIONS_RETIRED),
            machine.counters.read(ctr.DIVIDER_ACTIVE),
            machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS))


def test_squashed_div_charges_divider_but_retires_nothing(machine):
    tsc0, retired0, divider0, transient0 = snapshot(machine)
    executed = machine.speculate([isa.div()])
    tsc1, retired1, divider1, transient1 = snapshot(machine)
    assert executed == 1
    # Occupancy counter: busy for the full divide latency on the wrong path.
    assert divider1 - divider0 == machine.costs.div
    assert transient1 - transient0 == 1
    # Retirement-gated state: untouched by squashed work.
    assert retired1 == retired0
    assert tsc1 == tsc0


def test_committed_div_charges_both_sides(machine):
    tsc0, retired0, divider0, _ = snapshot(machine)
    machine.execute(isa.div())
    tsc1, retired1, divider1, _ = snapshot(machine)
    assert divider1 - divider0 == machine.costs.div
    assert retired1 - retired0 == 1
    assert tsc1 - tsc0 == machine.costs.div


def test_divider_asymmetry_is_the_probe_signal(every_cpu):
    """Same gadget, both paths, on every catalog part: the divider count
    is identical whether the divide commits or squashes — that is what
    makes the counter a speculation oracle."""
    committed = Machine(every_cpu, seed=0)
    committed.execute(isa.div())
    squashed = Machine(every_cpu, seed=0)
    squashed.speculate([isa.div()])
    assert (committed.counters.read(ctr.DIVIDER_ACTIVE)
            == squashed.counters.read(ctr.DIVIDER_ACTIVE) > 0)
    assert squashed.counters.read(ctr.INSTRUCTIONS_RETIRED) == 0
    assert committed.counters.read(ctr.INSTRUCTIONS_RETIRED) == 1


def test_transient_work_never_reaches_an_attached_ledger(machine):
    """Squashed cycles are not wall-clock cycles: the ledger (fed only by
    ``add_cycles``) must not see them, or the sum-to-TSC invariant breaks."""
    from repro.obs.ledger import CycleLedger
    ledger = CycleLedger()
    machine.counters.ledger = ledger
    machine.ledger = ledger
    ledger.attach(machine.counters)
    machine.speculate([isa.div(), isa.load(0x7A00_0000)])
    assert ledger.total() == 0
    assert ledger.verify() == machine.read_tsc()


def test_lfence_squashes_the_divider_signal_too(machine):
    executed = machine.speculate([isa.lfence(), isa.div()])
    assert executed == 0
    assert machine.counters.read(ctr.DIVIDER_ACTIVE) == 0
    assert machine.counters.read(ctr.INSTRUCTIONS_RETIRED) == 0

"""Return stack buffer: depth, underflow, stuffing."""

from repro.cpu.rsb import BENIGN_ENTRY, ReturnStackBuffer


def test_push_pop_lifo():
    rsb = ReturnStackBuffer(depth=4)
    rsb.push(0x10)
    rsb.push(0x20)
    assert rsb.pop() == 0x20
    assert rsb.pop() == 0x10


def test_underflow_returns_none_and_counts():
    rsb = ReturnStackBuffer(depth=4)
    assert rsb.pop() is None
    assert rsb.underflows == 1


def test_depth_drops_oldest():
    rsb = ReturnStackBuffer(depth=2)
    for value in (1, 2, 3):
        rsb.push(value)
    assert len(rsb) == 2
    assert rsb.pop() == 3
    assert rsb.pop() == 2
    assert rsb.pop() is None  # value 1 fell off the bottom


def test_stuff_fills_to_depth_with_benign_entries():
    rsb = ReturnStackBuffer(depth=32)
    rsb.push(0xDEAD)
    assert rsb.stuff() == 32
    assert len(rsb) == 32
    for _ in range(32):
        assert rsb.pop() == BENIGN_ENTRY
    # The stale 0xDEAD entry is gone: stuffing replaced everything.
    assert rsb.pop() is None


def test_clear():
    rsb = ReturnStackBuffer(depth=4)
    rsb.push(1)
    rsb.clear()
    assert len(rsb) == 0


def test_underflow_fallback_flag_is_carried():
    assert ReturnStackBuffer(underflow_falls_back_to_btb=True)\
        .underflow_falls_back_to_btb
    assert not ReturnStackBuffer().underflow_falls_back_to_btb

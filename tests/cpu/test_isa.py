"""ISA constructors and instruction invariants."""

import pytest

from repro.cpu import isa
from repro.cpu.isa import (
    Instruction,
    MEMORY_READ_OPS,
    MEMORY_WRITE_OPS,
    Op,
    PREDICTED_BRANCH_OPS,
    SERIALIZING_OPS,
)


def test_constructors_set_the_right_op():
    cases = {
        isa.nop(): Op.NOP,
        isa.mul(): Op.MUL,
        isa.div(): Op.DIV,
        isa.cmov(): Op.CMOV,
        isa.lfence(): Op.LFENCE,
        isa.verw(): Op.VERW,
        isa.rsb_fill(): Op.RSB_FILL,
        isa.syscall_instr(): Op.SYSCALL,
        isa.sysret_instr(): Op.SYSRET,
        isa.swapgs(): Op.SWAPGS,
        isa.xsave(): Op.XSAVE,
        isa.xrstor(): Op.XRSTOR,
        isa.l1d_flush(): Op.L1D_FLUSH,
        isa.vmenter(): Op.VMENTER,
        isa.vmexit(): Op.VMEXIT,
        isa.rdtsc(): Op.RDTSC,
        isa.rdpmc(): Op.RDPMC,
    }
    for instr, op in cases.items():
        assert instr.op is op


def test_alu_returns_n_instructions():
    block = isa.alu(5)
    assert len(block) == 5
    assert all(i.op is Op.ALU for i in block)


def test_work_carries_cycles_in_value():
    assert isa.work(1234).value == 1234


def test_load_store_carry_address_and_kernel_flag():
    load = isa.load(0x1000, size=4, kernel=True)
    assert load.address == 0x1000 and load.size == 4 and load.kernel_address
    store = isa.store(0x2000, value=7)
    assert store.address == 0x2000 and store.value == 7
    assert not store.kernel_address


def test_branch_constructors_carry_pc_and_target():
    branch = isa.branch_indirect(0x2000, pc=0x100, retpoline=True)
    assert branch.target == 0x2000 and branch.pc == 0x100
    assert branch.retpoline
    call = isa.call_indirect(0x3000, pc=0x200)
    assert call.op is Op.CALL_INDIRECT and not call.retpoline
    ret = isa.ret(pc=0x300, target=0x400)
    assert ret.pc == 0x300 and ret.target == 0x400


def test_mov_cr3_carries_pcid():
    assert isa.mov_cr3(pcid=0x801).value == 0x801


def test_wrmsr_rdmsr_carry_msr_index():
    write = isa.wrmsr(0x48, 5)
    assert write.msr == 0x48 and write.value == 5
    assert isa.rdmsr(0x10A).msr == 0x10A


def test_op_classification_sets_are_disjoint_where_expected():
    assert not MEMORY_READ_OPS & MEMORY_WRITE_OPS
    assert Op.LOAD in MEMORY_READ_OPS
    assert Op.STORE in MEMORY_WRITE_OPS
    assert Op.RET in PREDICTED_BRANCH_OPS
    assert Op.LFENCE in SERIALIZING_OPS
    assert Op.VERW in SERIALIZING_OPS
    assert Op.MOV_CR3 in SERIALIZING_OPS


def test_instructions_are_slotted():
    instr = isa.nop()
    with pytest.raises(AttributeError):
        instr.extra_field = 1


def test_repr_is_informative():
    text = repr(isa.branch_indirect(0x2000, pc=0x100, retpoline=True))
    assert "branch_indirect" in text and "retpoline" in text
    assert "addr=0x1000" in repr(isa.load(0x1000))

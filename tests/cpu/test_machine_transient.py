"""Machine transient-path semantics: windows, side effects, policy."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa


@pytest.fixture
def m():
    return Machine(get_cpu("broadwell"), seed=0)


GADGET = 0x40_0000
LEAK = 0x7A00_0000


def install_div_gadget(machine, address=GADGET):
    machine.register_code(address, [isa.div(), isa.load(LEAK)])


def test_speculate_runs_divider_without_committed_cycles(m):
    tsc_before = m.read_tsc()
    executed = m.speculate([isa.div()])
    assert executed == 1
    assert m.read_tsc() == tsc_before  # no committed time
    assert m.counters.read(ctr.DIVIDER_ACTIVE) == m.costs.div
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 1


def test_speculate_load_fills_cache(m):
    m.caches.flush_line(LEAK)
    m.speculate([isa.load(LEAK)])
    assert m.caches.probe_l1(LEAK)


def test_speculate_store_never_reaches_memory(m):
    m.speculate([isa.store(0x1234, value=9)])
    assert not m.store_buffer.match(0x1234)


def test_lfence_ends_the_window(m):
    executed = m.speculate([isa.lfence(), isa.div()])
    assert executed == 0
    assert m.counters.read(ctr.DIVIDER_ACTIVE) == 0


def test_window_bounded_by_spec_window(m):
    block = [isa.div()] * (m.cpu.spec_window + 10)
    executed = m.speculate(block)
    assert executed == m.cpu.spec_window


def test_transient_kernel_read_gated_by_meltdown_and_kpti(m):
    kernel_addr = 0xFFFF_8880_0000_1000
    # Vulnerable + kernel mapped: the read goes through transiently.
    m.kernel_mapped_in_user = True
    assert m.speculate([isa.load(kernel_addr, kernel=True)]) == 1
    # KPTI unmaps the kernel: the access (and window) is blocked.
    m.kernel_mapped_in_user = False
    m.transient_loads.clear()
    assert m.speculate([isa.load(kernel_addr, kernel=True)]) == 0
    assert kernel_addr not in m.transient_loads


def test_transient_kernel_read_blocked_on_immune_part():
    m = Machine(get_cpu("zen"))
    m.kernel_mapped_in_user = True
    assert m.speculate([isa.load(0xFFFF_8880_0000_1000, kernel=True)]) == 0


def test_mispredicted_indirect_launches_window(m):
    install_div_gadget(m)
    m.caches.flush_line(LEAK)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))    # train toward gadget
    m.execute(isa.branch_indirect(0x50_0000, pc=pc))  # victim: mispredict
    assert m.counters.read(ctr.MISPREDICTED_INDIRECT) == 1
    assert m.counters.read(ctr.DIVIDER_ACTIVE) > 0
    assert m.caches.probe_l1(LEAK)


def test_correctly_predicted_branch_launches_nothing(m):
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))
    m.counters.reset()
    m.execute(isa.branch_indirect(GADGET, pc=pc))  # same target: predicted
    # A correct prediction launches no wrong-path window; the gadget's
    # committed execution is the workload's business, not the branch's.
    assert m.counters.read(ctr.DIVIDER_ACTIVE) == 0
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_retpoline_branch_never_trains_or_speculates(m):
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc, retpoline=True))
    m.execute(isa.branch_indirect(0x50_0000, pc=pc, retpoline=True))
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0
    assert not m.btb.contains(pc)


def test_ibrs_on_broadwell_blocks_prediction_and_costs_extra(m):
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))  # train (IBRS off)
    m.msr.set_ibrs(True)
    cost = m.execute(isa.branch_indirect(0x50_0000, pc=pc))
    assert cost == m.costs.indirect_base + m.costs.ibrs_extra
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_eibrs_allows_same_mode_prediction():
    m = Machine(get_cpu("cascade_lake"))
    m.msr.set_ibrs(True)
    pc = 0x100
    branch = isa.branch_indirect(0x2000, pc=pc)
    m.execute(branch)
    cost = m.execute(branch)
    assert cost == m.costs.indirect_base  # ibrs_extra is 0 on eIBRS parts


def test_ice_lake_client_ibrs_blocks_kernel_prediction():
    m = Machine(get_cpu("ice_lake_client"))
    m.msr.set_ibrs(True)
    m.mode = Mode.KERNEL
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))
    m.execute(isa.branch_indirect(0x50_0000, pc=pc))
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_zen3_never_redirects_transiently():
    m = Machine(get_cpu("zen3"))
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))
    m.execute(isa.branch_indirect(0x50_0000, pc=pc))
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_ibpb_redirects_to_harmless_but_still_mispredicts(m):
    """The paper's observation: post-IBPB branches count as mispredicted
    (entries point at a harmless gadget), yet no attacker code runs."""
    from repro.cpu import msr as msrdef
    install_div_gadget(m)
    pc = 0x100
    m.execute(isa.branch_indirect(GADGET, pc=pc))
    m.execute(isa.wrmsr(msrdef.IA32_PRED_CMD, msrdef.PRED_CMD_IBPB))
    m.counters.reset()
    m.execute(isa.branch_indirect(0x50_0000, pc=pc))
    assert m.counters.read(ctr.MISPREDICTED_INDIRECT) == 1
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_rsb_underflow_falls_back_to_btb_on_skylake():
    """SpectreRSB surface: Skylake consults the BTB on RSB underflow."""
    m = Machine(get_cpu("skylake_client"))
    install_div_gadget(m)
    pc = 0x200
    m.execute(isa.branch_indirect(GADGET, pc=pc))  # plant a BTB entry at pc
    m.counters.reset()
    m.execute(isa.ret(pc=pc))  # empty RSB -> BTB fallback -> gadget
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) > 0


def test_rsb_underflow_stalls_on_broadwell(m):
    install_div_gadget(m)
    pc = 0x200
    m.execute(isa.branch_indirect(GADGET, pc=pc))
    m.counters.reset()
    m.execute(isa.ret(pc=pc))
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_stale_rsb_entry_speculates_to_it(m):
    install_div_gadget(m)
    m.rsb.push(GADGET)  # attacker-planted return address
    m.counters.reset()
    m.execute(isa.ret(pc=0x300))  # actual target differs (0)
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) > 0


def test_stuffed_rsb_yields_benign_mispredicts(m):
    install_div_gadget(m)
    m.rsb.push(GADGET)
    m.execute(isa.rsb_fill())  # stuffing overwrites the planted entry
    m.counters.reset()
    m.execute(isa.ret(pc=0x300))
    assert m.counters.read(ctr.TRANSIENT_INSTRUCTIONS) == 0


def test_eibrs_periodic_scrub_fires_and_flushes():
    m = Machine(get_cpu("cascade_lake"), seed=3)
    m.msr.set_ibrs(True)
    m.btb.train(0x100, 0x2000, Mode.KERNEL)
    costs = []
    for _ in range(40):
        costs.append(m.execute(isa.syscall_instr()))
        m.execute(isa.sysret_instr())
    slow = [c for c in costs if c > m.costs.syscall]
    assert slow, "periodic scrub never fired in 40 entries"
    assert all(c == m.costs.syscall +
               m.cpu.predictor.eibrs_scrub_extra_cycles for c in slow)
    assert m.counters.read(ctr.BTB_FLUSH_ON_ENTRY) == len(slow)


def test_no_scrub_without_eibrs_enabled():
    m = Machine(get_cpu("cascade_lake"), seed=3)
    costs = {m.execute(isa.syscall_instr()) for _ in range(40)}
    assert costs == {m.costs.syscall}

"""Execution tracing."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import isa
from repro.cpu.isa import Op
from repro.cpu.trace import ExecutionTrace
from repro.kernel import GETPID, Kernel
from repro.mitigations import MitigationConfig, linux_default


@pytest.fixture
def m():
    return Machine(get_cpu("broadwell"))


def test_counts_and_cycles(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.work(100))
        m.execute(isa.work(50))
        m.execute(isa.lfence())
    assert trace.count(Op.WORK) == 2
    assert trace.cycles(Op.WORK) == 150
    assert trace.count(Op.LFENCE) == 1
    assert trace.total_instructions == 3
    assert trace.total_cycles == 150 + m.costs.lfence


def test_detaches_after_with_block(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.nop())
    m.execute(isa.nop())  # not traced
    assert trace.count(Op.NOP) == 1
    assert m.tracer is None


def test_nested_attachment_restores_outer(m):
    outer, inner = ExecutionTrace(), ExecutionTrace()
    with outer.attach(m):
        m.execute(isa.nop())
        with inner.attach(m):
            m.execute(isa.nop())
        m.execute(isa.nop())
    assert outer.count(Op.NOP) == 2
    assert inner.count(Op.NOP) == 1


def test_transient_instructions_counted_separately(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.speculate([isa.div(), isa.load(0x1000)])
    assert trace.count(Op.DIV, transient=True) == 1
    assert trace.count(Op.LOAD, transient=True) == 1
    assert trace.total_instructions == 0  # nothing committed


def test_top_costs_ranks_by_cycles(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.work(1000))
        m.execute(isa.lfence())
    (top_op, top_cycles), *_ = trace.top_costs()
    assert top_op is Op.WORK and top_cycles == 1000


def test_reset(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.nop())
    trace.reset()
    assert trace.total_instructions == 0


def test_report_shape(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.work(10))
        m.speculate([isa.div()])
    out = trace.report()
    assert "work" in out
    assert "transient: div x1" in out


def test_transient_cycles_recorded(m):
    """Wrong-path work carries its modeled cost, not cycles=0."""
    trace = ExecutionTrace()
    with trace.attach(m):
        m.speculate([isa.div(), isa.load(0x1000), isa.mul()])
    assert trace.cycles(Op.DIV, transient=True) == m.costs.div
    assert trace.cycles(Op.LOAD, transient=True) > 0
    assert trace.cycles(Op.MUL, transient=True) == m.costs.mul
    assert trace.total_transient_cycles == (
        trace.cycles(Op.DIV, transient=True)
        + trace.cycles(Op.LOAD, transient=True)
        + trace.cycles(Op.MUL, transient=True))
    # Transient cycles are modeled, never charged to the committed total.
    assert trace.total_cycles == 0


def test_transient_cycles_do_not_mix_with_committed(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.mul())
        m.speculate([isa.mul()])
    assert trace.cycles(Op.MUL) == m.costs.mul
    assert trace.cycles(Op.MUL, transient=True) == m.costs.mul
    assert trace.total_cycles == m.costs.mul


def test_mode_tagging(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.work(10))
        m.mode = Mode.KERNEL
        m.execute(isa.work(25))
        m.execute(isa.nop())
        m.mode = Mode.USER
    assert trace.mode_count(Mode.USER) == 1
    assert trace.mode_count(Mode.KERNEL) == 2
    assert trace.mode_cycles(Mode.USER) == 10
    assert trace.mode_cycles(Mode.KERNEL) == 25 + m.costs.nop


def test_mode_split_of_a_syscall():
    """A syscall's committed work lands in KERNEL mode, not USER."""
    cpu = get_cpu("broadwell")
    kernel = Kernel(Machine(cpu), linux_default(cpu))
    trace = ExecutionTrace()
    with trace.attach(kernel.machine):
        kernel.syscall(GETPID)
    assert trace.mode_cycles(Mode.KERNEL) > 0
    assert trace.mode_cycles(Mode.KERNEL) > trace.mode_cycles(Mode.USER)


def test_report_includes_transient_and_mode_lines(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.mode = Mode.KERNEL
        m.execute(isa.work(10))
        m.mode = Mode.USER
        m.speculate([isa.div()])
    out = trace.report()
    assert "by mode:" in out
    assert "kernel" in out
    assert "modeled cycles" in out


def test_reset_clears_transient_and_mode_tallies(m):
    trace = ExecutionTrace()
    with trace.attach(m):
        m.execute(isa.nop())
        m.speculate([isa.div()])
    trace.reset()
    assert trace.total_transient_cycles == 0
    assert trace.mode_count(Mode.USER) == 0
    assert trace.mode_cycles(Mode.USER) == 0


def test_trace_shows_where_mitigation_cycles_go():
    """The intended use: attribute a syscall's cycles to mitigation ops."""
    cpu = get_cpu("broadwell")
    kernel = Kernel(Machine(cpu), linux_default(cpu))
    kernel.syscall(GETPID)  # warm
    trace = ExecutionTrace()
    with trace.attach(kernel.machine):
        kernel.syscall(GETPID)
    assert trace.count(Op.MOV_CR3) == 2      # KPTI, both directions
    assert trace.count(Op.VERW) == 1         # MDS on exit
    assert trace.count(Op.LFENCE) == 1       # V1 after swapgs
    # PTI + MDS dominate the traced cycles, like Figure 2 says.
    top_two = {op for op, _ in trace.top_costs(3)} - {Op.WORK}
    assert {Op.MOV_CR3, Op.VERW} <= top_two | {Op.MOV_CR3, Op.VERW}
    assert trace.cycles(Op.MOV_CR3) == 2 * cpu.costs.swap_cr3
    assert trace.cycles(Op.VERW) == cpu.costs.verw_clear

"""MDS-leakable buffers: deposit, sample, verw clearing, immunity."""

from repro.cpu.buffers import FILL_BUFFER, LOAD_PORT, STORE_BUFFER, MicroarchBuffers
from repro.cpu.modes import Mode


def vulnerable():
    return MicroarchBuffers(vulnerable=True)


def test_sample_empty_buffers_leaks_nothing():
    assert vulnerable().sample(Mode.USER) == {}


def test_load_deposits_fill_buffer_and_load_port():
    buffers = vulnerable()
    buffers.deposit_load(0xAA, Mode.KERNEL)
    leaked = buffers.sample(Mode.USER)
    assert leaked == {FILL_BUFFER: 0xAA, LOAD_PORT: 0xAA}


def test_store_deposits_store_buffer():
    buffers = vulnerable()
    buffers.deposit_store(0xBB, Mode.KERNEL)
    assert buffers.sample(Mode.USER) == {STORE_BUFFER: 0xBB}


def test_same_mode_residue_is_not_a_leak():
    """MDS is a cross-domain sampler; your own data is not a secret."""
    buffers = vulnerable()
    buffers.deposit_load(0xCC, Mode.USER)
    assert buffers.sample(Mode.USER) == {}
    assert buffers.sample(Mode.KERNEL) != {}


def test_verw_clear_erases_everything():
    buffers = vulnerable()
    buffers.deposit_load(0xAA, Mode.KERNEL)
    buffers.deposit_store(0xBB, Mode.KERNEL)
    buffers.clear()
    assert buffers.sample(Mode.USER) == {}


def test_immune_part_never_leaks():
    buffers = MicroarchBuffers(vulnerable=False)
    buffers.deposit_load(0xAA, Mode.KERNEL)
    buffers.deposit_store(0xBB, Mode.KERNEL)
    assert buffers.sample(Mode.USER) == {}
    assert not buffers.holds_foreign_data(Mode.USER)


def test_newer_residue_overwrites_older():
    buffers = vulnerable()
    buffers.deposit_load(0x01, Mode.KERNEL)
    buffers.deposit_load(0x02, Mode.KERNEL)
    assert buffers.sample(Mode.USER)[FILL_BUFFER] == 0x02


def test_guest_modes_count_as_distinct_domains():
    buffers = vulnerable()
    buffers.deposit_load(0x42, Mode.GUEST_KERNEL)
    assert buffers.holds_foreign_data(Mode.KERNEL)
    assert not buffers.holds_foreign_data(Mode.GUEST_KERNEL)

"""MSR file: SPEC_CTRL bits, command MSRs, feature gating."""

import pytest

from repro.cpu import msr as m
from repro.errors import UnsupportedFeatureError


def make(ibrs=True, eibrs=False, ssbd=True, caps=0):
    return m.MSRFile(supports_ibrs=ibrs, supports_eibrs=eibrs,
                     supports_ssbd=ssbd, arch_capabilities=caps)


def test_spec_ctrl_bits_roundtrip():
    msrs = make()
    msrs.write(m.IA32_SPEC_CTRL, m.SPEC_CTRL_IBRS | m.SPEC_CTRL_SSBD)
    assert msrs.ibrs_enabled
    assert msrs.ssbd_enabled
    assert not msrs.stibp_enabled
    assert msrs.read(m.IA32_SPEC_CTRL) == m.SPEC_CTRL_IBRS | m.SPEC_CTRL_SSBD


def test_ibrs_write_rejected_without_support():
    msrs = make(ibrs=False, eibrs=False)
    with pytest.raises(UnsupportedFeatureError):
        msrs.write(m.IA32_SPEC_CTRL, m.SPEC_CTRL_IBRS)


def test_ibrs_write_allowed_with_eibrs_only():
    msrs = make(ibrs=False, eibrs=True)
    msrs.write(m.IA32_SPEC_CTRL, m.SPEC_CTRL_IBRS)
    assert msrs.eibrs_active


def test_eibrs_active_requires_both_support_and_bit():
    msrs = make(ibrs=True, eibrs=False)
    msrs.set_ibrs(True)
    assert not msrs.eibrs_active
    msrs2 = make(eibrs=True)
    assert not msrs2.eibrs_active
    msrs2.set_ibrs(True)
    assert msrs2.eibrs_active


def test_ssbd_write_rejected_without_support():
    msrs = make(ssbd=False)
    with pytest.raises(UnsupportedFeatureError):
        msrs.write(m.IA32_SPEC_CTRL, m.SPEC_CTRL_SSBD)


def test_pred_cmd_fires_callback_and_reads_zero():
    msrs = make()
    fired = []
    msrs.on_ibpb(lambda: fired.append(True))
    msrs.write(m.IA32_PRED_CMD, m.PRED_CMD_IBPB)
    assert fired == [True]
    assert msrs.read(m.IA32_PRED_CMD) == 0  # write-only command MSR


def test_pred_cmd_zero_write_is_noop():
    msrs = make()
    fired = []
    msrs.on_ibpb(lambda: fired.append(True))
    msrs.write(m.IA32_PRED_CMD, 0)
    assert fired == []


def test_flush_cmd_fires_callback():
    msrs = make()
    fired = []
    msrs.on_l1d_flush(lambda: fired.append(True))
    msrs.write(m.IA32_FLUSH_CMD, m.L1D_FLUSH_BIT)
    assert fired == [True]


def test_arch_capabilities_read_only():
    msrs = make(caps=m.ARCH_CAP_RDCL_NO)
    assert msrs.read(m.IA32_ARCH_CAPABILITIES) == m.ARCH_CAP_RDCL_NO
    with pytest.raises(UnsupportedFeatureError):
        msrs.write(m.IA32_ARCH_CAPABILITIES, 0)


def test_set_ibrs_preserves_other_bits():
    msrs = make()
    msrs.set_ssbd(True)
    msrs.set_ibrs(True)
    assert msrs.ssbd_enabled and msrs.ibrs_enabled
    msrs.set_ibrs(False)
    assert msrs.ssbd_enabled and not msrs.ibrs_enabled


def test_set_ssbd_preserves_other_bits():
    msrs = make()
    msrs.set_ibrs(True)
    msrs.set_ssbd(True)
    msrs.set_ssbd(False)
    assert msrs.ibrs_enabled


def test_unknown_msr_reads_zero():
    assert make().read(0xC000_0080) == 0

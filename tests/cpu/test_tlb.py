"""TLB model: PCID tagging, the KPTI-relevant switch semantics."""

from repro.cpu.tlb import PAGE_SIZE, TLB


def test_miss_then_hit():
    tlb = TLB(entries=16)
    assert tlb.access(0x1000) is False
    assert tlb.access(0x1000) is True
    assert tlb.access(0x1FFF) is True   # same page
    assert tlb.access(0x2000) is False  # next page


def test_capacity_lru():
    tlb = TLB(entries=4)
    for i in range(6):
        tlb.access(i * PAGE_SIZE)
    assert tlb.resident() == 4
    assert tlb.access(0) is False        # evicted
    assert tlb.access(5 * PAGE_SIZE) is True


def test_pcid_preserving_switch_keeps_entries():
    """The section 5.1 claim: with PCIDs, KPTI's cr3 writes don't flush."""
    tlb = TLB(entries=64, supports_pcid=True)
    tlb.access(0x5000)
    invalidated = tlb.switch_context(pcid=0x800)
    assert invalidated == 0
    # Back on the original PCID the entry is still warm.
    tlb.switch_context(pcid=0)
    assert tlb.access(0x5000) is True


def test_entries_are_pcid_private():
    tlb = TLB(entries=64, supports_pcid=True)
    tlb.access(0x5000)
    tlb.switch_context(pcid=7)
    assert tlb.access(0x5000) is False  # other context: cold


def test_non_pcid_switch_flushes():
    tlb = TLB(entries=64, supports_pcid=False)
    tlb.access(0x5000)
    invalidated = tlb.switch_context(pcid=1)
    assert invalidated == 1
    assert tlb.access(0x5000) is False


def test_forced_legacy_switch_flushes_even_with_pcid():
    tlb = TLB(entries=64, supports_pcid=True)
    tlb.access(0x5000)
    assert tlb.switch_context(pcid=1, preserve=False) == 1


def test_global_pages_survive_everything_but_full_shootdown():
    tlb = TLB(entries=8, supports_pcid=True)
    tlb.insert_global(0xFFFF_0000)
    assert tlb.access(0xFFFF_0000) is True
    tlb.switch_context(pcid=3, preserve=False)
    assert tlb.access(0xFFFF_0000) is True
    tlb.flush_all(include_global=True)
    assert tlb.access(0xFFFF_0000) is False


def test_flush_all_counts():
    tlb = TLB(entries=8)
    for i in range(5):
        tlb.access(i * PAGE_SIZE)
    assert tlb.flush_all() == 5
    assert tlb.resident() == 0

"""Machine committed-path execution: costs, state effects, measurement."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa
from repro.cpu import msr as msrdef
from repro.cpu.machine import AMD_RETPOLINE, GENERIC_RETPOLINE
from repro.errors import SegmentationFault, UnsupportedFeatureError


@pytest.fixture
def m():
    return Machine(get_cpu("broadwell"), seed=0)


def test_alu_and_work_costs(m):
    assert m.execute(isa.Instruction(isa.Op.ALU)) == m.costs.alu
    assert m.execute(isa.work(123)) == 123


def test_tsc_tracks_execution(m):
    before = m.read_tsc()
    m.execute(isa.work(50))
    assert m.read_tsc() == before + 50


def test_div_charges_divider_counter_on_commit(m):
    m.execute(isa.div())
    assert m.counters.read(ctr.DIVIDER_ACTIVE) == m.costs.div


def test_load_latency_by_cache_level(m):
    addr = 0x7000_0000
    cold = m.execute(isa.load(addr))
    warm = m.execute(isa.load(addr))
    assert cold > warm
    assert warm >= m.costs.load_l1  # at least L1 latency


def test_load_tlb_miss_surcharge(m):
    addr = 0x7100_0000
    first = m.execute(isa.load(addr))
    m.caches.flush_line(addr)
    second = m.execute(isa.load(addr))  # TLB warm now, cache cold
    assert first - second == m.costs.tlb_miss


def test_store_then_load_forwards(m):
    addr = 0x7200_0000
    m.execute(isa.store(addr))
    cost = m.execute(isa.load(addr))
    assert cost <= m.costs.store_forward + m.costs.tlb_miss
    assert m.counters.read(ctr.STLF_HITS) == 1


def test_ssbd_blocks_forwarding_and_costs(m):
    m.msr.set_ssbd(True)
    addr = 0x7300_0000
    m.execute(isa.store(addr))
    m.execute(isa.load(addr))  # warm everything
    m.execute(isa.store(addr))
    cost = m.execute(isa.load(addr))
    assert cost >= m.cpu.ssbd_load_penalty
    assert m.counters.read(ctr.STLF_BLOCKED) >= 1


def test_kernel_address_faults_in_user_mode(m):
    assert m.mode is Mode.USER
    with pytest.raises(SegmentationFault):
        m.execute(isa.load(0xFFFF_8880_0000_0000, kernel=True))


def test_kernel_address_ok_in_kernel_mode(m):
    m.mode = Mode.KERNEL
    m.execute(isa.load(0xFFFF_8880_0000_0000, kernel=True))  # no raise


def test_clflush_evicts(m):
    addr = 0x7400_0000
    m.execute(isa.load(addr))
    m.execute(isa.clflush(addr))
    assert not m.caches.probe_l1(addr)


def test_syscall_and_sysret_switch_modes_and_cost(m):
    assert m.execute(isa.syscall_instr()) == m.costs.syscall
    assert m.mode is Mode.KERNEL
    assert m.counters.read(ctr.KERNEL_ENTRIES) == 1
    assert m.execute(isa.sysret_instr()) == m.costs.sysret
    assert m.mode is Mode.USER


def test_guest_syscall_stays_in_guest_modes(m):
    m.mode = Mode.GUEST_USER
    m.execute(isa.syscall_instr())
    assert m.mode is Mode.GUEST_KERNEL
    m.execute(isa.sysret_instr())
    assert m.mode is Mode.GUEST_USER


def test_vmexit_vmenter_modes_and_counter(m):
    m.mode = Mode.GUEST_KERNEL
    m.execute(isa.vmexit())
    assert m.mode is Mode.KERNEL
    assert m.counters.read(ctr.VM_EXITS) == 1
    m.execute(isa.vmenter())
    assert m.mode is Mode.GUEST_KERNEL


def test_mov_cr3_cost_and_pcid_preservation(m):
    m.execute(isa.load(0x7500_0000))
    cost = m.execute(isa.mov_cr3(pcid=0x801))
    assert cost == m.costs.swap_cr3  # PCIDs: no shootdown drag
    m.execute(isa.mov_cr3(pcid=0))
    # Entry still warm after the PCID round trip.
    assert m.tlb.access(0x7500_0000) is True


def test_verw_clearing_cost_on_vulnerable_part(m):
    assert m.execute(isa.verw()) == m.costs.verw_clear
    assert m.counters.read(ctr.VERW_CLEARS) == 1


def test_verw_legacy_on_immune_part():
    m = Machine(get_cpu("zen3"))
    assert m.execute(isa.verw()) == m.costs.verw_legacy
    assert m.counters.read(ctr.VERW_CLEARS) == 0


def test_verw_legacy_without_microcode_patch():
    m = Machine(get_cpu("broadwell"), microcode_patched=False)
    assert m.execute(isa.verw()) == m.costs.verw_legacy


def test_ibpb_wrmsr_cost_and_barrier(m):
    m.btb.train(0x100, 0x2000, Mode.USER)
    cost = m.execute(isa.wrmsr(msrdef.IA32_PRED_CMD, msrdef.PRED_CMD_IBPB))
    assert cost == m.costs.ibpb
    assert m.counters.read(ctr.IBPB_COUNT) == 1
    from repro.cpu.btb import HARMLESS_TARGET
    assert m.btb.lookup(0x100, Mode.USER) == HARMLESS_TARGET


def test_l1d_flush_via_msr(m):
    m.execute(isa.load(0x7600_0000))
    cost = m.execute(isa.wrmsr(msrdef.IA32_FLUSH_CMD, msrdef.L1D_FLUSH_BIT))
    assert cost == m.costs.l1d_flush
    assert not m.caches.probe_l1(0x7600_0000)
    assert m.counters.read(ctr.L1D_FLUSHES) == 1


def test_plain_wrmsr_cost(m):
    assert m.execute(isa.wrmsr(msrdef.IA32_SPEC_CTRL, 0)) == m.costs.wrmsr


def test_rsb_fill_stuffs(m):
    m.execute(isa.rsb_fill())
    assert len(m.rsb) == m.cpu.rsb_depth


def test_call_pushes_rsb(m):
    m.execute(isa.call(pc=0x999))
    assert len(m.rsb) == 1


def test_ret_predicted_correctly_is_cheap(m):
    m.execute(isa.call(pc=0x999))
    cost = m.execute(isa.ret(pc=0xAAA, target=0x999))
    assert cost == m.costs.ret_


def test_ret_with_stale_prediction_pays_penalty(m):
    m.execute(isa.call(pc=0x111))
    cost = m.execute(isa.ret(pc=0xAAA, target=0x999))  # popped 0x111 != 0x999
    assert cost == m.costs.ret_ + m.costs.mispredict_penalty


def test_ret_underflow_pays_penalty(m):
    cost = m.execute(isa.ret(pc=0x999))
    assert cost == m.costs.ret_ + m.costs.mispredict_penalty


def test_retpoline_indirect_costs_table5(m):
    m.retpoline_variant = GENERIC_RETPOLINE
    cost = m.execute(isa.branch_indirect(0x2000, pc=0x100, retpoline=True))
    assert cost == m.costs.indirect_base + m.costs.generic_retpoline_extra


def test_amd_retpoline_rejected_on_intel(m):
    m.retpoline_variant = AMD_RETPOLINE
    with pytest.raises(UnsupportedFeatureError):
        m.execute(isa.branch_indirect(0x2000, pc=0x100, retpoline=True))


def test_amd_retpoline_cost_on_zen2():
    m = Machine(get_cpu("zen2"))
    m.retpoline_variant = AMD_RETPOLINE
    cost = m.execute(isa.branch_indirect(0x2000, pc=0x100, retpoline=True))
    assert cost == m.costs.indirect_base + 0  # Table 5: +0 on Zen 2


def test_indirect_branch_warm_prediction_hits_baseline(m):
    branch = isa.branch_indirect(0x2000, pc=0x100)
    m.execute(branch)                 # trains
    cost = m.execute(branch)          # predicted
    assert cost == m.costs.indirect_base
    assert m.counters.read(ctr.BTB_HITS) == 1


def test_register_code_rejects_address_zero(m):
    with pytest.raises(ValueError):
        m.register_code(0, [isa.nop()])


def test_measure_recovers_single_instruction_cost(m):
    measured = m.measure([isa.lfence()], iterations=200)
    assert measured == pytest.approx(m.costs.lfence, abs=0.5)


def test_measure_subtracts_loop_overhead(m):
    assert m.measure([isa.Instruction(isa.Op.NOP)], iterations=200) == \
        pytest.approx(m.costs.nop, abs=0.5)


def test_run_sums_costs(m):
    total = m.run([isa.work(10), isa.work(20)])
    assert total == 30

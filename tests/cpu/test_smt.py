"""SMT core: shared structures, sibling identity."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import isa
from repro.cpu.smt import SMTCore
from repro.errors import ConfigurationError


def test_zen_cannot_build_an_smt_core():
    with pytest.raises(ConfigurationError):
        SMTCore(get_cpu("zen"))


def test_threads_have_distinct_ids():
    core = SMTCore(get_cpu("skylake_client"))
    assert core.thread0.thread_id == 0
    assert core.thread1.thread_id == 1


def test_btb_is_shared():
    core = SMTCore(get_cpu("skylake_client"))
    assert core.thread0.btb is core.thread1.btb
    core.thread0.execute(isa.branch_indirect(0x2000, pc=0x100))
    assert core.thread1.btb.contains(0x100)


def test_caches_are_shared():
    core = SMTCore(get_cpu("skylake_client"))
    core.thread0.execute(isa.load(0x5000))
    assert core.thread1.caches.probe_l1(0x5000)


def test_mds_buffers_are_shared():
    core = SMTCore(get_cpu("broadwell"))
    core.thread0.mode = Mode.KERNEL
    core.thread0.execute(isa.load(0xFFFF_8880_0000_0000, kernel=True))
    assert core.thread1.mds_buffers.holds_foreign_data(Mode.USER)


def test_rsb_and_store_buffer_stay_private():
    """Statically partitioned structures don't leak across siblings."""
    core = SMTCore(get_cpu("skylake_client"))
    core.thread0.execute(isa.call(pc=0x999))
    assert len(core.thread1.rsb) == 0
    core.thread0.execute(isa.store(0x6000))
    assert not core.thread1.store_buffer.match(0x6000)


def test_sibling_of():
    core = SMTCore(get_cpu("zen2"))
    assert core.sibling_of(core.thread0) is core.thread1
    assert core.sibling_of(core.thread1) is core.thread0
    with pytest.raises(ValueError):
        core.sibling_of(Machine(get_cpu("zen2")))


def test_threads_property():
    core = SMTCore(get_cpu("zen3"))
    assert core.threads == (core.thread0, core.thread1)

"""JSON/CSV export of experiment results."""

import csv
import io
import json

import pytest

from repro.core.attribution import AttributionResult, Contribution
from repro.core.export import (
    attributions_to_json,
    paired_to_csv,
    paired_to_json,
    speculation_matrix_to_json,
)
from repro.core.probe import SCENARIOS, speculation_matrix
from repro.core.stats import Measurement
from repro.core.study import PairedOverhead, Settings
from repro.cpu import get_cpu
from repro.obs.provenance import build_manifest


def fake_attribution():
    result = AttributionResult(
        cpu="broadwell", workload="lebench", metric="cycles",
        baseline=Measurement(1000.0, 5.0, 12),
        default=Measurement(1400.0, 5.0, 12),
    )
    result.contributions.append(Contribution(
        knob="pti", boot_param="nopti", percent=25.0,
        with_knob=Measurement(1400.0, 5.0, 12),
        without_knob=Measurement(1150.0, 5.0, 12)))
    result.other_percent = 15.0
    return result


def fake_paired():
    return PairedOverhead(
        cpu="zen3", workload="swaptions",
        baseline=Measurement(100.0, 0.5, 10),
        treated=Measurement(134.0, 0.5, 10),
        overhead_percent=34.0)


def test_attribution_json_roundtrip():
    payload = json.loads(attributions_to_json([fake_attribution()]))
    (entry,) = payload["results"]
    assert entry["cpu"] == "broadwell"
    assert entry["total_overhead_percent"] == pytest.approx(40.0)
    (contribution,) = entry["contributions"]
    assert contribution["knob"] == "pti"
    assert contribution["significant"] is True
    assert entry["baseline"]["samples"] == 12


def test_attribution_json_has_provenance():
    payload = json.loads(attributions_to_json([fake_attribution()]))
    prov = payload["provenance"]
    for key in ("seed", "cpus", "config", "version", "created_at"):
        assert key in prov
    assert prov["cpus"] == ["broadwell"]
    assert prov["schema_version"] == 1


def test_export_uses_caller_manifest():
    manifest = build_manifest(
        command="export figure2 --fast", cpus=["broadwell"],
        settings=Settings.fast())
    payload = json.loads(
        attributions_to_json([fake_attribution()], provenance=manifest))
    prov = payload["provenance"]
    assert prov["command"] == "export figure2 --fast"
    assert prov["seed"] == Settings.fast().seed
    assert prov["settings"]["iterations"] == Settings.fast().iterations


def test_paired_json():
    payload = json.loads(paired_to_json([fake_paired()]))
    (entry,) = payload["results"]
    assert entry["workload"] == "swaptions"
    assert entry["overhead_percent"] == pytest.approx(34.0)
    assert entry["significant"] is True
    assert payload["provenance"]["cpus"] == ["zen3"]


def test_paired_csv_parses_back():
    text = paired_to_csv([fake_paired(), fake_paired()])
    comments = [ln for ln in text.splitlines() if ln.startswith("#")]
    assert any("zen3" in ln for ln in comments)          # cpus line
    assert any(ln.startswith("# seed:") for ln in comments)
    assert any(ln.startswith("# version:") for ln in comments)
    data = "\n".join(ln for ln in text.splitlines()
                     if not ln.startswith("#"))
    rows = list(csv.DictReader(io.StringIO(data)))
    assert len(rows) == 2
    assert rows[0]["cpu"] == "zen3"
    assert float(rows[0]["overhead_percent"]) == pytest.approx(34.0)
    assert rows[0]["significant"] == "1"


def test_speculation_matrix_json():
    matrix = speculation_matrix((get_cpu("zen"), get_cpu("broadwell")),
                                ibrs=True)
    payload = json.loads(speculation_matrix_to_json(matrix))
    results = payload["results"]
    assert results["zen"] is None  # the N/A row
    assert set(results["broadwell"]) == {s.label for s in SCENARIOS}
    assert all(v is False for v in results["broadwell"].values())
    assert sorted(payload["provenance"]["cpus"]) == ["broadwell", "zen"]

"""The successive-disable attribution harness."""

import pytest

from repro.core.attribution import (
    CYCLES,
    SCORE,
    AttributionResult,
    attribute_overhead,
)
from repro.mitigations.base import KNOBS_BY_NAME, MitigationConfig

PTI = KNOBS_BY_NAME["pti"]
MDS = KNOBS_BY_NAME["mds"]
V2 = KNOBS_BY_NAME["spectre_v2"]


def synthetic_run_fn(config):
    """A workload with known per-mitigation costs: baseline 1000 cycles,
    PTI +400, MDS +500."""
    cycles = 1000.0
    if config.pti:
        cycles += 400
    if config.mds_verw:
        cycles += 500
    return cycles


DEFAULT = MitigationConfig(pti=True, mds_verw=True)


def run(sigma=0.0, knobs=(PTI, MDS)):
    return attribute_overhead(
        synthetic_run_fn, DEFAULT, knobs,
        cpu="synthetic", workload="unit", metric=CYCLES,
        sigma=sigma, rel_tol=0.002, max_samples=40, seed=1,
    )


def test_total_overhead_matches_construction():
    result = run()
    assert result.total_overhead_percent == pytest.approx(90.0)


def test_contributions_attributed_to_the_right_knobs():
    result = run()
    assert result.contribution_for("pti").percent == pytest.approx(40.0)
    assert result.contribution_for("mds").percent == pytest.approx(50.0)


def test_residual_is_zero_when_knobs_cover_everything():
    assert run().other_percent == pytest.approx(0.0)


def test_noop_knobs_are_skipped_without_measurement():
    result = run(knobs=(PTI, V2, MDS))  # V2 changes nothing here
    assert result.contribution_for("spectre_v2") is None
    assert len(result.contributions) == 2


def test_residual_captures_uncovered_mitigations():
    result = run(knobs=(PTI,))  # MDS left enabled at the end of the chain
    assert result.other_percent == pytest.approx(50.0)


def test_noisy_attribution_converges_close_to_truth():
    result = run(sigma=0.01)
    assert result.contribution_for("pti").percent == pytest.approx(40.0, abs=3)
    assert result.contribution_for("mds").percent == pytest.approx(50.0, abs=3)


def test_significance_flag():
    result = run(sigma=0.005)
    assert result.contribution_for("pti").significant
    assert result.contribution_for("mds").significant


def test_score_metric_inverts_direction():
    def score_fn(config):
        # Mitigations reduce the score.
        score = 1000.0
        if config.js_index_masking:
            score -= 40
        return score

    knob = KNOBS_BY_NAME["js_index_masking"]
    result = attribute_overhead(
        score_fn, MitigationConfig(js_index_masking=True), (knob,),
        cpu="synthetic", workload="unit", metric=SCORE,
        sigma=0.0, rel_tol=0.002, seed=0,
    )
    assert result.total_overhead_percent == pytest.approx(4.0)
    assert result.contribution_for("js_index_masking").percent == \
        pytest.approx(4.0)
    assert result.other_percent == pytest.approx(0.0)


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        attribute_overhead(synthetic_run_fn, DEFAULT, (PTI,),
                           cpu="x", workload="y", metric="watts")


def test_as_dict_includes_other():
    d = run().as_dict()
    assert set(d) == {"pti", "mds", "other"}

"""Microbenchmarks recover the paper's Tables 3-8 through the timed-loop
measurement pipeline (not by reading the calibration back)."""

import pytest

from repro.cpu import Machine, all_cpus, get_cpu
from repro.core import microbench as mb
from repro.errors import UnsupportedFeatureError

ITER = 300


@pytest.mark.parametrize("key,syscall,sysret,cr3", [
    ("broadwell", 49, 40, 206),
    ("skylake_client", 42, 42, 191),
    ("zen3", 83, 55, None),
])
def test_table3_measurements(key, syscall, sysret, cr3):
    row = mb.table3_row(get_cpu(key), iterations=ITER)
    assert row.syscall == pytest.approx(syscall, abs=1)
    assert row.sysret == pytest.approx(sysret, abs=1)
    if cr3 is None:
        assert row.swap_cr3 is None
    else:
        assert row.swap_cr3 == pytest.approx(cr3, abs=2)


def test_table4_measurements():
    assert mb.table4_value(get_cpu("cascade_lake"), ITER) == \
        pytest.approx(458, abs=1)
    assert mb.table4_value(get_cpu("zen2"), ITER) is None


@pytest.mark.parametrize("key,base,ibrs,generic,amd", [
    ("broadwell", 16, 32, 28, None),
    ("cascade_lake", 3, 0, 49, None),
    ("zen", 30, None, 25, 28),
    ("zen2", 3, 13, 14, 0),
])
def test_table5_measurements(key, base, ibrs, generic, amd):
    row = mb.table5_row(get_cpu(key), iterations=ITER)
    assert row.baseline == pytest.approx(base, abs=1)
    if ibrs is None:
        assert row.ibrs_extra is None
    else:
        assert row.ibrs_extra == pytest.approx(ibrs, abs=1)
    assert row.generic_extra == pytest.approx(generic, abs=1)
    if amd is None:
        assert row.amd_extra is None
    else:
        assert row.amd_extra == pytest.approx(amd, abs=1)


def test_table6_measurements():
    assert mb.table6_value(get_cpu("zen"), 50) == pytest.approx(7400, abs=5)
    assert mb.table6_value(get_cpu("cascade_lake"), 50) == \
        pytest.approx(340, abs=5)


def test_table7_measurements():
    assert mb.table7_value(get_cpu("ice_lake_client"), ITER) == \
        pytest.approx(40, abs=1)


def test_table8_measurements():
    assert mb.table8_value(get_cpu("zen2"), ITER) == pytest.approx(4, abs=1)
    assert mb.table8_value(get_cpu("zen"), ITER) == pytest.approx(48, abs=1)


def test_indirect_branch_rejects_bogus_variant():
    with pytest.raises(ValueError):
        mb.measure_indirect_branch(Machine(get_cpu("zen")), "turbo")


def test_ibrs_measurement_rejected_on_zen():
    with pytest.raises(UnsupportedFeatureError):
        mb.measure_indirect_branch(Machine(get_cpu("zen")), "ibrs")


def test_ibpb_improvement_trend_matches_paper():
    """Table 6's headline: IBPB got enormously cheaper over generations."""
    values = {cpu.key: mb.table6_value(cpu, 30) for cpu in all_cpus()}
    assert values["broadwell"] > 10 * values["cascade_lake"]
    assert values["zen"] > 5 * values["zen3"]


class TestBimodalEntries:
    """Section 6.2.2: eIBRS kernel entries are bimodal."""

    def test_two_modes_with_eibrs(self):
        lat = mb.kernel_entry_latencies(get_cpu("cascade_lake"),
                                        entries=300, eibrs=True)
        values = sorted(set(lat))
        assert len(values) == 2
        assert values[1] - values[0] == 210  # the extra scrub cost

    def test_slow_entry_rate_is_one_in_eight_to_twenty(self):
        lat = mb.kernel_entry_latencies(get_cpu("cascade_lake"),
                                        entries=2000, eibrs=True)
        slow = sum(1 for v in lat if v > min(lat))
        rate = len(lat) / slow
        assert 8 <= rate <= 20

    def test_unimodal_without_eibrs(self):
        lat = mb.kernel_entry_latencies(get_cpu("cascade_lake"),
                                        entries=300, eibrs=False)
        assert len(set(lat)) == 1

    def test_rejected_on_non_eibrs_part(self):
        with pytest.raises(UnsupportedFeatureError):
            mb.kernel_entry_latencies(get_cpu("broadwell"), eibrs=True)

"""The speculation probe reproduces Tables 9 and 10 cell-for-cell."""

import pytest

from repro.cpu import CPU_ORDER, Machine, Mode, all_cpus, get_cpu
from repro.core.probe import (
    KERNEL_TO_USER,
    SCENARIOS,
    Scenario,
    SpeculationProbe,
    speculation_matrix,
    speculation_row,
)

#: Paper Table 9 (IBRS disabled): True = check mark.  Column order follows
#: SCENARIOS: u->k(sc), u->u(sc), k->k(sc), u->u, k->k.
PAPER_TABLE9 = {
    "broadwell":       (True, True, True, True, True),
    "skylake_client":  (True, True, True, True, True),
    "cascade_lake":    (False, True, True, True, True),
    "ice_lake_client": (False, True, True, True, True),
    "ice_lake_server": (False, True, True, True, True),
    "zen":             (True, True, True, True, True),
    "zen2":            (True, True, True, True, True),
    "zen3":            (False, False, False, False, False),
}

#: Paper Table 10 (IBRS enabled); None = the paper's N/A row (Zen).
PAPER_TABLE10 = {
    "broadwell":       (False, False, False, False, False),
    "skylake_client":  (False, False, False, False, False),
    "cascade_lake":    (False, True, True, True, True),
    "ice_lake_client": (False, True, False, True, False),
    "ice_lake_server": (False, True, True, True, True),
    "zen":             None,
    "zen2":            (False, False, False, False, False),
    "zen3":            (False, False, False, False, False),
}


def row_tuple(row):
    return None if row is None else tuple(row[s] for s in SCENARIOS)


def test_table9_matches_paper_exactly():
    matrix = speculation_matrix(all_cpus(), ibrs=False)
    for key in CPU_ORDER:
        assert row_tuple(matrix[key]) == PAPER_TABLE9[key], key


def test_table10_matches_paper_exactly():
    matrix = speculation_matrix(all_cpus(), ibrs=True)
    for key in CPU_ORDER:
        assert row_tuple(matrix[key]) == PAPER_TABLE10[key], key


def test_kernel_to_user_mirrors_user_to_kernel():
    """The paper's prose finding: parts vulnerable user->kernel are also
    vulnerable kernel->user (not a realistic attack, but symmetric)."""
    for key in ("broadwell", "zen2"):
        row = speculation_row(get_cpu(key), ibrs=False)
        machine = Machine(get_cpu(key))
        probe = SpeculationProbe(machine)
        assert probe.probe(KERNEL_TO_USER) == row[SCENARIOS[0]]


def test_scenario_labels_are_descriptive():
    assert SCENARIOS[0].label == "user->kernel (syscall)"
    assert SCENARIOS[4].label == "kernel->kernel (direct)"


def test_probe_is_deterministic_given_seed():
    a = speculation_row(get_cpu("cascade_lake"), ibrs=True, seed=5)
    b = speculation_row(get_cpu("cascade_lake"), ibrs=True, seed=5)
    assert a == b


def test_single_trial_probe_once_detects_on_broadwell():
    machine = Machine(get_cpu("broadwell"))
    probe = SpeculationProbe(machine)
    assert probe.probe_once(SCENARIOS[0]) is True


def test_divider_counter_is_the_signal():
    """The probe sees the divide's counter delta, not timing."""
    from repro.cpu import counters as ctr
    machine = Machine(get_cpu("broadwell"))
    probe = SpeculationProbe(machine)
    before = machine.counters.read(ctr.DIVIDER_ACTIVE)
    probe.probe_once(SCENARIOS[0])
    assert machine.counters.read(ctr.DIVIDER_ACTIVE) > before


class TestBothCounters:
    """Section 6.1's counter-disagreement observation."""

    def test_counters_agree_on_a_clean_poisoning(self):
        machine = Machine(get_cpu("broadwell"))
        probe = SpeculationProbe(machine)
        mispredicted, divider = probe.probe_both_counters(SCENARIOS[0])
        assert mispredicted and divider

    def test_ibpb_makes_the_counters_disagree(self):
        """After a barrier the branch still counts as mispredicted (the
        harmless-gadget rewrite) but the divider never runs — the exact
        observation that made the paper prefer the divider counter."""
        from repro.cpu import isa as _isa
        from repro.cpu import msr as msrdef
        from repro.cpu import counters as ctr
        from repro.core.probe import BRANCH_PC, NOP_TARGET

        machine = Machine(get_cpu("broadwell"))
        probe = SpeculationProbe(machine)
        probe.train(Mode.USER)
        machine.execute(_isa.wrmsr(msrdef.IA32_PRED_CMD,
                                   msrdef.PRED_CMD_IBPB))
        div_before = machine.counters.read(ctr.DIVIDER_ACTIVE)
        misp_before = machine.counters.read(ctr.MISPREDICTED_INDIRECT)
        machine.execute(_isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC))
        assert machine.counters.read(
            ctr.MISPREDICTED_INDIRECT) > misp_before
        assert machine.counters.read(ctr.DIVIDER_ACTIVE) == div_before

"""The recomputed section-8 answers."""

import pytest

from repro.core.study import Settings
from repro.core.summary import (
    question1_attack_impacts,
    question2_primitive_trends,
    question3_outlook,
    render_summary,
    summarize,
)


@pytest.fixture(scope="module")
def summary():
    return summarize(Settings.fast())


def test_q1_top_lebench_impacts_are_pti_and_mds(summary):
    lebench = [i for i in summary.question1 if i.workload == "lebench"]
    assert {lebench[0].knob, lebench[1].knob} == {"pti", "mds"}
    assert lebench[0].worst_cpu in ("broadwell", "skylake_client")


def test_q1_top_octane_impacts_are_ssbd_and_guards(summary):
    octane = [i for i in summary.question1 if i.workload == "octane2"]
    top_two = {octane[0].knob, octane[1].knob}
    assert "ssbd" in top_two or "js_object_guards" in top_two
    assert all(i.mean_percent > 0 for i in octane[:3])


def test_q2_only_ibpb_improved(summary):
    improved = {t.name for t in summary.question2 if t.primitive_improved}
    assert improved == {"IBPB (Spectre V2)"}


def test_q2_pti_and_verw_became_unnecessary_not_faster(summary):
    by_name = {t.name: t for t in summary.question2}
    assert by_name["page table swap (PTI)"].newest_cycles is None
    assert by_name["verw buffer clear (MDS)"].newest_cycles is None


def test_q3_structural_facts(summary):
    text = " ".join(summary.question3)
    assert "SSB_NO" in text
    assert "Spectre V1" in text
    assert "BHI" in text or "eIBRS" in text


def test_render_summary_contains_all_sections(summary):
    out = render_summary(summary)
    assert "Q1:" in out and "Q2:" in out and "Q3:" in out
    assert "primitive improved" in out
    assert "no longer needed" in out


def test_question_functions_standalone():
    impacts = question1_attack_impacts(Settings.fast(), top=2)
    assert len(impacts) == 4  # 2 per workload family
    trends = question2_primitive_trends(iterations=100)
    assert len(trends) == 5
    assert question3_outlook()

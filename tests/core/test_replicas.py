"""Differential suite for the batched SoA replica tier.

The non-negotiable contract (ISSUE 9): a batch of N replicas must be
bit-identical to N independent scalar runs — across every CPU model,
with and without the eIBRS periodic scrub in play, through the SoA
broadcast fast path and the scalar-fallback slow path alike.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.stats import suite_geometric_mean
from repro.core.study import Settings, lebench_geomean
from repro.cpu import counters as ctr
from repro.cpu.machine import Machine, use_scrub_probe
from repro.cpu.model import all_cpus, get_cpu
from repro.cpu.replicas import (
    STATS,
    ReplicaBatch,
    ReplicaStats,
    ScrubProbe,
    firing_schedule,
    publish_metrics,
    replica_seed,
    run_replicas,
)
from repro.cpu.smt import SMTCore
from repro.mitigations.base import MitigationConfig
from repro.mitigations.policy import linux_default
from repro.obs.metrics import MetricsRegistry
from repro.workloads import lebench

ALL_CPU_KEYS = [cpu.key for cpu in all_cpus()]

#: Cheapest settings that still cross kernel entries often enough to
#: exercise the scrub path on eIBRS parts.
TINY = dataclasses.replace(Settings.fast(), iterations=3, warmup=1)


def _cell_run_fn(cpu, config):
    return lambda machine_seed: lebench_geomean(cpu, config, TINY,
                                                seed=machine_seed)


# --------------------------------------------------------------------------- #
# The bit-identity grid: every CPU model x policy
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("policy", ["all_off", "linux_default"])
@pytest.mark.parametrize("cpu_key", ALL_CPU_KEYS)
def test_batched_matches_scalar_bitwise(cpu_key, policy):
    cpu = get_cpu(cpu_key)
    config = (MitigationConfig.all_off() if policy == "all_off"
              else linux_default(cpu))
    run_fn = _cell_run_fn(cpu, config)
    n, seed = 3, 7
    reference = np.array([run_fn(replica_seed(seed, i)) for i in range(n)])
    batch = run_replicas(run_fn, seed=seed, n=n)
    assert np.array_equal(batch.values, reference)
    assert batch.converged[0]  # the probe row is always authoritative


def test_no_scrub_part_collapses_to_one_probe_run():
    """Broadwell has no periodic scrub: every replica's schedule is
    trivially equal and the whole batch is served by the broadcast —
    the steady state the >= 5x bench floor relies on."""
    run_fn = _cell_run_fn(get_cpu("broadwell"), MitigationConfig.all_off())
    STATS.reset()
    batch = run_replicas(run_fn, seed=7, n=6)
    assert batch.converged.all()
    assert STATS.probe_runs == 1
    assert STATS.batched == 5
    assert STATS.scalar_fallbacks == 0
    assert np.all(batch.values == batch.values[0])


def test_scrub_part_with_eibrs_off_also_collapses():
    """cascade_lake draws its scrub interval at construction, but with
    mitigations off no kernel entry consults it — schedules are compared
    only over *eligible* entries, so the batch still collapses."""
    run_fn = _cell_run_fn(get_cpu("cascade_lake"), MitigationConfig.all_off())
    STATS.reset()
    batch = run_replicas(run_fn, seed=7, n=4)
    assert batch.converged.all()
    assert STATS.scalar_fallbacks == 0


def test_divergent_replicas_fall_back_and_reconverge():
    """cascade_lake under linux_default fires the scrub: replicas with
    differing firing schedules re-run scalar, and the batch re-converges
    to one dense SoA whose rows are still bit-exact."""
    cpu = get_cpu("cascade_lake")
    run_fn = _cell_run_fn(cpu, linux_default(cpu))
    n, seed = 4, 7
    STATS.reset()
    batch = run_replicas(run_fn, seed=seed, n=n)
    assert batch.converged[0]
    assert not batch.converged.all()          # divergence actually occurred
    assert STATS.scalar_fallbacks == int((~batch.converged).sum())
    assert STATS.batched + STATS.scalar_fallbacks == n - 1
    reference = np.array([run_fn(replica_seed(seed, i)) for i in range(n)])
    assert np.array_equal(batch.values, reference)
    # SoA columns are dense: cycles accumulated for every row.
    assert (batch.tsc > 0).all()


def test_smt_sibling_seed_offset_is_respected():
    """SMTCore builds thread1 at seed + 1; the probe compares each
    machine at its offset from the replica seed, so SMT cells stay
    bit-exact through the batch tier."""
    cpu = get_cpu("cascade_lake")
    config = linux_default(cpu)

    def run_fn(machine_seed):
        core = SMTCore(cpu, seed=machine_seed)
        a = lebench.run_suite(core.thread0, config, iterations=2, warmup=1)
        b = lebench.run_suite(core.thread1, config, iterations=2, warmup=1)
        return suite_geometric_mean(a) + suite_geometric_mean(b)

    n, seed = 3, 11
    reference = np.array([run_fn(replica_seed(seed, i)) for i in range(n)])
    batch = run_replicas(run_fn, seed=seed, n=n)
    assert np.array_equal(batch.values, reference)


# --------------------------------------------------------------------------- #
# The probe and the schedule model
# --------------------------------------------------------------------------- #

def test_firing_schedule_predicts_real_scrub_flushes():
    """The schedule derived from the seed alone must equal what the
    machine actually does: one BTB flush per predicted firing."""
    cpu = get_cpu("cascade_lake")
    config = linux_default(cpu)
    probe = ScrubProbe()
    with use_scrub_probe(probe):
        machine = Machine(cpu, seed=21)
        lebench.run_suite(machine, config, iterations=3, warmup=1)
    (entries,) = probe.entries
    assert entries > 0
    low, high = cpu.predictor.eibrs_scrub_period
    schedule = firing_schedule(21, low, high, entries)
    assert len(schedule) == machine.counters.read(ctr.BTB_FLUSH_ON_ENTRY) > 0


def test_probe_is_purely_observational():
    """A probed run is bit-identical to an unprobed one."""
    cpu = get_cpu("ice_lake_server")
    run_fn = _cell_run_fn(cpu, linux_default(cpu))
    bare = run_fn(33)
    with use_scrub_probe(ScrubProbe()):
        probed = run_fn(33)
    assert bare == probed


def test_use_scrub_probe_restores_previous_probe():
    outer = ScrubProbe()
    with use_scrub_probe(outer):
        with use_scrub_probe(ScrubProbe()):
            pass
        machine = Machine(get_cpu("broadwell"), seed=1)
    assert machine in outer.machines


def test_replica_seed_contract():
    assert replica_seed(7, 0) == 7          # replica 0 IS the cell seed
    assert replica_seed(7, 1) != replica_seed(7, 2)
    assert replica_seed(7, 1) != replica_seed(8, 1)
    with pytest.raises(ValueError):
        replica_seed(7, -1)


def test_firing_schedule_empty_without_entries():
    assert firing_schedule(5, 8, 20, 0) == ()


# --------------------------------------------------------------------------- #
# Telemetry plumbing
# --------------------------------------------------------------------------- #

def test_stats_merge_matches_worker_protocol():
    parent, worker = ReplicaStats(), ReplicaStats()
    worker.batches, worker.replicas, worker.batched = 2, 8, 5
    worker.scalar_fallbacks, worker.probe_runs = 1, 2
    parent.merge(worker.as_dict())
    parent.merge(worker.as_dict())
    assert parent.as_dict() == {"batches": 4, "replicas": 16, "batched": 10,
                                "scalar_fallbacks": 2, "probe_runs": 4}
    assert parent.hit_rate() == pytest.approx(10 / 12)


def test_stats_hit_rate_is_vacuously_perfect_when_idle():
    assert ReplicaStats().hit_rate() == 1.0


def test_stats_summary_mentions_the_numbers():
    stats = ReplicaStats()
    stats.replicas, stats.batches, stats.batched = 9, 3, 4
    stats.scalar_fallbacks, stats.probe_runs = 2, 3
    text = stats.summary()
    assert "9 replicas in 3 batches" in text
    assert "66.7% batch hit rate" in text


def test_publish_metrics_exports_nonzero_counters():
    registry = MetricsRegistry()
    STATS.reset()
    run_fn = _cell_run_fn(get_cpu("zen3"), MitigationConfig.all_off())
    run_replicas(run_fn, seed=3, n=3)
    publish_metrics(registry)
    assert registry.counter("replicas.replicas").value == 3
    assert registry.counter("replicas.batched").value == 2
    assert registry.counter("replicas.probe_runs").value == 1


def test_replica_batch_validation():
    with pytest.raises(ValueError):
        ReplicaBatch(0)

"""Sweeps: interpolation, crossovers, and the two canned curves."""

import pytest

from repro.core.sweeps import (
    SweepResult,
    find_crossover,
    overhead_vs_operation_size,
    ssbd_overhead_vs_forwarding_density,
    sweep,
)
from repro.cpu import get_cpu
from repro.mitigations import linux_default


def test_sweep_result_validates_lengths():
    with pytest.raises(ValueError):
        SweepResult("x", (1.0, 2.0), (1.0,))


def test_sweep_result_rejects_empty_grid():
    with pytest.raises(ValueError, match="at least one point"):
        SweepResult("x", (), ())


def test_sweep_result_rejects_duplicate_xs():
    # A duplicate x makes interpolate() divide by zero and first_below()
    # report a crossing inside a zero-width segment.
    with pytest.raises(ValueError, match="strictly increasing"):
        SweepResult("x", (1.0, 2.0, 2.0), (10.0, 5.0, 0.0))


def test_sweep_result_rejects_unsorted_xs():
    with pytest.raises(ValueError, match="strictly increasing"):
        SweepResult("x", (2.0, 1.0, 3.0), (10.0, 5.0, 0.0))


def test_sweep_evaluates_in_order():
    result = sweep("n", [1, 2, 3], lambda x: x * 10)
    assert result.xs == (1.0, 2.0, 3.0)
    assert result.ys == (10.0, 20.0, 30.0)


class TestInterpolation:
    CURVE = SweepResult("x", (0.0, 10.0, 20.0), (100.0, 50.0, 0.0))

    def test_exact_points(self):
        assert self.CURVE.interpolate(10.0) == 50.0

    def test_midpoints(self):
        assert self.CURVE.interpolate(5.0) == 75.0
        assert self.CURVE.interpolate(15.0) == 25.0

    def test_clamping(self):
        assert self.CURVE.interpolate(-5.0) == 100.0
        assert self.CURVE.interpolate(99.0) == 0.0

    def test_first_below(self):
        assert self.CURVE.first_below(50.0) == pytest.approx(10.0, abs=2.1)
        assert self.CURVE.first_below(75.0) == pytest.approx(5.0, abs=0.1)
        assert self.CURVE.first_below(-1.0) is None

    def test_first_below_at_start(self):
        low = SweepResult("x", (0.0, 1.0), (1.0, 2.0))
        assert low.first_below(5.0) == 0.0


class TestFirstBelowRegressions:
    """``first_below`` on degenerate curves: flat segments used to hit a
    dead ``y0 == y1`` branch that reported the *right* edge of a flat
    run instead of the true crossing."""

    def test_flat_curve_entirely_below_reports_first_x(self):
        flat = SweepResult("x", (3.0, 7.0, 11.0), (2.0, 2.0, 2.0))
        assert flat.first_below(5.0) == 3.0

    def test_flat_curve_entirely_above_never_crosses(self):
        flat = SweepResult("x", (0.0, 10.0), (8.0, 8.0))
        assert flat.first_below(5.0) is None

    def test_flat_at_threshold_then_drop(self):
        """Points sitting exactly at the threshold are not "below"; the
        crossing is where the curve finally dips under it."""
        curve = SweepResult("x", (0.0, 10.0, 20.0), (5.0, 5.0, 3.0))
        x = curve.first_below(5.0)
        assert x == 10.0  # left endpoint of the crossing segment

    def test_interpolated_crossing_is_exact(self):
        curve = SweepResult("x", (0.0, 10.0), (100.0, 0.0))
        assert curve.first_below(25.0) == pytest.approx(7.5)

    def test_single_point_curves(self):
        assert SweepResult("x", (4.0,), (1.0,)).first_below(2.0) == 4.0
        assert SweepResult("x", (4.0,), (9.0,)).first_below(2.0) is None


class TestCrossover:
    def test_crossing_curves(self):
        a = SweepResult("x", (0.0, 1.0, 2.0), (10.0, 5.0, 0.0))
        b = SweepResult("x", (0.0, 1.0, 2.0), (2.0, 2.0, 2.0))
        x = find_crossover(a, b)
        assert 1.0 < x < 2.0

    def test_never_crossing(self):
        a = SweepResult("x", (0.0, 1.0), (10.0, 9.0))
        b = SweepResult("x", (0.0, 1.0), (1.0, 1.0))
        assert find_crossover(a, b) is None

    def test_starts_below(self):
        a = SweepResult("x", (0.0, 1.0), (1.0, 1.0))
        b = SweepResult("x", (0.0, 1.0), (5.0, 5.0))
        assert find_crossover(a, b) == 0.0

    def test_mismatched_grids_rejected(self):
        a = SweepResult("x", (0.0, 1.0), (1.0, 1.0))
        b = SweepResult("x", (0.0, 2.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            find_crossover(a, b)


class TestCannedSweeps:
    def test_overhead_falls_with_operation_size(self):
        """The section 4.2 structure: fixed per-crossing tax, so bigger
        operations dilute it monotonically."""
        cpu = get_cpu("broadwell")
        result = overhead_vs_operation_size(
            cpu, linux_default(cpu), sizes=(100, 1000, 10000, 100000))
        assert list(result.ys) == sorted(result.ys, reverse=True)
        assert result.ys[0] > 100   # getpid-sized: enormous relative tax
        assert result.ys[-1] < 5    # fork-sized: noise

    def test_ssbd_overhead_rises_with_forwarding_density(self):
        result = ssbd_overhead_vs_forwarding_density(
            get_cpu("zen3"), densities=(0, 40, 120))
        assert result.ys[0] == pytest.approx(0.0, abs=0.5)
        assert list(result.ys) == sorted(result.ys)

    def test_ssbd_curve_steeper_on_zen3_than_broadwell(self):
        """The Figure 5 gradient as a curve property."""
        dens = (0, 80, 160)
        zen3 = ssbd_overhead_vs_forwarding_density(get_cpu("zen3"), dens)
        broadwell = ssbd_overhead_vs_forwarding_density(
            get_cpu("broadwell"), dens)
        assert zen3.ys[-1] > 2 * broadwell.ys[-1]

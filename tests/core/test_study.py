"""Study drivers produce paper-shaped results (spot checks; the full
acceptance bands live in tests/integration/test_paper_results.py)."""

import pytest

from repro.cpu import get_cpu
from repro.core import study
from repro.core.study import Settings


@pytest.fixture(scope="module")
def settings():
    return Settings.fast()


def test_settings_fast_is_cheaper_than_default():
    fast, full = Settings.fast(), Settings()
    assert fast.iterations < full.iterations
    assert fast.max_samples < full.max_samples


def test_figure2_single_cpu(settings):
    (result,) = study.figure2([get_cpu("broadwell")], settings)
    assert result.cpu == "broadwell"
    assert result.workload == "lebench"
    assert result.total_overhead_percent > 20
    assert result.contribution_for("pti").percent > 5
    assert result.contribution_for("mds").percent > 5


def test_figure2_skips_irrelevant_knobs_on_amd(settings):
    (result,) = study.figure2([get_cpu("zen2")], settings)
    assert result.contribution_for("pti") is None
    assert result.contribution_for("mds") is None
    assert result.contribution_for("spectre_v2") is not None


def test_figure3_single_cpu(settings):
    (result,) = study.figure3([get_cpu("ice_lake_server")], settings)
    assert result.metric == "score"
    assert 10 < result.total_overhead_percent < 30
    assert result.contribution_for("js_object_guards").percent > \
        result.contribution_for("js_index_masking").percent


def test_figure5_ordering(settings):
    from repro.workloads.parsec import SUITE
    results = study.figure5([get_cpu("zen3")], settings=settings)
    by_name = {r.workload: r.overhead_percent for r in results}
    assert by_name["swaptions"] > by_name["bodytrack"] > by_name["facesim"]
    assert by_name["swaptions"] > 25


def test_parsec_default_within_noise(settings):
    # Band covers ~3 sigma of the paired noise at fast-settings sample
    # counts; the arms' streams are decorrelated (tag-derived seeds), so
    # their errors no longer partially cancel.
    results = study.parsec_default_overheads([get_cpu("zen2")],
                                             settings=settings)
    for r in results:
        assert abs(r.overhead_percent) < 2.5


def test_vm_lebench_band(settings):
    (result,) = study.vm_lebench_overheads([get_cpu("skylake_client")],
                                           settings)
    assert abs(result.overhead_percent) < 3.0


def test_lfs_band(settings):
    results = study.lfs_overheads([get_cpu("cascade_lake")],
                                  settings=settings)
    for r in results:
        assert r.overhead_percent < 3.0


def test_paired_overhead_significance_fields(settings):
    (result,) = study.vm_lebench_overheads([get_cpu("zen")], settings)
    assert result.baseline.samples >= 2
    assert result.treated.samples >= 2


def test_paired_noise_seeds_are_tag_derived(settings):
    """Regression: the two arms' noise streams must come from
    derive_seed(seed, "base") / derive_seed(seed, "treat"), not the
    adjacent raw seeds seed/seed+1 — a neighboring cell's stream can sit
    at seed+1 and would correlate this cell's treated-arm errors."""
    from repro.core.stats import ReplicaSampler, adaptive_measure, derive_seed

    seed = 1234
    result = study._paired(get_cpu("zen"), "unit",
                           lambda machine_seed: 100.0,
                           lambda machine_seed: 130.0,
                           settings, seed=seed)

    def manual(value, tag):
        sampler = ReplicaSampler([value], settings.sigma,
                                 derive_seed(seed, tag))
        return adaptive_measure(sampler, rel_tol=settings.rel_tol,
                                max_samples=settings.max_samples)

    assert result.baseline == manual(100.0, "base")
    assert result.treated == manual(130.0, "treat")

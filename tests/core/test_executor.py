"""The parallel study executor: determinism, caching, checkpoint resume.

The acceptance criteria from the engine's design: parallel runs are
byte-identical to serial runs, warm-cache reruns execute zero simulation
cells, and interrupted runs resume from their checkpoint instead of
restarting.
"""

import json
import os
import shutil

import pytest

from repro.core import export, study
from repro.core.executor import (
    CellSpec,
    ResultCache,
    StudyExecutor,
    decode_result,
    encode_result,
)
from repro.core.study import Settings
from repro.cpu import get_cpu
from repro.errors import ExecutorError
from repro.obs import MetricsRegistry

SETTINGS = Settings.fast()


def _stable_parts(text):
    payload = json.loads(text)
    provenance = dict(payload["provenance"])
    provenance.pop("created_at")
    provenance.pop("wall_time_s")
    return payload["results"], provenance


# --------------------------------------------------------------------------- #
# Cell specs and seeds
# --------------------------------------------------------------------------- #

class TestCellSpec:
    def test_specs_are_hashable_and_stable(self):
        a = CellSpec("figure2", "zen2", "lebench", SETTINGS)
        b = CellSpec("figure2", "zen2", "lebench", SETTINGS)
        assert a == b and hash(a) == hash(b)
        assert a.key() == b.key() and a.digest() == b.digest()

    def test_round_trips_through_dict(self):
        spec = CellSpec("figure5", "zen3", "swaptions", SETTINGS)
        assert CellSpec.from_dict(spec.to_dict()) == spec

    def test_seed_is_per_cell(self):
        """The determinism bugfix: distinct cells never share a noise
        seed, even at the same base ``settings.seed``."""
        seeds = {
            CellSpec(driver, cpu, workload, SETTINGS).seed()
            for driver in ("figure2", "figure5", "parsec_default")
            for cpu in ("zen2", "zen3", "broadwell")
            for workload in ("lebench", "swaptions")
        }
        assert len(seeds) == 18  # all distinct

    def test_seed_is_stable_across_processes(self):
        spec = CellSpec("figure2", "zen2", "lebench", SETTINGS)
        assert spec.seed() == CellSpec.from_dict(spec.to_dict()).seed()

    def test_digest_depends_on_settings(self):
        a = CellSpec("figure2", "zen2", "lebench", SETTINGS)
        b = CellSpec("figure2", "zen2", "lebench", Settings())
        assert a.digest() != b.digest()


class TestResultCodec:
    def test_attribution_round_trip_is_exact(self):
        (result,) = study.figure2([get_cpu("zen2")], SETTINGS)
        back = decode_result("attribution", json.loads(json.dumps(
            encode_result("attribution", result))))
        assert back.baseline == result.baseline
        assert back.default == result.default
        assert back.contributions == result.contributions
        assert back.total_overhead_percent == result.total_overhead_percent

    def test_paired_round_trip_is_exact(self):
        (result,) = study.vm_lebench_overheads([get_cpu("zen")], SETTINGS)
        back = decode_result("paired", json.loads(json.dumps(
            encode_result("paired", result))))
        assert back == result


# --------------------------------------------------------------------------- #
# Parallel == serial, bit for bit
# --------------------------------------------------------------------------- #

class TestDeterminism:
    def test_parallel_figure2_export_is_byte_identical_to_serial(self):
        cpus = [get_cpu("zen2"), get_cpu("broadwell")]
        serial = export.attributions_to_json(
            study.figure2(cpus, SETTINGS, executor=StudyExecutor(jobs=1)))
        parallel = export.attributions_to_json(
            study.figure2(cpus, SETTINGS, executor=StudyExecutor(jobs=4)))
        assert _stable_parts(serial) == _stable_parts(parallel)

    def test_parallel_figure5_matches_serial(self):
        cpus = [get_cpu("zen3")]
        serial = study.figure5(cpus, settings=SETTINGS,
                               executor=StudyExecutor(jobs=1))
        parallel = study.figure5(cpus, settings=SETTINGS,
                                 executor=StudyExecutor(jobs=3))
        assert serial == parallel  # PairedOverhead is a frozen dataclass

    def test_results_come_back_in_enumeration_order(self):
        cpus = [get_cpu(k) for k in ("zen3", "zen2", "broadwell")]
        results = study.figure2(cpus, SETTINGS, executor=StudyExecutor(jobs=3))
        assert [r.cpu for r in results] == ["zen3", "zen2", "broadwell"]


# --------------------------------------------------------------------------- #
# The persistent cache
# --------------------------------------------------------------------------- #

class TestCache:
    def test_warm_cache_executes_zero_cells(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = StudyExecutor(jobs=1, cache_dir=cache,
                             metrics=MetricsRegistry())
        first = study.figure5([get_cpu("zen3")], settings=SETTINGS,
                              executor=cold)
        assert cold.metrics.counter("executor.cells.executed").value == 3
        assert cold.metrics.counter("executor.cells.cache_hit").value == 0

        warm = StudyExecutor(jobs=1, cache_dir=cache,
                             metrics=MetricsRegistry())
        second = study.figure5([get_cpu("zen3")], settings=SETTINGS,
                               executor=warm)
        assert warm.metrics.counter("executor.cells.cache_hit").value == 3
        assert "executor.cells.executed" not in warm.metrics
        assert first == second  # cached results decode bit-identical

    def test_cache_serves_parallel_runs(self, tmp_path):
        cache = str(tmp_path / "cache")
        study.figure5([get_cpu("zen3")], settings=SETTINGS,
                      executor=StudyExecutor(jobs=3, cache_dir=cache))
        warm = StudyExecutor(jobs=3, cache_dir=cache)
        study.figure5([get_cpu("zen3")], settings=SETTINGS, executor=warm)
        assert warm.stats.cache_hits == 3 and warm.stats.executed == 0

    def test_different_settings_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        study.vm_lebench_overheads([get_cpu("zen")], SETTINGS,
                                   executor=StudyExecutor(cache_dir=cache))
        other = StudyExecutor(cache_dir=cache)
        study.vm_lebench_overheads(
            [get_cpu("zen")], Settings(iterations=8, warmup=2,
                                       max_samples=20, rel_tol=0.01),
            executor=other)
        assert other.stats.cache_hits == 0 and other.stats.executed == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ex = StudyExecutor(cache_dir=cache_dir)
        study.vm_lebench_overheads([get_cpu("zen")], SETTINGS, executor=ex)
        spec = CellSpec("vm_lebench", "zen", "vm_lebench", SETTINGS)
        path = ResultCache(cache_dir)._path(spec.digest())
        with open(path, "w") as f:
            f.write("{ not json")
        again = StudyExecutor(cache_dir=cache_dir)
        study.vm_lebench_overheads([get_cpu("zen")], SETTINGS, executor=again)
        assert again.stats.executed == 1


# --------------------------------------------------------------------------- #
# Checkpointing and resume
# --------------------------------------------------------------------------- #

def _failing_runner(real_runner, fail_cpu):
    def runner(spec):
        if spec.cpu == fail_cpu:
            raise RuntimeError(f"injected failure on {fail_cpu}")
        return real_runner(spec)
    return runner


class TestResume:
    def test_interrupted_run_resumes_from_checkpoint(self, tmp_path,
                                                     monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cpus = [get_cpu("zen"), get_cpu("zen2"), get_cpu("zen3")]
        real = study.CELL_RUNNERS["vm_lebench"]
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench",
                            _failing_runner(real, "zen3"))
        with pytest.raises(ExecutorError, match="vm_lebench/zen3"):
            study.vm_lebench_overheads(
                cpus, SETTINGS, executor=StudyExecutor(cache_dir=cache_dir))

        # Remove the cell cache so only the checkpoint can satisfy the
        # completed cells: resume must not re-simulate them.
        shutil.rmtree(os.path.join(cache_dir, "cells"))
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench", real)
        resumed = StudyExecutor(cache_dir=cache_dir, resume=True)
        results = study.vm_lebench_overheads(cpus, SETTINGS, executor=resumed)
        assert resumed.stats.resumed == 2
        assert resumed.stats.executed == 1
        assert [r.cpu for r in results] == ["zen", "zen2", "zen3"]

    def test_resumed_results_match_a_straight_run(self, tmp_path,
                                                  monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cpus = [get_cpu("zen"), get_cpu("zen2")]
        straight = study.vm_lebench_overheads(cpus, SETTINGS,
                                              executor=StudyExecutor())
        real = study.CELL_RUNNERS["vm_lebench"]
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench",
                            _failing_runner(real, "zen2"))
        with pytest.raises(ExecutorError):
            study.vm_lebench_overheads(
                cpus, SETTINGS, executor=StudyExecutor(cache_dir=cache_dir))
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench", real)
        resumed = study.vm_lebench_overheads(
            cpus, SETTINGS,
            executor=StudyExecutor(cache_dir=cache_dir, resume=True))
        assert resumed == straight

    def test_checkpoint_is_discarded_after_completion(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        study.vm_lebench_overheads(
            [get_cpu("zen")], SETTINGS,
            executor=StudyExecutor(cache_dir=cache_dir))
        checkpoints = os.path.join(cache_dir, "checkpoints")
        assert not os.path.isdir(checkpoints) or not os.listdir(checkpoints)

    def test_without_resume_flag_checkpoint_is_ignored(self, tmp_path,
                                                       monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cpus = [get_cpu("zen"), get_cpu("zen2")]
        real = study.CELL_RUNNERS["vm_lebench"]
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench",
                            _failing_runner(real, "zen2"))
        with pytest.raises(ExecutorError):
            study.vm_lebench_overheads(
                cpus, SETTINGS, executor=StudyExecutor(cache_dir=cache_dir))
        shutil.rmtree(os.path.join(cache_dir, "cells"))
        monkeypatch.setitem(study.CELL_RUNNERS, "vm_lebench", real)
        fresh = StudyExecutor(cache_dir=cache_dir, resume=False)
        study.vm_lebench_overheads(cpus, SETTINGS, executor=fresh)
        assert fresh.stats.resumed == 0 and fresh.stats.executed == 2


# --------------------------------------------------------------------------- #
# Failure attribution
# --------------------------------------------------------------------------- #

class TestFailures:
    def test_inline_failure_names_the_cell(self, monkeypatch):
        real = study.CELL_RUNNERS["figure2"]
        monkeypatch.setitem(study.CELL_RUNNERS, "figure2",
                            _failing_runner(real, "zen2"))
        with pytest.raises(ExecutorError, match="figure2/zen2/lebench"):
            study.figure2([get_cpu("zen2")], SETTINGS)

    def test_pool_failure_names_the_cell(self, monkeypatch):
        real = study.CELL_RUNNERS["figure2"]
        monkeypatch.setitem(study.CELL_RUNNERS, "figure2",
                            _failing_runner(real, "zen2"))
        with pytest.raises(ExecutorError, match="figure2/zen2/lebench"):
            study.figure2([get_cpu("zen2"), get_cpu("zen3")], SETTINGS,
                          executor=StudyExecutor(jobs=2))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            StudyExecutor(jobs=0)

    def test_custom_workload_objects_are_rejected(self):
        from repro.workloads.parsec import SWAPTIONS
        import dataclasses as dc
        custom = dc.replace(SWAPTIONS, store_load_pairs=999)
        with pytest.raises(ValueError, match="cell-addressed"):
            study.figure5([get_cpu("zen3")], workloads=[custom],
                          settings=SETTINGS)


# --------------------------------------------------------------------------- #
# Worker observability flows back to the parent
# --------------------------------------------------------------------------- #

class TestWorkerObservability:
    def test_worker_spans_merge_into_parent_tracer(self):
        from repro import obs
        tracer = obs.SpanTracer()
        with obs.use_tracer(tracer):
            study.figure5([get_cpu("zen3")], settings=SETTINGS,
                          executor=StudyExecutor(jobs=3))
        spans = tracer.find("study.figure5.zen3")
        assert len(spans) == 3  # one per PARSEC workload cell
        assert all(span.cycles > 0 for span in spans)
        assert tracer.total_cycles() >= tracer.attributed_cycles() > 0
        # Worker metrics (span histograms) merged into the parent registry.
        hist = tracer.metrics.get("span.study.figure5.zen3.cycles")
        assert hist is not None and hist.count == 3

    def test_untraced_parallel_run_collects_nothing(self):
        from repro.obs.spans import current_tracer
        assert not current_tracer().enabled
        ex = StudyExecutor(jobs=2)
        study.figure5([get_cpu("zen3")], settings=SETTINGS, executor=ex)
        assert "span.study.figure5.zen3.cycles" not in ex.metrics


# --------------------------------------------------------------------------- #
# Cache outcome accounting: hit / miss / stale
# --------------------------------------------------------------------------- #

class TestCacheOutcomes:
    def test_cold_run_counts_every_cell_as_a_miss(self, tmp_path):
        ex = StudyExecutor(cache_dir=str(tmp_path / "cache"),
                           metrics=MetricsRegistry())
        study.figure5([get_cpu("zen3")], settings=SETTINGS, executor=ex)
        assert ex.stats.cache_misses == 3
        assert ex.stats.cache_stale == 0
        assert ex.metrics.counter("executor.cells.cache_miss").value == 3

    def test_warm_run_counts_neither_miss_nor_stale(self, tmp_path):
        cache = str(tmp_path / "cache")
        study.figure5([get_cpu("zen3")], settings=SETTINGS,
                      executor=StudyExecutor(cache_dir=cache))
        warm = StudyExecutor(cache_dir=cache, metrics=MetricsRegistry())
        study.figure5([get_cpu("zen3")], settings=SETTINGS, executor=warm)
        assert warm.stats.cache_hits == 3
        assert warm.stats.cache_misses == 0 and warm.stats.cache_stale == 0
        assert "executor.cells.cache_miss" not in warm.metrics

    def test_corrupt_entry_is_stale_not_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        study.vm_lebench_overheads([get_cpu("zen")], SETTINGS,
                                   executor=StudyExecutor(cache_dir=cache_dir))
        spec = CellSpec("vm_lebench", "zen", "vm_lebench", SETTINGS)
        cache = ResultCache(cache_dir)
        with open(cache._path(spec.digest()), "w") as f:
            f.write("{ not json")
        again = StudyExecutor(cache_dir=cache_dir, metrics=MetricsRegistry())
        study.vm_lebench_overheads([get_cpu("zen")], SETTINGS, executor=again)
        assert again.stats.cache_stale == 1
        assert again.stats.cache_misses == 0
        assert again.metrics.counter("executor.cells.cache_stale").value == 1

    def test_lookup_classifies_hit_miss_stale(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = CellSpec("vm_lebench", "zen", "vm_lebench", SETTINGS)
        result, outcome = cache.lookup(spec, "paired")
        assert result is None and outcome == ResultCache.MISS
        study.vm_lebench_overheads(
            [get_cpu("zen")], SETTINGS,
            executor=StudyExecutor(cache_dir=cache.root))
        result, outcome = cache.lookup(spec, "paired")
        assert result is not None and outcome == ResultCache.HIT
        # A kind mismatch means the record cannot satisfy the request.
        result, outcome = cache.lookup(spec, "attribution")
        assert result is None and outcome == ResultCache.STALE

    def test_summary_breaks_out_misses_and_stale(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ex = StudyExecutor(cache_dir=cache_dir)
        study.figure5([get_cpu("zen3")], settings=SETTINGS, executor=ex)
        summary = ex.stats.summary()
        assert "3 cells: 0 cache hits, 0 resumed, 3 executed" in summary
        assert "3 misses" in summary and "0 stale" in summary

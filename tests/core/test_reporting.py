"""Reporting: table/figure rendering shape and N/A handling."""

import pytest

from repro.core import microbench as mb
from repro.core import reporting as rep
from repro.core.attribution import AttributionResult
from repro.core.probe import SCENARIOS, speculation_matrix
from repro.core.stats import Measurement
from repro.core.study import PairedOverhead
from repro.cpu import all_cpus, get_cpu


def test_render_table_alignment_and_rows():
    out = rep.render_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 5  # title, header, separator, two data rows
    assert lines[1].startswith("a")


def test_fmt_cycles_na():
    assert rep.fmt_cycles(None) == "N/A"
    assert rep.fmt_cycles(12.4) == "12"
    assert rep.fmt_signed(None) == "N/A"
    assert rep.fmt_signed(3.0) == "+3"
    assert rep.fmt_signed(-2.0) == "-2"


def test_render_table1_has_all_rows_and_cpus():
    out = rep.render_table1()
    assert "Page Table Isolation" in out
    assert "Disable SMT" in out
    for cpu in all_cpus():
        assert cpu.key in out


def test_render_table2_matches_catalog():
    out = rep.render_table2()
    assert "Xeon Gold 6354" in out
    assert "Ryzen 5 5600X" in out


def test_render_table3_shows_na_for_immune_parts():
    rows = [mb.table3_row(get_cpu("zen"), 100)]
    out = rep.render_table3(rows)
    assert "N/A" in out


def test_render_table5_signs_deltas():
    rows = [mb.table5_row(get_cpu("zen2"), 100)]
    out = rep.render_table5(rows)
    assert "+13" in out and "+0" in out


def test_render_speculation_matrix_marks_na_for_zen_with_ibrs():
    matrix = speculation_matrix((get_cpu("zen"),), ibrs=True)
    out = rep.render_speculation_matrix(matrix, ibrs=True)
    assert "N/A" in out
    assert "Table 10" in out


def test_render_speculation_matrix_checks():
    matrix = speculation_matrix((get_cpu("broadwell"),), ibrs=False)
    out = rep.render_speculation_matrix(matrix, ibrs=False)
    assert rep.CHECK in out
    assert "Table 9" in out


def _fake_attribution():
    result = AttributionResult(
        cpu="testcpu", workload="lebench", metric="cycles",
        baseline=Measurement(100.0, 0.5, 10),
        default=Measurement(130.0, 0.5, 10),
    )
    from repro.core.attribution import Contribution
    result.contributions.append(Contribution(
        knob="pti", boot_param="nopti", percent=20.0,
        with_knob=Measurement(130.0, 0.5, 10),
        without_knob=Measurement(110.0, 0.5, 10)))
    result.other_percent = 10.0
    return result


def test_render_attribution_figure_contains_totals_and_segments():
    out = rep.render_figure2([_fake_attribution()])
    assert "testcpu" in out
    assert "30.0" in out        # total
    assert "pti=20.0%" in out
    assert "other=10.0%" in out


def test_render_paired_marks_significance():
    significant = PairedOverhead(
        cpu="a", workload="w",
        baseline=Measurement(100.0, 0.5, 5),
        treated=Measurement(150.0, 0.5, 5),
        overhead_percent=50.0)
    insignificant = PairedOverhead(
        cpu="b", workload="w",
        baseline=Measurement(100.0, 5.0, 5),
        treated=Measurement(101.0, 5.0, 5),
        overhead_percent=1.0)
    out = rep.render_paired([significant, insignificant], "T")
    lines = out.splitlines()
    assert lines[1].endswith("*")
    assert not lines[2].endswith("*")


def test_render_entry_distribution():
    out = rep.render_entry_distribution("cascade_lake", [70, 70, 280, 70])
    assert "70 cycles" in out and "280 cycles" in out
    assert "75.0%" in out


def test_render_markdown_table():
    out = rep.render_markdown_table("T", ["a", "b"], [["1", "2"]])
    lines = out.splitlines()
    assert lines[0] == "### T"
    assert lines[2] == "| a | b |"
    assert lines[3] == "|---|---|"
    assert lines[4] == "| 1 | 2 |"

"""Statistics: CIs, adaptive sampling, geometric mean, noise."""

import math
import zlib

import numpy as np
import pytest

from repro.core.stats import (
    Measurement,
    NoisySampler,
    ReplicaSampler,
    adaptive_measure,
    confidence_interval,
    derive_seed,
    geometric_mean,
    overhead_percent,
    score_slowdown_percent,
    suite_geometric_mean,
)
from repro.errors import StatisticsError


def test_ci_of_constant_samples_is_tight():
    m = confidence_interval([5.0] * 10)
    assert m.mean == 5.0
    assert m.ci_half_width == 0.0
    assert m.samples == 10


def test_ci_of_empty_raises():
    with pytest.raises(StatisticsError):
        confidence_interval([])


def test_ci_of_single_sample_is_infinite():
    m = confidence_interval([3.0])
    assert math.isinf(m.ci_half_width)


def test_ci_shrinks_with_more_samples():
    rng = np.random.default_rng(0)
    small = confidence_interval(list(rng.normal(10, 1, 10)))
    large = confidence_interval(list(rng.normal(10, 1, 1000)))
    assert large.ci_half_width < small.ci_half_width


def test_ci_contains_true_mean_usually():
    rng = np.random.default_rng(1)
    hits = 0
    for _ in range(100):
        m = confidence_interval(list(rng.normal(50, 5, 30)))
        if m.ci_low <= 50 <= m.ci_high:
            hits += 1
    assert hits >= 85  # 95% nominal, allow slack


def test_overlap_detection():
    a = Measurement(10.0, 1.0, 5)
    b = Measurement(10.5, 1.0, 5)
    c = Measurement(20.0, 1.0, 5)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_relative_error():
    assert Measurement(100.0, 2.0, 5).relative_error == pytest.approx(0.02)
    assert math.isinf(Measurement(0.0, 1.0, 5).relative_error)


def test_adaptive_measure_stops_when_converged():
    rng = np.random.default_rng(2)
    m = adaptive_measure(lambda: float(rng.normal(100, 1)),
                         rel_tol=0.01, max_samples=200)
    assert m.mean == pytest.approx(100, rel=0.05)
    assert m.samples < 200


def test_adaptive_measure_caps_at_max_samples():
    rng = np.random.default_rng(3)
    m = adaptive_measure(lambda: float(rng.normal(100, 50)),
                         rel_tol=0.0001, max_samples=10)
    assert m.samples == 10


def test_adaptive_measure_rejects_tiny_min_samples():
    with pytest.raises(ValueError):
        adaptive_measure(lambda: 1.0, min_samples=1)


def test_adaptive_measure_rejects_inverted_sample_bounds():
    with pytest.raises(ValueError, match="max_samples"):
        adaptive_measure(lambda: 1.0, min_samples=10, max_samples=5)


def test_adaptive_measure_rejects_non_positive_rel_tol():
    with pytest.raises(ValueError, match="rel_tol"):
        adaptive_measure(lambda: 1.0, rel_tol=0.0)
    with pytest.raises(ValueError, match="rel_tol"):
        adaptive_measure(lambda: 1.0, rel_tol=-0.01)


def test_adaptive_measure_batched_matches_scalar_bitwise():
    """The batched sampling path must reproduce the scalar loop exactly:
    same mean, same CI, same sample count — it checks convergence at
    every prefix length the scalar loop would."""
    for seed, rel_tol, max_samples in [(2, 0.01, 200), (3, 0.0001, 10),
                                       (11, 0.02, 60)]:
        scalar = ReplicaSampler([100.0], sigma=0.015, seed=seed)
        batched = ReplicaSampler([100.0], sigma=0.015, seed=seed)
        m_scalar = adaptive_measure(scalar, rel_tol=rel_tol,
                                    max_samples=max_samples)
        m_batched = adaptive_measure(batched, rel_tol=rel_tol,
                                     max_samples=max_samples,
                                     sample_batch=batched.sample_batch)
        assert m_scalar == m_batched


def test_geometric_mean_known_value():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([7]) == pytest.approx(7.0)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(StatisticsError):
        geometric_mean([])
    with pytest.raises(StatisticsError):
        geometric_mean([1.0, -2.0])


def test_suite_geometric_mean_matches_plain_geomean():
    suite = {"getpid": 2.0, "fork": 8.0}
    assert suite_geometric_mean(suite) == pytest.approx(4.0)


def test_suite_geometric_mean_names_the_offending_case():
    suite = {"getpid": 2.0, "mmap": -1.0}
    with pytest.raises(StatisticsError, match=r"case 'mmap' = -1\.0"):
        suite_geometric_mean(suite)


def test_suite_geometric_mean_carries_caller_context():
    with pytest.raises(StatisticsError,
                       match=r"case 'send' .* \[lebench on zen2\]"):
        suite_geometric_mean({"send": 0.0}, context="lebench on zen2")
    with pytest.raises(StatisticsError, match=r"empty suite \[octane\]"):
        suite_geometric_mean({}, context="octane")


def test_suite_geometric_mean_rejects_non_finite():
    with pytest.raises(StatisticsError, match="'bad'"):
        suite_geometric_mean({"ok": 1.0, "bad": math.nan})


def test_derive_seed_is_stable():
    assert derive_seed(7, "figure2", "zen2") == derive_seed(7, "figure2",
                                                            "zen2")


def test_derive_seed_distinguishes_parts_and_base():
    seeds = {
        derive_seed(base, driver, cpu)
        for base in (7, 8)
        for driver in ("figure2", "figure5")
        for cpu in ("zen2", "zen3")
    }
    assert len(seeds) == 8


def test_derive_seed_is_a_valid_rng_seed():
    for base in (0, 7, 2**31 - 1, 2**40):
        seed = derive_seed(base, "a", "b")
        assert 0 <= seed < 2**31
        np.random.default_rng(seed)  # accepted by numpy


def test_derive_seed_rejects_slash_in_parts():
    """("a/b", "c") and ("a", "b/c") would join to the same key and
    silently correlate two cells' noise streams — rejected instead."""
    with pytest.raises(ValueError, match="separator"):
        derive_seed(7, "a/b", "c")
    with pytest.raises(ValueError, match="separator"):
        derive_seed(7, "a", "b/c")


def test_derive_seed_rejection_preserves_existing_keys():
    """The fix rejects rather than escapes: every legal key — and hence
    every cached cell and recorded baseline — derives the same seed."""
    assert derive_seed(7, "figure2", "zen2") == \
        (7 + zlib.crc32(b"figure2/zen2")) & 0x7FFF_FFFF


def test_overhead_percent():
    assert overhead_percent(130.0, 100.0) == pytest.approx(30.0)
    assert overhead_percent(100.0, 100.0) == 0.0
    with pytest.raises(StatisticsError):
        overhead_percent(1.0, 0.0)


def test_score_slowdown_percent():
    assert score_slowdown_percent(80.0, 100.0) == pytest.approx(20.0)
    with pytest.raises(StatisticsError):
        score_slowdown_percent(1.0, 0.0)


class TestNoisySampler:
    def test_zero_sigma_is_exact(self):
        sampler = NoisySampler(lambda: 42.0, sigma=0.0)
        assert sampler() == 42.0

    def test_seeded_reproducibility(self):
        a = NoisySampler(lambda: 100.0, sigma=0.05, seed=9)
        b = NoisySampler(lambda: 100.0, sigma=0.05, seed=9)
        assert [a() for _ in range(5)] == [b() for _ in range(5)]

    def test_noise_is_a_couple_percent(self):
        sampler = NoisySampler(lambda: 100.0, sigma=0.015, seed=0)
        values = [sampler() for _ in range(500)]
        assert np.std(values) / np.mean(values) == pytest.approx(0.015, rel=0.3)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoisySampler(lambda: 1.0, sigma=-0.1)

    def test_sample_batch_matches_sequential_calls_bitwise(self):
        """One sized normal draw is prefix-stable against n sequential
        draws from the same generator — the identity the vectorized
        adaptive loop relies on."""
        a = NoisySampler(lambda: 100.0, sigma=0.05, seed=9)
        b = NoisySampler(lambda: 100.0, sigma=0.05, seed=9)
        assert a.sample_batch(7) == [b() for _ in range(7)]

    def test_sample_batch_zero_sigma(self):
        sampler = NoisySampler(lambda: 42.0, sigma=0.0)
        assert sampler.sample_batch(3) == [42.0, 42.0, 42.0]

    def test_sample_batch_rejects_empty(self):
        with pytest.raises(ValueError):
            NoisySampler(lambda: 1.0).sample_batch(0)


class TestReplicaSampler:
    def test_single_replica_matches_noisy_sampler_bitwise(self):
        """One-replica batches must reproduce NoisySampler exactly —
        the bit-identity contract for replicas=1 studies."""
        noisy = NoisySampler(lambda: 100.0, sigma=0.015, seed=4)
        replica = ReplicaSampler([100.0], sigma=0.015, seed=4)
        assert [replica() for _ in range(6)] == [noisy() for _ in range(6)]

    def test_cycles_through_replica_values(self):
        sampler = ReplicaSampler([1.0, 2.0, 3.0], sigma=0.0)
        assert [sampler() for _ in range(5)] == [1.0, 2.0, 3.0, 1.0, 2.0]

    def test_batch_and_scalar_walk_the_same_stream(self):
        a = ReplicaSampler([10.0, 20.0], sigma=0.02, seed=5)
        b = ReplicaSampler([10.0, 20.0], sigma=0.02, seed=5)
        assert a.sample_batch(5) == [b() for _ in range(5)]
        # ... and they stay in lockstep after mixing the two entry points.
        assert a() == b.sample_batch(1)[0]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ReplicaSampler([])
        with pytest.raises(ValueError):
            ReplicaSampler([1.0], sigma=-0.1)
        with pytest.raises(ValueError):
            ReplicaSampler([1.0]).sample_batch(0)

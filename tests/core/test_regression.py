"""Regression diffing of exported results."""

import json

import pytest

from repro.core.regression import Change, diff_results, render_diff


def attribution_json(pti=15.0, total=40.0):
    return json.dumps([{
        "cpu": "broadwell",
        "workload": "lebench",
        "total_overhead_percent": total,
        "other_percent": 1.0,
        "contributions": [
            {"knob": "pti", "boot_param": "nopti", "percent": pti,
             "significant": True},
        ],
    }])


def paired_json(value=34.0):
    return json.dumps([{
        "cpu": "zen3", "workload": "swaptions",
        "overhead_percent": value, "significant": True,
    }])


def test_identical_runs_produce_no_changes():
    assert diff_results(attribution_json(), attribution_json()) == []


def test_moved_knob_is_reported():
    changes = diff_results(attribution_json(pti=15.0),
                           attribution_json(pti=18.0))
    keys = {c.key for c in changes}
    assert ("broadwell", "lebench", "pti") in keys
    (change,) = [c for c in changes
                 if c.key == ("broadwell", "lebench", "pti")]
    assert change.delta == pytest.approx(3.0)


def test_tolerance_suppresses_small_drift():
    changes = diff_results(attribution_json(pti=15.0),
                           attribution_json(pti=15.3), tolerance=0.5)
    assert not any(c.key[-1] == "pti" for c in changes)


def test_paired_schema_supported():
    changes = diff_results(paired_json(34.0), paired_json(28.0))
    (change,) = changes
    assert change.key == ("zen3", "swaptions")
    assert change.delta == pytest.approx(-6.0)


def test_disappearing_knob_reported_as_zero():
    gone = json.dumps([{
        "cpu": "broadwell", "workload": "lebench",
        "total_overhead_percent": 40.0, "other_percent": 1.0,
        "contributions": [],
    }])
    changes = diff_results(attribution_json(pti=15.0), gone)
    (change,) = [c for c in changes
                 if c.key == ("broadwell", "lebench", "pti")]
    assert change.after == 0.0


def test_bad_schema_rejected():
    with pytest.raises(ValueError):
        diff_results(json.dumps([{"what": 1}]), json.dumps([{"what": 1}]))
    with pytest.raises(ValueError):
        diff_results(json.dumps({"not": "a list"}), json.dumps([]))


def test_empty_runs_diff_cleanly():
    assert diff_results("[]", "[]") == []


def test_render_diff():
    changes = diff_results(paired_json(34.0), paired_json(28.0))
    out = render_diff(changes)
    assert "zen3/swaptions" in out and "-6.00" in out
    assert render_diff([]) == "no changes beyond tolerance\n"


def test_changes_sorted_stably():
    old = json.dumps([
        {"cpu": "zen3", "workload": "b", "overhead_percent": 1.0,
         "significant": False},
        {"cpu": "zen3", "workload": "a", "overhead_percent": 1.0,
         "significant": False},
    ])
    new = json.dumps([
        {"cpu": "zen3", "workload": "b", "overhead_percent": 9.0,
         "significant": False},
        {"cpu": "zen3", "workload": "a", "overhead_percent": 9.0,
         "significant": False},
    ])
    changes = diff_results(old, new)
    assert [c.key for c in changes] == [("zen3", "a"), ("zen3", "b")]


def test_end_to_end_with_real_export():
    """The diff consumes what the export module actually produces."""
    from repro.core import export, study
    from repro.core.study import Settings
    from repro.cpu import get_cpu
    results = study.figure5([get_cpu("zen")],
                            settings=Settings.fast())
    text = export.paired_to_json(results)
    assert diff_results(text, text) == []
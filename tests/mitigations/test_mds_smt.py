"""Cross-hyperthread MDS: the case only disabling SMT fixes."""

import pytest

from repro.cpu import Mode, get_cpu
from repro.cpu import isa
from repro.cpu.smt import SMTCore
from repro.mitigations.mds import attempt_cross_thread_mds


def test_cross_thread_sampling_on_vulnerable_parts():
    for key in ("broadwell", "skylake_client", "cascade_lake"):
        leaked = attempt_cross_thread_mds(SMTCore(get_cpu(key)), 0xD00D)
        assert leaked, key
        assert 0xD00D in leaked.values()


def test_cross_thread_sampling_fails_on_immune_parts():
    for key in ("ice_lake_server", "zen2", "zen3"):
        assert attempt_cross_thread_mds(SMTCore(get_cpu(key))) == {}, key


def test_verw_on_the_victim_thread_does_not_close_the_window():
    """The key limitation of the default mitigation: verw runs at the
    *boundary crossing*, but a concurrent sibling samples mid-execution.
    After the victim's verw the residue is gone — but the attacker
    already sampled.  This ordering is why Table 1 lists Disable-SMT as
    the needed-but-undefaulted extra."""
    core = SMTCore(get_cpu("broadwell"))
    leaked_during = attempt_cross_thread_mds(core, 0xAB)
    assert leaked_during  # sampled while the victim was in-kernel
    # Victim finally exits through verw...
    core.thread0.mode = Mode.KERNEL
    core.thread0.execute(isa.verw())
    core.thread0.mode = Mode.USER
    # ...which clears the shared buffers, but only from now on.
    assert core.thread1.mds_buffers.sample(Mode.USER) == {}

"""Branch History Injection: the section 6.3 eIBRS gap, end to end."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations.bhi import attempt_bhi

EIBRS_PARTS = ("cascade_lake", "ice_lake_server")


@pytest.mark.parametrize("key", EIBRS_PARTS)
def test_bhi_defeats_eibrs(key):
    """Same-mode kernel mistraining sails past the mode-tagged BTB —
    exactly the paper's 'not a complete mitigation' takeaway and the
    Barberis et al. concurrent result."""
    assert attempt_bhi(Machine(get_cpu(key)), eibrs=True) is True


@pytest.mark.parametrize("key", EIBRS_PARTS)
def test_retpolines_stop_bhi(key):
    assert attempt_bhi(Machine(get_cpu(key)), retpolines=True) is False


@pytest.mark.parametrize("key", EIBRS_PARTS)
def test_ibpb_between_attacker_and_victim_stops_bhi(key):
    assert attempt_bhi(Machine(get_cpu(key)), ibpb_before_victim=True) is False


def test_ice_lake_client_kernel_blocking_stops_bhi():
    """The part whose eIBRS also disables kernel-mode prediction
    (Table 10's blank kernel->kernel cells) is incidentally BHI-proof."""
    assert attempt_bhi(Machine(get_cpu("ice_lake_client")), eibrs=True) is False


def test_zen3_opaque_indexing_stops_bhi():
    assert attempt_bhi(Machine(get_cpu("zen3"))) is False


def test_legacy_ibrs_parts_block_bhi_when_ibrs_set():
    """On Broadwell-class parts, IBRS=1 disables all prediction, so the
    BHI pattern has nothing to steer (at the known performance price)."""
    assert attempt_bhi(Machine(get_cpu("broadwell")), eibrs=True) is False


def test_bhi_on_old_parts_without_any_v2_mitigation():
    """With nothing enabled, the same-mode mistraining of course works."""
    assert attempt_bhi(Machine(get_cpu("broadwell")), eibrs=False) is True

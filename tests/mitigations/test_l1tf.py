"""L1TF: terminal-fault leak predicate, PTE inversion, L1 flush."""

from repro.cpu import Machine, get_cpu
from repro.cpu import isa
from repro.mitigations.l1tf import (
    PAGE,
    PageTableEntry,
    attempt_l1tf,
    invert_pte,
    l1d_flush_sequence,
)


def warm_line(machine, physical):
    machine.execute(isa.load(physical))


def test_leak_when_line_resident_on_vulnerable_part():
    machine = Machine(get_cpu("broadwell"))
    pte = PageTableEntry(present=False, frame=0x1234)
    warm_line(machine, pte.physical_address)
    assert attempt_l1tf(machine, pte) is True


def test_no_leak_when_line_cold():
    machine = Machine(get_cpu("broadwell"))
    pte = PageTableEntry(present=False, frame=0x1234)
    assert attempt_l1tf(machine, pte) is False


def test_present_pte_is_not_a_terminal_fault():
    machine = Machine(get_cpu("broadwell"))
    pte = PageTableEntry(present=True, frame=0x1234)
    warm_line(machine, pte.physical_address)
    assert attempt_l1tf(machine, pte) is False


def test_immune_parts_never_leak():
    for key in ("cascade_lake", "zen", "zen3"):
        machine = Machine(get_cpu(key))
        pte = PageTableEntry(present=False, frame=0x1234)
        warm_line(machine, pte.physical_address)
        assert attempt_l1tf(machine, pte) is False


def test_pte_inversion_defeats_the_leak():
    machine = Machine(get_cpu("skylake_client"))
    pte = PageTableEntry(present=False, frame=0x1234)
    warm_line(machine, pte.physical_address)
    inverted = invert_pte(pte)
    assert attempt_l1tf(machine, inverted) is False


def test_inversion_leaves_present_ptes_alone():
    pte = PageTableEntry(present=True, frame=77)
    assert invert_pte(pte) is pte


def test_l1_flush_defeats_the_leak():
    machine = Machine(get_cpu("broadwell"))
    pte = PageTableEntry(present=False, frame=0x1234)
    warm_line(machine, pte.physical_address)
    machine.run(l1d_flush_sequence())  # host flushes before VM entry
    assert attempt_l1tf(machine, pte) is False


def test_physical_address_math():
    assert PageTableEntry(present=False, frame=3).physical_address == 3 * PAGE

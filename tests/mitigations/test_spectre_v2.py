"""Spectre V2: BTB injection demo and every mitigation against it."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu.isa import Op
from repro.mitigations import linux_default
from repro.mitigations.base import MitigationConfig, V2Strategy
from repro.mitigations.spectre_v2 import (
    attempt_btb_injection,
    ibpb_sequence,
    ibrs_entry_sequence,
    ibrs_exit_sequence,
    indirect_branch,
    retpoline_variant_for,
    rsb_stuffing_sequence,
)


def test_injection_works_user_to_kernel_on_untagged_parts():
    for key in ("broadwell", "skylake_client", "zen", "zen2"):
        machine = Machine(get_cpu(key))
        assert attempt_btb_injection(machine, Mode.USER, Mode.KERNEL), key


def test_mode_tagged_parts_block_cross_mode_injection():
    for key in ("cascade_lake", "ice_lake_client", "ice_lake_server"):
        machine = Machine(get_cpu(key))
        assert not attempt_btb_injection(machine, Mode.USER, Mode.KERNEL), key


def test_mode_tagged_parts_still_allow_same_mode_injection():
    machine = Machine(get_cpu("cascade_lake"))
    assert attempt_btb_injection(machine, Mode.USER, Mode.USER)


def test_zen3_resists_even_same_mode_injection():
    machine = Machine(get_cpu("zen3"))
    assert not attempt_btb_injection(machine, Mode.USER, Mode.USER)


def test_ibpb_between_train_and_victim_stops_injection():
    machine = Machine(get_cpu("broadwell"))
    assert not attempt_btb_injection(machine, Mode.USER, Mode.KERNEL,
                                     ibpb_between=True)


def test_retpoline_compiled_victim_is_immune():
    cpu = get_cpu("broadwell")
    machine = Machine(cpu)
    config = linux_default(cpu)
    assert config.uses_retpolines
    assert not attempt_btb_injection(machine, Mode.USER, Mode.KERNEL,
                                     config=config)


def test_ibrs_enabled_blocks_injection_on_old_intel():
    machine = Machine(get_cpu("skylake_client"))
    machine.msr.set_ibrs(True)
    assert not attempt_btb_injection(machine, Mode.USER, Mode.KERNEL)


def test_sequence_shapes():
    assert [i.op for i in ibpb_sequence()] == [Op.WRMSR]
    assert [i.op for i in rsb_stuffing_sequence()] == [Op.RSB_FILL]
    assert [i.op for i in ibrs_entry_sequence()] == [Op.WRMSR]
    assert [i.op for i in ibrs_exit_sequence()] == [Op.WRMSR]


def test_retpoline_variant_for_config():
    assert retpoline_variant_for(
        MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_GENERIC)) == "generic"
    assert retpoline_variant_for(
        MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_AMD)) == "amd"
    assert retpoline_variant_for(MitigationConfig.all_off()) is None


def test_indirect_branch_compilation_respects_config():
    retp = indirect_branch(0x2000, 0x100, MitigationConfig(
        v2_strategy=V2Strategy.RETPOLINE_GENERIC))
    raw = indirect_branch(0x2000, 0x100, MitigationConfig.all_off())
    assert retp.retpoline and not raw.retpoline

"""Figure 4's generic retpoline, run through the live RSB/BTB."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.cpu import counters as ctr
from repro.cpu import isa
from repro.mitigations.retpoline_asm import (
    CAPTURE_LOOP,
    THUNK_RET_PC,
    capture_loop_block,
    execute_generic_retpoline,
    retpoline_speculation_is_captured,
)

GADGET = 0x4D_2000


def test_capture_loop_is_pause_then_lfence():
    block = capture_loop_block()
    assert [i.op for i in block] == [isa.Op.PAUSE, isa.Op.LFENCE]


def test_speculation_goes_to_the_capture_loop_not_the_gadget(every_cpu):
    """The retpoline's whole point, on every part: a poisoned BTB entry
    at the ret site is never consumed; speculation lands in the trap."""
    machine = Machine(every_cpu)
    gadget_ran, captured = retpoline_speculation_is_captured(machine, GADGET)
    assert gadget_ran is False
    assert captured is True


def test_raw_indirect_branch_with_same_poisoning_runs_the_gadget():
    """Control: without the retpoline, the same poisoned entry works."""
    machine = Machine(get_cpu("broadwell"))
    machine.register_code(GADGET, [isa.div()])
    machine.btb.train(THUNK_RET_PC, GADGET, machine.mode)
    before = machine.counters.read(ctr.DIVIDER_ACTIVE)
    machine.execute(isa.branch_indirect(0x4C_9000, pc=THUNK_RET_PC))
    assert machine.counters.read(ctr.DIVIDER_ACTIVE) > before


def test_capture_window_executes_at_most_the_pause():
    """The lfence is serializing: exactly one transient instruction (the
    pause) runs inside the trap."""
    machine = Machine(get_cpu("zen2"))
    before = machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS)
    execute_generic_retpoline(machine, target=0x4C_9000)
    assert machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS) - before == 1


def test_retpoline_never_trains_the_btb():
    machine = Machine(get_cpu("skylake_client"))
    execute_generic_retpoline(machine, target=0x4C_9000)
    assert not machine.btb.contains(THUNK_RET_PC)


def test_architectural_cost_is_call_alu_ret_mispredict():
    machine = Machine(get_cpu("broadwell"))
    cycles = execute_generic_retpoline(machine, target=0x4C_9000)
    costs = machine.costs
    assert cycles == costs.call + costs.alu + costs.ret_ + \
        costs.mispredict_penalty

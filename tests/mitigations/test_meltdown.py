"""Meltdown demo: leaks without KPTI on vulnerable parts, never with."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations.meltdown import (
    attempt_meltdown,
    kpti_entry_sequence,
    kpti_exit_sequence,
)


def test_leak_on_vulnerable_part_without_kpti():
    machine = Machine(get_cpu("broadwell"))
    machine.kernel_mapped_in_user = True
    assert attempt_meltdown(machine, 0x42) == 0x42


def test_recovers_arbitrary_bytes():
    machine = Machine(get_cpu("skylake_client"))
    for secret in (0x01, 0x7F, 0xFF):
        assert attempt_meltdown(machine, secret) == secret


def test_kpti_stops_the_leak():
    machine = Machine(get_cpu("broadwell"))
    machine.kernel_mapped_in_user = False
    assert attempt_meltdown(machine, 0x42) is None


@pytest.mark.parametrize("key", [
    "cascade_lake", "ice_lake_client", "ice_lake_server",
    "zen", "zen2", "zen3",
])
def test_immune_parts_never_leak(key):
    machine = Machine(get_cpu(key))
    machine.kernel_mapped_in_user = True  # even with the kernel mapped
    assert attempt_meltdown(machine, 0x42) is None


def test_secret_must_be_one_byte():
    machine = Machine(get_cpu("broadwell"))
    with pytest.raises(ValueError):
        attempt_meltdown(machine, 0x1FF)


def test_kpti_sequences_are_cr3_writes():
    from repro.cpu.isa import Op
    (entry,) = kpti_entry_sequence()
    (exit_,) = kpti_exit_sequence()
    assert entry.op is Op.MOV_CR3
    assert exit_.op is Op.MOV_CR3
    assert entry.value != exit_.value  # two distinct PCID halves


def test_repeated_attack_is_stable():
    machine = Machine(get_cpu("broadwell"))
    for _ in range(3):
        assert attempt_meltdown(machine, 0x17) == 0x17

"""Spectre V1: the Figure-1 gadget, lfence and masking mitigations."""

import pytest

from repro.cpu import Machine, all_cpus, get_cpu
from repro.cpu.isa import Op
from repro.mitigations.spectre_v1 import (
    ARRAY_LENGTH,
    attempt_bounds_bypass,
    build_gadget,
    lfence_after_swapgs_sequence,
)


def test_raw_gadget_leaks_on_every_cpu(every_cpu):
    """V1 affects every part the paper measured."""
    machine = Machine(every_cpu)
    assert attempt_bounds_bypass(machine, 0x5A) == 0x5A


def test_lfence_stops_the_leak(every_cpu):
    machine = Machine(every_cpu)
    assert attempt_bounds_bypass(machine, 0x5A, lfence_hardened=True) is None


def test_index_masking_stops_the_leak(every_cpu):
    machine = Machine(every_cpu)
    assert attempt_bounds_bypass(machine, 0x5A, masked=True) is None


def test_different_secrets_recovered():
    machine = Machine(get_cpu("zen2"))
    for secret in (1, 100, 255):
        assert attempt_bounds_bypass(machine, secret) == secret


def test_gadget_structure_unhardened():
    gadget = build_gadget(index=3, secret_byte=9)
    assert [i.op for i in gadget] == [Op.LOAD, Op.LOAD]


def test_gadget_structure_lfence_first():
    gadget = build_gadget(index=3, secret_byte=9, lfence_hardened=True)
    assert gadget[0].op is Op.LFENCE


def test_gadget_masking_inserts_cmov_and_clamps():
    oob = ARRAY_LENGTH + 1000
    gadget = build_gadget(index=oob, secret_byte=9, masked=True)
    assert gadget[0].op is Op.CMOV
    # The first load was clamped to index 0.
    from repro.mitigations.spectre_v1 import ARRAY_BASE
    assert gadget[1].address == ARRAY_BASE


def test_masking_leaves_in_bounds_indices_alone():
    gadget = build_gadget(index=5, secret_byte=9, masked=True)
    from repro.mitigations.spectre_v1 import ARRAY_BASE
    assert gadget[1].address == ARRAY_BASE + 5


def test_swapgs_sequence_is_one_lfence():
    (instr,) = lfence_after_swapgs_sequence()
    assert instr.op is Op.LFENCE

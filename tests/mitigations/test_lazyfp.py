"""LazyFP: lazy-switch leak, eager fix, and the cost inversion."""

from repro.cpu import Machine, get_cpu
from repro.mitigations.lazyfp import (
    FPUState,
    attempt_lazyfp,
    eager_switch,
    eager_switch_cost,
    eager_switch_sequence,
    lazy_switch,
    lazy_switch_cost,
)


def leaky_state():
    """Process 1's secret sits in the registers; a lazy switch happened."""
    fpu = FPUState(owner_pid=1, enabled=True, secret=0xC0FFEE)
    lazy_switch(fpu, new_pid=2)
    return fpu


def test_lazy_switch_leaks_on_vulnerable_part():
    machine = Machine(get_cpu("broadwell"))
    assert attempt_lazyfp(machine, leaky_state(), attacker_pid=2) == 0xC0FFEE


def test_amd_parts_are_immune():
    for key in ("zen", "zen2", "zen3"):
        machine = Machine(get_cpu(key))
        assert attempt_lazyfp(machine, leaky_state(), attacker_pid=2) is None


def test_eager_switch_prevents_the_leak():
    machine = Machine(get_cpu("broadwell"))
    fpu = FPUState(owner_pid=1, enabled=True, secret=0xC0FFEE)
    eager_switch(fpu, new_pid=2, new_secret=0)
    assert attempt_lazyfp(machine, fpu, attacker_pid=2) is None


def test_own_registers_are_not_a_leak():
    machine = Machine(get_cpu("broadwell"))
    fpu = leaky_state()
    assert attempt_lazyfp(machine, fpu, attacker_pid=1) == None  # noqa: E711


def test_eager_cost_is_save_plus_restore(machine):
    assert eager_switch_cost(machine) == \
        machine.costs.xsave + machine.costs.xrstor
    assert len(eager_switch_sequence()) == 2


def test_lazy_is_free_for_fpu_less_tasks(machine):
    assert lazy_switch_cost(machine, new_process_uses_fpu=False) == 0


def test_lazy_costs_more_than_eager_for_fpu_tasks(machine):
    """The paper's 'amusingly, the mitigation speeds things up' claim:
    the #NM trap makes lazy switching the slower strategy when the
    incoming task actually touches the FPU."""
    assert lazy_switch_cost(machine, new_process_uses_fpu=True) > \
        eager_switch_cost(machine)

"""SpectreRSB: planted returns, underflow fallback, and stuffing."""

import pytest

from repro.cpu import Machine, all_cpus, get_cpu
from repro.mitigations.spectre_rsb import (
    attempt_planted_return,
    attempt_underflow_fallback,
)


def test_planted_return_leaks_on_every_cpu(every_cpu):
    """The RSB itself is untagged everywhere: a planted entry steers the
    next return on every part we model."""
    assert attempt_planted_return(Machine(every_cpu)) is True


def test_stuffing_overwrites_the_plant(every_cpu):
    assert attempt_planted_return(Machine(every_cpu), stuffed=True) is False


def test_underflow_fallback_only_on_btb_fallback_parts():
    """Skylake-class parts consult the BTB on underflow; Broadwell
    stalls.  (Paper 5.3's SpectreRSB discussion.)"""
    fallback = {cpu.key for cpu in all_cpus()
                if cpu.predictor.rsb_underflow_uses_btb}
    assert "skylake_client" in fallback
    assert "broadwell" not in fallback
    for cpu in all_cpus():
        expected = cpu.predictor.rsb_underflow_uses_btb and \
            not cpu.predictor.btb_opaque_index
        assert attempt_underflow_fallback(Machine(cpu)) == expected, cpu.key


def test_stuffing_prevents_the_underflow():
    machine = Machine(get_cpu("skylake_client"))
    assert attempt_underflow_fallback(machine, stuffed=True) is False


def test_mode_tagged_btb_does_not_save_the_underflow_path():
    """On Cascade Lake the fallback entry was trained in the same (user)
    mode, so mode tagging doesn't stop this one — stuffing is the fix."""
    assert attempt_underflow_fallback(Machine(get_cpu("cascade_lake"))) is True

"""Speculative Store Bypass: the stale-read demo and the SSBD policy."""

import pytest

from repro.cpu import Machine, get_cpu
from repro.mitigations.base import SSBDMode
from repro.mitigations.ssb import (
    attempt_store_bypass,
    process_wants_ssbd,
    ssbd_disable_sequence,
    ssbd_enable_sequence,
)


def test_bypass_leaks_stale_value_on_every_cpu(every_cpu):
    """No part the paper measured is immune to SSB."""
    machine = Machine(every_cpu)
    assert attempt_store_bypass(machine, 0x77) == 0x77


def test_ssbd_stops_the_bypass(every_cpu):
    machine = Machine(every_cpu)
    machine.msr.set_ssbd(True)
    assert attempt_store_bypass(machine, 0x77) is None


def test_ssbd_msr_sequences():
    from repro.cpu.msr import SPEC_CTRL_SSBD
    (enable,) = ssbd_enable_sequence()
    (disable,) = ssbd_disable_sequence()
    assert enable.value & SPEC_CTRL_SSBD
    assert not disable.value & SPEC_CTRL_SSBD


class TestPolicy:
    """The prctl/seccomp decision table (paper 3.2, 4.3, 7)."""

    def test_off_never_enables(self):
        assert not process_wants_ssbd(SSBDMode.OFF, True, True)

    def test_force_on_always_enables(self):
        assert process_wants_ssbd(SSBDMode.FORCE_ON, False, False)

    def test_prctl_mode_requires_explicit_opt_in(self):
        assert process_wants_ssbd(SSBDMode.PRCTL, True, False)
        assert not process_wants_ssbd(SSBDMode.PRCTL, False, True)

    def test_seccomp_mode_catches_firefox(self):
        """Pre-5.16: merely using seccomp turns SSBD on — why Firefox
        paid the Figure 3 cost."""
        assert process_wants_ssbd(SSBDMode.SECCOMP, False, True)
        assert process_wants_ssbd(SSBDMode.SECCOMP, True, False)
        assert not process_wants_ssbd(SSBDMode.SECCOMP, False, False)

    def test_linux_5_16_change_releases_firefox(self):
        """The same process stops paying under the new default."""
        firefox = dict(opted_in_prctl=False, uses_seccomp=True)
        assert process_wants_ssbd(SSBDMode.SECCOMP, **firefox)
        assert not process_wants_ssbd(SSBDMode.PRCTL, **firefox)

"""MDS: sampling demo, verw clearing, the SMT capacity tradeoff."""

import pytest

from repro.cpu import Machine, Mode, get_cpu
from repro.cpu import isa
from repro.mitigations.mds import (
    attempt_mds_sample,
    kernel_touched_secret,
    smt_effective_threads,
    verw_sequence,
)


def test_sampling_leaks_kernel_residue_on_vulnerable_parts():
    for key in ("broadwell", "skylake_client", "cascade_lake"):
        machine = Machine(get_cpu(key))
        kernel_touched_secret(machine, 0xBEEF)
        leaked = attempt_mds_sample(machine)
        assert leaked, key
        assert 0xBEEF in leaked.values()


def test_immune_parts_never_leak():
    for key in ("ice_lake_client", "ice_lake_server", "zen", "zen2", "zen3"):
        machine = Machine(get_cpu(key))
        kernel_touched_secret(machine, 0xBEEF)
        assert attempt_mds_sample(machine) == {}, key


def test_verw_on_kernel_exit_stops_the_leak():
    machine = Machine(get_cpu("broadwell"))
    kernel_touched_secret(machine, 0xBEEF)
    machine.mode = Mode.KERNEL
    machine.run(verw_sequence())
    machine.mode = Mode.USER
    assert attempt_mds_sample(machine) == {}


def test_unpatched_microcode_verw_does_not_clear():
    """Without the microcode patch, verw only has its legacy behaviour."""
    machine = Machine(get_cpu("broadwell"), microcode_patched=False)
    kernel_touched_secret(machine, 0xBEEF)
    machine.mode = Mode.KERNEL
    machine.run(verw_sequence())
    machine.mode = Mode.USER
    assert attempt_mds_sample(machine) != {}


def test_kernel_mode_attacker_sees_user_residue():
    machine = Machine(get_cpu("broadwell"))
    machine.execute(isa.load(0x1000))  # user-mode load leaves residue
    assert attempt_mds_sample(machine, attacker_mode=Mode.KERNEL) != {}


class TestSMT:
    def test_smt_on_yields_more_than_cores(self):
        assert smt_effective_threads(10, True) == pytest.approx(12.5)

    def test_smt_off_yields_exactly_cores(self):
        assert smt_effective_threads(10, False) == 10.0

    def test_disable_smt_cost_is_the_yield_delta(self):
        """Why Table 1 marks Disable-SMT as '!': the capacity loss
        (here 20%) dwarfs the verw path cost."""
        on = smt_effective_threads(10, True)
        off = smt_effective_threads(10, False)
        assert (on - off) / on == pytest.approx(0.2)

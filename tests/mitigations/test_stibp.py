"""STIBP: cross-hyperthread Spectre V2 and its fix."""

import pytest

from repro.cpu import get_cpu
from repro.cpu.btb import BranchTargetBuffer
from repro.cpu.modes import Mode
from repro.cpu.smt import SMTCore
from repro.mitigations.stibp import (
    attempt_cross_thread_injection,
    stibp_enable_sequence,
)

SMT_PARTS = ("broadwell", "skylake_client", "cascade_lake", "zen2")


@pytest.mark.parametrize("key", SMT_PARTS)
def test_cross_thread_injection_without_stibp(key):
    """Siblings share the BTB: injection works even on mode-tagged parts
    (both threads run in user mode — tagging doesn't apply)."""
    assert attempt_cross_thread_injection(SMTCore(get_cpu(key))) is True


@pytest.mark.parametrize("key", SMT_PARTS)
def test_stibp_blocks_cross_thread_injection(key):
    core = SMTCore(get_cpu(key))
    assert attempt_cross_thread_injection(core, stibp=True) is False


def test_zen3_immune_via_opaque_indexing():
    """Zen 3's BTB can't be steered by the probe at all (Table 9), so the
    cross-thread variant fails there with or without STIBP."""
    assert attempt_cross_thread_injection(SMTCore(get_cpu("zen3"))) is False


def test_stibp_sequence_sets_the_bit():
    from repro.cpu.msr import SPEC_CTRL_STIBP
    (instr,) = stibp_enable_sequence()
    assert instr.value & SPEC_CTRL_STIBP


def test_stibp_does_not_block_own_thread_prediction():
    """STIBP filters *foreign* entries only: a thread's own training
    still predicts (no performance cliff for the protected task)."""
    btb = BranchTargetBuffer()
    btb.train(0x100, 0x2000, Mode.USER, thread=1)
    assert btb.lookup(0x100, Mode.USER, thread=1, stibp=True) == 0x2000
    assert btb.lookup(0x100, Mode.USER, thread=0, stibp=True) is None
    assert btb.lookup(0x100, Mode.USER, thread=0, stibp=False) == 0x2000

"""Linux default policy: the paper's Table 1, cell by cell."""

import pytest

from repro.cpu import CPU_ORDER, all_cpus, get_cpu
from repro.mitigations.base import SSBDMode, V2Strategy
from repro.mitigations.policy import (
    TABLE1_ROWS,
    default_v2_strategy,
    linux_default,
    table1_cell,
    table1_matrix,
)

#: The paper's Table 1, transcribed.  Columns follow CPU_ORDER; "x" is the
#: check mark, "" is blank, "!" is needed-but-not-default.
PAPER_TABLE1 = {
    ("Meltdown", "Page Table Isolation"):  ["x", "x", "", "", "", "", "", ""],
    ("L1TF", "PTE Inversion"):             ["x", "x", "", "", "", "", "", ""],
    ("L1TF", "Flush L1 Cache"):            ["x", "x", "", "", "", "", "", ""],
    ("LazyFP", "Always save FPU"):         ["x"] * 8,
    ("Spectre V1", "Index Masking"):       ["x"] * 8,
    ("Spectre V1", "lfence after swapgs"): ["x"] * 8,
    ("Spectre V2", "Generic Retpoline"):   ["x", "x", "", "", "", "", "", ""],
    ("Spectre V2", "AMD Retpoline"):       ["", "", "", "", "", "x", "x", "x"],
    ("Spectre V2", "IBRS"):                [""] * 8,
    ("Spectre V2", "Enhanced IBRS"):       ["", "", "x", "x", "x", "", "", ""],
    ("Spectre V2", "RSB Stuffing"):        ["x"] * 8,
    ("Spectre V2", "IBPB"):                ["x"] * 8,
    ("Spec. Store Bypass", "SSBD"):        ["!"] * 8,
    ("MDS", "Flush CPU Buffers"):          ["x", "x", "x", "", "", "", "", ""],
    ("MDS", "Disable SMT"):                ["!", "!", "!", "", "", "", "", ""],
}


def _normalize(cell):
    return {"yes": "x", "": "", "!": "!"}[cell]


def test_table1_matches_paper_exactly():
    matrix = table1_matrix()
    assert set(matrix) == set(PAPER_TABLE1)
    for row, cells in matrix.items():
        assert [_normalize(c) for c in cells] == PAPER_TABLE1[row], row


def test_table1_rows_in_paper_order():
    assert TABLE1_ROWS == tuple(PAPER_TABLE1)


def test_v2_strategy_eibrs_when_available():
    assert default_v2_strategy(get_cpu("cascade_lake")) is V2Strategy.EIBRS
    assert default_v2_strategy(get_cpu("ice_lake_server")) is V2Strategy.EIBRS


def test_v2_strategy_generic_retpoline_on_old_intel():
    assert default_v2_strategy(get_cpu("broadwell")) is \
        V2Strategy.RETPOLINE_GENERIC


def test_v2_strategy_amd_retpoline_then_generic_after_5_15():
    """The Linux 5.15.28 switch after Milburn et al. (section 5.3)."""
    zen2 = get_cpu("zen2")
    assert default_v2_strategy(zen2, kernel=(5, 14)) is V2Strategy.RETPOLINE_AMD
    assert default_v2_strategy(zen2, kernel=(5, 15)) is \
        V2Strategy.RETPOLINE_GENERIC


def test_ssbd_seccomp_before_5_16_prctl_after():
    """The Linux 5.16 default change (sections 4.3 and 7)."""
    cpu = get_cpu("broadwell")
    assert linux_default(cpu, kernel=(5, 14)).ssbd_mode is SSBDMode.SECCOMP
    assert linux_default(cpu, kernel=(5, 16)).ssbd_mode is SSBDMode.PRCTL


def test_pti_only_on_meltdown_vulnerable(every_cpu):
    config = linux_default(every_cpu)
    assert config.pti == every_cpu.vulns.meltdown


def test_verw_only_on_mds_vulnerable(every_cpu):
    config = linux_default(every_cpu)
    assert config.mds_verw == every_cpu.vulns.mds


def test_eager_fpu_always_on(every_cpu):
    assert linux_default(every_cpu).eager_fpu


def test_smt_stays_enabled_by_default(every_cpu):
    assert not linux_default(every_cpu).mds_smt_off


def test_default_config_validates_on_its_own_cpu(every_cpu):
    linux_default(every_cpu).validate_for(every_cpu)


def test_firefox_flag_controls_js_switches():
    cpu = get_cpu("zen3")
    assert linux_default(cpu, firefox=True).js_index_masking
    assert not linux_default(cpu, firefox=False).js_index_masking


def test_unknown_table1_row_raises():
    with pytest.raises(KeyError):
        table1_cell(get_cpu("zen"), "Meltdown", "Voodoo")

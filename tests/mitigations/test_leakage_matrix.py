"""Default-policy leakage matrix: taint-oracle agreement and Table 1 join.

Three layers of evidence that the leakage oracle is trustworthy:

* **oracle agreement** — on every Table 9/10 cell (all 8 CPUs, IBRS off
  and on) the taint tracer's ``leaked`` verdict equals the divider
  counter's ``speculated`` signal; the two detect the same physics
  through independent mechanisms;
* **default-policy matrix** — under each part's Linux-default Spectre V2
  strategy, the blocked/leaked cells match the paper's section 6 story
  (retpolines close everything; eIBRS parts keep same-mode training
  alive) with mechanistic blocked-by attribution;
* **Table 1 re-derivation** — the verdicts' blocked-by strings recover
  which V2 row of Table 1 is checked for each CPU, so the probe grid and
  the policy table cannot drift apart silently.
"""

import pytest

from repro.core.probe import (
    POLICY_DEFAULT,
    POLICY_IBRS,
    POLICY_OFF,
    SCENARIOS,
    leakage_row,
    speculation_row,
)
from repro.cpu import all_cpus, get_cpu
from repro.mitigations.base import V2Strategy
from repro.mitigations.policy import default_v2_strategy, table1_cell

CPU_KEYS = [cpu.key for cpu in all_cpus()]

#: Parts whose Linux default is a retpoline (every cell blocked by it).
RETPOLINE_PARTS = {"broadwell", "skylake_client", "zen", "zen2", "zen3"}
#: eIBRS parts where mode tags filter cross-mode training only.
MODE_TAG_PARTS = {"cascade_lake", "ice_lake_server"}
#: eIBRS part that additionally refuses prediction in kernel mode.
NO_PREDICT_PARTS = {"ice_lake_client"}


def _victim_is_kernel(scenario):
    return scenario.victim_mode.is_kernel


# --------------------------------------------------------------------------- #
# Oracle agreement on the paper's own grids
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("ibrs", [False, True])
@pytest.mark.parametrize("key", CPU_KEYS)
def test_oracle_agrees_with_divider_signal(key, ibrs):
    cpu = get_cpu(key)
    row = speculation_row(cpu, ibrs=ibrs)
    if row is None:
        assert ibrs and not (cpu.predictor.supports_ibrs
                             or cpu.predictor.supports_eibrs)
        return
    for scenario in SCENARIOS:
        verdict = row[scenario]
        assert verdict.leaked == verdict.speculated, scenario.label


# --------------------------------------------------------------------------- #
# The default-policy blocked/leaked matrix (section 6 story)
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("key", CPU_KEYS)
def test_default_policy_matrix_shape(key):
    cpu = get_cpu(key)
    row = leakage_row(cpu, policy=POLICY_DEFAULT)
    assert row is not None
    for scenario in SCENARIOS:
        verdict = row[scenario]
        if key in RETPOLINE_PARTS:
            assert not verdict.leaked, scenario.label
            assert "spectre_v2/retpoline" in verdict.blocked_by
        elif key in MODE_TAG_PARTS:
            # Mode tags only filter user-trained -> kernel-victim cells;
            # same-mode training rides straight through eIBRS.
            crosses = scenario.train_mode is not scenario.victim_mode
            if crosses:
                assert not verdict.leaked, scenario.label
                assert "hardware/btb_isolation" in verdict.blocked_by
            else:
                assert verdict.leaked, scenario.label
                assert verdict.events > 0
        elif key in NO_PREDICT_PARTS:
            if _victim_is_kernel(scenario):
                assert not verdict.leaked, scenario.label
                assert "spectre_v2/ibrs_no_predict" in verdict.blocked_by
            else:
                assert verdict.leaked, scenario.label
        else:  # pragma: no cover - a new CPU model needs a matrix entry
            pytest.fail(f"no expected matrix row for {key}")


def test_policy_off_leaks_everywhere_vulnerable():
    cpu = get_cpu("broadwell")
    row = leakage_row(cpu, policy=POLICY_OFF)
    for scenario in SCENARIOS:
        assert row[scenario].leaked, scenario.label


def test_ibrs_policy_matches_table10_semantics():
    row = leakage_row(get_cpu("zen"), policy=POLICY_IBRS)
    assert row is None  # no IBRS on Zen 1 - Table 10's N/A row
    # Legacy IBRS on Skylake closes every cell (Table 10 row: all blank).
    row = leakage_row(get_cpu("skylake_client"), policy=POLICY_IBRS)
    assert not any(row[s].leaked for s in SCENARIOS)
    # eIBRS on Cascade Lake only filters cross-mode training (Table 10).
    row = leakage_row(get_cpu("cascade_lake"), policy=POLICY_IBRS)
    leaked = tuple(row[s].leaked for s in SCENARIOS)
    assert leaked == (False, True, True, True, True)


# --------------------------------------------------------------------------- #
# Re-derive Table 1's Spectre V2 rows from the structured verdicts
# --------------------------------------------------------------------------- #

def _derived_v2_mitigation(cpu):
    """Which V2 mechanism the verdicts say defended this part."""
    row = leakage_row(cpu, policy=POLICY_DEFAULT)
    blocked = set()
    for verdict in row.values():
        blocked.update(verdict.blocked_by)
    if "spectre_v2/retpoline" in blocked:
        return "retpoline"
    if blocked or any(not v.leaked for v in row.values()):
        return "eibrs"
    return "none"


@pytest.mark.parametrize("key", CPU_KEYS)
def test_table1_v2_rows_rederive_from_verdicts(key):
    cpu = get_cpu(key)
    derived = _derived_v2_mitigation(cpu)
    generic = table1_cell(cpu, "Spectre V2", "Generic Retpoline")
    amd = table1_cell(cpu, "Spectre V2", "AMD Retpoline")
    eibrs = table1_cell(cpu, "Spectre V2", "Enhanced IBRS")
    if derived == "retpoline":
        assert (generic == "yes") or (amd == "yes")
        assert eibrs == ""
        # ...and the probe ran the flavour the policy table says.
        strategy = default_v2_strategy(cpu)
        assert strategy in (V2Strategy.RETPOLINE_GENERIC,
                            V2Strategy.RETPOLINE_AMD)
        assert (strategy is V2Strategy.RETPOLINE_AMD) == (amd == "yes")
    elif derived == "eibrs":
        assert eibrs == "yes"
        assert generic == "" and amd == ""
        assert default_v2_strategy(cpu) is V2Strategy.EIBRS
    else:  # pragma: no cover - every modelled part mitigates v2
        pytest.fail(f"{key}: no v2 defence derived from the verdicts")

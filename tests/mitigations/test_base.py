"""MitigationConfig and the knob registry."""

import pytest

from repro.cpu import get_cpu
from repro.errors import ConfigurationError
from repro.mitigations.base import (
    ALL_KNOBS,
    JS_KNOBS,
    KERNEL_KNOBS,
    KNOBS_BY_NAME,
    MitigationConfig,
    SSBDMode,
    V2Strategy,
)


def test_all_off_disables_everything():
    config = MitigationConfig.all_off()
    assert not config.pti
    assert not config.mds_verw
    assert config.v2_strategy is V2Strategy.NONE
    assert config.ssbd_mode is SSBDMode.OFF
    assert not config.js_index_masking


def test_replace_returns_new_frozen_config():
    base = MitigationConfig.all_off()
    changed = base.replace(pti=True)
    assert changed.pti and not base.pti
    with pytest.raises(Exception):
        base.pti = True  # frozen dataclass


def test_uses_retpolines_property():
    for strategy, expected in [
        (V2Strategy.NONE, False),
        (V2Strategy.RETPOLINE_GENERIC, True),
        (V2Strategy.RETPOLINE_AMD, True),
        (V2Strategy.IBRS, False),
        (V2Strategy.EIBRS, False),
    ]:
        assert MitigationConfig(v2_strategy=strategy).uses_retpolines == expected


def test_uses_ibrs_entry_write_only_for_legacy_ibrs():
    assert MitigationConfig(v2_strategy=V2Strategy.IBRS).uses_ibrs_entry_write
    assert not MitigationConfig(v2_strategy=V2Strategy.EIBRS).uses_ibrs_entry_write


def test_validate_rejects_ibrs_on_zen():
    config = MitigationConfig(v2_strategy=V2Strategy.IBRS)
    with pytest.raises(ConfigurationError):
        config.validate_for(get_cpu("zen"))


def test_validate_rejects_eibrs_on_non_eibrs_part():
    config = MitigationConfig(v2_strategy=V2Strategy.EIBRS)
    with pytest.raises(ConfigurationError):
        config.validate_for(get_cpu("broadwell"))


def test_validate_rejects_amd_retpoline_on_intel():
    config = MitigationConfig(v2_strategy=V2Strategy.RETPOLINE_AMD)
    with pytest.raises(ConfigurationError):
        config.validate_for(get_cpu("skylake_client"))
    config.validate_for(get_cpu("zen"))  # fine on AMD


def test_validate_rejects_smt_off_on_smt_less_part():
    config = MitigationConfig(mds_smt_off=True)
    with pytest.raises(ConfigurationError):
        config.validate_for(get_cpu("zen"))  # Ryzen 3 1200 has no SMT
    config.validate_for(get_cpu("zen2"))


def test_knob_registry_names_unique_and_complete():
    names = [k.name for k in ALL_KNOBS]
    assert len(names) == len(set(names))
    assert set(KNOBS_BY_NAME) == set(names)
    assert len(KERNEL_KNOBS) + len(JS_KNOBS) == len(ALL_KNOBS)


def test_each_knob_disable_is_idempotent():
    full = MitigationConfig(
        pti=True, pte_inversion=True, l1d_flush_on_vmentry=True,
        eager_fpu=True, v1_lfence_swapgs=True, v1_usercopy_masking=True,
        v2_strategy=V2Strategy.RETPOLINE_GENERIC, v2_rsb_stuffing=True,
        v2_ibpb=True, ssbd_mode=SSBDMode.SECCOMP, mds_verw=True,
        js_index_masking=True, js_object_guards=True, js_other=True,
    )
    for knob in ALL_KNOBS:
        once = knob.disable(full)
        assert knob.disable(once) == once
        assert once != full, f"knob {knob.name} did nothing"


def test_disabling_every_knob_reaches_nearly_all_off():
    full = MitigationConfig(
        pti=True, pte_inversion=True, l1d_flush_on_vmentry=True,
        eager_fpu=True, v1_lfence_swapgs=True, v1_usercopy_masking=True,
        v2_strategy=V2Strategy.RETPOLINE_GENERIC, v2_rsb_stuffing=True,
        v2_ibpb=True, ssbd_mode=SSBDMode.SECCOMP, mds_verw=True,
        js_index_masking=True, js_object_guards=True, js_other=True,
    )
    config = full
    for knob in ALL_KNOBS:
        config = knob.disable(config)
    assert config == MitigationConfig.all_off()


def test_knob_boot_params_look_like_kernel_flags():
    assert KNOBS_BY_NAME["pti"].boot_param == "nopti"
    assert KNOBS_BY_NAME["mds"].boot_param == "mds=off"
    assert KNOBS_BY_NAME["spectre_v2"].boot_param == "nospectre_v2"

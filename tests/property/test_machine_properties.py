"""Hypothesis properties of the machine and the mitigation demos."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, all_cpus, get_cpu
from repro.cpu import isa
from repro.mitigations.meltdown import attempt_meltdown
from repro.mitigations.spectre_v1 import attempt_bounds_bypass

cpu_keys = st.sampled_from([c.key for c in all_cpus()])
secret_bytes = st.integers(min_value=1, max_value=255)

SAFE_OPS = st.sampled_from([
    isa.nop, isa.lfence, isa.verw, isa.rsb_fill, isa.swapgs,
    isa.rdtsc, isa.rdpmc, isa.div, isa.mul, isa.cmov,
])


@given(cpu_keys, st.lists(SAFE_OPS, max_size=50))
@settings(max_examples=60)
def test_cycle_accounting_matches_tsc(key, makers):
    machine = Machine(get_cpu(key))
    start = machine.read_tsc()
    total = machine.run([make() for make in makers])
    assert machine.read_tsc() - start == total
    assert total >= 0


@given(cpu_keys, st.lists(SAFE_OPS, min_size=1, max_size=30))
@settings(max_examples=60)
def test_execution_is_deterministic_across_machines(key, makers):
    instrs_a = [make() for make in makers]
    instrs_b = [make() for make in makers]
    a = Machine(get_cpu(key), seed=1)
    b = Machine(get_cpu(key), seed=1)
    assert a.run(instrs_a) == b.run(instrs_b)


@given(cpu_keys, secret_bytes)
@settings(max_examples=40)
def test_meltdown_iff_vulnerable_and_mapped(key, secret):
    cpu = get_cpu(key)
    machine = Machine(cpu)
    machine.kernel_mapped_in_user = True
    leaked = attempt_meltdown(machine, secret)
    if cpu.vulns.meltdown:
        assert leaked == secret
    else:
        assert leaked is None


@given(cpu_keys, secret_bytes)
@settings(max_examples=40)
def test_kpti_always_wins(key, secret):
    machine = Machine(get_cpu(key))
    machine.kernel_mapped_in_user = False
    assert attempt_meltdown(machine, secret) is None


@given(cpu_keys, secret_bytes,
       st.booleans(), st.booleans())
@settings(max_examples=60)
def test_v1_leaks_iff_unhardened(key, secret, lfence, masked):
    machine = Machine(get_cpu(key))
    leaked = attempt_bounds_bypass(machine, secret,
                                   lfence_hardened=lfence, masked=masked)
    if lfence or masked:
        assert leaked is None
    else:
        assert leaked == secret


@given(cpu_keys, st.integers(min_value=0, max_value=1 << 40))
@settings(max_examples=60)
def test_transient_loads_never_commit_time(key, address):
    machine = Machine(get_cpu(key))
    tsc = machine.read_tsc()
    machine.speculate([isa.load(address)])
    assert machine.read_tsc() == tsc
    assert machine.caches.probe_l1(address)  # but the footprint is real

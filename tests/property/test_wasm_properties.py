"""Hypothesis properties of the WASM sandbox model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, get_cpu
from repro.jsengine.wasm import WasmCompiler, WasmModule, instantiate

offsets = st.integers(min_value=0, max_value=1 << 48)
sizes = st.sampled_from([4096, 1 << 16, 1 << 20, 1 << 30])


@given(sizes, offsets)
@settings(max_examples=100)
def test_masked_offset_always_in_bounds(size, offset):
    module = WasmModule(memory_bytes=size, module_id=0)
    masked = module.masked_offset(offset)
    assert 0 <= masked < size


@given(sizes, st.integers(min_value=0, max_value=4095))
@settings(max_examples=100)
def test_masking_is_identity_in_bounds(size, offset):
    """Hardening must not change the semantics of correct programs."""
    module = WasmModule(memory_bytes=size, module_id=0)
    assert module.masked_offset(offset % size) == offset % size


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=50)
def test_distinct_modules_never_overlap(id_a, id_b):
    a = WasmModule(memory_bytes=1 << 30, module_id=id_a)
    b = WasmModule(memory_bytes=1 << 30, module_id=id_b)
    if id_a != id_b:
        assert not a.contains(b.memory_base)
        assert not b.contains(a.memory_base)
    else:
        assert a.memory_base == b.memory_base


@given(sizes, offsets)
@settings(max_examples=60)
def test_hardened_code_never_addresses_outside(size, offset):
    machine = Machine(get_cpu("zen2"))
    module = WasmModule(memory_bytes=size, module_id=3)
    block = WasmCompiler(machine, hardened=True).load(module, offset)
    load = block[-1]
    assert module.contains(load.address)


@given(offsets)
@settings(max_examples=60)
def test_raw_code_addresses_exactly_what_it_was_told(offset):
    machine = Machine(get_cpu("zen2"))
    module = instantiate(1 << 20)
    block = WasmCompiler(machine, hardened=False).load(module, offset)
    assert block[-1].address == module.memory_base + offset

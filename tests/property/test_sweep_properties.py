"""Hypothesis properties of the sweep/crossover machinery."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.sweeps import SweepResult, find_crossover, sweep

ys = st.floats(min_value=-1e6, max_value=1e6,
               allow_nan=False, allow_infinity=False)


def sorted_xs(n):
    return st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=n, max_size=8, unique=True,
    ).map(sorted)


@st.composite
def curves(draw, min_points=2):
    xs = tuple(draw(sorted_xs(min_points)))
    values = tuple(draw(st.lists(ys, min_size=len(xs), max_size=len(xs))))
    return SweepResult("x", xs, values)


@given(curves(), st.floats(min_value=0, max_value=1e6, allow_nan=False))
@settings(max_examples=100)
def test_interpolation_bounded_by_extremes(curve, x):
    y = curve.interpolate(x)
    assert min(curve.ys) - 1e-6 <= y <= max(curve.ys) + 1e-6


@given(curves())
@settings(max_examples=100)
def test_interpolation_exact_at_grid_points(curve):
    for x, y in zip(curve.xs, curve.ys):
        assert curve.interpolate(x) == y


@given(curves(), ys)
@settings(max_examples=100)
def test_first_below_returns_x_in_range_or_none(curve, threshold):
    crossing = curve.first_below(threshold)
    if crossing is not None:
        assert curve.xs[0] <= crossing <= curve.xs[-1]
        # And indeed some sampled point sits below the threshold.
        assert any(y < threshold for y in curve.ys)
    else:
        assert all(y >= threshold for y in curve.ys)


@given(curves())
@settings(max_examples=100)
def test_crossover_with_self_is_the_first_x(curve):
    assert find_crossover(curve, curve) == curve.xs[0]


@given(curves())
@settings(max_examples=100)
def test_crossover_against_strictly_lower_curve_is_none(curve):
    lower = SweepResult("x", curve.xs,
                        tuple(y - 1.0 for y in curve.ys))
    assert find_crossover(curve, lower) is None


@given(st.lists(ys, min_size=2, max_size=8))
@settings(max_examples=100)
def test_sweep_preserves_function_values(values):
    table = dict(enumerate(values))
    result = sweep("i", list(table), lambda x: table[x])
    assert result.ys == tuple(float(v) for v in values)

"""Hypothesis properties of the BTB, RSB and store buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.btb import HARMLESS_TARGET, BranchTargetBuffer
from repro.cpu.modes import Mode
from repro.cpu.rsb import BENIGN_ENTRY, ReturnStackBuffer
from repro.cpu.storebuffer import StoreBuffer

pcs = st.integers(min_value=1, max_value=1 << 30)
targets = st.integers(min_value=1, max_value=1 << 30)
modes = st.sampled_from([Mode.USER, Mode.KERNEL])


@given(st.lists(st.tuples(pcs, targets, modes), max_size=50))
@settings(max_examples=50)
def test_btb_lookup_returns_last_trained_target(history):
    btb = BranchTargetBuffer(entries=1024)
    latest = {}
    for pc, target, mode in history:
        btb.train(pc, target, mode)
        latest[pc] = target
    for pc, target in latest.items():
        assert btb.lookup(pc, Mode.USER) == target  # untagged: any mode


@given(st.lists(st.tuples(pcs, targets), min_size=1, max_size=30))
@settings(max_examples=50)
def test_btb_barrier_leaves_only_harmless_targets(history):
    btb = BranchTargetBuffer()
    for pc, target in history:
        btb.train(pc, target, Mode.USER)
    btb.barrier()
    for pc, _target in history:
        assert btb.lookup(pc, Mode.USER) == HARMLESS_TARGET


@given(st.lists(st.tuples(pcs, targets, modes), max_size=50))
@settings(max_examples=50)
def test_mode_tagged_btb_never_leaks_across_modes(history):
    btb = BranchTargetBuffer(mode_tagged=True)
    for pc, target, mode in history:
        btb.train(pc, target, mode)
        other = Mode.KERNEL if mode is Mode.USER else Mode.USER
        prediction = btb.lookup(pc, other)
        # Either no prediction, or one trained earlier in *that* mode —
        # never the entry we just installed from the other mode.
        assert prediction != target or any(
            p == pc and t == target and m is other for p, t, m in history)


@given(st.lists(st.integers(min_value=1, max_value=1 << 20), max_size=80),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=50)
def test_rsb_is_a_bounded_lifo(pushes, depth):
    rsb = ReturnStackBuffer(depth=depth)
    for value in pushes:
        rsb.push(value)
    kept = pushes[-depth:]
    for expected in reversed(kept):
        assert rsb.pop() == expected
    assert rsb.pop() is None


@given(st.integers(min_value=1, max_value=64))
def test_rsb_stuffing_is_always_full_and_benign(depth):
    rsb = ReturnStackBuffer(depth=depth)
    assert rsb.stuff() == depth
    assert all(rsb.pop() == BENIGN_ENTRY for _ in range(depth))


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=100),
       st.integers(min_value=1, max_value=56))
@settings(max_examples=50)
def test_store_buffer_youngest_stores_always_forwardable(stores, depth):
    sb = StoreBuffer(depth=depth)
    for addr in stores:
        sb.push(addr)
        assert sb.match(addr)  # the store just made is always pending
    assert len(sb) <= depth


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=50))
@settings(max_examples=50)
def test_ssbd_forecloses_bypass_everywhere(stores):
    sb = StoreBuffer()
    for addr in stores:
        sb.push(addr)
    for addr in stores:
        assert not sb.speculative_bypass_possible(addr, ssbd=True)

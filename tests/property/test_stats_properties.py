"""Hypothesis properties of the statistics layer."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    NoisySampler,
    confidence_interval,
    geometric_mean,
    overhead_percent,
)

finite_positive = st.floats(min_value=0.01, max_value=1e9,
                            allow_nan=False, allow_infinity=False)


@given(st.lists(finite_positive, min_size=2, max_size=100))
@settings(max_examples=100)
def test_ci_mean_is_sample_mean(samples):
    m = confidence_interval(samples)
    assert m.mean == sum(samples) / len(samples) or \
        math.isclose(m.mean, sum(samples) / len(samples), rel_tol=1e-9)


@given(st.lists(finite_positive, min_size=2, max_size=100))
@settings(max_examples=100)
def test_ci_half_width_nonnegative(samples):
    assert confidence_interval(samples).ci_half_width >= 0


@given(finite_positive, st.integers(min_value=2, max_value=50))
@settings(max_examples=50)
def test_ci_of_identical_samples_is_zero_width(value, n):
    m = confidence_interval([value] * n)
    # Zero up to float rounding of the sample variance.
    assert m.ci_half_width <= 1e-6 * value


@given(st.lists(finite_positive, min_size=1, max_size=50))
@settings(max_examples=100)
def test_geomean_between_min_and_max(values):
    g = geometric_mean(values)
    assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)


@given(st.lists(finite_positive, min_size=1, max_size=30), finite_positive)
@settings(max_examples=50)
def test_geomean_scales_multiplicatively(values, factor):
    scaled = geometric_mean([v * factor for v in values])
    assert math.isclose(scaled, geometric_mean(values) * factor, rel_tol=1e-6)


@given(finite_positive, finite_positive)
@settings(max_examples=100)
def test_overhead_percent_sign_matches_direction(mitigated, baseline):
    pct = overhead_percent(mitigated, baseline)
    if mitigated > baseline:
        assert pct > 0
    elif mitigated < baseline:
        assert pct < 0
    else:
        assert pct == 0


@given(st.integers(min_value=0, max_value=2**31), finite_positive)
@settings(max_examples=50)
def test_noisy_sampler_stays_positive_and_seeded(seed, value):
    a = NoisySampler(lambda: value, sigma=0.05, seed=seed)
    b = NoisySampler(lambda: value, sigma=0.05, seed=seed)
    samples_a = [a() for _ in range(10)]
    samples_b = [b() for _ in range(10)]
    assert samples_a == samples_b
    assert all(s > 0 for s in samples_a)

"""Hypothesis properties of configs, knobs, and the policy engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import all_cpus, get_cpu
from repro.mitigations import linux_default
from repro.mitigations.base import (
    ALL_KNOBS,
    MitigationConfig,
    SSBDMode,
    V2Strategy,
)

cpu_keys = st.sampled_from([c.key for c in all_cpus()])
kernels = st.tuples(st.just(5), st.integers(min_value=4, max_value=18))

#: Configs built from independent random switches (constrained to be
#: hardware-agnostic: no IBRS/eIBRS/AMD-retpoline so they validate anywhere
#: with SMT; we use zen2 which has SMT).
configs = st.builds(
    MitigationConfig,
    pti=st.booleans(),
    pte_inversion=st.booleans(),
    l1d_flush_on_vmentry=st.booleans(),
    eager_fpu=st.booleans(),
    v1_lfence_swapgs=st.booleans(),
    v1_usercopy_masking=st.booleans(),
    v2_strategy=st.sampled_from([V2Strategy.NONE, V2Strategy.RETPOLINE_GENERIC]),
    v2_rsb_stuffing=st.booleans(),
    v2_ibpb=st.booleans(),
    ssbd_mode=st.sampled_from(list(SSBDMode)),
    mds_verw=st.booleans(),
    js_index_masking=st.booleans(),
    js_object_guards=st.booleans(),
    js_other=st.booleans(),
)

knobs = st.sampled_from(list(ALL_KNOBS))


@given(configs, knobs)
@settings(max_examples=100)
def test_knob_disable_is_idempotent(config, knob):
    once = knob.disable(config)
    assert knob.disable(once) == once


@given(configs, st.lists(knobs, max_size=10))
@settings(max_examples=100)
def test_knob_chains_commute_to_the_same_endpoint(config, chain):
    """Disabling is monotone: order never changes the final config."""
    forward = config
    for knob in chain:
        forward = knob.disable(forward)
    backward = config
    for knob in reversed(chain):
        backward = knob.disable(backward)
    assert forward == backward


@given(configs)
@settings(max_examples=100)
def test_all_knobs_reach_a_fixed_point(config):
    current = config
    for knob in ALL_KNOBS:
        current = knob.disable(current)
    again = current
    for knob in ALL_KNOBS:
        again = knob.disable(again)
    assert current == again


@given(cpu_keys, kernels)
@settings(max_examples=60)
def test_linux_default_always_validates(key, kernel):
    cpu = get_cpu(key)
    config = linux_default(cpu, kernel=kernel)
    config.validate_for(cpu)  # must never raise


@given(cpu_keys, kernels)
@settings(max_examples=60)
def test_linux_default_never_under_mitigates(key, kernel):
    """Every vulnerability the part has gets its default mitigation."""
    cpu = get_cpu(key)
    config = linux_default(cpu, kernel=kernel)
    assert config.pti == cpu.vulns.meltdown
    assert config.mds_verw == cpu.vulns.mds
    assert config.pte_inversion == cpu.vulns.l1tf
    if cpu.vulns.spectre_v2:
        assert config.v2_strategy is not V2Strategy.NONE

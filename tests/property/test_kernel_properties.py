"""Hypothesis properties of the kernel layer.

The central one is monotonicity: adding a mitigation can never make a
boundary crossing cheaper.  (LazyFP is the famous exception the paper
jokes about — eager FPU can *beat* lazy — but that's a context-switch
policy, not a boundary-crossing mitigation, and it's excluded here.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Machine, all_cpus, get_cpu
from repro.kernel import HandlerProfile, Kernel
from repro.mitigations import MitigationConfig, SSBDMode, V2Strategy

cpu_keys = st.sampled_from([c.key for c in all_cpus()])

#: Hardware-agnostic boundary-crossing switches (everything here is legal
#: on every catalog CPU and affects the syscall path only).
boundary_configs = st.builds(
    MitigationConfig,
    pti=st.booleans(),
    v1_lfence_swapgs=st.booleans(),
    v1_usercopy_masking=st.booleans(),
    v2_strategy=st.sampled_from([V2Strategy.NONE,
                                 V2Strategy.RETPOLINE_GENERIC]),
    mds_verw=st.booleans(),
)

profiles = st.builds(
    HandlerProfile,
    name=st.just("prop"),
    work_cycles=st.integers(min_value=0, max_value=20000),
    loads=st.integers(min_value=0, max_value=16),
    stores=st.integers(min_value=0, max_value=16),
    indirect_branches=st.integers(min_value=0, max_value=8),
    copy_bytes=st.integers(min_value=0, max_value=1024),
)


def steady_syscall_cost(cpu_key, config, profile):
    kernel = Kernel(Machine(get_cpu(cpu_key), seed=1), config)
    for _ in range(4):
        kernel.syscall(profile)
    return kernel.syscall(profile)


@given(cpu_keys, boundary_configs, profiles)
@settings(max_examples=40, deadline=None)
def test_mitigations_never_speed_up_a_syscall(cpu_key, config, profile):
    baseline = steady_syscall_cost(cpu_key, MitigationConfig.all_off(),
                                   profile)
    mitigated = steady_syscall_cost(cpu_key, config, profile)
    assert mitigated >= baseline


@given(cpu_keys, boundary_configs, profiles)
@settings(max_examples=40, deadline=None)
def test_syscall_cost_is_deterministic(cpu_key, config, profile):
    assert steady_syscall_cost(cpu_key, config, profile) == \
        steady_syscall_cost(cpu_key, config, profile)


@given(cpu_keys, profiles)
@settings(max_examples=30, deadline=None)
def test_pti_delta_is_exactly_two_cr3_swaps(cpu_key, profile):
    cpu = get_cpu(cpu_key)
    baseline = steady_syscall_cost(cpu_key, MitigationConfig.all_off(),
                                   profile)
    with_pti = steady_syscall_cost(cpu_key, MitigationConfig(pti=True),
                                   profile)
    assert with_pti - baseline == 2 * cpu.costs.swap_cr3


@given(cpu_keys, profiles)
@settings(max_examples=30, deadline=None)
def test_syscall_always_returns_to_user_mode(cpu_key, profile):
    from repro.cpu import Mode
    kernel = Kernel(Machine(get_cpu(cpu_key), seed=1),
                    MitigationConfig(pti=True, mds_verw=True,
                                     v1_lfence_swapgs=True))
    kernel.syscall(profile)
    assert kernel.machine.mode is Mode.USER
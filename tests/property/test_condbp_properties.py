"""Hypothesis properties of the 2-bit conditional predictor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.condbp import (
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    ConditionalPredictor,
)

outcomes = st.lists(st.booleans(), max_size=100)
pcs = st.integers(min_value=0, max_value=1 << 30)


@given(pcs, outcomes)
@settings(max_examples=100)
def test_state_always_two_bits(pc, history):
    predictor = ConditionalPredictor()
    for taken in history:
        predictor.update(pc, taken)
        assert STRONG_NOT_TAKEN <= predictor.state(pc) <= STRONG_TAKEN


@given(pcs, outcomes)
@settings(max_examples=100)
def test_two_consecutive_same_outcomes_fix_the_prediction(pc, history):
    """After two identical outcomes the predictor always agrees with
    them, regardless of prior history (2-bit saturation property)."""
    predictor = ConditionalPredictor()
    for taken in history:
        predictor.update(pc, taken)
    predictor.update(pc, True)
    predictor.update(pc, True)
    assert predictor.predict(pc) is True
    predictor.update(pc, False)
    predictor.update(pc, False)
    assert predictor.predict(pc) is False


@given(pcs, pcs, outcomes)
@settings(max_examples=100)
def test_updates_never_leak_across_pcs(pc_a, pc_b, history):
    if pc_a == pc_b:
        return
    predictor = ConditionalPredictor()
    initial_b = predictor.state(pc_b)
    for taken in history:
        predictor.update(pc_a, taken)
    assert predictor.state(pc_b) == initial_b


@given(outcomes)
@settings(max_examples=100)
def test_steady_stream_mispredicts_at_most_twice(history):
    """Against a constant outcome stream, a 2-bit predictor converges
    within two mispredictions and never diverges again."""
    predictor = ConditionalPredictor()
    mispredicts = 0
    for _ in range(30):
        if predictor.predict(0x100) is not True:
            mispredicts += 1
        predictor.update(0x100, True)
    assert mispredicts <= 2

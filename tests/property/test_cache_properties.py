"""Hypothesis properties of the cache model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import Cache

addresses = st.integers(min_value=0, max_value=1 << 40)


@given(st.lists(addresses, max_size=200))
@settings(max_examples=50)
def test_capacity_never_exceeded(addrs):
    cache = Cache(16 * 64, 4, 64)
    for addr in addrs:
        cache.access(addr)
    assert cache.resident_lines() <= 16


@given(addresses)
def test_access_is_idempotent_for_residency(addr):
    cache = Cache(4096, 4)
    cache.access(addr)
    assert cache.probe(addr)
    cache.access(addr)
    assert cache.probe(addr)


@given(st.lists(addresses, max_size=100), addresses)
@settings(max_examples=50)
def test_flush_line_always_evicts(addrs, victim):
    cache = Cache(4096, 8)
    for addr in addrs:
        cache.access(addr)
    cache.flush_line(victim)
    assert not cache.probe(victim)


@given(st.lists(addresses, min_size=1, max_size=100))
@settings(max_examples=50)
def test_flush_all_leaves_nothing(addrs):
    cache = Cache(4096, 8)
    for addr in addrs:
        cache.access(addr)
    cache.flush_all()
    assert cache.resident_lines() == 0
    assert all(not cache.probe(a) for a in addrs)


@given(st.lists(addresses, max_size=100))
@settings(max_examples=50)
def test_most_recent_access_always_resident(addrs):
    """The line you just touched can never have been evicted."""
    cache = Cache(16 * 64, 2, 64)
    for addr in addrs:
        cache.access(addr)
        assert cache.probe(addr)


@given(st.lists(addresses, max_size=60))
@settings(max_examples=50)
def test_probe_never_changes_resident_count(addrs):
    cache = Cache(4096, 4)
    for addr in addrs:
        cache.access(addr)
    before = cache.resident_lines()
    for addr in addrs:
        cache.probe(addr)
    assert cache.resident_lines() == before

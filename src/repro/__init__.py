"""spectresim: reproduction of "Performance Evolution of Mitigating
Transient Execution Attacks" (Behrens, Belay, Kaashoek; EuroSys '22).

The paper is a measurement study on eight physical x86 machines; this
library replaces the hardware with calibrated microarchitectural timing
models and rebuilds the full software stack around them:

* :mod:`repro.cpu` — the CPU simulator (eight paper CPUs, speculative
  execution, BTB/RSB/caches/TLB/store buffer/MDS buffers);
* :mod:`repro.kernel` — a model Linux kernel (entry/exit paths, scheduler,
  processes) that splices in mitigation work;
* :mod:`repro.mitigations` — every deployed mitigation plus working attack
  demonstrations it defeats;
* :mod:`repro.jsengine` — a model SpiderMonkey (JIT hardening, sandbox,
  the Octane 2 suite);
* :mod:`repro.hypervisor` — VM exits, the L1TF flush, an emulated disk;
* :mod:`repro.workloads` — LEBench, PARSEC, LFS substitutes;
* :mod:`repro.core` — the paper's methodology: adaptive measurement,
  successive-disable attribution, the section-6 speculation probe, and
  paper-shaped reporting.

Quick start::

    from repro import Machine, get_cpu, linux_default
    from repro.core import figure2, Settings

    results = figure2(cpus=[get_cpu("broadwell")], settings=Settings.fast())
    print(results[0].total_overhead_percent)
"""

from .cpu import (
    CATALOG,
    CPU_ORDER,
    CPUModel,
    Machine,
    Mode,
    all_cpus,
    get_cpu,
)
from .errors import (
    ConfigurationError,
    SegmentationFault,
    SpectreSimError,
    StatisticsError,
    UnknownCPUError,
    UnsupportedFeatureError,
    WorkloadError,
)
from .kernel import Kernel, Process
from .mitigations import (
    MitigationConfig,
    SSBDMode,
    V2Strategy,
    linux_default,
)

__version__ = "1.0.0"

__all__ = [
    "CATALOG",
    "CPU_ORDER",
    "CPUModel",
    "ConfigurationError",
    "Kernel",
    "Machine",
    "MitigationConfig",
    "Mode",
    "Process",
    "SSBDMode",
    "SegmentationFault",
    "SpectreSimError",
    "StatisticsError",
    "UnknownCPUError",
    "UnsupportedFeatureError",
    "V2Strategy",
    "WorkloadError",
    "__version__",
    "all_cpus",
    "get_cpu",
    "linux_default",
]

"""Model JavaScript engine: JIT hardening, sandbox boundary, Octane suite.

The browser-boundary substrate for the paper's Figure 3 experiment and the
sandbox-escape demonstrations.
"""

from .jit import JITCompiler, OpMix
from .octane import (
    OctaneRunner,
    OctaneWorkload,
    SUITE,
    WORKLOAD_NAMES,
    get_workload,
    run_suite,
    suite_score,
)
from .runtime import JSArray, JSObject, Realm, Shape
from .sandbox import (
    ClampedClock,
    attempt_sandbox_oob_read,
    attempt_type_confusion,
    can_distinguish_cache_hit,
    new_realm,
)
from .site_isolation import Browser, PROCESS_PER_SITE, SHARED_RENDERER
from .slh import SLHCompiler
from .wasm import (
    WasmCompiler,
    WasmModule,
    attempt_wasm_indirect_escape,
    attempt_wasm_sandbox_escape,
    instantiate,
)

__all__ = [
    "Browser",
    "ClampedClock",
    "JITCompiler",
    "JSArray",
    "JSObject",
    "OctaneRunner",
    "OctaneWorkload",
    "OpMix",
    "PROCESS_PER_SITE",
    "Realm",
    "SHARED_RENDERER",
    "SLHCompiler",
    "SUITE",
    "Shape",
    "WORKLOAD_NAMES",
    "WasmCompiler",
    "WasmModule",
    "attempt_sandbox_oob_read",
    "attempt_type_confusion",
    "attempt_wasm_indirect_escape",
    "attempt_wasm_sandbox_escape",
    "can_distinguish_cache_hit",
    "get_workload",
    "instantiate",
    "new_realm",
    "run_suite",
    "suite_score",
]

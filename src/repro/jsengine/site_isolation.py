"""Site Isolation: process-per-site as a Spectre defence (paper section 2).

Chrome's (and, for WASM, Firefox's) answer to in-process Spectre: if each
site lives in its own OS process, a renderer compromise-by-speculation
can only read data that was *already* that site's.  The defence is
structural — no speculative read can reach another address space — but it
is not free: more processes mean more context switches, and under the
conditional IBPB/SSBD policies the sandboxed renderer processes are
exactly the ones that opted in.

:class:`Browser` allocates renderer processes per site under either
policy and exposes the two quantities of interest: whether a
cross-site speculative read is possible at all, and what the process
model costs on a tab-switching workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu import isa
from ..cpu.machine import Machine
from ..kernel import Kernel, Process
from ..mitigations.base import MitigationConfig
from .runtime import Realm
from .sandbox import attempt_sandbox_oob_read

PROCESS_PER_SITE = "process_per_site"
SHARED_RENDERER = "shared_renderer"


@dataclass
class Site:
    """One origin: its realm, and the renderer process hosting it."""

    origin: str
    realm: Realm
    process: Process


class Browser:
    """A browser's renderer-process allocation under one isolation policy."""

    def __init__(self, kernel: Kernel, policy: str = PROCESS_PER_SITE) -> None:
        if policy not in (PROCESS_PER_SITE, SHARED_RENDERER):
            raise ValueError(f"unknown isolation policy {policy!r}")
        self.kernel = kernel
        self.policy = policy
        self.sites: Dict[str, Site] = {}
        self._realm_counter = 0
        self._shared_process: Optional[Process] = None

    def _new_realm(self) -> Realm:
        self._realm_counter += 1
        return Realm(self._realm_counter)

    def open_site(self, origin: str) -> Site:
        """Navigate to a site, allocating per the isolation policy."""
        if origin in self.sites:
            return self.sites[origin]
        if self.policy == PROCESS_PER_SITE:
            process = Process(f"renderer-{origin}", uses_fpu=True,
                              uses_seccomp=True)
        else:
            if self._shared_process is None:
                self._shared_process = Process("renderer-shared",
                                               uses_fpu=True,
                                               uses_seccomp=True)
            process = self._shared_process
        site = Site(origin=origin, realm=self._new_realm(), process=process)
        self.sites[origin] = site
        return site

    # -- the security property ------------------------------------------- #

    def cross_site_speculative_read_possible(
        self, attacker_origin: str, victim_origin: str,
        index_masking: bool = False,
    ) -> bool:
        """Can the attacker site speculatively read the victim site's data?

        With a shared renderer both realms share an address space: the V1
        OOB read works unless the JIT's index masking stops it.  With
        process-per-site the victim's heap simply isn't mapped — the read
        cannot reach it no matter what the predictor does.
        """
        attacker = self.sites[attacker_origin]
        victim = self.sites[victim_origin]
        if attacker.process is not victim.process:
            return False  # different address spaces: structurally immune
        return attempt_sandbox_oob_read(
            self.kernel.machine, attacker.realm, victim.realm,
            index_masking=index_masking)

    # -- the cost ----------------------------------------------------------- #

    def tab_switch_cost(self, origin_sequence: List[str],
                        render_cycles: int = 15_000) -> int:
        """Cycles to render the given sequence of tab activations.

        Process-per-site pays a context switch (with its IBPB — renderers
        use seccomp, so the conditional policy fires) on every cross-site
        activation; the shared renderer never switches.
        """
        machine = self.kernel.machine
        total = 0
        for origin in origin_sequence:
            site = self.open_site(origin)
            if self.kernel.current_process is not site.process:
                total += self.kernel.context_switch(site.process)
            total += machine.execute(isa.work(render_cycles))
        return total

"""The JS sandbox boundary: realms, timer clamping, and escape demos.

The browser boundary the paper measures is the isolation between
JavaScript execution contexts.  This module makes the boundary and the
attacks against it mechanical:

* :func:`attempt_sandbox_oob_read` — Spectre V1 across realms: a
  speculative out-of-bounds array read reaching another realm's heap,
  defeated by index masking;
* :func:`attempt_type_confusion` — speculative shape confusion turning a
  float field into a pointer read, defeated by object guards;
* :class:`ClampedClock` — the reduced-precision timer (Firefox clamps
  ``performance.now``); :func:`can_distinguish_cache_hit` shows the cache
  covert channel dropping below the clamped resolution.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..cpu import isa
from ..cpu.machine import Machine
from .runtime import JSArray, JSObject, Realm, Shape

_realm_counter = itertools.count(1)


def new_realm(name: str = "") -> Realm:
    return Realm(next(_realm_counter), name)


# --------------------------------------------------------------------------- #
# Spectre V1 across the sandbox boundary
# --------------------------------------------------------------------------- #

def attempt_sandbox_oob_read(
    machine: Machine,
    attacker: Realm,
    victim: Realm,
    index_masking: bool,
) -> bool:
    """Speculative OOB array read from ``attacker`` into ``victim``'s heap.

    Returns True when the attacker's probe observed a cache line inside
    the victim realm (i.e. the sandbox leaked).  Index masking clamps the
    speculative index to 0, keeping the access inside the attacker realm.
    """
    array = attacker.new_array(length=16)
    # Choose an OOB index that lands inside the victim realm's heap.
    target = victim.heap_base + 0x2000
    oob_index = (target - array.address) // 8

    effective = array.masked_index(oob_index) if index_masking else oob_index
    address = array.element_address(effective)
    if index_masking:
        # The JIT emitted the cmov; the dependent load uses the clamped
        # index even speculatively (that is the point of using a data
        # dependency instead of a branch).
        machine.speculate([isa.cmov(), isa.load(address)])
    else:
        machine.speculate([isa.load(address)])
    return victim.owns(address) and machine.caches.probe_l1(address)


# --------------------------------------------------------------------------- #
# Speculative type confusion
# --------------------------------------------------------------------------- #

def attempt_type_confusion(
    machine: Machine,
    realm: Realm,
    object_guards: bool,
) -> bool:
    """Speculatively read a field through the *wrong* shape.

    Models the Kirzner & Morrison attack pattern the paper cites: a type
    check mispredicts and a float-typed slot is dereferenced as a pointer.
    The object guard's cmov nulls the object pointer on the speculative
    path, so the dereference never issues.  Returns True on leak.
    """
    secret_pointer = realm.heap_base + 0x4_0000
    confused = realm.new_object(Shape.of("f64_payload"), f64_payload=secret_pointer)

    machine.caches.flush_line(secret_pointer)
    if object_guards:
        # Guard fails -> object pointer zeroed -> no dependent dereference.
        machine.speculate([isa.cmov()])
    else:
        machine.speculate([
            isa.load(confused.slot_address("f64_payload")),
            isa.load(secret_pointer),  # dereference of the confused value
        ])
    return machine.caches.probe_l1(secret_pointer)


# --------------------------------------------------------------------------- #
# Timer precision clamping
# --------------------------------------------------------------------------- #

class ClampedClock:
    """``performance.now`` with mitigated resolution.

    Firefox reduced timer precision as part of its Spectre response
    (paper section 2).  ``resolution_cycles`` is the quantum; reads round
    down to it.
    """

    def __init__(self, machine: Machine, resolution_cycles: int) -> None:
        if resolution_cycles < 1:
            raise ValueError("resolution must be >= 1 cycle")
        self.machine = machine
        self.resolution_cycles = resolution_cycles

    def now(self) -> int:
        tsc = self.machine.read_tsc()
        return tsc - (tsc % self.resolution_cycles)


def can_distinguish_cache_hit(machine: Machine, clock: ClampedClock,
                              address: int = 0x6000_0000) -> bool:
    """Can this clock tell a cache hit from a miss at ``address``?

    The attacker's measurement: time a miss, then time a hit, compare.
    With a clamped clock both measurements round to the same quantum and
    the covert channel's receive side goes blind.
    """
    machine.caches.flush_line(address)
    start = clock.now()
    machine.execute(isa.load(address))  # miss
    miss_time = clock.now() - start

    start = clock.now()
    machine.execute(isa.load(address))  # hit
    hit_time = clock.now() - start
    return miss_time > hit_time

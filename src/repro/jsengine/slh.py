"""Speculative Load Hardening: the blunt compiler alternative.

Paper section 2: "Compiler techniques like Speculative Load Hardening
[Carruth] ensure binaries are completely immune to Spectre, albeit at
considerable overhead."  SLH threads a misprediction predicate through
every basic block and masks *every* load's address (or value) with it,
so no load can transmit down a wrong path — any load, not just the
bounds-checked array accesses the targeted JIT mitigations cover.

We model SLH as an alternative compilation mode: each load-bearing
operation pays the mask's data dependency (a cmov-class stall), plus one
ALU op per conditional branch to maintain the predicate.  Comparing this
against the targeted index-masking/object-guard strategy quantifies why
production JITs chose the targeted route (the ablation bench does this
per CPU).
"""

from __future__ import annotations

from typing import List

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from .jit import (
    ARRAY_ACCESS_CYCLES,
    CALL_CYCLES,
    GUARD_EXTRA_CYCLES,
    MASK_STALL_CYCLES,
    OBJECT_ACCESS_CYCLES,
    OpMix,
    POINTER_DEREF_CYCLES,
)

#: Conditional branches per iteration whose predicate SLH must maintain,
#: expressed as a fraction of total ops (loop and guard branches).
PREDICATE_BRANCH_RATIO = 0.15


class SLHCompiler:
    """Compiles an :class:`OpMix` with every load hardened."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def mask_extra_per_load(self) -> int:
        """Every load pays the predicate mask's dependency stall."""
        return self.machine.costs.cmov + MASK_STALL_CYCLES

    def compile_iteration(self, mix: OpMix, heap_base: int,
                          cursor: int = 0) -> List[Instruction]:
        """One iteration under SLH: all load classes masked, plus the
        predicate bookkeeping on every branch."""
        per_load = self.mask_extra_per_load()
        loads = (mix.array_accesses + mix.object_accesses
                 + mix.pointer_derefs + mix.store_load_pairs)
        total_ops = loads + mix.calls
        predicate_branches = int(total_ops * PREDICATE_BRANCH_RATIO)

        cycles = mix.arith_cycles
        cycles += mix.array_accesses * ARRAY_ACCESS_CYCLES
        cycles += mix.object_accesses * OBJECT_ACCESS_CYCLES
        cycles += mix.pointer_derefs * POINTER_DEREF_CYCLES
        cycles += mix.calls * CALL_CYCLES
        cycles += loads * per_load                      # the SLH tax
        cycles += predicate_branches * self.machine.costs.alu

        block: List[Instruction] = [isa.work(cycles)]
        for i in range(mix.store_load_pairs):
            address = heap_base + 64 * ((cursor + i) % 512)
            block.append(isa.store(address))
            block.append(isa.load(address))
        return block


def slh_blocks_all_v1_variants(machine: Machine, secret: int = 0x42) -> bool:
    """SLH's security claim, mechanically: with the address masked by the
    misprediction predicate, the speculative dependent load never issues
    (equivalent to the masked gadget, but applied to *every* load)."""
    from ..mitigations.spectre_v1 import attempt_bounds_bypass
    return attempt_bounds_bypass(machine, secret, masked=True) is None

"""The model JIT: lowers JS workload op-mixes to instruction streams,
inserting Spectre hardening exactly where SpiderMonkey does.

Paper section 4.3: "All JavaScript mitigations are implemented by the JIT
engine inserting extra instructions into the generated instruction
stream."  We reproduce that structure:

* **index masking** — a ``cmov`` before every array access that clamps
  out-of-range indices to 0.  Architecturally free on the committed path,
  but it serializes the access on the array length, which we price as the
  cmov plus a small dependent-load stall (the paper measures ~4% across
  Octane);
* **object guards** — the same idea for shape checks (~6%);
* **other hardening** (``js_other``) — pointer poisoning on every boxed
  pointer dereference plus call-site hardening.

Bulk arithmetic is carried as compressed WORK instructions; the
store-to-load forwarding traffic (what SSBD penalizes — Firefox paid it
through the seccomp policy, Figure 3) is emitted as real store/load pairs
against the machine's store buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from ..mitigations.base import MitigationConfig

#: Dependent-load stall charged per masked access: the load cannot issue
#: until the clamped index (hence the array length) resolves.
MASK_STALL_CYCLES = 2

#: Object guards also re-check the shape pointer: one extra cycle.
GUARD_EXTRA_CYCLES = 1


@dataclass(frozen=True)
class OpMix:
    """Per-iteration operation counts of one JS workload."""

    arith_cycles: int          # bulk compute (cycles)
    array_accesses: int        # bounds-checked element reads/writes
    object_accesses: int       # shape-guarded field accesses
    pointer_derefs: int        # boxed-pointer chases (poisoning surface)
    store_load_pairs: int      # write-then-read traffic (SSBD surface)
    calls: int                 # JS-to-JS calls


#: Average cycles per un-hardened access (cache-warm JIT code).
ARRAY_ACCESS_CYCLES = 4
OBJECT_ACCESS_CYCLES = 5
POINTER_DEREF_CYCLES = 2
CALL_CYCLES = 6


class JITCompiler:
    """Compiles an :class:`OpMix` under a mitigation config for a machine."""

    def __init__(self, machine: Machine, config: MitigationConfig) -> None:
        self.machine = machine
        self.config = config

    def mask_extra_per_access(self) -> int:
        """Extra cycles index masking adds to one array access."""
        return self.machine.costs.cmov + MASK_STALL_CYCLES

    def guard_extra_per_access(self) -> int:
        """Extra cycles an object guard adds to one field access."""
        return self.machine.costs.cmov + MASK_STALL_CYCLES + GUARD_EXTRA_CYCLES

    def poison_extra_per_deref(self) -> int:
        """Pointer poisoning: one xor to poison, one to unpoison — but the
        unpoison folds into addressing on x86, so one ALU op net."""
        return self.machine.costs.alu

    def compile_iteration(self, mix: OpMix, heap_base: int,
                          cursor: int = 0) -> List[Instruction]:
        """One workload iteration as an instruction stream.

        The bulk op population is carried as WORK (sum of per-access
        costs), with hardening priced per access from this machine's cost
        table; the forwarding-sensitive traffic is real store/load pairs.
        """
        config = self.config
        cycles = mix.arith_cycles
        cycles += mix.array_accesses * ARRAY_ACCESS_CYCLES
        cycles += mix.object_accesses * OBJECT_ACCESS_CYCLES
        cycles += mix.pointer_derefs * POINTER_DEREF_CYCLES
        cycles += mix.calls * CALL_CYCLES

        # Hardening cost is emitted as separately tagged WORK so the cycle
        # ledger can attribute it (jsengine/spectre_v1/index_mask etc.);
        # the total charged per iteration is unchanged.
        block: List[Instruction] = [isa.work(cycles)]
        if config.js_index_masking and mix.array_accesses:
            block.append(isa.work(
                mix.array_accesses * self.mask_extra_per_access(),
                mitigation="spectre_v1", primitive="index_mask"))
        if config.js_object_guards and mix.object_accesses:
            block.append(isa.work(
                mix.object_accesses * self.guard_extra_per_access(),
                mitigation="spectre_v1", primitive="object_guard"))
        if config.js_other:
            extra = mix.pointer_derefs * self.poison_extra_per_deref()
            extra += mix.calls * self.machine.costs.alu  # call hardening
            if extra:
                block.append(isa.work(extra, mitigation="spectre_v1",
                                      primitive="pointer_poison"))
        for i in range(mix.store_load_pairs):
            address = heap_base + 64 * ((cursor + i) % 512)
            block.append(isa.store(address))
            block.append(isa.load(address))
        return block

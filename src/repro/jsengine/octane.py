"""The Octane 2 benchmark suite, as JS-engine op mixes (paper section 4.3).

Each of the fifteen Octane 2 parts is characterized by its per-iteration
operation mix — array-access heavy (navier-stokes, zlib), object/shape
heavy (deltablue, raytrace), pointer-chasing (splay, earley-boyer),
arithmetic-dominated (crypto, regexp) — so the per-mitigation overheads
land differently per part, exactly like the real suite.

Scores follow Octane semantics: higher is better, inversely proportional
to runtime; the suite score is the geometric mean.  The runner executes
inside a model Firefox process, which **uses seccomp** — the detail that
made it pay SSBD under pre-5.16 kernels (Figure 3's green stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..cpu import isa
from ..cpu.machine import Machine
from ..kernel import HandlerProfile, Kernel, Process
from ..mitigations.base import MitigationConfig
from ..obs.ledger import ledger_scope
from .jit import JITCompiler, OpMix
from .runtime import HEAP_BASE

#: Score normalization constant (arbitrary, matched across configs).
SCORE_SCALE = 1.0e9

#: GC / housekeeping syscalls: every Nth iteration does a couple of small
#: kernel crossings — the "other OS" component of Figure 3.
SYSCALL_PERIOD = 8
GC_PROFILE = HandlerProfile("js_gc_tick", work_cycles=900, loads=12,
                            stores=8, indirect_branches=4)


@dataclass(frozen=True)
class OctaneWorkload:
    name: str
    mix: OpMix


def _wl(name: str, arith: int, arrays: int, objects: int, pointers: int,
        pairs: int, calls: int) -> OctaneWorkload:
    return OctaneWorkload(name, OpMix(
        arith_cycles=arith,
        array_accesses=arrays,
        object_accesses=objects,
        pointer_derefs=pointers,
        store_load_pairs=pairs,
        calls=calls,
    ))


SUITE: Tuple[OctaneWorkload, ...] = (
    _wl("richards", 12000, 100, 300, 700, 55, 180),
    _wl("deltablue", 11000, 80, 350, 800, 60, 200),
    _wl("crypto", 16000, 350, 80, 200, 50, 90),
    _wl("raytrace", 12000, 150, 320, 500, 55, 160),
    _wl("earley-boyer", 10000, 120, 280, 900, 65, 220),
    _wl("regexp", 14000, 250, 120, 300, 80, 110),
    _wl("splay", 9000, 100, 240, 1000, 70, 150),
    _wl("navier-stokes", 15000, 450, 60, 150, 55, 70),
    _wl("pdfjs", 12000, 250, 220, 500, 65, 170),
    _wl("mandreel", 13000, 300, 150, 350, 70, 120),
    _wl("gameboy", 12000, 350, 180, 300, 75, 130),
    _wl("code-load", 10000, 150, 260, 600, 60, 300),
    _wl("box2d", 12000, 200, 300, 450, 60, 180),
    _wl("zlib", 15000, 380, 70, 200, 60, 80),
    _wl("typescript", 10000, 150, 320, 800, 65, 250),
)

WORKLOAD_NAMES: Tuple[str, ...] = tuple(w.name for w in SUITE)


def get_workload(name: str) -> OctaneWorkload:
    for workload in SUITE:
        if workload.name == name:
            return workload
    raise KeyError(f"unknown Octane workload {name!r}")


class OctaneRunner:
    """Runs Octane workloads in a model Firefox process on one kernel."""

    def __init__(self, machine: Machine, config: MitigationConfig) -> None:
        self.machine = machine
        self.config = config
        self.kernel = Kernel(machine, config)
        self.jit = JITCompiler(machine, config)
        # Firefox sandboxes its content processes with seccomp: under the
        # pre-5.16 SSBD policy this is what turns the mitigation on.
        self.firefox = Process("firefox-content", uses_fpu=True,
                               uses_seccomp=True)
        self.kernel.context_switch(self.firefox)
        self._iteration = 0

    def run_iteration(self, workload: OctaneWorkload) -> int:
        """One benchmark iteration; returns cycles."""
        obs = self.machine.obs
        if not obs.enabled:
            return self._iteration_body(workload)
        with obs.span("js.iteration", workload=workload.name):
            return self._iteration_body(workload)

    def _iteration_body(self, workload: OctaneWorkload) -> int:
        block = self.jit.compile_iteration(
            workload.mix, heap_base=HEAP_BASE, cursor=self._iteration
        )
        with ledger_scope(self.machine.ledger, "jsengine"):
            cycles = self.machine.run(block)
        self._iteration += 1
        if self._iteration % SYSCALL_PERIOD == 0:
            cycles += self.kernel.syscall(GC_PROFILE)
            cycles += self.kernel.syscall(GC_PROFILE)
        return cycles

    def measure(self, workload: OctaneWorkload, iterations: int = 24,
                warmup: int = 6) -> float:
        """Average cycles per iteration, steady state."""
        with self.machine.obs.span(f"js.octane.{workload.name}",
                                   iterations=iterations, warmup=warmup):
            for _ in range(warmup):
                self.run_iteration(workload)
            total = 0
            for _ in range(iterations):
                total += self.run_iteration(workload)
        return total / iterations

    def score(self, workload: OctaneWorkload, iterations: int = 24,
              warmup: int = 6) -> float:
        """Octane-style score: inversely proportional to runtime."""
        return SCORE_SCALE / self.measure(workload, iterations, warmup)


def run_suite(
    machine: Machine,
    config: MitigationConfig,
    iterations: int = 24,
    warmup: int = 6,
    workloads: Optional[Tuple[OctaneWorkload, ...]] = None,
) -> Dict[str, float]:
    """Scores per workload under ``config``."""
    with machine.obs.span("octane.suite", cpu=machine.cpu.key):
        runner = OctaneRunner(machine, config)
        return {
            w.name: runner.score(w, iterations, warmup)
            for w in (workloads or SUITE)
        }


def suite_score(scores: Dict[str, float]) -> float:
    """Octane's suite score: the geometric mean of part scores."""
    values = np.array(list(scores.values()), dtype=float)
    return float(np.exp(np.mean(np.log(values))))

"""WebAssembly sandboxing and Swivel-style hardening (paper section 2).

The paper's related work situates two WASM defence strategies:

* "Swivel is a compiler framework which hardens WASM bytecode against
  attack" — deterministic sandboxing: every linear-memory access is
  masked into the sandbox region with a data dependency (so even
  speculative accesses stay inside), and indirect calls are pinned to
  known-safe targets so a poisoned BTB cannot steer execution out of the
  module;
* "Firefox's and Chrome's WASM engines rely on Site Isolation" — modelled
  in :mod:`repro.jsengine.site_isolation`.

This module builds the minimal mechanistic version: a :class:`WasmModule`
with a contiguous linear memory, a compiler that emits either *raw*
(bounds checked architecturally but speculatively escapable) or
*hardened* (Swivel-style masked) access code, and the sandbox-escape
demonstrations each strategy does or doesn't stop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine

#: Linear memories are placed 8 GiB apart; a sandbox is at most 4 GiB,
#: so a masked access can never reach a neighbour.
WASM_REGION_BASE = 0x6000_0000_0000
WASM_REGION_STRIDE = 8 << 30

_module_counter = itertools.count(0)


@dataclass
class WasmModule:
    """One instantiated module: linear memory plus an indirect-call table."""

    memory_bytes: int
    module_id: int

    @property
    def memory_base(self) -> int:
        return WASM_REGION_BASE + self.module_id * WASM_REGION_STRIDE

    def address_of(self, offset: int) -> int:
        """Unchecked effective address (what raw JIT output computes)."""
        return self.memory_base + offset

    def masked_offset(self, offset: int) -> int:
        """Swivel-style masking: offsets are wrapped into the memory with
        a data dependency, so the property holds even speculatively."""
        return offset % self.memory_bytes

    def contains(self, address: int) -> bool:
        return self.memory_base <= address < self.memory_base + self.memory_bytes


def instantiate(memory_bytes: int = 1 << 20) -> WasmModule:
    return WasmModule(memory_bytes=memory_bytes,
                      module_id=next(_module_counter))


class WasmCompiler:
    """Lowers linear-memory accesses with or without Swivel hardening."""

    #: Extra cycles per hardened access: the mask's dependent ALU op.
    MASK_COST = 1

    def __init__(self, machine: Machine, hardened: bool) -> None:
        self.machine = machine
        self.hardened = hardened

    def load(self, module: WasmModule, offset: int) -> List[Instruction]:
        """Code for ``memory[offset]``.

        Raw mode emits the bounds *check* (a conditional branch — exactly
        the Spectre V1 shape) followed by the unclamped access; hardened
        mode emits the mask, whose result is in bounds by construction.
        """
        if self.hardened:
            effective = module.masked_offset(offset)
            return [
                isa.Instruction(isa.Op.ALU),      # the mask op
                isa.load(module.address_of(effective)),
            ]
        return [
            isa.branch_cond(pc=0x49_0000),        # the bypassable check
            isa.load(module.address_of(offset)),
        ]

    def access_cost(self, module: WasmModule, offset: int) -> int:
        """Committed cycles for one in-bounds access under this mode."""
        return self.machine.run(self.load(module, offset % module.memory_bytes))


def attempt_wasm_sandbox_escape(
    machine: Machine,
    attacker: WasmModule,
    victim: WasmModule,
    hardened: bool,
) -> bool:
    """Spectre V1 out of a WASM sandbox.

    The attacker module speculatively reads past its linear memory into
    the *victim* module's region (the bounds check mispredicts).  Swivel's
    masking keeps even the speculative access inside the attacker's own
    memory.  Returns True when a victim-region line was touched.
    """
    secret_offset = 0x4000
    target = victim.memory_base + secret_offset
    oob_offset = target - attacker.memory_base

    compiler = WasmCompiler(machine, hardened=hardened)
    machine.caches.flush_line(target)
    # The mispredicted-bounds-check path runs the access transiently.
    machine.speculate(compiler.load(attacker, oob_offset))
    return victim.contains(target) and machine.caches.probe_l1(target)


def attempt_wasm_indirect_escape(
    machine: Machine,
    module: WasmModule,
    hardened: bool,
) -> bool:
    """Spectre V2 out of a WASM sandbox: poison the BTB so the module's
    ``call_indirect`` transiently jumps to host code outside the table.
    Swivel pins indirect calls (modelled as retpoline-equivalent: no BTB
    consumption), so the poisoned entry is never used.  Returns True when
    host-gadget execution was observed."""
    host_gadget = 0x4A_2000
    leak_line = 0x7700_0000_0000
    table_entry = 0x4A_3000
    call_site = 0x4A_1000

    machine.register_code(host_gadget, [isa.load(leak_line)])
    machine.register_code(table_entry, [isa.nop()])
    machine.caches.flush_line(leak_line)

    # Attacker phase: train the call site toward the host gadget.
    machine.execute(isa.call_indirect(host_gadget, pc=call_site))
    # Victim phase: the module's legitimate table call from the same site.
    machine.execute(isa.call_indirect(table_entry, pc=call_site,
                                      retpoline=hardened))
    return machine.caches.probe_l1(leak_line)

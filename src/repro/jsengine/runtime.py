"""Minimal JavaScript runtime object model.

Just enough of a JS engine's data model to make the Spectre surfaces the
paper discusses (section 5.4) mechanically real:

* :class:`JSArray` — length-checked element access; *speculative* access
  can run with an out-of-bounds index unless index masking clamps it;
* :class:`JSObject` — shape-guarded field access; *speculative* access can
  run type-confused (reading a field of the wrong shape) unless the
  object guard zeroes the object pointer;
* the heap layout places every sandbox's objects in a disjoint region, so
  an out-of-bounds read reaching another region is an observable sandbox
  escape in the demos.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import spans as obs_spans

#: Each sandbox realm gets a 256 MiB heap slice.
REALM_HEAP_BYTES = 256 << 20
HEAP_BASE = 0x3000_0000_0000

_shape_counter = itertools.count(1)


@dataclass
class Shape:
    """A hidden class: field name -> slot offset (bytes)."""

    fields: Dict[str, int]
    shape_id: int = field(default_factory=lambda: next(_shape_counter))

    @classmethod
    def of(cls, *names: str) -> "Shape":
        return cls({name: 8 * i for i, name in enumerate(names)})


@dataclass
class JSObject:
    """A shaped object at a heap address."""

    shape: Shape
    address: int
    values: Dict[str, int] = field(default_factory=dict)

    def slot_address(self, name: str) -> int:
        return self.address + self.shape.fields[name]


@dataclass
class JSArray:
    """A dense array with an inline length."""

    address: int
    length: int

    def element_address(self, index: int) -> int:
        """Address of ``elements[index]`` — no bounds check (caller's job,
        exactly like JIT-generated code before hardening)."""
        return self.address + 8 * index

    def in_bounds(self, index: int) -> bool:
        return 0 <= index < self.length

    def masked_index(self, index: int) -> int:
        """SpiderMonkey's index masking: out-of-range indices become 0."""
        return index if self.in_bounds(index) else 0


class Realm:
    """One sandbox execution context with a private heap slice."""

    def __init__(self, realm_id: int, name: str = "") -> None:
        self.realm_id = realm_id
        self.name = name or f"realm-{realm_id}"
        self.heap_base = HEAP_BASE + realm_id * REALM_HEAP_BYTES
        self._bump = 0x1000
        # Sandbox lifecycle is visible on the trace timeline: realm
        # creation marks where a new isolation boundary came into being.
        obs_spans.current_tracer().instant(
            "js.realm.create", realm=self.name, heap_base=self.heap_base)

    def _allocate(self, size: int) -> int:
        address = self.heap_base + self._bump
        self._bump += (size + 63) & ~63  # line-align allocations
        return address

    def new_array(self, length: int) -> JSArray:
        return JSArray(address=self._allocate(8 * length + 16), length=length)

    def new_object(self, shape: Shape, **values: int) -> JSObject:
        obj = JSObject(shape=shape, address=self._allocate(8 * len(shape.fields)))
        obj.values.update(values)
        return obj

    def owns(self, address: int) -> bool:
        return self.heap_base <= address < self.heap_base + REALM_HEAP_BYTES

"""Exception hierarchy for the spectresim reproduction library.

All library-raised exceptions derive from :class:`SpectreSimError` so callers
can catch everything from this package with a single except clause.
"""

from __future__ import annotations


class SpectreSimError(Exception):
    """Base class for all errors raised by this library."""


class UnknownCPUError(SpectreSimError, KeyError):
    """Raised when a CPU key is not present in the catalog."""

    def __init__(self, key: str, known: tuple) -> None:
        super().__init__(f"unknown CPU {key!r}; known CPUs: {', '.join(known)}")
        self.key = key
        self.known = known


class UnsupportedFeatureError(SpectreSimError):
    """Raised when a CPU is asked to use a feature it does not implement.

    For example enabling IBRS on the original Zen, which has no IBRS
    support (Table 10 in the paper marks it N/A).
    """


class ConfigurationError(SpectreSimError):
    """Raised for invalid or inconsistent mitigation configurations."""


class SegmentationFault(SpectreSimError):
    """Raised when simulated code architecturally accesses memory it must not.

    Transient (speculative) accesses never raise; they are squashed.  Only
    committed accesses to unmapped or privileged memory raise this error,
    mirroring a hardware fault delivered to the OS.
    """

    def __init__(self, address: int, mode: str) -> None:
        super().__init__(f"fault at address {address:#x} in mode {mode}")
        self.address = address
        self.mode = mode


class WorkloadError(SpectreSimError):
    """Raised when a workload definition is malformed or cannot run."""


class ExecutorError(SpectreSimError):
    """Raised when a study execution cell fails, naming the cell.

    Wraps the underlying exception so a crash in one (cpu, config,
    workload) cell of a parallel sweep is attributable without digging
    through worker-process tracebacks; the original exception rides along
    as ``__cause__``.
    """


class StatisticsError(SpectreSimError):
    """Raised when a measurement cannot produce a valid statistic.

    For example requesting a confidence interval from zero samples.
    """


class LedgerInvariantError(SpectreSimError):
    """Raised when cycle-attribution accounting does not balance.

    The cycle ledger must sum exactly to the TSC delta of the machines
    it is attached to; any drift means a charge site bypassed
    ``PerfCounters.add_cycles`` and its cycles are unattributed.
    """


class UnknownCounterError(SpectreSimError, KeyError):
    """Raised when a performance counter name is not in the canonical set.

    Counter names drift silently otherwise: a typo in a ``bump`` call
    creates a fresh counter instead of incrementing the intended one.
    """

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown counter {name!r}; canonical names are defined in "
            f"repro.cpu.counters")
        self.name = name


class BaselineError(SpectreSimError):
    """Raised for malformed, missing, or incompatible bench baselines."""


class HistoryError(SpectreSimError):
    """Raised for run-history store failures.

    Covers missing runs, incompatible on-disk schemas, and recording a
    payload whose code fingerprint does not match the running code (which
    would silently mix rows from different code in one trend line; pass
    ``--allow-dirty`` to record it flagged instead).
    """

"""Microarchitectural Data Sampling and its two mitigations.

MDS attacks (RIDL/ZombieLoad/Fallout, paper section 3.3) sample stale data
from fill buffers, store buffers and load ports.  They cannot target an
address — but they cross every privilege boundary, so the mitigation must
run on every crossing:

* **verw buffer clearing** — a microcode patch extends ``verw`` to
  overwrite the leaky buffers; ~500 cycles on vulnerable parts (Table 4),
  executed on every kernel-to-user transition;
* **disabling SMT** — prevents a sibling hyperthread from sampling
  concurrently; too expensive to be default (Table 1 marks it ``!``).
"""

from __future__ import annotations

import functools

from typing import Dict, List, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from ..cpu.modes import Mode


@functools.lru_cache(maxsize=None)
def verw_sequence() -> Tuple[Instruction, ...]:
    """The kernel-exit buffer clear (a single extended ``verw``).

    Cached: a stable tuple identity lets the block engine compile it.
    """
    return (isa.verw(mitigation="mds", primitive="verw"),)


def smt_effective_threads(cores: int, smt_enabled: bool, smt_yield: float = 1.25) -> float:
    """Throughput capacity in core-equivalents.

    With SMT on, each core yields ``smt_yield`` (two hyperthreads sharing
    one core's resources); with SMT off exactly 1.0.  Used by the
    disable-SMT ablation bench to price the mitigation the paper's
    Table 1 marks as needed-but-not-default.
    """
    return cores * (smt_yield if smt_enabled else 1.0)


def attempt_mds_sample(machine: Machine, attacker_mode: Mode = Mode.USER) -> Dict[str, int]:
    """Sample the leaky buffers from ``attacker_mode``.

    Returns a mapping of buffer name to leaked value — empty on immune
    parts, after a clearing ``verw``, or when no foreign-domain data is
    resident.  The victim activity must have happened beforehand (e.g. a
    kernel syscall handler touching memory).
    """
    return machine.mds_buffers.sample(attacker_mode)


def attempt_cross_thread_mds(core, secret: int = 0xD00D) -> Dict[str, int]:
    """MDS across hyperthreads: the case only SMT-off fixes (paper 3.3).

    The victim runs in kernel mode on thread 0, depositing into the
    *shared* fill/store/load-port buffers; the attacker samples from user
    mode on thread 1 **while the victim is still inside the kernel** — so
    no exit-path ``verw`` has had a chance to run.  Returns the leak (or
    nothing on immune parts).

    ``core`` is a :class:`repro.cpu.smt.SMTCore`.
    """
    victim, attacker = core.thread0, core.thread1
    saved = victim.mode
    victim.mode = Mode.KERNEL
    victim.mds_buffers.deposit_load(secret, Mode.KERNEL)
    # Concurrent sampling from the sibling: the victim hasn't returned to
    # user space, so the boundary-crossing verw never intervened.
    attacker.mode = Mode.USER
    leaked = attacker.mds_buffers.sample(Mode.USER)
    victim.mode = saved
    return leaked


def kernel_touched_secret(machine: Machine, secret: int) -> None:
    """Helper for demos/tests: simulate kernel code handling secret data,
    leaving residue in the microarchitectural buffers."""
    saved = machine.mode
    machine.mode = Mode.KERNEL
    machine.execute(isa.load(0xFFFF_8880_0000_2000, kernel=True))
    machine.mds_buffers.deposit_load(secret, Mode.KERNEL)
    machine.mds_buffers.deposit_store(secret, Mode.KERNEL)
    machine.mode = saved

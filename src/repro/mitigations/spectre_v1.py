"""Spectre V1 (bounds check bypass) and its software mitigations.

The gadget (paper Figure 1): a bounds-checked array read feeds a second,
attacker-observable array read.  Mistrain the conditional branch and the
body runs transiently with an out-of-bounds index.

Kernel-side mitigations modelled here:

* ``lfence`` after bounds checks and after ``swapgs`` — serializes, so the
  transient window never reaches the gadget (Table 8 gives the lfence cost).
* index masking (``array_index_nospec``) — a data dependency (cmov/and)
  that forces out-of-range indices to zero without serializing.

The JavaScript-engine versions of these (SpiderMonkey's index masking and
object guards) live in :mod:`repro.jsengine.jit`; they are the same idea
applied by a JIT to every generated array/object access.
"""

from __future__ import annotations

import functools

from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine

#: Demonstration address layout.
ARRAY_BASE = 0x1000_0000
ARRAY_LENGTH = 16          # in-bounds indices are 0..15
SECRET_OFFSET = 0x4242     # the out-of-bounds index the attacker wants
PROBE_BASE = 0x7E00_0000_0000
PROBE_STRIDE = 4096


@functools.lru_cache(maxsize=None)
def lfence_after_swapgs_sequence() -> Tuple[Instruction, ...]:
    """The kernel-entry V1 hardening: swapgs is followed by an lfence so
    speculation cannot run kernel code with a user GS base.  Cached for
    stable block-engine identity."""
    return (isa.lfence(mitigation="spectre_v1", primitive="lfence_swapgs"),)


def build_gadget(
    index: int,
    secret_byte: int,
    lfence_hardened: bool = False,
    masked: bool = False,
) -> List[Instruction]:
    """Construct the Figure-1 gadget for a given (possibly OOB) ``index``.

    ``masked`` applies index masking: the simulator has no register file,
    so the mask's architectural effect — out-of-range indices become 0 —
    is applied when building the dependent access, plus the cmov the
    hardware would execute.
    """
    block: List[Instruction] = []
    if lfence_hardened:
        block.append(isa.lfence())  # placed right after the bounds check
    effective = index
    if masked:
        block.append(isa.cmov())
        if not 0 <= index < ARRAY_LENGTH:
            effective = 0
    # First load: array[index] — the (possibly out-of-bounds) read.
    block.append(isa.load(ARRAY_BASE + effective))
    # Second load: probe[x * stride] — transmits through the cache.
    in_bounds = 0 <= effective < ARRAY_LENGTH
    transmitted = 0 if in_bounds else secret_byte
    block.append(isa.load(PROBE_BASE + transmitted * PROBE_STRIDE))
    return block


#: The bounds-check branch site for the trained variant.
BOUNDS_CHECK_PC = 0x4E_1000
GADGET_BODY = 0x4E_2000


def attempt_bounds_bypass_trained(
    machine: Machine,
    secret_byte: int,
    lfence_hardened: bool = False,
    masked: bool = False,
    training_rounds: int = 8,
) -> Optional[int]:
    """The full V1 sequence, including the mistraining phase.

    Unlike :func:`attempt_bounds_bypass` (which injects the transient
    window directly), this variant drives the machine's 2-bit conditional
    predictor: execute the bounds check in-bounds (taken) until the
    predictor saturates, then present the out-of-bounds index — the
    check architecturally falls through, but the *predicted* taken body
    runs transiently.  Returns the recovered byte or None.
    """
    if not machine.cpu.vulns.spectre_v1:
        return None
    for candidate in range(256):
        machine.caches.flush_line(PROBE_BASE + candidate * PROBE_STRIDE)

    # Register the gadget body as the branch's taken path.
    machine.register_code(GADGET_BODY, build_gadget(
        SECRET_OFFSET, secret_byte,
        lfence_hardened=lfence_hardened, masked=masked))

    # Training: in-bounds accesses, branch taken.
    for _ in range(training_rounds):
        machine.execute(isa.branch_cond(target=GADGET_BODY,
                                        pc=BOUNDS_CHECK_PC, taken=True))
        machine.execute(isa.load(ARRAY_BASE))  # the in-bounds body

    # Attack: out-of-bounds index, branch architecturally NOT taken —
    # but the saturated predictor says taken, so the body runs wrong-path.
    machine.execute(isa.branch_cond(target=GADGET_BODY,
                                    pc=BOUNDS_CHECK_PC, taken=False))

    warm = [
        candidate
        for candidate in range(1, 256)
        if machine.caches.probe_l1(PROBE_BASE + candidate * PROBE_STRIDE)
    ]
    if len(warm) == 1:
        return warm[0]
    return None


def attempt_bounds_bypass(
    machine: Machine,
    secret_byte: int,
    lfence_hardened: bool = False,
    masked: bool = False,
) -> Optional[int]:
    """Run a mistrained V1 gadget transiently and try to recover the secret.

    Returns the recovered byte or None.  With either mitigation applied the
    recovery fails: lfence ends the transient window before the gadget;
    masking redirects the first load in-bounds so only index 0's (public)
    value transmits.
    """
    if not machine.cpu.vulns.spectre_v1:
        return None
    for candidate in range(256):
        machine.caches.flush_line(PROBE_BASE + candidate * PROBE_STRIDE)
    # Also flush the index-0 line so a masked gadget is distinguishable.
    gadget = build_gadget(
        SECRET_OFFSET, secret_byte, lfence_hardened=lfence_hardened, masked=masked
    )
    machine.speculate(gadget)
    warm = [
        candidate
        for candidate in range(1, 256)  # candidate 0 == the masked decoy
        if machine.caches.probe_l1(PROBE_BASE + candidate * PROBE_STRIDE)
    ]
    if len(warm) == 1:
        return warm[0]
    return None

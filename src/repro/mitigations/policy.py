"""Linux's default mitigation selection, per CPU — the paper's Table 1.

Given a :class:`~repro.cpu.model.CPUModel` and a kernel version, produce
the :class:`~repro.mitigations.base.MitigationConfig` a stock kernel would
choose, and render the Table 1 matrix (check mark = used by default, blank
= not required, ``!`` = needed for full protection but not default).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cpu.model import CPUModel, all_cpus
from .base import MitigationConfig, SSBDMode, V2Strategy

#: Kernel versions the paper's machines ran (section 4.1).
DEFAULT_KERNEL = (5, 14)

#: Linux 5.15.28 switched AMD parts from lfence ("AMD") retpolines to
#: generic retpolines after the Milburn et al. race-condition finding
#: (paper section 5.3).
AMD_RETPOLINE_DROPPED = (5, 15)

#: Linux 5.16 stopped enabling SSBD implicitly for seccomp processes
#: (paper sections 4.3 and 7).
SSBD_SECCOMP_DROPPED = (5, 16)


def default_v2_strategy(cpu: CPUModel, kernel: Tuple[int, int] = DEFAULT_KERNEL) -> V2Strategy:
    """The Spectre V2 strategy a stock kernel picks for this part."""
    if not cpu.vulns.spectre_v2:
        return V2Strategy.NONE
    if cpu.predictor.supports_eibrs:
        # "When it is available, Linux by default uses eIBRS instead of
        # retpolines" (section 6.2.2).
        return V2Strategy.EIBRS
    if cpu.vendor == "AMD" and kernel < AMD_RETPOLINE_DROPPED:
        return V2Strategy.RETPOLINE_AMD
    return V2Strategy.RETPOLINE_GENERIC


def linux_default(
    cpu: CPUModel,
    kernel: Tuple[int, int] = DEFAULT_KERNEL,
    firefox: bool = True,
) -> MitigationConfig:
    """The default-on mitigation set for ``cpu`` (Table 1's check marks).

    ``firefox`` controls whether the JavaScript-engine switches are on;
    they are Firefox defaults, not kernel policy.
    """
    ssbd = SSBDMode.SECCOMP if kernel < SSBD_SECCOMP_DROPPED else SSBDMode.PRCTL
    config = MitigationConfig(
        pti=cpu.vulns.meltdown,
        pte_inversion=cpu.vulns.l1tf,
        l1d_flush_on_vmentry=cpu.vulns.l1tf,
        eager_fpu=True,  # always: faster than lazy on modern parts (3.1)
        v1_lfence_swapgs=cpu.vulns.swapgs_v1,
        v1_usercopy_masking=cpu.vulns.spectre_v1,
        v2_strategy=default_v2_strategy(cpu, kernel),
        v2_rsb_stuffing=cpu.vulns.spectre_v2,
        v2_ibpb=cpu.vulns.spectre_v2,
        ssbd_mode=ssbd,
        mds_verw=cpu.vulns.mds,
        mds_smt_off=False,  # risk judged acceptable by default (3.3)
        js_index_masking=firefox,
        js_object_guards=firefox,
        js_other=firefox,
    )
    config.validate_for(cpu)
    return config


# --------------------------------------------------------------------------- #
# Table 1 rendering
# --------------------------------------------------------------------------- #

#: (attack, mitigation) rows of Table 1, in the paper's order.
TABLE1_ROWS: Tuple[Tuple[str, str], ...] = (
    ("Meltdown", "Page Table Isolation"),
    ("L1TF", "PTE Inversion"),
    ("L1TF", "Flush L1 Cache"),
    ("LazyFP", "Always save FPU"),
    ("Spectre V1", "Index Masking"),
    ("Spectre V1", "lfence after swapgs"),
    ("Spectre V2", "Generic Retpoline"),
    ("Spectre V2", "AMD Retpoline"),
    ("Spectre V2", "IBRS"),
    ("Spectre V2", "Enhanced IBRS"),
    ("Spectre V2", "RSB Stuffing"),
    ("Spectre V2", "IBPB"),
    ("Spec. Store Bypass", "SSBD"),
    ("MDS", "Flush CPU Buffers"),
    ("MDS", "Disable SMT"),
)

USED = "yes"          # check mark in the paper
NOT_REQUIRED = ""     # blank
NOT_DEFAULT = "!"     # needed but not enabled by default


def table1_cell(cpu: CPUModel, attack: str, mitigation: str,
                kernel: Tuple[int, int] = DEFAULT_KERNEL) -> str:
    """One cell of Table 1 for ``cpu``."""
    config = linux_default(cpu, kernel)
    if mitigation == "Page Table Isolation":
        return USED if config.pti else NOT_REQUIRED
    if mitigation == "PTE Inversion":
        return USED if config.pte_inversion else NOT_REQUIRED
    if mitigation == "Flush L1 Cache":
        return USED if config.l1d_flush_on_vmentry else NOT_REQUIRED
    if mitigation == "Always save FPU":
        # Applied everywhere: cheap, and faster than trapping (3.1).
        return USED
    if mitigation == "Index Masking":
        return USED if cpu.vulns.spectre_v1 else NOT_REQUIRED
    if mitigation == "lfence after swapgs":
        return USED if config.v1_lfence_swapgs else NOT_REQUIRED
    if mitigation == "Generic Retpoline":
        return USED if config.v2_strategy is V2Strategy.RETPOLINE_GENERIC else NOT_REQUIRED
    if mitigation == "AMD Retpoline":
        return USED if config.v2_strategy is V2Strategy.RETPOLINE_AMD else NOT_REQUIRED
    if mitigation == "IBRS":
        return USED if config.v2_strategy is V2Strategy.IBRS else NOT_REQUIRED
    if mitigation == "Enhanced IBRS":
        return USED if config.v2_strategy is V2Strategy.EIBRS else NOT_REQUIRED
    if mitigation == "RSB Stuffing":
        return USED if config.v2_rsb_stuffing else NOT_REQUIRED
    if mitigation == "IBPB":
        return USED if config.v2_ibpb else NOT_REQUIRED
    if mitigation == "SSBD":
        # Every part is vulnerable, none enables SSBD globally by default.
        return NOT_DEFAULT if cpu.vulns.ssb else NOT_REQUIRED
    if mitigation == "Flush CPU Buffers":
        return USED if config.mds_verw else NOT_REQUIRED
    if mitigation == "Disable SMT":
        if not cpu.vulns.mds:
            return NOT_REQUIRED
        return NOT_DEFAULT  # vulnerable, but SMT stays on by default (3.3)
    raise KeyError(f"unknown Table 1 row: {attack}/{mitigation}")


def table1_matrix(kernel: Tuple[int, int] = DEFAULT_KERNEL) -> Dict[Tuple[str, str], List[str]]:
    """The full Table 1: row -> one cell per CPU in catalog order."""
    return {
        row: [table1_cell(cpu, *row, kernel=kernel) for cpu in all_cpus()]
        for row in TABLE1_ROWS
    }

"""Speculative Store Bypass (Spectre V4) and SSBD.

The memory disambiguator may let a load execute before an older store to
the same address has resolved, transiently observing the stale value
(paper section 3.2).  The only mitigation, Speculative Store Bypass
Disable (SSBD), forces loads to wait — at "severe negative performance
impact" because it also defeats routine store-to-load forwarding.

Linux's compromise (paper 3.2 / 5.5): SSBD is off by default and enabled
per process via ``prctl``; on kernels before 5.16 it was also implied by
``seccomp`` — which is why Firefox (a seccomp user) paid the cost in the
paper's Figure 3.
"""

from __future__ import annotations

import functools

from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from ..cpu.msr import IA32_SPEC_CTRL, SPEC_CTRL_SSBD
from .base import MitigationConfig, SSBDMode

#: Demonstration addresses.
STALE_ADDRESS = 0x5000_0000
PROBE_BASE = 0x7C00_0000_0000
PROBE_STRIDE = 4096


@functools.lru_cache(maxsize=None)
def ssbd_enable_sequence() -> Tuple[Instruction, ...]:
    """MSR write enabling SSBD (the scheduler issues this when switching
    to an opted-in process).  Cached for stable block-engine identity."""
    return (isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_SSBD),)


@functools.lru_cache(maxsize=None)
def ssbd_disable_sequence() -> Tuple[Instruction, ...]:
    return (isa.wrmsr(IA32_SPEC_CTRL, 0),)


def process_wants_ssbd(mode: SSBDMode, opted_in_prctl: bool, uses_seccomp: bool) -> bool:
    """Linux's per-process SSBD decision under each policy mode.

    This is the exact policy change between kernel 5.14 and 5.16 that the
    paper highlights: under ``SECCOMP`` policy, merely using seccomp turns
    SSBD on (Firefox's situation); under ``PRCTL`` only explicit opt-in
    does.
    """
    if mode is SSBDMode.OFF:
        return False
    if mode is SSBDMode.FORCE_ON:
        return True
    if mode is SSBDMode.SECCOMP:
        return opted_in_prctl or uses_seccomp
    return opted_in_prctl  # PRCTL


def attempt_store_bypass(machine: Machine, stale_secret: int) -> Optional[int]:
    """Demonstrate the V4 read-of-stale-data primitive.

    A store to ``STALE_ADDRESS`` is sitting unresolved in the store buffer;
    a speculative load to the same address may bypass it and observe the
    *previous* (stale) value, transmitting it through the cache.  Returns
    the recovered stale byte, or None when SSBD (or an immune part —
    though per the paper none exist) forecloses the bypass.
    """
    if not machine.cpu.vulns.ssb:
        return None
    # The victim's store is pending.
    machine.execute(isa.store(STALE_ADDRESS, value=0xAA))
    for candidate in range(256):
        machine.caches.flush_line(PROBE_BASE + candidate * PROBE_STRIDE)
    bypassed = machine.store_buffer.speculative_bypass_possible(
        STALE_ADDRESS, ssbd=machine.msr.ssbd_enabled
    )
    if bypassed:
        # The transient load saw the stale value; encode it in the cache.
        machine.speculate([isa.load(PROBE_BASE + stale_secret * PROBE_STRIDE)])
    warm = [
        candidate
        for candidate in range(256)
        if machine.caches.probe_l1(PROBE_BASE + candidate * PROBE_STRIDE)
    ]
    if len(warm) == 1:
        return warm[0]
    return None

"""Branch History Injection: the concurrent-work attack on eIBRS.

The paper's section 6.3 takeaway anticipates this exactly: "Partitioning
/ tagging the branch target buffer however is not a complete mitigation
for Spectre V2 ... even within the kernel, indirect branches executed by
the operating system could be used to mistrain the branch target buffer
to misdirect subsequent operating system indirect branches.  In
concurrent work, Barberis et al. demonstrate a practical attack against
eIBRS."

BHI is that attack: the attacker uses *system calls* to make the kernel
itself execute branch patterns that mistrain kernel-mode predictions —
same privilege mode, so eIBRS's mode tagging never triggers.  On our
model this is precisely the kernel->kernel check marks of Table 10 on
the eIBRS parts; this module packages it as an end-to-end demonstration
and shows which deployed measures do and don't help.
"""

from __future__ import annotations

from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.modes import Mode
from ..mitigations.spectre_v2 import ibpb_sequence

#: Demonstration layout.
KERNEL_BRANCH_PC = 0x47_1000   # a victim indirect call in kernel text
GADGET_ADDRESS = 0x47_2000     # a disclosure gadget, also in kernel text
BENIGN_ADDRESS = 0x47_3000
LEAK_LINE = 0x7800_0000_0000


def attempt_bhi(machine: Machine, eibrs: bool = True,
                ibpb_before_victim: bool = False,
                retpolines: bool = False) -> bool:
    """Mistrain a kernel indirect branch *from kernel mode* (via attacker-
    chosen syscalls), then observe the victim syscall's branch transiently
    run the gadget.  eIBRS does not help (same mode); an IBPB between the
    attacker's syscalls and the victim's would (but nobody issues one
    mid-syscall-stream); retpolines at the victim site do.

    Returns True when the gadget's cache footprint shows up.
    """
    machine.register_code(GADGET_ADDRESS, [isa.load(LEAK_LINE)])
    machine.register_code(BENIGN_ADDRESS, [isa.nop()])
    machine.caches.flush_line(LEAK_LINE)
    if eibrs and (machine.cpu.predictor.supports_ibrs
                  or machine.cpu.predictor.supports_eibrs):
        machine.msr.set_ibrs(True)

    # Attacker phase: syscalls steer kernel execution through an indirect
    # branch at the victim's PC with the gadget as its target (in real
    # BHI, by shaping branch history; here the kernel-mode training is
    # modelled directly — the privilege mode is what matters).
    for _ in range(4):
        machine.execute(isa.syscall_instr())
        machine.mode = Mode.KERNEL
        machine.execute(isa.branch_indirect(GADGET_ADDRESS,
                                            pc=KERNEL_BRANCH_PC))
        machine.execute(isa.sysret_instr())

    if ibpb_before_victim:
        machine.mode = Mode.KERNEL
        machine.run(ibpb_sequence())
        machine.mode = Mode.USER

    # Victim phase: a normal syscall whose handler takes the same indirect
    # branch to its legitimate target.
    machine.execute(isa.syscall_instr())
    machine.mode = Mode.KERNEL
    machine.execute(isa.branch_indirect(BENIGN_ADDRESS, pc=KERNEL_BRANCH_PC,
                                        retpoline=retpolines))
    machine.execute(isa.sysret_instr())
    return machine.caches.probe_l1(LEAK_LINE)

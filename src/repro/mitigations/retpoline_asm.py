"""The paper's Figure 4, executed mechanistically.

Elsewhere in the model retpolines are priced through the calibrated
Table 5 deltas (an instruction flag).  This module instead *runs* the
generic retpoline's trick through the machine's actual RSB/BTB machinery,
so the safety argument is demonstrated rather than asserted:

.. code-block:: asm

    generic_retpoline:
        call 2f        ; push the capture point onto the RSB
    1:  pause          ; [speculatively executed]
        lfence         ; [speculatively executed: ends the window]
        jmp 1b
    2:  mov %r11, (%rsp)  ; overwrite the return address
        ret            ; architecturally to %r11; *speculatively* to 1:

The ``ret`` consumes the RSB entry pushed by the ``call`` — which points
at the pause/lfence capture loop — so the only place speculation can go
is a serializing dead end.  The BTB never participates, hence nothing to
poison.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cpu import counters as ctr
from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine

#: Code layout for one retpoline thunk.  The machine's RSB records the
#: *call site* as the return prediction, and the capture loop is the
#: call's fall-through — so the capture code is registered at the call
#: site's address (one code block covering "just after the call").
THUNK_CALL_PC = 0x4C_1000      # the 'call 2f'; label 1 falls through here
CAPTURE_LOOP = THUNK_CALL_PC   # pause; lfence; jmp 1b
THUNK_RET_PC = 0x4C_1010       # label 2: the ret


def capture_loop_block() -> List[Instruction]:
    """The speculation trap: pause then a serializing lfence."""
    return [isa.Instruction(isa.Op.PAUSE), isa.lfence()]


def execute_generic_retpoline(machine: Machine, target: int) -> int:
    """Run the Figure 4 sequence against the live RSB; returns cycles.

    Architecturally control ends up at ``target``; speculatively the
    ``ret`` goes to the capture loop (the RSB entry the ``call`` pushed).
    """
    machine.register_code(CAPTURE_LOOP, capture_loop_block())
    cycles = machine.execute(isa.call(target=THUNK_RET_PC, pc=THUNK_CALL_PC))
    # 'mov %r11, (%rsp)': overwrite the *architectural* return address.
    # The RSB still holds the capture point — that's the whole trick.
    cycles += machine.execute(isa.Instruction(isa.Op.ALU))
    # The ret: RSB predicts the call site (our model pushes the call pc,
    # i.e. the capture loop's address region); the real target differs.
    cycles += machine.execute(isa.ret(pc=THUNK_RET_PC, target=target))
    return cycles


def retpoline_speculation_is_captured(machine: Machine,
                                      poisoned_gadget: int) -> Tuple[bool, bool]:
    """Where does the retpoline's speculation actually go?

    The attacker has a gadget registered at ``poisoned_gadget`` and has
    poisoned the BTB entry for the thunk's ret.  Returns
    ``(gadget_ran, capture_loop_entered)``: a correct retpoline yields
    ``(False, True)`` — speculation went to the pause/lfence trap, never
    to the gadget.
    """
    machine.register_code(poisoned_gadget, [isa.div()])
    # Attacker poisons the BTB at the ret's PC (as if it were an indirect
    # branch site).  A raw indirect branch would consume this.
    machine.btb.train(THUNK_RET_PC, poisoned_gadget, machine.mode)

    div_before = machine.counters.read(ctr.DIVIDER_ACTIVE)
    transient_before = machine.counters.read(ctr.TRANSIENT_INSTRUCTIONS)
    execute_generic_retpoline(machine, target=0x4C_9000)
    gadget_ran = machine.counters.read(ctr.DIVIDER_ACTIVE) > div_before
    # The capture loop's pause executes transiently when the ret consumes
    # the RSB entry pointing at it.
    captured = machine.counters.read(
        ctr.TRANSIENT_INSTRUCTIONS) > transient_before
    return gadget_ran, captured

"""L1 Terminal Fault (Foreshadow) and its two mitigations.

On vulnerable parts the present bit of a page table entry is ignored
during speculative address translation: a load through a not-present PTE
forwards whatever the L1 cache holds for the *physical* address named by
the PTE's frame number (paper section 3.1).

Two mitigations, both modelled:

* **PTE inversion** (bare-metal, ~zero cost): when the OS marks a PTE not
  present it also rewrites the frame number to point at an unmapped
  high physical address, so the speculative load can never hit valid data.
* **L1D flush on VM entry** (hypervisor): an untrusted guest can craft its
  own not-present PTEs, so the host flushes the L1 before entering the
  guest — the flush itself plus the refill misses are the cost.
"""

from __future__ import annotations

import functools

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine

#: Physical frame beyond the end of simulated RAM; nothing cacheable there.
UNCACHEABLE_FRAME = 1 << 46

PAGE = 4096


@dataclass
class PageTableEntry:
    """A minimal x86-style PTE: present bit plus physical frame number."""

    present: bool
    frame: int  # physical page frame number

    @property
    def physical_address(self) -> int:
        return self.frame * PAGE


def invert_pte(pte: PageTableEntry) -> PageTableEntry:
    """The PTE-inversion mitigation: retarget a not-present PTE at an
    uncacheable frame.  Present PTEs are returned unchanged."""
    if pte.present:
        return pte
    return PageTableEntry(present=False, frame=UNCACHEABLE_FRAME // PAGE + pte.frame)


@functools.lru_cache(maxsize=None)
def l1d_flush_sequence() -> Tuple[Instruction, ...]:
    """Hypervisor mitigation: flush L1D immediately before VM entry.

    Cached: the same tuple object is returned every call, so the block
    engine can key its compiled-block cache on sequence identity.
    """
    return (isa.l1d_flush(mitigation="l1tf", primitive="l1d_flush"),)


def attempt_l1tf(
    machine: Machine,
    pte: PageTableEntry,
) -> bool:
    """Attempt an L1TF read through a (possibly inverted) not-present PTE.

    Models the attacker issuing a load whose translation terminally faults.
    The leak succeeds iff the part is vulnerable, the PTE is not present
    (that's the "terminal fault"), and the physical line named by the PTE
    is currently resident in L1 — which is what the flush-on-VM-entry
    mitigation guarantees never holds for host data.

    Returns True when secret data was exposed to the attacker.
    """
    if not machine.cpu.vulns.l1tf:
        return False
    if pte.present:
        return False  # an ordinary, permission-checked translation
    physical = pte.physical_address
    if physical >= UNCACHEABLE_FRAME:
        return False  # PTE inversion pointed it into nowhere
    # The speculative load forwards from L1 if (and only if) the line is
    # resident; a terminal fault never fills the cache itself.
    return machine.caches.probe_l1(physical)

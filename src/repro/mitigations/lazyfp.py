"""LazyFP: leaking FPU registers via lazy context switching.

With lazy FPU switching the OS leaves the previous process's floating
point registers in place on a context switch and merely disables the FPU;
the first FP instruction traps (#NM) and only then are registers swapped.
On vulnerable parts, transient execution ignores the disable bit, exposing
the stale registers (paper section 3.1).

Linux's mitigation — eager save/restore with ``xsave``/``xrstor`` on every
switch — is *also a speedup* on modern hardware, because the #NM trap
round-trip costs more than ``xsaveopt``.  The cost model here reproduces
that inversion, and :func:`lazy_switch_cost`/:func:`eager_switch_cost`
expose both paths for the ablation bench.
"""

from __future__ import annotations

import functools

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine


@dataclass
class FPUState:
    """The floating point register file of one core, as the OS sees it."""

    owner_pid: Optional[int] = None   # whose values are physically loaded
    enabled: bool = True              # CR0.TS clear?
    secret: int = 0                   # model payload: the register contents


@functools.lru_cache(maxsize=None)
def eager_switch_sequence() -> Tuple[Instruction, ...]:
    """Mitigated context switch: always xsave old + xrstor new.

    Cached: a stable tuple identity lets the block engine compile it.
    """
    return (isa.xsave(mitigation="lazyfp", primitive="xsave"),
            isa.xrstor(mitigation="lazyfp", primitive="xrstor"))


def eager_switch_cost(machine: Machine) -> int:
    """Cycles the eager save/restore pair costs on this part."""
    return machine.costs.xsave + machine.costs.xrstor


def lazy_switch_cost(machine: Machine, new_process_uses_fpu: bool) -> int:
    """Cycles the lazy strategy costs for one switch.

    Zero at switch time; if the incoming process touches the FPU it pays
    the #NM trap plus the deferred save/restore.  For FPU-using workloads
    this *exceeds* the eager cost — the paper's "amusingly, this mitigation
    speeds up certain workloads" observation.
    """
    if not new_process_uses_fpu:
        return 0
    return machine.costs.fpu_trap + machine.costs.xsave + machine.costs.xrstor


def lazy_switch(fpu: FPUState, new_pid: int) -> None:
    """Perform a lazy switch: disable the FPU, keep the old registers."""
    fpu.enabled = False  # owner and secret intentionally retained


def eager_switch(fpu: FPUState, new_pid: int, new_secret: int = 0) -> None:
    """Perform an eager switch: registers are replaced immediately."""
    fpu.owner_pid = new_pid
    fpu.secret = new_secret
    fpu.enabled = True


def attempt_lazyfp(machine: Machine, fpu: FPUState, attacker_pid: int) -> Optional[int]:
    """Transiently read the FPU registers from the attacking process.

    Succeeds (returns the stale secret) iff the part is vulnerable and a
    lazy switch left another process's registers loaded behind a disabled
    FPU.  Under eager switching the registers always belong to the current
    process, so nothing foreign can leak.
    """
    if not machine.cpu.vulns.lazyfp:
        return None
    if fpu.owner_pid is None or fpu.owner_pid == attacker_pid:
        return None  # registers are the attacker's own
    if fpu.enabled:
        return None  # enabled means they were eagerly switched: no residue
    # Vulnerable part: the transient FP read ignores the disable bit.
    return fpu.secret

"""Transient execution attack mitigations, modelled after Linux + Firefox.

* :mod:`~repro.mitigations.base` — :class:`MitigationConfig` (the boot-flag
  analogue) and the attribution :class:`Knob` registry.
* :mod:`~repro.mitigations.policy` — Linux's per-CPU defaults (Table 1).
* One module per attack family with the mitigation instruction sequences
  and an attack demonstration: :mod:`meltdown <repro.mitigations.meltdown>`,
  :mod:`l1tf <repro.mitigations.l1tf>`, :mod:`lazyfp
  <repro.mitigations.lazyfp>`, :mod:`spectre_v1
  <repro.mitigations.spectre_v1>`, :mod:`spectre_v2
  <repro.mitigations.spectre_v2>`, :mod:`ssb <repro.mitigations.ssb>`,
  :mod:`mds <repro.mitigations.mds>`, plus the extension families:
  :mod:`spectre_rsb <repro.mitigations.spectre_rsb>`, :mod:`stibp
  <repro.mitigations.stibp>`, :mod:`bhi <repro.mitigations.bhi>`, and the
  mechanistic Figure 4 in :mod:`retpoline_asm
  <repro.mitigations.retpoline_asm>`.
"""

from . import (  # noqa: F401  (re-exported for discoverability)
    bhi,
    l1tf,
    lazyfp,
    mds,
    meltdown,
    retpoline_asm,
    spectre_rsb,
    spectre_v1,
    spectre_v2,
    ssb,
    stibp,
)

from .base import (
    ALL_KNOBS,
    JS_KNOBS,
    KERNEL_KNOBS,
    KNOBS_BY_NAME,
    Knob,
    MitigationConfig,
    SSBDMode,
    V2Strategy,
)
from .policy import (
    DEFAULT_KERNEL,
    TABLE1_ROWS,
    default_v2_strategy,
    linux_default,
    table1_cell,
    table1_matrix,
)

__all__ = [
    "ALL_KNOBS",
    "DEFAULT_KERNEL",
    "JS_KNOBS",
    "KERNEL_KNOBS",
    "KNOBS_BY_NAME",
    "Knob",
    "MitigationConfig",
    "SSBDMode",
    "TABLE1_ROWS",
    "V2Strategy",
    "default_v2_strategy",
    "linux_default",
    "table1_cell",
    "table1_matrix",
]

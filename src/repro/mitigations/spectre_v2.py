"""Spectre V2 (branch target injection) mitigation building blocks.

The attack poisons the Branch Target Buffer so a victim's indirect branch
transiently jumps to an attacker-chosen gadget.  There is no single
mitigation (paper section 3.2); the deployed set is:

* **retpolines** — replace every indirect branch with a sequence that
  captures speculation in a safe loop.  Two flavors (paper Figure 4):
  *generic* (call/overwrite/ret, works everywhere) and *AMD* (lfence+jmp,
  cheaper on some AMD parts but later shown racy and abandoned);
* **IBRS / enhanced IBRS** — MSR modes restricting cross-privilege
  prediction (analyzed in depth in paper section 6);
* **IBPB** — a prediction barrier on context switches between mutually
  distrusting processes (Table 6);
* **RSB stuffing** — refill the return stack buffer on context switch so
  interrupted user retpolines stay safe, also blocking SpectreRSB (Table 7).

The cycle costs of each primitive are calibrated per CPU in
:mod:`repro.cpu.model`; this module provides the instruction sequences the
kernel model splices in, plus a BTB-poisoning demonstration used by tests
(the full measurement methodology lives in :mod:`repro.core.probe`).
"""

from __future__ import annotations

import functools

from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine
from ..cpu.modes import Mode
from ..cpu.msr import IA32_PRED_CMD, IA32_SPEC_CTRL, PRED_CMD_IBPB, SPEC_CTRL_IBRS
from .base import MitigationConfig, V2Strategy

#: Code addresses used by the demonstration (the probe uses its own).
VICTIM_BRANCH_PC = 0x40_1000
GADGET_ADDRESS = 0x40_2000
BENIGN_ADDRESS = 0x40_3000
LEAK_LINE = 0x7D00_0000_0000


def retpoline_variant_for(config: MitigationConfig) -> Optional[str]:
    """Machine retpoline flavor implied by a config, or None."""
    if config.v2_strategy is V2Strategy.RETPOLINE_GENERIC:
        return "generic"
    if config.v2_strategy is V2Strategy.RETPOLINE_AMD:
        return "amd"
    return None


def indirect_branch(target: int, pc: int, config: MitigationConfig) -> Instruction:
    """An indirect branch as the kernel would compile it under ``config``:
    a raw branch normally, a retpoline when the strategy says so."""
    return isa.branch_indirect(target, pc=pc, retpoline=config.uses_retpolines)


@functools.lru_cache(maxsize=None)
def ibpb_sequence() -> Tuple[Instruction, ...]:
    """Indirect Branch Prediction Barrier: write IA32_PRED_CMD bit 0.

    Cached: a stable tuple identity lets the block engine compile it.
    """
    return (isa.wrmsr(IA32_PRED_CMD, PRED_CMD_IBPB,
                      mitigation="spectre_v2", primitive="ibpb"),)


@functools.lru_cache(maxsize=None)
def rsb_stuffing_sequence() -> Tuple[Instruction, ...]:
    """The 32-entry RSB fill loop, as one macro instruction (Table 7)."""
    return (isa.rsb_fill(mitigation="spectre_v2", primitive="rsb_fill"),)


@functools.lru_cache(maxsize=None)
def ibrs_entry_sequence() -> Tuple[Instruction, ...]:
    """Legacy IBRS: set SPEC_CTRL.IBRS on kernel entry."""
    return (isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_IBRS,
                      mitigation="spectre_v2", primitive="wrmsr_spec_ctrl"),)


@functools.lru_cache(maxsize=None)
def ibrs_exit_sequence() -> Tuple[Instruction, ...]:
    """Legacy IBRS: clear SPEC_CTRL.IBRS before returning to user mode."""
    return (isa.wrmsr(IA32_SPEC_CTRL, 0,
                      mitigation="spectre_v2", primitive="wrmsr_spec_ctrl"),)


def install_gadget(machine: Machine) -> None:
    """Register the Spectre gadget and a benign landing pad in program
    memory so transient windows have something to execute."""
    machine.register_code(
        GADGET_ADDRESS,
        [isa.load(LEAK_LINE)],  # the observable side effect
    )
    machine.register_code(BENIGN_ADDRESS, [isa.nop()])


def poison_btb(machine: Machine, mode: Mode, pc: int = VICTIM_BRANCH_PC,
               gadget: int = GADGET_ADDRESS, rounds: int = 4) -> None:
    """Attacker phase: repeatedly execute the branch toward the gadget so
    the BTB learns it.  ``mode`` is the mode the attacker runs in."""
    saved = machine.mode
    machine.mode = mode
    for _ in range(rounds):
        machine.execute(isa.branch_indirect(gadget, pc=pc))
    machine.mode = saved


def victim_executes(machine: Machine, mode: Mode, pc: int = VICTIM_BRANCH_PC,
                    benign: int = BENIGN_ADDRESS,
                    config: Optional[MitigationConfig] = None) -> None:
    """Victim phase: the same branch runs with a *different* (benign)
    architectural target.  If the poisoned prediction is consumed, the
    gadget runs transiently and touches ``LEAK_LINE``."""
    saved = machine.mode
    machine.mode = mode
    retpoline = bool(config and config.uses_retpolines)
    machine.execute(isa.branch_indirect(benign, pc=pc, retpoline=retpoline))
    machine.mode = saved


def attempt_btb_injection(
    machine: Machine,
    attacker_mode: Mode,
    victim_mode: Mode,
    config: Optional[MitigationConfig] = None,
    ibpb_between: bool = False,
) -> bool:
    """End-to-end V2 demonstration.  Returns True when the gadget's cache
    footprint shows transient execution was steered to it."""
    install_gadget(machine)
    machine.caches.flush_line(LEAK_LINE)
    poison_btb(machine, attacker_mode)
    if ibpb_between:
        machine.run(ibpb_sequence())
    victim_executes(machine, victim_mode, config=config)
    return machine.caches.probe_l1(LEAK_LINE)

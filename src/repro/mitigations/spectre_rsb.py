"""SpectreRSB: speculation attacks through the Return Stack Buffer.

Koruyeh et al. (cited by the paper in 5.3) showed the RSB itself can be
mistrained: an attacker either *plants* return addresses (by making calls
whose returns the victim will consume after a context switch) or
*underflows* the buffer so Skylake-class parts fall back to the
(poisonable) BTB.  The paper notes that Linux's RSB stuffing — nominally
a retpoline-support measure — "also provides protection against
variations of SpectreRSB", and that some of the overhead billed to
Spectre V2 really belongs here.

Both flavors are demonstrated mechanically below, along with the
stuffing defence.
"""

from __future__ import annotations

from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.modes import Mode

#: Demonstration layout.
GADGET_ADDRESS = 0x46_2000
RETURN_SITE_PC = 0x46_1000
LEAK_LINE = 0x7900_0000_0000


def _install_gadget(machine: Machine) -> None:
    machine.register_code(GADGET_ADDRESS, [isa.load(LEAK_LINE)])
    machine.caches.flush_line(LEAK_LINE)


def attempt_planted_return(machine: Machine, stuffed: bool = False) -> bool:
    """Flavor 1: the attacker leaves a poisoned return address in the RSB
    (e.g. across a context switch); the victim's next ``ret`` consumes it
    and transiently executes the gadget.  RSB stuffing on the switch path
    overwrites the plant.  Returns True when the gadget ran."""
    _install_gadget(machine)
    machine.rsb.clear()
    machine.rsb.push(GADGET_ADDRESS)  # the attacker's plant
    if stuffed:
        machine.execute(isa.rsb_fill())  # the context-switch mitigation
    # Victim returns; its architectural return target is elsewhere.
    machine.execute(isa.ret(pc=RETURN_SITE_PC, target=0x46_4000))
    return machine.caches.probe_l1(LEAK_LINE)


def attempt_underflow_fallback(machine: Machine, stuffed: bool = False) -> bool:
    """Flavor 2 (Skylake-class only): drain the RSB so a ``ret`` falls
    back to the BTB, which the attacker poisoned at the return site.
    Parts that stall on underflow (Broadwell) are immune to this flavor;
    stuffing prevents the underflow entirely.  Returns True on leak."""
    _install_gadget(machine)
    # Poison the BTB entry at the return site.
    machine.mode = Mode.USER
    machine.execute(isa.branch_indirect(GADGET_ADDRESS, pc=RETURN_SITE_PC))
    machine.caches.flush_line(LEAK_LINE)
    machine.rsb.clear()  # attacker drained the buffer with deep returns
    if stuffed:
        machine.execute(isa.rsb_fill())
    machine.execute(isa.ret(pc=RETURN_SITE_PC, target=0x46_4000))
    return machine.caches.probe_l1(LEAK_LINE)

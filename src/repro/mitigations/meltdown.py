"""Meltdown and its mitigation, kernel page table isolation (PTI/KAISER).

Meltdown (paper section 3.1) lets a user process transiently read any
kernel memory mapped into its address space: vulnerable parts translate
and forward the data before the permission fault squashes the access, and
a cache side channel exfiltrates it.

PTI mitigates this by giving user mode a page table with (almost) no
kernel mappings, at the cost of a ``mov %cr3`` on *every* user/kernel
crossing — the dominant LEBench overhead on Broadwell/Skylake (Figure 2,
Table 3).
"""

from __future__ import annotations

import functools

from typing import List, Optional, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.machine import Machine

#: Virtual address layout constants for the demonstration.
KERNEL_SECRET_ADDRESS = 0xFFFF_8880_0000_1000
PROBE_ARRAY_BASE = 0x7F00_0000_0000
PROBE_STRIDE = 4096  # page stride, like published PoCs (defeats prefetch)

#: PCID values Linux reserves for the two KPTI page table halves.
KERNEL_PCID = 0
USER_PCID = 0x80


@functools.lru_cache(maxsize=None)
def kpti_entry_sequence() -> Tuple[Instruction, ...]:
    """Instructions added to kernel entry when PTI is on: switch to the
    kernel page table root.  Cached for stable block-engine identity."""
    return (isa.mov_cr3(pcid=KERNEL_PCID, mitigation="pti",
                        primitive="mov_cr3"),)


@functools.lru_cache(maxsize=None)
def kpti_exit_sequence() -> Tuple[Instruction, ...]:
    """Instructions added to kernel exit: switch back to the user table."""
    return (isa.mov_cr3(pcid=USER_PCID, mitigation="pti",
                        primitive="mov_cr3"),)


def attempt_meltdown(machine: Machine, secret_byte: int) -> Optional[int]:
    """Run the classic Meltdown sequence against ``machine``.

    ``secret_byte`` stands in for the value at the kernel address; the
    simulator does not move data through registers, so the demonstration
    constructs the dependent probe access itself, gated on whether the
    transient kernel read was architecturally possible — exactly the
    predicate PTI changes.

    Returns the recovered byte, or None when the attack fails (immune
    part, or PTI unmapped the kernel from user page tables).
    """
    if not 0 <= secret_byte <= 0xFF:
        raise ValueError("secret_byte must be one byte")

    # 1. Flush the probe array (flush half of flush+reload).
    for candidate in range(256):
        machine.caches.flush_line(PROBE_ARRAY_BASE + candidate * PROBE_STRIDE)

    # 2. Transiently read the kernel byte.  The machine only lets this
    #    through when the part is Meltdown-vulnerable AND the kernel is
    #    mapped in the user page table (KPTI off).
    machine.transient_loads.clear()
    machine.speculate([isa.load(KERNEL_SECRET_ADDRESS, kernel=True)])
    leaked = KERNEL_SECRET_ADDRESS in machine.transient_loads
    if leaked:
        # 3. Dependent access: encode the secret in the cache.
        machine.speculate(
            [isa.load(PROBE_ARRAY_BASE + secret_byte * PROBE_STRIDE)]
        )

    # 4. Reload: time each probe line; the warm one names the secret.
    recovered = [
        candidate
        for candidate in range(256)
        if machine.caches.probe_l1(PROBE_ARRAY_BASE + candidate * PROBE_STRIDE)
    ]
    if len(recovered) == 1:
        return recovered[0]
    return None

"""Mitigation configuration: the model's equivalent of kernel boot flags.

The paper's methodology (section 4.1) is to boot Linux with default
mitigations, then use kernel parameters (``nopti``, ``mds=off``,
``nospectre_v2`` ...) and Firefox ``about:config`` switches to disable them
one at a time and attribute the overhead.  :class:`MitigationConfig` is the
programmatic form of those switches, and :class:`Knob` is one named switch
the attribution harness can flip.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..cpu.model import CPUModel
from ..errors import ConfigurationError


class V2Strategy(enum.Enum):
    """Kernel-side Spectre V2 strategy for indirect branches."""

    NONE = "none"
    RETPOLINE_GENERIC = "retpoline_generic"
    RETPOLINE_AMD = "retpoline_amd"
    IBRS = "ibrs"            # legacy: MSR write on every kernel entry
    EIBRS = "eibrs"          # enhanced IBRS: set once at boot


class SSBDMode(enum.Enum):
    """Linux ``spec_store_bypass_disable=`` policy."""

    OFF = "off"
    PRCTL = "prctl"          # opt-in via prctl only (Linux >= 5.16 default)
    SECCOMP = "seccomp"      # prctl + implicit for seccomp processes (< 5.16)
    FORCE_ON = "on"          # SSBD for every process


@dataclass(frozen=True)
class MitigationConfig:
    """Every mitigation switch the model understands.

    Kernel-side switches mirror Linux boot parameters; the ``js_*`` fields
    mirror the SpiderMonkey ``about:config`` switches the paper toggles.
    """

    # Meltdown
    pti: bool = False
    # L1TF
    pte_inversion: bool = False
    l1d_flush_on_vmentry: bool = False
    # LazyFP
    eager_fpu: bool = False
    # Spectre V1 (kernel side)
    v1_lfence_swapgs: bool = False
    v1_usercopy_masking: bool = False
    # Spectre V2
    v2_strategy: V2Strategy = V2Strategy.NONE
    v2_rsb_stuffing: bool = False
    v2_ibpb: bool = False
    #: Linux ``spectre_v2_user=on``: barrier on *every* cross-mm switch
    #: instead of only for tasks that opted in (the default conditional
    #: policy).  Exposed for the ablation bench.
    v2_ibpb_always: bool = False
    # Speculative Store Bypass
    ssbd_mode: SSBDMode = SSBDMode.OFF
    # MDS
    mds_verw: bool = False
    mds_smt_off: bool = False
    # JavaScript engine (Firefox/SpiderMonkey) switches
    js_index_masking: bool = False
    js_object_guards: bool = False
    js_other: bool = False  # pointer poisoning + reduced timer precision

    # -- derived views -------------------------------------------------- #

    @property
    def uses_retpolines(self) -> bool:
        return self.v2_strategy in (
            V2Strategy.RETPOLINE_GENERIC,
            V2Strategy.RETPOLINE_AMD,
        )

    @property
    def uses_ibrs_entry_write(self) -> bool:
        """Legacy IBRS writes SPEC_CTRL on every kernel entry/exit."""
        return self.v2_strategy is V2Strategy.IBRS

    def validate_for(self, cpu: CPUModel) -> None:
        """Reject configurations the hardware cannot run.

        Mirrors the kernel refusing e.g. IBRS on a part without the MSR.
        """
        if self.v2_strategy in (V2Strategy.IBRS, V2Strategy.EIBRS):
            if not (cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs):
                raise ConfigurationError(
                    f"{cpu.key} does not support IBRS (paper Table 10: N/A)"
                )
        if self.v2_strategy is V2Strategy.EIBRS and not cpu.predictor.supports_eibrs:
            raise ConfigurationError(f"{cpu.key} does not support enhanced IBRS")
        if self.v2_strategy is V2Strategy.RETPOLINE_AMD and cpu.vendor != "AMD":
            raise ConfigurationError(
                "AMD (lfence) retpolines do not protect Intel parts "
                "(paper section 5.3)"
            )
        if self.mds_smt_off and not cpu.smt:
            raise ConfigurationError(f"{cpu.key} has no SMT to disable")

    def replace(self, **changes) -> "MitigationConfig":
        """Return a copy with the given switches changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def all_off(cls) -> "MitigationConfig":
        """``mitigations=off`` plus every Firefox switch disabled."""
        return cls()


@dataclass(frozen=True)
class Knob:
    """One attribution switch: disables a named mitigation group.

    ``disable`` maps a config to the same config with this group off —
    the model analogue of appending one boot parameter.
    """

    name: str
    boot_param: str
    description: str
    disable: Callable[[MitigationConfig], MitigationConfig]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Knob {self.name} ({self.boot_param})>"


def _disable_pti(c: MitigationConfig) -> MitigationConfig:
    return c.replace(pti=False)


def _disable_mds(c: MitigationConfig) -> MitigationConfig:
    return c.replace(mds_verw=False, mds_smt_off=False)


def _disable_v2(c: MitigationConfig) -> MitigationConfig:
    return c.replace(
        v2_strategy=V2Strategy.NONE, v2_rsb_stuffing=False, v2_ibpb=False
    )


def _disable_v1(c: MitigationConfig) -> MitigationConfig:
    return c.replace(v1_lfence_swapgs=False, v1_usercopy_masking=False)


def _disable_l1tf(c: MitigationConfig) -> MitigationConfig:
    return c.replace(pte_inversion=False, l1d_flush_on_vmentry=False)


def _disable_lazyfp(c: MitigationConfig) -> MitigationConfig:
    return c.replace(eager_fpu=False)


def _disable_ssbd(c: MitigationConfig) -> MitigationConfig:
    return c.replace(ssbd_mode=SSBDMode.OFF)


def _disable_js_index_masking(c: MitigationConfig) -> MitigationConfig:
    return c.replace(js_index_masking=False)


def _disable_js_object_guards(c: MitigationConfig) -> MitigationConfig:
    return c.replace(js_object_guards=False)


def _disable_js_other(c: MitigationConfig) -> MitigationConfig:
    return c.replace(js_other=False)


#: Kernel-side knobs in the order the paper's Figure 2 stacks them.
KERNEL_KNOBS: Tuple[Knob, ...] = (
    Knob("pti", "nopti", "Meltdown: kernel page table isolation", _disable_pti),
    Knob("mds", "mds=off", "MDS: verw buffer clearing on kernel exit", _disable_mds),
    Knob("spectre_v2", "nospectre_v2",
         "Spectre V2: retpolines/eIBRS, IBPB, RSB stuffing", _disable_v2),
    Knob("spectre_v1", "nospectre_v1",
         "Spectre V1: lfence after swapgs, usercopy masking", _disable_v1),
    Knob("l1tf", "l1tf=off", "L1TF: PTE inversion, L1D flush on VM entry",
         _disable_l1tf),
    Knob("lazyfp", "eagerfpu=off", "LazyFP: eager FPU save/restore",
         _disable_lazyfp),
    Knob("ssbd", "spec_store_bypass_disable=off",
         "Speculative Store Bypass Disable policy", _disable_ssbd),
)

#: Firefox-side knobs in the order the paper's Figure 3 stacks them.
JS_KNOBS: Tuple[Knob, ...] = (
    Knob("js_index_masking", "javascript.options.spectre.index_masking",
         "Spectre V1: array index masking cmov", _disable_js_index_masking),
    Knob("js_object_guards", "javascript.options.spectre.object_mitigations",
         "Spectre V1: object type-guard masking", _disable_js_object_guards),
    Knob("js_other", "javascript.options.spectre.*",
         "Other JS hardening: pointer poisoning, timer clamping",
         _disable_js_other),
)

ALL_KNOBS: Tuple[Knob, ...] = KERNEL_KNOBS + JS_KNOBS

KNOBS_BY_NAME: Dict[str, Knob] = {k.name: k for k in ALL_KNOBS}

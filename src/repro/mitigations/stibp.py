"""STIBP: Single Thread Indirect Branch Predictors.

The cross-hyperthread variant of Spectre V2: siblings share the BTB, so
an attacker thread can steer the victim thread's indirect branches
without any privilege transition at all.  STIBP (``IA32_SPEC_CTRL`` bit
1) makes entries trained by the other thread invisible.  Linux manages
it with the same ``spectre_v2_user=`` policy as IBPB — on for tasks that
asked via prctl/seccomp.

This module provides the MSR sequence and a mechanical demonstration on
an :class:`~repro.cpu.smt.SMTCore`.
"""

from __future__ import annotations

import functools

from typing import List, Tuple

from ..cpu import isa
from ..cpu.isa import Instruction
from ..cpu.modes import Mode
from ..cpu.msr import IA32_SPEC_CTRL, SPEC_CTRL_STIBP
from ..cpu.smt import SMTCore

#: Demonstration layout (distinct from the other demos' regions).
VICTIM_BRANCH_PC = 0x45_1000
GADGET_ADDRESS = 0x45_2000
BENIGN_ADDRESS = 0x45_3000
LEAK_LINE = 0x7B00_0000_0000


@functools.lru_cache(maxsize=None)
def stibp_enable_sequence() -> Tuple[Instruction, ...]:
    """MSR write turning STIBP on for the current thread.  Cached for
    stable block-engine identity."""
    return (isa.wrmsr(IA32_SPEC_CTRL, SPEC_CTRL_STIBP),)


def attempt_cross_thread_injection(core: SMTCore, stibp: bool = False) -> bool:
    """Spectre V2 across hyperthreads.

    Thread 1 (attacker) trains the shared BTB toward a gadget; thread 0
    (victim) executes the same branch site with a benign target.  Without
    STIBP the victim transiently runs the gadget; with STIBP the foreign
    entry is invisible.  Returns True when the gadget's cache footprint
    appears.
    """
    victim, attacker = core.thread0, core.thread1
    victim.register_code(GADGET_ADDRESS, [isa.load(LEAK_LINE)])
    victim.register_code(BENIGN_ADDRESS, [isa.nop()])
    victim.caches.flush_line(LEAK_LINE)

    if stibp:
        victim.run(stibp_enable_sequence())

    # Attacker thread trains the shared predictor (same mode: both user).
    attacker.mode = Mode.USER
    for _ in range(4):
        attacker.execute(isa.branch_indirect(GADGET_ADDRESS,
                                             pc=VICTIM_BRANCH_PC))

    # Victim thread executes the branch with its real, benign target.
    victim.mode = Mode.USER
    victim.execute(isa.branch_indirect(BENIGN_ADDRESS, pc=VICTIM_BRANCH_PC))
    return victim.caches.probe_l1(LEAK_LINE)

"""Branch Target Buffer (BTB) and Branch History Buffer (BHB) models.

This is the mechanism under study in section 6 of the paper.  The BTB maps
branch instruction addresses to predicted targets; poisoning it is the core
of Spectre V2.  Different microarchitectures expose observably different
behaviour, which the paper measures with its divider-counter probe and
summarizes in Tables 9 and 10.  We encode each behaviour mechanistically:

* **Untagged BTB** (Broadwell, Skylake, Zen, Zen 2): any mode can train an
  entry that any other mode will consume.  Every cell of Table 9 is a check
  mark for these parts.
* **Mode-tagged BTB** (Cascade Lake, Ice Lake Client/Server — the eIBRS
  parts): entries carry the privilege mode they were trained in and only
  predict in the same mode, so user -> kernel poisoning fails even with all
  mitigations disabled (the blank user->kernel cells of Table 9).
* **IBRS blocks all prediction** (Broadwell, Skylake, Zen 2, Zen 3): with
  ``SPEC_CTRL.IBRS`` set, indirect prediction is disabled entirely — the
  all-blank rows of Table 10 and the "IBRS was disabling all indirect
  branch prediction both in user space and kernel space" finding (6.2.1).
* **eIBRS blocks kernel-mode prediction on Ice Lake Client**: with IBRS
  set, Ice Lake Client additionally stops predicting kernel-mode indirect
  branches (the blank kernel->kernel cells in Table 10 for that part).
* **Opaque indexing (Zen 3)**: the paper could not poison the Zen 3 BTB at
  all and suspects a Branch History Buffer change.  We model the BTB index
  as incorporating an opaque per-install history tag the probe cannot
  reproduce, so trained entries never redirect transient execution, while
  committed-path prediction (which replays the identical history) still
  works for timing purposes.
* **IBPB poisons-to-harmless**: the paper observed that indirect branches
  *after* an IBPB still count as mispredicted, and speculates the barrier
  rewrites entries to a harmless gadget instead of invalidating them.  We
  model exactly that: after a barrier, entries predict the harmless target
  ``HARMLESS_TARGET`` (address 0, where no code lives).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .modes import Mode

#: Target installed by an IBPB.  No code is ever registered at address 0,
#: so a transient window launched there executes nothing.
HARMLESS_TARGET = 0


class BranchHistoryBuffer:
    """Rolling hash over the last N branch PCs.

    Used for two things: giving the probe's "fill branch history buffer"
    loop something real to do, and implementing the Zen 3 opaque-index
    behaviour (entries are tagged with the history hash *plus* a hidden
    salt, below).
    """

    def __init__(self, depth: int = 29) -> None:
        self.depth = depth
        self._hash = 0

    def push(self, pc: int) -> None:
        # A simple invertible-ish mix; only equality matters to the model.
        self._hash = ((self._hash << 3) ^ pc ^ (self._hash >> (self.depth - 1))) & (
            (1 << self.depth) - 1
        )

    def push_many(self, pcs) -> None:
        """Fold a run of branch PCs into the history hash in one call
        (the block engine's batched replay of recorded pushes)."""
        h = self._hash
        shift = self.depth - 1
        mask = (1 << self.depth) - 1
        for pc in pcs:
            h = ((h << 3) ^ pc ^ (h >> shift)) & mask
        self._hash = h

    @property
    def value(self) -> int:
        return self._hash

    def reset(self) -> None:
        self._hash = 0


class BranchTargetBuffer:
    """Direct-mapped-by-PC branch target buffer with optional tagging.

    Parameters
    ----------
    mode_tagged:
        Entries only predict in the privilege mode that trained them.
    opaque_index:
        Zen 3 behaviour: entries are additionally tagged with a hidden salt
        that changes on every install, so a *re-used* entry never matches —
        predictions from trained entries are suppressed for transient
        redirect purposes.  (See module docstring.)
    entries:
        Capacity; real BTBs hold a few thousand entries.
    """

    def __init__(
        self,
        entries: int = 4096,
        mode_tagged: bool = False,
        opaque_index: bool = False,
    ) -> None:
        self.capacity = entries
        self.mode_tagged = mode_tagged
        self.opaque_index = opaque_index
        # pc -> (target, mode, salt, thread)
        self._table: Dict[int, Tuple[int, Mode, int, int]] = {}
        self._install_counter = 0
        #: Optional leakage tracer hook (``repro.obs.leakage``).
        self.observer = None

    def __len__(self) -> int:
        return len(self._table)

    def train(self, pc: int, target: int, mode: Mode, thread: int = 0) -> None:
        """Record the committed target of the indirect branch at ``pc``.

        ``thread`` identifies the SMT sibling that trained the entry: the
        BTB is competitively shared between hyperthreads, which is the
        cross-thread Spectre V2 surface STIBP exists to close.
        """
        self._install_counter += 1
        salt = self._install_counter if self.opaque_index else 0
        if pc not in self._table and len(self._table) >= self.capacity:
            # Evict an arbitrary entry; fine-grained replacement is
            # irrelevant to the experiments, which touch few branches.
            self._table.pop(next(iter(self._table)))
        self._table[pc] = (target, mode, salt, thread)
        if self.observer is not None:
            self.observer.btb_train(pc, target, mode)

    def train_many(self, installs) -> None:
        """Install a run of ``(pc, target, mode, thread)`` entries in
        order (the block engine's batched replay of recorded trains)."""
        table = self._table
        capacity = self.capacity
        opaque = self.opaque_index
        counter = self._install_counter
        observer = self.observer
        for pc, target, mode, thread in installs:
            counter += 1
            if pc not in table and len(table) >= capacity:
                table.pop(next(iter(table)))
            table[pc] = (target, mode, counter if opaque else 0, thread)
            if observer is not None:
                observer.btb_train(pc, target, mode)
        self._install_counter = counter

    def lookup(self, pc: int, mode: Mode, thread: int = 0,
               stibp: bool = False) -> Optional[int]:
        """Predicted target for the branch at ``pc``, or None on miss.

        Mode tagging is enforced here; IBRS policy is enforced by the
        machine (it depends on MSR state and per-CPU behaviour flags).
        With ``stibp`` set, entries trained by a *different* SMT thread
        are invisible (Single Thread Indirect Branch Predictors).
        """
        entry = self._table.get(pc)
        if entry is None:
            return None
        target, trained_mode, _salt, trained_thread = entry
        if self.mode_tagged and trained_mode is not mode:
            return None
        if stibp and trained_thread != thread:
            return None
        return target

    def redirect_target(self, pc: int, mode: Mode, thread: int = 0,
                        stibp: bool = False) -> Optional[int]:
        """Target that *transient execution* would be steered to.

        Identical to :meth:`lookup` except on opaque-index parts (Zen 3),
        where the probe-visible redirect never fires: the hidden salt means
        the stored entry can't be matched by a later dynamic instance.
        """
        if self.opaque_index:
            return None
        return self.lookup(pc, mode, thread=thread, stibp=stibp)

    def barrier(self) -> int:
        """Indirect Branch Prediction Barrier (IBPB).

        Rewrites every entry to the harmless target (keeping it "valid" so
        subsequent branches mispredict, matching the paper's performance
        counter observation).  Returns the number of entries rewritten.
        """
        rewritten = 0
        for pc, (_target, mode, salt, thread) in list(self._table.items()):
            self._table[pc] = (HARMLESS_TARGET, mode, salt, thread)
            rewritten += 1
        if self.observer is not None:
            self.observer.btb_barrier()
        return rewritten

    def flush(self) -> int:
        """Hard invalidation (used by the eIBRS periodic kernel-entry scrub)."""
        count = len(self._table)
        self._table.clear()
        if self.observer is not None:
            self.observer.btb_flush()
        return count

    def contains(self, pc: int) -> bool:
        return pc in self._table

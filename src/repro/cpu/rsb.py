"""Return Stack Buffer (RSB) model.

The RSB predicts ``ret`` targets by mirroring the call stack in hardware.
Two mitigations interact with it:

* **Generic retpolines** deliberately capture speculation with a
  ``call``/``ret`` pair, relying on the RSB to steer transient execution
  into a safe pause loop (paper Figure 4).
* **RSB stuffing** fills the buffer with harmless entries on context
  switches so that an interrupted user-space retpoline can never consume a
  stale entry, and as a defence against SpectreRSB (paper section 5.3,
  Table 7).

On RSB underflow (more returns than calls), pre-Skylake parts simply stall,
while Skylake-and-later Intel parts fall back to the BTB — the behaviour
that makes SpectreRSB and RSB-underflow attacks interesting.  The machine
consults :attr:`underflow_falls_back_to_btb` to decide.
"""

from __future__ import annotations

from typing import List, Optional

#: Harmless target used by the stuffing sequence (no code lives at 0).
BENIGN_ENTRY = 0


class ReturnStackBuffer:
    """A fixed-depth hardware return address stack."""

    def __init__(self, depth: int = 32, underflow_falls_back_to_btb: bool = False) -> None:
        self.depth = depth
        self.underflow_falls_back_to_btb = underflow_falls_back_to_btb
        self._stack: List[int] = []
        self.underflows = 0
        #: Optional leakage tracer hook (``repro.obs.leakage``).
        self.observer = None

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, return_address: int) -> None:
        """Record a ``call``'s return address; oldest entries fall off."""
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)
        if self.observer is not None:
            self.observer.rsb_push(return_address)

    def pop(self) -> Optional[int]:
        """Predict a ``ret``'s target; None signals underflow."""
        if self.observer is not None:
            self.observer.rsb_pop()
        if self._stack:
            return self._stack.pop()
        self.underflows += 1
        return None

    def stuff(self) -> int:
        """Fill the whole buffer with benign entries (RSB stuffing).

        Returns the number of entries written, i.e. the buffer depth; the
        per-CPU cycle cost of this sequence is Table 7 of the paper.
        """
        if self.observer is not None:
            self.observer.rsb_stuff()
        self._stack = [BENIGN_ENTRY] * self.depth
        return self.depth

    def clear(self) -> None:
        self._stack.clear()
        if self.observer is not None:
            self.observer.rsb_clear()

"""Performance counters and the timestamp counter.

The paper's speculation probe (Figure 6) detects transient execution by
watching the ``ARITH.DIVIDER_ACTIVE`` performance counter: a divide placed
at a landing pad increments the counter even when the divide is executed
only transiently and later squashed.  We model exactly that property: the
:class:`~repro.cpu.machine.Machine` charges divider-active cycles for both
committed and transient ``DIV`` instructions, while most other counters only
advance on commit.

The simulated timestamp counter advances with every cycle the machine
accounts, so ``rdtsc``-bracketed timing loops behave like the paper's
microbenchmarks (section 5: "we rely on the timestamp counter ... and
average over one million runs").

Counter names are canonical: every name the simulator charges is defined
here and collected in :data:`ALL_COUNTERS`.  A typo in a ``bump`` call
would otherwise create a fresh counter and silently drop events; strict
counter files (``PerfCounters(strict=True)``) reject unknown names with
:class:`~repro.errors.UnknownCounterError`, and a lint-style test keeps
the rest of the tree free of string literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import UnknownCounterError

#: Canonical counter names.  Use these constants, never string literals.
DIVIDER_ACTIVE = "arith.divider_active"
MISPREDICTED_INDIRECT = "br_misp_retired.indirect"
INSTRUCTIONS_RETIRED = "inst_retired.any"
TRANSIENT_INSTRUCTIONS = "transient.executed"  # model-only visibility aid
BTB_HITS = "btb.hits"
BTB_MISSES = "btb.misses"
L1_MISSES = "l1d.misses"
TLB_MISSES = "dtlb.misses"
STLF_HITS = "stlf.forwarded"
STLF_BLOCKED = "stlf.blocked"
VERW_CLEARS = "verw.clears"
IBPB_COUNT = "ibpb.count"
L1D_FLUSHES = "l1d.flushes"
KERNEL_ENTRIES = "kernel.entries"
BTB_FLUSH_ON_ENTRY = "btb.flush_on_entry"
VM_EXITS = "vm.exits"
CONTEXT_SWITCHES = "sched.context_switches"

#: Every canonical counter name the simulator may charge.
ALL_COUNTERS = frozenset({
    DIVIDER_ACTIVE,
    MISPREDICTED_INDIRECT,
    INSTRUCTIONS_RETIRED,
    TRANSIENT_INSTRUCTIONS,
    BTB_HITS,
    BTB_MISSES,
    L1_MISSES,
    TLB_MISSES,
    STLF_HITS,
    STLF_BLOCKED,
    VERW_CLEARS,
    IBPB_COUNT,
    L1D_FLUSHES,
    KERNEL_ENTRIES,
    BTB_FLUSH_ON_ENTRY,
    VM_EXITS,
    CONTEXT_SWITCHES,
})

__all__ = [
    "DIVIDER_ACTIVE",
    "MISPREDICTED_INDIRECT",
    "INSTRUCTIONS_RETIRED",
    "TRANSIENT_INSTRUCTIONS",
    "BTB_HITS",
    "BTB_MISSES",
    "L1_MISSES",
    "TLB_MISSES",
    "STLF_HITS",
    "STLF_BLOCKED",
    "VERW_CLEARS",
    "IBPB_COUNT",
    "L1D_FLUSHES",
    "KERNEL_ENTRIES",
    "BTB_FLUSH_ON_ENTRY",
    "VM_EXITS",
    "CONTEXT_SWITCHES",
    "ALL_COUNTERS",
    "PerfCounters",
    "require_known",
]


def require_known(name: str) -> str:
    """Validate *name* against the canonical set; returns it unchanged."""
    if name not in ALL_COUNTERS:
        raise UnknownCounterError(name)
    return name


@dataclass
class PerfCounters:
    """A bag of monotonically increasing event counters plus the TSC.

    ``tsc`` counts simulated cycles.  Event counters are stored sparsely in
    a dict; reading an untouched counter returns zero, like a freshly
    programmed PMC.

    When a cycle ledger is attached (``ledger`` field), every TSC advance
    is simultaneously filed under the ledger's current attribution tag —
    ``add_cycles`` is the *only* place the TSC moves, which is what makes
    the ledger's sum-to-TSC invariant hold by construction.

    ``strict=True`` rejects counter names outside :data:`ALL_COUNTERS`.
    """

    tsc: int = 0
    events: Dict[str, int] = field(default_factory=dict)
    ledger: Optional[object] = field(default=None, repr=False, compare=False)
    strict: bool = field(default=False, repr=False, compare=False)

    def add_cycles(self, cycles: int) -> None:
        """Advance the timestamp counter (and the attached ledger, if any)."""
        self.tsc += cycles
        if self.ledger is not None:
            self.ledger.charge(cycles)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an event counter."""
        if self.strict and name not in ALL_COUNTERS:
            raise UnknownCounterError(name)
        self.events[name] = self.events.get(name, 0) + amount

    def read(self, name: str) -> int:
        """Read an event counter (``rdpmc`` analogue)."""
        if self.strict and name not in ALL_COUNTERS:
            raise UnknownCounterError(name)
        return self.events.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all event counters, for before/after comparisons."""
        return dict(self.events)

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Difference between the current counters and ``before``.

        Only counters that changed appear in the result, which keeps probe
        output readable.
        """
        out: Dict[str, int] = {}
        for name, value in self.events.items():
            diff = value - before.get(name, 0)
            if diff:
                out[name] = diff
        return out

    def reset(self) -> None:
        """Zero every event counter (but not the TSC, which is free running)."""
        self.events.clear()

"""Conditional branch predictor: 2-bit saturating counters per PC.

Spectre V1's opening move is *mistraining a conditional branch* — run the
bounds check in-bounds many times so the predictor learns "taken", then
present the out-of-bounds index and the body runs transiently.  The
mitigations modules demonstrate that end state directly via
``Machine.speculate``; this predictor supplies the front half, so the
training loop itself can be executed and observed (and so conditional
branches have honest dynamic costs).

Standard Smith predictor: each branch PC indexes a 2-bit counter
(0,1 = predict not-taken; 2,3 = predict taken), incremented on taken,
decremented on not-taken, saturating at both ends.
"""

from __future__ import annotations

from typing import Dict

STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


class ConditionalPredictor:
    """Per-PC 2-bit saturating counter table."""

    def __init__(self, initial: int = WEAK_NOT_TAKEN) -> None:
        if not STRONG_NOT_TAKEN <= initial <= STRONG_TAKEN:
            raise ValueError("initial state must be a 2-bit counter value")
        self._initial = initial
        self._counters: Dict[int, int] = {}
        #: Optional event-timeline hook (``repro.obs.timeline``); None
        #: when recording is off, so updates pay one identity test.
        self.observer = None

    def state(self, pc: int) -> int:
        return self._counters.get(pc, self._initial)

    def predict(self, pc: int) -> bool:
        """True = predict taken."""
        return self.state(pc) >= WEAK_TAKEN

    def update(self, pc: int, taken: bool) -> None:
        state = self.state(pc)
        if taken:
            state = min(STRONG_TAKEN, state + 1)
        else:
            state = max(STRONG_NOT_TAKEN, state - 1)
        self._counters[pc] = state
        if self.observer is not None:
            self.observer.cond_update(pc, taken, state)

    def flush(self) -> None:
        self._counters.clear()
        if self.observer is not None:
            self.observer.cond_flush()

    def __len__(self) -> int:
        return len(self._counters)

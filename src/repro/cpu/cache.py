"""Set-associative cache model.

A deliberately small but mechanistic cache: enough to make cache-timing
side channels (the *transmit* half of every Spectre gadget), the L1TF
flush-on-VM-entry cost, and warm/cold timing differences real, without
simulating full coherence.

Latency accounting is done by the machine: a load that hits L1 costs the
CPU's ``load_l1`` cycles, an L1 miss that hits L2 costs ``load_l2``, and a
full miss costs ``load_mem``.  The cache itself only answers "hit or miss"
and tracks line residency with LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional


class Cache:
    """One level of set-associative cache with LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    ways:
        Associativity.
    line_bytes:
        Cache line size (64 on every CPU we model).
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        # Each set is an OrderedDict mapping line tag -> True, in LRU order
        # (oldest first).  OrderedDict.move_to_end gives O(1) LRU updates.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # -- address helpers ----------------------------------------------------

    def _line(self, address: int) -> int:
        return address // self.line_bytes

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    # -- cache operations ---------------------------------------------------

    def access(self, address: int) -> bool:
        """Access one address; return True on hit.  Misses fill the line."""
        line = self._line(address)
        current = self._sets[self._set_index(line)]
        if line in current:
            current.move_to_end(line)
            return True
        current[line] = True
        if len(current) > self.ways:
            current.popitem(last=False)
        return False

    def probe(self, address: int) -> bool:
        """Check residency without disturbing LRU state or filling.

        This is what a flush+reload attacker's timing measurement observes.
        """
        line = self._line(address)
        return line in self._sets[self._set_index(line)]

    def flush_line(self, address: int) -> None:
        """``clflush`` one line."""
        line = self._line(address)
        self._sets[self._set_index(line)].pop(line, None)

    def flush_all(self) -> int:
        """Flush the whole cache; returns the number of lines evicted.

        Used by the L1TF mitigation (``IA32_FLUSH_CMD``) before VM entry.
        The eviction count lets the machine charge a realistic refill cost.
        """
        count = sum(len(s) for s in self._sets)
        for s in self._sets:
            s.clear()
        return count

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def __contains__(self, address: int) -> bool:
        return self.probe(address)


class CacheHierarchy:
    """A two-level private cache hierarchy (L1D + L2).

    ``access`` returns the level that satisfied the access: ``1``, ``2`` or
    ``0`` for memory.  Lines are filled inclusively into both levels, which
    is close enough to the Intel/AMD designs for timing purposes.
    """

    def __init__(self, l1: Cache, l2: Cache) -> None:
        self.l1 = l1
        self.l2 = l2
        #: Optional leakage tracer hook (``repro.obs.leakage``).
        self.observer = None

    def access(self, address: int) -> int:
        if self.l1.access(address):
            level = 1
        elif self.l2.access(address):
            level = 2
        else:
            level = 0
        if self.observer is not None:
            self.observer.cache_fill(address, level)
        return level

    def probe_l1(self, address: int) -> bool:
        return self.l1.probe(address)

    def flush_line(self, address: int) -> None:
        self.l1.flush_line(address)
        self.l2.flush_line(address)
        if self.observer is not None:
            self.observer.cache_flush(address)

    def flush_l1(self) -> int:
        count = self.l1.flush_all()
        if self.observer is not None:
            self.observer.cache_flush_l1()
        return count

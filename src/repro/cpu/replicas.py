"""Batched structure-of-arrays (SoA) replica execution.

The section-4.1 methodology repeats every (cpu, policy, workload) cell
until the 95% confidence interval is tight, so *replica* throughput —
not single-run latency — is the wall-clock floor of the full study grid.
This module executes N seeded replicas of one cell in lockstep instead
of one machine at a time:

* Replica ``i`` is *defined* as a full simulator run whose machines are
  seeded with :func:`replica_seed` ``(seed, i)``.  Replica 0 keeps the
  cell's own seed, so a one-replica batch is bit-identical to the
  pre-batch code path.
* The machine is deterministic except for a single RNG consumer: the
  eIBRS periodic BTB-scrub interval (paper section 6.2.2), redrawn once
  at construction and once per scrub firing.  Two replicas whose scrub
  *firing schedules* coincide therefore execute bit-identically, and a
  whole batch collapses onto one representative execution.
* :func:`run_replicas` runs one **probe** replica under a
  :class:`ScrubProbe` (machines register themselves and report every
  scrub-eligible kernel entry — a count, never a behavior change),
  derives every other replica's firing schedule straight from its seed
  via :func:`firing_schedule` *without running it*, and broadcasts the
  probe's metric / cycle / counter deltas into the per-replica
  structure-of-arrays accumulators of a :class:`ReplicaBatch` in one
  vector op per array.
* Replicas whose schedule diverges from the probe's fall back to scalar
  execution — the existing interpreter / block-engine path, which is
  exact by construction — and the batch re-converges afterward: their
  rows are filled individually and subsequent consumers (noise
  sampling, telemetry) see one dense SoA again.

On the five CPU models without the periodic scrub — and on scrub-capable
parts whenever the policy leaves eIBRS disabled — no machine consults
its RNG at a kernel entry, every schedule is trivially equal, and a
batch of N replicas costs one simulation instead of N.  That is the
steady state :mod:`benchmarks.bench_replicas` gates at >= 5x.

Why the schedule comparison is sound: the committed instruction stream
is program-defined, never timing-defined, so the number and order of
scrub-eligible kernel entries is identical across seeds.  Given equal
firing positions, every ``btb.flush()``, extra-cycle charge and ledger
posting lands at the same point of the same stream — the runs are the
same run.  Machines a cell creates at a fixed internal offset from the
replica seed (e.g. :class:`~repro.cpu.smt.SMTCore`'s second thread at
``seed + 1``) are compared at the same offset; a machine whose seed the
runner pins outright compares equal under any offset shift or falls
back to scalar, which is always correct, merely slower.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..core.stats import derive_seed
from .machine import use_scrub_probe


def replica_seed(seed: int, index: int) -> int:
    """Machine seed of replica ``index`` of a cell seeded ``seed``.

    Replica 0 *is* the cell's own seed: a batch of one executes exactly
    the run the scalar code path always executed.
    """
    if index < 0:
        raise ValueError("replica index must be >= 0")
    if index == 0:
        return seed
    return derive_seed(seed, "replica", str(index))


def firing_schedule(seed: int, low: int, high: int,
                    entries: int) -> Tuple[int, ...]:
    """Scrub firing positions (1-based eligible-entry indexes) for a
    machine seeded ``seed`` across ``entries`` scrub-eligible kernel
    entries.

    Mirrors :class:`~repro.cpu.machine.Machine` draw-for-draw: one
    interval draw at construction, then one per firing — the countdown
    first reaches zero at the drawn interval's entry, so positions are
    the running sum of the draws, truncated at ``entries``.
    """
    if entries <= 0:
        return ()
    rng = np.random.default_rng(seed)
    positions: List[int] = []
    position = int(rng.integers(low, high + 1))
    while position <= entries:
        positions.append(position)
        position += int(rng.integers(low, high + 1))
    return tuple(positions)


class ScrubProbe:
    """Per-run registry of machines and their scrub-eligible entries.

    Installed ambiently via
    :func:`~repro.cpu.machine.use_scrub_probe`; every machine built
    inside the block registers itself (keeping its construction seed)
    and bumps its slot once per scrub-eligible kernel entry.  Purely
    observational — a probed run is bit-identical to an unprobed one.
    """

    def __init__(self) -> None:
        self.machines: List[object] = []
        self.seeds: List[int] = []
        self.entries: List[int] = []

    def register(self, machine, seed: int) -> int:
        self.machines.append(machine)
        self.seeds.append(seed)
        self.entries.append(0)
        return len(self.entries) - 1

    def count(self, slot: int) -> None:
        self.entries[slot] += 1

    def total_tsc(self) -> int:
        return sum(m.counters.tsc for m in self.machines)

    def total_counters(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for machine in self.machines:
            for name, value in machine.counters.snapshot().items():
                out[name] = out.get(name, 0) + value
        return out

    def diverges(self, probe_seed: int, candidate_seed: int) -> bool:
        """Would a replica seeded ``candidate_seed`` execute differently
        from the probed run seeded ``probe_seed``?

        Each registered machine is compared at its seed offset from the
        probe seed, so sibling machines constructed at ``seed + k``
        (SMT pairs) are checked against ``candidate_seed + k``.
        """
        for machine, seed, entries in zip(self.machines, self.seeds,
                                          self.entries):
            if entries <= 0:
                continue
            offset = seed - probe_seed
            low, high = machine.cpu.predictor.eibrs_scrub_period
            if (firing_schedule(candidate_seed + offset, low, high, entries)
                    != firing_schedule(seed, low, high, entries)):
                return True
        return False


class ReplicaStats:
    """Module-wide replica-batch counters (`engine.EngineStats` idiom).

    ``batched`` counts replicas served by the vectorized broadcast,
    ``scalar_fallbacks`` those that re-ran scalar after a schedule
    divergence; the probe run itself is counted separately.  Workers
    ship :meth:`as_dict` home and the parent :meth:`merge`\\ s, exactly
    like the block-engine counters.
    """

    __slots__ = ("batches", "replicas", "batched", "scalar_fallbacks",
                 "probe_runs")

    FIELDS = ("batches", "replicas", "batched", "scalar_fallbacks",
              "probe_runs")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def merge(self, state: Dict[str, int]) -> None:
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + int(state.get(name, 0)))

    def hit_rate(self) -> float:
        """Fraction of non-probe replicas served by the broadcast.

        1.0 when nothing was eligible (every batch had a single replica):
        vacuously, no replica needed a scalar fallback.
        """
        eligible = self.batched + self.scalar_fallbacks
        return self.batched / eligible if eligible else 1.0

    def summary(self) -> str:
        return (f"{self.replicas} replicas in {self.batches} batches: "
                f"{self.batched} batched, {self.scalar_fallbacks} scalar "
                f"fallbacks, {self.probe_runs} probe runs "
                f"({100.0 * self.hit_rate():.1f}% batch hit rate)")


#: Process-wide counters, reset per worker cell like the engine's.
STATS = ReplicaStats()


def publish_metrics(registry) -> None:
    """Copy the replica counters into a metrics registry as
    ``replicas.<name>`` counters (zero-valued fields are skipped)."""
    for name, value in STATS.as_dict().items():
        if value:
            registry.counter(f"replicas.{name}").inc(value)


class ReplicaBatch:
    """Structure-of-arrays accumulators for one cell's replica batch.

    One row per replica; columns are NumPy arrays, so applying the
    probe's memoized run delta to every converged replica is one vector
    op per column rather than a Python loop over machines.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one replica")
        self.n = n
        #: Deterministic metric per replica (the cell runner's value).
        self.values = np.zeros(n, dtype=float)
        #: Simulated cycles per replica, summed over the run's machines.
        self.tsc = np.zeros(n, dtype=np.int64)
        #: Event-counter totals per replica: name -> int64 column.
        self.counters: Dict[str, np.ndarray] = {}
        #: True where the probe's execution was broadcast (replica 0 is
        #: the probe itself); False rows re-ran scalar.
        self.converged = np.zeros(n, dtype=bool)

    def _counter_column(self, name: str) -> np.ndarray:
        column = self.counters.get(name)
        if column is None:
            column = np.zeros(self.n, dtype=np.int64)
            self.counters[name] = column
        return column

    def broadcast(self, mask: np.ndarray, value: float, tsc: int,
                  counters: Dict[str, int]) -> None:
        """Apply one run's delta to every replica in ``mask`` at once."""
        self.values[mask] = value
        self.tsc[mask] += tsc
        for name, amount in counters.items():
            self._counter_column(name)[mask] += amount

    def fill_scalar(self, index: int, value: float, tsc: int,
                    counters: Dict[str, int]) -> None:
        """Re-converge one divergent replica from its scalar run."""
        self.values[index] = value
        self.tsc[index] += tsc
        for name, amount in counters.items():
            self._counter_column(name)[index] += amount


def run_replicas(run_fn: Callable[[int], float], seed: int,
                 n: int = 1) -> ReplicaBatch:
    """Execute ``n`` seeded replicas of one cell, batched.

    ``run_fn(machine_seed)`` must run the cell's full simulation with
    its machines seeded from ``machine_seed`` and return the
    deterministic metric.  The first replica runs for real (the probe);
    every replica whose scrub firing schedule provably matches is filled
    by SoA broadcast, the rest re-run scalar and the batch re-converges.
    The returned values are bit-identical to ``n`` independent scalar
    runs — the differential suite in ``tests/core/test_replicas.py``
    enforces this across the 8-CPU x policy grid.
    """
    batch = ReplicaBatch(n)
    STATS.batches += 1
    STATS.replicas += n

    probe_seed = replica_seed(seed, 0)
    probe = ScrubProbe()
    with use_scrub_probe(probe):
        probe_value = float(run_fn(probe_seed))
    STATS.probe_runs += 1

    mask = np.zeros(n, dtype=bool)
    mask[0] = True
    divergent: List[int] = []
    for index in range(1, n):
        if probe.diverges(probe_seed, replica_seed(seed, index)):
            divergent.append(index)
        else:
            mask[index] = True
    batch.converged = mask
    batch.broadcast(mask, probe_value, probe.total_tsc(),
                    probe.total_counters())
    STATS.batched += int(mask.sum()) - 1

    for index in divergent:
        scalar = ScrubProbe()
        with use_scrub_probe(scalar):
            value = float(run_fn(replica_seed(seed, index)))
        batch.fill_scalar(index, value, scalar.total_tsc(),
                          scalar.total_counters())
        STATS.scalar_fallbacks += 1
    return batch

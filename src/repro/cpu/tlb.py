"""TLB model with PCID (process-context identifier) tagging.

Page table isolation (the Meltdown mitigation) switches the root page table
on every user/kernel crossing.  Without PCIDs each ``mov %cr3`` would flush
the TLB, adding large indirect costs.  The paper (section 5.1) notes that
both Meltdown-vulnerable CPUs it studies support PCIDs, which "allow many
TLB flushes to be avoided, and makes TLB impacts marginal compared to the
direct cost of switching the root page table pointer".  Our model lets us
reproduce that claim (and ablate it: ``benchmarks/bench_ablate_pcid.py``).

Entries are tagged ``(pcid, virtual page)``.  A cr3 write with the NOFLUSH
bit (the PCID-preserving form Linux uses) keeps entries alive; a legacy
write wipes everything except global entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Tuple

PAGE_SIZE = 4096


class TLB:
    """A finite, fully associative, LRU, PCID-tagged TLB."""

    def __init__(self, entries: int = 1536, supports_pcid: bool = True) -> None:
        self.capacity = entries
        self.supports_pcid = supports_pcid
        self._entries: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self._global_pages: Set[int] = set()
        self.current_pcid = 0
        #: Optional leakage tracer hook (``repro.obs.leakage``).
        self.observer = None

    # -- address helpers ----------------------------------------------------

    @staticmethod
    def page_of(address: int) -> int:
        return address // PAGE_SIZE

    # -- lookups -------------------------------------------------------------

    def access(self, address: int) -> bool:
        """Translate one address; returns True on TLB hit, filling on miss."""
        page = self.page_of(address)
        if page in self._global_pages:
            return True
        key = (self.current_pcid if self.supports_pcid else 0, page)
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self._entries[key] = True
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if self.observer is not None:
            self.observer.tlb_fill(page)
        return False

    def insert_global(self, address: int) -> None:
        """Mark a page global (kernel text/data without KPTI)."""
        self._global_pages.add(self.page_of(address))

    # -- cr3 switching --------------------------------------------------------

    def switch_context(self, pcid: int, preserve: Optional[bool] = None) -> int:
        """Model a ``mov %cr3`` to a page table tagged with ``pcid``.

        Returns the number of entries invalidated (zero when PCIDs preserve
        them).  ``preserve`` defaults to whether the hardware supports
        PCIDs, mirroring Linux: it sets the NOFLUSH bit whenever it can.
        """
        if preserve is None:
            preserve = self.supports_pcid
        self.current_pcid = pcid if self.supports_pcid else 0
        if preserve and self.supports_pcid:
            return 0
        invalidated = len(self._entries)
        self._entries.clear()
        if self.observer is not None:
            self.observer.tlb_flush(invalidated)
        return invalidated

    def flush_all(self, include_global: bool = False) -> int:
        """Full TLB shootdown."""
        invalidated = len(self._entries)
        self._entries.clear()
        if include_global:
            invalidated += len(self._global_pages)
            self._global_pages.clear()
        if self.observer is not None:
            self.observer.tlb_flush(invalidated)
        return invalidated

    def resident(self) -> int:
        return len(self._entries)

"""Model-specific registers relevant to transient execution mitigations.

The paper's mitigations are controlled through a handful of architectural
MSRs; we model exactly those:

* ``IA32_SPEC_CTRL`` (0x48) — bit 0 is IBRS, bit 1 is STIBP, bit 2 is SSBD.
  Writing IBRS on every kernel entry is the "original IBRS" mitigation; on
  eIBRS parts the bit is set once at boot (paper section 5.3 / 6.2).
* ``IA32_PRED_CMD`` (0x49) — writing bit 0 triggers an Indirect Branch
  Prediction Barrier (IBPB), used on context switches (Table 6).
* ``IA32_ARCH_CAPABILITIES`` (0x10A) — read-only enumeration of hardware
  immunity (RDCL_NO for Meltdown, MDS_NO, SSB_NO, ...).  The paper notes
  (section 4.3) that no shipping CPU sets SSB_NO.
* ``IA32_FLUSH_CMD`` (0x10B) — writing bit 0 flushes the L1D cache, the
  L1TF hypervisor mitigation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import UnsupportedFeatureError

# MSR indices (architectural values, for fidelity)
IA32_SPEC_CTRL = 0x48
IA32_PRED_CMD = 0x49
IA32_ARCH_CAPABILITIES = 0x10A
IA32_FLUSH_CMD = 0x10B

# IA32_SPEC_CTRL bits
SPEC_CTRL_IBRS = 1 << 0
SPEC_CTRL_STIBP = 1 << 1
SPEC_CTRL_SSBD = 1 << 2

# IA32_PRED_CMD bits
PRED_CMD_IBPB = 1 << 0

# IA32_FLUSH_CMD bits
L1D_FLUSH_BIT = 1 << 0

# IA32_ARCH_CAPABILITIES bits (subset)
ARCH_CAP_RDCL_NO = 1 << 0       # not vulnerable to Meltdown
ARCH_CAP_IBRS_ALL = 1 << 1      # enhanced IBRS
ARCH_CAP_SKIP_L1DFL = 1 << 3    # L1D flush not needed on VM entry
ARCH_CAP_SSB_NO = 1 << 4        # not vulnerable to Speculative Store Bypass
ARCH_CAP_MDS_NO = 1 << 5        # not vulnerable to MDS


class MSRFile:
    """The per-logical-CPU MSR state.

    Side-effectful writes (IBPB, L1D flush) are delivered through callbacks
    registered by the :class:`~repro.cpu.machine.Machine`, keeping this
    module free of circular imports.
    """

    def __init__(
        self,
        supports_ibrs: bool,
        supports_eibrs: bool,
        supports_ssbd: bool,
        arch_capabilities: int,
    ) -> None:
        self.supports_ibrs = supports_ibrs
        self.supports_eibrs = supports_eibrs
        self.supports_ssbd = supports_ssbd
        self._values: Dict[int, int] = {
            IA32_SPEC_CTRL: 0,
            IA32_ARCH_CAPABILITIES: arch_capabilities,
        }
        self._on_ibpb: Optional[Callable[[], None]] = None
        self._on_l1d_flush: Optional[Callable[[], None]] = None

    # -- callback wiring ---------------------------------------------------

    def on_ibpb(self, callback: Callable[[], None]) -> None:
        """Register the action taken when software triggers an IBPB."""
        self._on_ibpb = callback

    def on_l1d_flush(self, callback: Callable[[], None]) -> None:
        """Register the action taken when software flushes the L1D."""
        self._on_l1d_flush = callback

    # -- architectural interface -------------------------------------------

    def read(self, index: int) -> int:
        """Read an MSR; unknown MSRs read as zero (we model a subset)."""
        return self._values.get(index, 0)

    def write(self, index: int, value: int) -> None:
        """Write an MSR, enforcing feature support and firing side effects."""
        if index == IA32_SPEC_CTRL:
            if value & SPEC_CTRL_IBRS and not (self.supports_ibrs or self.supports_eibrs):
                raise UnsupportedFeatureError(
                    "IBRS write on a CPU without IBRS support (paper Table 10 "
                    "marks this N/A for Zen)"
                )
            if value & SPEC_CTRL_SSBD and not self.supports_ssbd:
                raise UnsupportedFeatureError("SSBD not supported on this CPU")
            self._values[index] = value
            return
        if index == IA32_PRED_CMD:
            # Write-only command MSR: reads as zero, writing bit 0 fires IBPB.
            if value & PRED_CMD_IBPB and self._on_ibpb is not None:
                self._on_ibpb()
            return
        if index == IA32_FLUSH_CMD:
            if value & L1D_FLUSH_BIT and self._on_l1d_flush is not None:
                self._on_l1d_flush()
            return
        if index == IA32_ARCH_CAPABILITIES:
            raise UnsupportedFeatureError("IA32_ARCH_CAPABILITIES is read-only")
        self._values[index] = value

    # -- convenience views used by the predictor and store buffer ----------

    @property
    def ibrs_enabled(self) -> bool:
        return bool(self._values[IA32_SPEC_CTRL] & SPEC_CTRL_IBRS)

    @property
    def stibp_enabled(self) -> bool:
        return bool(self._values[IA32_SPEC_CTRL] & SPEC_CTRL_STIBP)

    @property
    def ssbd_enabled(self) -> bool:
        return bool(self._values[IA32_SPEC_CTRL] & SPEC_CTRL_SSBD)

    @property
    def eibrs_active(self) -> bool:
        """True when the CPU has enhanced IBRS and software enabled it."""
        return self.supports_eibrs and self.ibrs_enabled

    def set_ibrs(self, enabled: bool) -> None:
        """Helper used by kernel entry/exit paths to toggle the IBRS bit."""
        value = self._values[IA32_SPEC_CTRL]
        if enabled:
            value |= SPEC_CTRL_IBRS
        else:
            value &= ~SPEC_CTRL_IBRS
        self.write(IA32_SPEC_CTRL, value)

    def set_ssbd(self, enabled: bool) -> None:
        """Helper used by the scheduler when switching SSBD-opted processes."""
        value = self._values[IA32_SPEC_CTRL]
        if enabled:
            value |= SPEC_CTRL_SSBD
        else:
            value &= ~SPEC_CTRL_SSBD
        self.write(IA32_SPEC_CTRL, value)

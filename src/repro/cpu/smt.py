"""SMT: two hyperthreads sharing one physical core's leaky structures.

Simultaneous multithreading is the reason two of the paper's mitigations
exist at all:

* **STIBP** (Single Thread Indirect Branch Predictors) — hyperthreads
  share the BTB, so one sibling can steer the other's indirect branches;
  STIBP makes cross-sibling entries invisible;
* **disabling SMT for MDS** (paper 3.3, Table 1's ``!`` row) — the
  fill/store/load-port buffers are shared *live*, so a sibling can sample
  a victim's data concurrently; no amount of boundary-crossing ``verw``
  helps while both threads run, which is why the only complete fix is to
  turn the sibling off.

:class:`SMTCore` builds two :class:`~repro.cpu.machine.Machine` instances
and aliases the physically shared structures (BTB, BHB is per-thread on
real parts so it stays private, caches, MDS buffers).  The store buffer
and RSB are statically partitioned per thread on the parts we model, so
each sibling keeps its own.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import ConfigurationError
from .machine import Machine
from .model import CPUModel


class SMTCore:
    """One physical core running two hyperthreads."""

    def __init__(self, cpu: CPUModel, seed: int = 0) -> None:
        if not cpu.smt:
            raise ConfigurationError(
                f"{cpu.key} has no SMT (Table 2: the Ryzen 3 1200 is the "
                "only part without hyperthreads)")
        self.cpu = cpu
        self.thread0 = Machine(cpu, seed=seed)
        self.thread1 = Machine(cpu, seed=seed + 1)
        self.thread1.thread_id = 1
        # Physically shared structures: alias thread1's onto thread0's.
        self.thread1.btb = self.thread0.btb
        self.thread1.caches = self.thread0.caches
        self.thread1.mds_buffers = self.thread0.mds_buffers
        # (RSB and store buffer are statically partitioned: kept private.)

    @property
    def threads(self) -> Tuple[Machine, Machine]:
        return (self.thread0, self.thread1)

    def sibling_of(self, machine: Machine) -> Machine:
        if machine is self.thread0:
            return self.thread1
        if machine is self.thread1:
            return self.thread0
        raise ValueError("machine does not belong to this core")

"""Execution tracing: see where a workload's cycles actually go.

Attach an :class:`ExecutionTrace` to a machine and every executed
instruction — committed and transient — is tallied.  Useful for
debugging workload models ("why is this op so expensive?"), for
verifying mitigation placement ("how many verw per op?"), and in tests
that assert *what executed*, not just what it cost.

Committed tallies carry real cycle costs; transient tallies carry the
*modeled* cost of the wrong-path work (never charged to the TSC — the
mispredict penalty already covers the wasted time, but the model cost
shows how much issue bandwidth the wrong path burned).  Every tally is
additionally split by the CPU mode the instruction retired in, so a
report can separate "cycles in kernel entry" from "cycles in user code".

Usage::

    trace = ExecutionTrace()
    with trace.attach(machine):
        kernel.syscall(GETPID)
    print(trace.report())
    assert trace.count(Op.VERW) == 1
    assert trace.mode_cycles(Mode.KERNEL) > trace.mode_cycles(Mode.USER)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .isa import Instruction, Op
from .machine import Machine
from .modes import Mode


@dataclass
class ExecutionTrace:
    """Per-op instruction/cycle tallies for one attachment window."""

    committed_counts: Dict[Op, int] = field(default_factory=dict)
    committed_cycles: Dict[Op, int] = field(default_factory=dict)
    transient_counts: Dict[Op, int] = field(default_factory=dict)
    #: Modeled wrong-path cost per op (see module docstring).
    transient_cycles: Dict[Op, int] = field(default_factory=dict)
    #: Committed instructions/cycles split by retirement mode.
    mode_counts: Dict[Mode, int] = field(default_factory=dict)
    mode_cycle_totals: Dict[Mode, int] = field(default_factory=dict)

    # -- collection --------------------------------------------------------- #

    def __call__(self, instr: Instruction, cycles: int,
                 transient: bool, mode: Optional[Mode] = None) -> None:
        op = instr.op
        if transient:
            self.transient_counts[op] = self.transient_counts.get(op, 0) + 1
            self.transient_cycles[op] = \
                self.transient_cycles.get(op, 0) + cycles
        else:
            self.committed_counts[op] = self.committed_counts.get(op, 0) + 1
            self.committed_cycles[op] = \
                self.committed_cycles.get(op, 0) + cycles
            if mode is not None:
                self.mode_counts[mode] = self.mode_counts.get(mode, 0) + 1
                self.mode_cycle_totals[mode] = \
                    self.mode_cycle_totals.get(mode, 0) + cycles

    @contextmanager
    def attach(self, machine: Machine) -> Iterator["ExecutionTrace"]:
        """Install this trace on ``machine`` for the ``with`` body."""
        previous = machine.tracer
        machine.tracer = self
        try:
            yield self
        finally:
            machine.tracer = previous

    # -- queries ----------------------------------------------------------------- #

    def count(self, op: Op, transient: bool = False) -> int:
        source = self.transient_counts if transient else self.committed_counts
        return source.get(op, 0)

    def cycles(self, op: Op, transient: bool = False) -> int:
        source = self.transient_cycles if transient else self.committed_cycles
        return source.get(op, 0)

    def mode_cycles(self, mode: Mode) -> int:
        """Committed cycles retired while the machine was in ``mode``."""
        return self.mode_cycle_totals.get(mode, 0)

    def mode_count(self, mode: Mode) -> int:
        return self.mode_counts.get(mode, 0)

    @property
    def total_instructions(self) -> int:
        return sum(self.committed_counts.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.committed_cycles.values())

    @property
    def total_transient_cycles(self) -> int:
        """Modeled cost of all wrong-path work in the window."""
        return sum(self.transient_cycles.values())

    def top_costs(self, n: int = 5) -> List[Tuple[Op, int]]:
        """The ops where the cycles went, most expensive first."""
        ranked = sorted(self.committed_cycles.items(),
                        key=lambda pair: pair[1], reverse=True)
        return ranked[:n]

    def reset(self) -> None:
        self.committed_counts.clear()
        self.committed_cycles.clear()
        self.transient_counts.clear()
        self.transient_cycles.clear()
        self.mode_counts.clear()
        self.mode_cycle_totals.clear()

    def report(self) -> str:
        """Aligned text breakdown (committed ops by cycle share)."""
        lines = [f"{self.total_instructions} instructions, "
                 f"{self.total_cycles} cycles"]
        for op, cycles in self.top_costs(n=len(self.committed_cycles)):
            share = 100.0 * cycles / self.total_cycles if self.total_cycles \
                else 0.0
            lines.append(f"  {op.value:16s} x{self.committed_counts[op]:<6d} "
                         f"{cycles:>9d} cycles ({share:4.1f}%)")
        if self.mode_cycle_totals:
            by_mode = ", ".join(
                f"{mode.value} {cycles}"
                for mode, cycles in sorted(self.mode_cycle_totals.items(),
                                           key=lambda p: p[0].value))
            lines.append(f"  by mode: {by_mode}")
        if self.transient_counts:
            transient = ", ".join(
                f"{op.value} x{count}"
                for op, count in sorted(self.transient_counts.items(),
                                        key=lambda p: p[0].value))
            lines.append(f"  transient: {transient} "
                         f"({self.total_transient_cycles} modeled cycles)")
        return "\n".join(lines) + "\n"

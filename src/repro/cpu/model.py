"""CPU models: the eight microarchitectures evaluated by the paper.

Each :class:`CPUModel` bundles three things:

1. **Identity** — vendor/model/microarchitecture/power/clock/cores, straight
   from Table 2 of the paper.
2. **Calibration** — a :class:`CostTable` of per-instruction cycle costs.
   The mitigation-primitive entries are calibrated to the paper's own
   microbenchmarks: ``syscall``/``sysret``/``swap_cr3`` from Table 3,
   ``verw`` from Table 4, indirect-branch/IBRS/retpoline costs from
   Table 5, IBPB from Table 6, RSB stuffing from Table 7 and ``lfence``
   from Table 8.  End-to-end results (the paper's Figures 2/3/5) are then
   *emergent* from composing these primitives through the workload models.
3. **Behaviour** — :class:`VulnerabilityFlags` (which attacks apply, per
   public errata) and :class:`PredictorBehavior` (how the BTB/IBRS interact,
   per the paper's section 6 findings), plus SSBD's per-CPU load penalty.

Values marked "N/A" in the paper (e.g. ``swap cr3`` on Meltdown-immune
parts) still get a nominal hardware cost here — the instruction exists and
can be executed — but the reporting layer prints N/A whenever the paper
does, keyed off the vulnerability flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import msr as msrdef
from ..errors import UnknownCPUError


@dataclass(frozen=True)
class CostTable:
    """Per-instruction cycle costs for one microarchitecture.

    Ordinary-instruction costs are rounded single-issue approximations;
    the mitigation primitives are the paper-calibrated values documented
    in the module docstring.
    """

    # ordinary compute
    alu: int = 1
    mul: int = 3
    div: int = 18          # cycles the divider stays active (probe signal)
    cmov: int = 2
    nop: int = 0
    pause: int = 8

    # memory (latency by the level that satisfies the access)
    load_l1: int = 4
    load_l2: int = 14
    load_mem: int = 200
    store: int = 1
    store_forward: int = 5
    clflush: int = 40
    tlb_miss: int = 25

    # control flow
    cond_branch: int = 1
    call: int = 2
    ret_: int = 2
    mispredict_penalty: int = 16
    indirect_base: int = 10          # Table 5 "Baseline"
    ibrs_extra: Optional[int] = None  # Table 5 "IBRS" (None = unsupported)
    generic_retpoline_extra: int = 20  # Table 5 "Generic"
    amd_retpoline_extra: Optional[int] = None  # Table 5 "AMD"

    # system / mitigation primitives
    syscall: int = 50                # Table 3
    sysret: int = 45                 # Table 3
    swap_cr3: int = 190              # Table 3 (nominal on immune parts)
    verw_clear: Optional[int] = None  # Table 4 (None = not MDS-vulnerable)
    verw_legacy: int = 25
    lfence: int = 20                 # Table 8
    ibpb: int = 2000                 # Table 6
    rsb_fill: int = 100              # Table 7
    swapgs: int = 10
    wrmsr: int = 300
    rdmsr: int = 100
    xsave: int = 70
    xrstor: int = 80
    fpu_trap: int = 350              # lazy-FPU #NM trap round trip
    l1d_flush: int = 1600            # the flush op itself (refills billed per miss)
    vmexit: int = 1800
    vmenter: int = 900
    rdtsc: int = 25
    rdpmc: int = 30

    def effective_verw(self, mds_vulnerable: bool, microcode_patched: bool = True) -> int:
        """Cycles a ``verw`` takes: buffer-clearing on patched vulnerable
        parts, legacy segmentation behaviour otherwise (paper 5.2)."""
        if mds_vulnerable and microcode_patched and self.verw_clear is not None:
            return self.verw_clear
        return self.verw_legacy


@dataclass(frozen=True)
class VulnerabilityFlags:
    """Which transient execution attacks affect this part (public errata)."""

    meltdown: bool
    l1tf: bool
    mds: bool
    ssb: bool = True      # no shipping CPU sets SSB_NO (paper section 4.3)
    lazyfp: bool = True
    spectre_v1: bool = True
    spectre_v2: bool = True
    swapgs_v1: bool = True


@dataclass(frozen=True)
class PredictorBehavior:
    """How the branch predictor interacts with modes and mitigations.

    These flags encode the section-6 findings; see ``repro.cpu.btb`` for the
    mechanism each one drives.
    """

    supports_ibrs: bool = True
    supports_eibrs: bool = False
    ibrs_blocks_all_prediction: bool = False
    eibrs_blocks_kernel_prediction: bool = False
    btb_mode_tagged: bool = False
    btb_opaque_index: bool = False
    rsb_underflow_uses_btb: bool = False
    # eIBRS parts occasionally scrub the BTB on kernel entry, producing the
    # bimodal entry latency of paper section 6.2.2 (~70 cycles usually, an
    # extra ~210 every 8-20 entries).
    eibrs_periodic_scrub: bool = False
    eibrs_scrub_extra_cycles: int = 210
    eibrs_scrub_period: Tuple[int, int] = (8, 20)


@dataclass(frozen=True)
class CPUModel:
    """Everything the simulator needs to know about one microarchitecture."""

    key: str
    vendor: str
    model: str
    microarchitecture: str
    year: int
    power_watts: int
    clock_ghz: float
    cores: int
    smt: bool
    costs: CostTable
    vulns: VulnerabilityFlags
    predictor: PredictorBehavior
    # Structure sizes
    l1d_kb: int = 32
    l1_ways: int = 8
    l2_kb: int = 512
    l2_ways: int = 8
    rsb_depth: int = 32
    btb_entries: int = 4096
    tlb_entries: int = 1536
    store_buffer_depth: int = 56
    supports_pcid: bool = True
    # Transient execution window: max instructions executed down a wrong path.
    spec_window: int = 32
    # Extra cycles a load pays under SSBD when it would have been satisfied
    # by (or reordered around) a pending store.  Grows on newer parts —
    # the paper's Figure 5 "trending worse over time" observation.
    ssbd_load_penalty: int = 16
    # Per-core throughput multiplier when the sibling hyperthread is active.
    smt_yield: float = 1.25

    @property
    def threads(self) -> int:
        return self.cores * (2 if self.smt else 1)

    @property
    def arch_capabilities(self) -> int:
        """The IA32_ARCH_CAPABILITIES value this part would report."""
        caps = 0
        if not self.vulns.meltdown:
            caps |= msrdef.ARCH_CAP_RDCL_NO
        if self.predictor.supports_eibrs:
            caps |= msrdef.ARCH_CAP_IBRS_ALL
        if not self.vulns.l1tf:
            caps |= msrdef.ARCH_CAP_SKIP_L1DFL
        if not self.vulns.mds:
            caps |= msrdef.ARCH_CAP_MDS_NO
        # Deliberately never SSB_NO: the paper notes no CPU of either
        # vendor sets it, "not even models that came out years after the
        # attack was discovered".
        return caps


def _intel(key: str, **kwargs) -> CPUModel:
    return CPUModel(key=key, vendor="Intel", **kwargs)


def _amd(key: str, **kwargs) -> CPUModel:
    return CPUModel(key=key, vendor="AMD", **kwargs)


#: The eight CPUs of the paper's Table 2, keyed by short name.
CATALOG: Dict[str, CPUModel] = {}


def _register(model: CPUModel) -> CPUModel:
    CATALOG[model.key] = model
    return model


BROADWELL = _register(_intel(
    "broadwell",
    model="E5-2640v4",
    microarchitecture="Broadwell",
    year=2014,
    power_watts=90,
    clock_ghz=2.4,
    cores=10,
    smt=True,
    costs=CostTable(
        syscall=49, sysret=40, swap_cr3=206,
        verw_clear=610, verw_legacy=30,
        indirect_base=16, ibrs_extra=32, generic_retpoline_extra=28,
        amd_retpoline_extra=None,
        ibpb=5600, rsb_fill=130, lfence=28,
        load_mem=230, mispredict_penalty=16, vmexit=2300, vmenter=1100,
    ),
    vulns=VulnerabilityFlags(meltdown=True, l1tf=True, mds=True),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        ibrs_blocks_all_prediction=True,
        rsb_underflow_uses_btb=False,
    ),
    spec_window=28,
    ssbd_load_penalty=12,
))

SKYLAKE_CLIENT = _register(_intel(
    "skylake_client",
    model="i7-6600U",
    microarchitecture="Skylake Client",
    year=2015,
    power_watts=15,
    clock_ghz=2.6,
    cores=2,
    smt=True,
    costs=CostTable(
        syscall=42, sysret=42, swap_cr3=191,
        verw_clear=518, verw_legacy=28,
        indirect_base=11, ibrs_extra=15, generic_retpoline_extra=19,
        amd_retpoline_extra=None,
        ibpb=4500, rsb_fill=130, lfence=20,
        load_mem=210, mispredict_penalty=17, vmexit=2100, vmenter=1000,
    ),
    vulns=VulnerabilityFlags(meltdown=True, l1tf=True, mds=True),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        ibrs_blocks_all_prediction=True,
        rsb_underflow_uses_btb=True,
    ),
    spec_window=32,
    ssbd_load_penalty=14,
))

CASCADE_LAKE = _register(_intel(
    "cascade_lake",
    model="Xeon Silver 4210R",
    microarchitecture="Cascade Lake",
    year=2019,
    power_watts=100,
    clock_ghz=2.4,
    cores=10,
    smt=True,
    costs=CostTable(
        syscall=70, sysret=43, swap_cr3=185,
        verw_clear=458, verw_legacy=26,
        indirect_base=3, ibrs_extra=0, generic_retpoline_extra=49,
        amd_retpoline_extra=None,
        ibpb=340, rsb_fill=120, lfence=15,
        load_mem=205, mispredict_penalty=17, vmexit=1900, vmenter=950,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=True),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        supports_eibrs=True,
        btb_mode_tagged=True,
        rsb_underflow_uses_btb=True,
        eibrs_periodic_scrub=True,
    ),
    spec_window=32,
    ssbd_load_penalty=18,
))

ICE_LAKE_CLIENT = _register(_intel(
    "ice_lake_client",
    model="i5-10351G1",
    microarchitecture="Ice Lake Client",
    year=2019,
    power_watts=15,
    clock_ghz=1.0,
    cores=4,
    smt=True,
    costs=CostTable(
        syscall=21, sysret=29, swap_cr3=160,
        verw_clear=None, verw_legacy=14,
        indirect_base=5, ibrs_extra=0, generic_retpoline_extra=21,
        amd_retpoline_extra=None,
        ibpb=2500, rsb_fill=40, lfence=8,
        load_mem=190, mispredict_penalty=15, vmexit=1500, vmenter=800,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        supports_eibrs=True,
        btb_mode_tagged=True,
        eibrs_blocks_kernel_prediction=True,
        rsb_underflow_uses_btb=True,
        eibrs_periodic_scrub=True,
    ),
    spec_window=40,
    ssbd_load_penalty=22,
))

ICE_LAKE_SERVER = _register(_intel(
    "ice_lake_server",
    model="Xeon Gold 6354",
    microarchitecture="Ice Lake Server",
    year=2021,
    power_watts=205,
    clock_ghz=3.0,
    cores=18,
    smt=True,
    costs=CostTable(
        syscall=45, sysret=32, swap_cr3=170,
        verw_clear=None, verw_legacy=20,
        indirect_base=1, ibrs_extra=1, generic_retpoline_extra=50,
        amd_retpoline_extra=None,
        ibpb=840, rsb_fill=69, lfence=13,
        load_mem=195, mispredict_penalty=16, vmexit=1600, vmenter=820,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        supports_eibrs=True,
        btb_mode_tagged=True,
        rsb_underflow_uses_btb=True,
        eibrs_periodic_scrub=True,
    ),
    spec_window=44,
    ssbd_load_penalty=24,
))

ZEN = _register(_amd(
    "zen",
    model="Ryzen 3 1200",
    microarchitecture="Zen",
    year=2017,
    power_watts=65,
    clock_ghz=3.1,
    cores=4,
    smt=False,
    costs=CostTable(
        syscall=63, sysret=53, swap_cr3=180,
        verw_clear=None, verw_legacy=30,
        indirect_base=30, ibrs_extra=None, generic_retpoline_extra=25,
        amd_retpoline_extra=28,
        ibpb=7400, rsb_fill=114, lfence=48,
        load_mem=220, mispredict_penalty=18, vmexit=2200, vmenter=1050,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False, lazyfp=False),
    predictor=PredictorBehavior(supports_ibrs=False),
    spec_window=28,
    ssbd_load_penalty=10,
))

ZEN2 = _register(_amd(
    "zen2",
    model="EPYC 7452",
    microarchitecture="Zen 2",
    year=2019,
    power_watts=155,
    clock_ghz=2.35,
    cores=32,
    smt=True,
    costs=CostTable(
        syscall=53, sysret=46, swap_cr3=175,
        verw_clear=None, verw_legacy=20,
        indirect_base=3, ibrs_extra=13, generic_retpoline_extra=14,
        amd_retpoline_extra=0,
        ibpb=1100, rsb_fill=68, lfence=4,
        load_mem=200, mispredict_penalty=17, vmexit=1700, vmenter=880,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False, lazyfp=False),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        ibrs_blocks_all_prediction=True,
    ),
    spec_window=36,
    ssbd_load_penalty=18,
))

ZEN3 = _register(_amd(
    "zen3",
    model="Ryzen 5 5600X",
    microarchitecture="Zen 3",
    year=2020,
    power_watts=65,
    clock_ghz=3.7,
    cores=6,
    smt=True,
    costs=CostTable(
        syscall=83, sysret=55, swap_cr3=178,
        verw_clear=None, verw_legacy=25,
        indirect_base=23, ibrs_extra=19, generic_retpoline_extra=13,
        amd_retpoline_extra=18,
        ibpb=800, rsb_fill=94, lfence=30,
        load_mem=185, mispredict_penalty=16, vmexit=1550, vmenter=810,
    ),
    vulns=VulnerabilityFlags(meltdown=False, l1tf=False, mds=False, lazyfp=False),
    predictor=PredictorBehavior(
        supports_ibrs=True,
        ibrs_blocks_all_prediction=True,
        btb_opaque_index=True,
    ),
    spec_window=40,
    ssbd_load_penalty=36,
))


#: Catalog iteration order matches the paper's tables: Intel oldest->newest,
#: then AMD oldest->newest.
CPU_ORDER = (
    "broadwell",
    "skylake_client",
    "cascade_lake",
    "ice_lake_client",
    "ice_lake_server",
    "zen",
    "zen2",
    "zen3",
)


def get_cpu(key: str) -> CPUModel:
    """Look up a CPU model by key, raising :class:`UnknownCPUError` if absent."""
    try:
        return CATALOG[key]
    except KeyError:
        raise UnknownCPUError(key, CPU_ORDER) from None


def all_cpus() -> Tuple[CPUModel, ...]:
    """All catalog CPUs in the paper's presentation order."""
    return tuple(CATALOG[key] for key in CPU_ORDER)

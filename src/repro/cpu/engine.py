"""Block-compilation engine: memoized instruction-sequence deltas.

Every figure, table, sweep and ablation in this reproduction bottoms out
in :meth:`~repro.cpu.machine.Machine.execute` — a per-instruction Python
dispatch over heap-allocated :class:`~repro.cpu.isa.Instruction` objects,
plus a per-charge counter/ledger filing cost.  Study grids re-execute the
same kernel entry/exit, handler and mitigation sequences millions of
times, which is exactly the repeated-straight-line-code shape block
compilation exploits (compare an emulator's precomputed cycle-lookup
dispatch).

The engine executes instruction *sequences* (the lists handed to
``Machine.run``) through a cache of compiled blocks.  A compiled block is
a list of steps:

* **pure steps** — maximal runs of context-pure ops (``ALU``/``WORK``/
  ``NOP``/``MUL``/``DIV``/``CMOV``/``PAUSE``/``LFENCE``/``CALL``/
  ``RSB_FILL``/``SWAPGS``/``RDTSC``/``RDPMC``/``RDMSR``/``XSAVE``/
  ``XRSTOR``, plus ops with per-machine-constant costs and deterministic
  side effects: ``VERW``, ``CLFLUSH``, ``L1D_FLUSH``, ``VMENTER``/
  ``VMEXIT`` and accepted ``WRMSR`` writes) whose total cycles,
  aggregated counter bumps and aggregated ledger postings are precomputed
  at compile time and applied in one batched charge instead of N;
* **recorded steps** — runs that also contain ops whose cost depends on
  mutable microarchitectural state but in a *verifiable* way (loads,
  stores, indirect branches — retpoline or predicted — ``SYSCALL``/
  ``SYSRET``, PCID-preserving ``MOV_CR3``).  These are memoized per
  **guard key**: on first execution under a guard the engine runs the
  interpreter while probing the TLB/cache/store-buffer/BTB pre-state it
  depended on; if the recording is *clean* (every access hit and every
  indirect branch predicted its committed target or stably missed, so
  replaying mutates nothing but LRU order, predictor trains and
  store-buffer pushes) the observed deltas — cycles, counter bumps,
  ledger postings, buffer mutations, MDS residue — are stored.  Later
  executions re-validate the recorded pre-state predicates (membership
  tests plus BTB-lookup value predicates) and apply the deltas in one
  batch; any mismatch falls back to a fresh interpreted recording.
* **terminator steps** — single instructions whose behaviour cannot be
  memoized (conditional branches, ``RET``, ``WRMSR`` writes the MSR file
  would reject, and ``SYSCALL``/``MOV_CR3`` on parts where they mutate
  predictor or TLB state unpredictably).  They run through the
  interpreter unchanged, so the engine is a transparent fast path, never
  a semantic fork.

Bit-identity argument: the TSC, every performance counter, and every
ledger entry are integer *sums*; batching N per-instruction charges into
one charge per (mitigation, primitive) tag group is exact.  Ordered side
effects (OrderedDict ``move_to_end``, store-buffer pushes, RSB/BHB
pushes, MDS residue deposits) are replayed in recorded order against the
live structures, so post-block machine state is identical to the
interpreter's.  The differential test in
``tests/cpu/test_engine_differential.py`` enforces this across the study
grid.

Blocks are keyed by the identity of the sequence object (pinned so the
id cannot be recycled) and re-validated against the snapshotted
instruction tuple, so a caller mutating a list in place simply triggers
recompilation.  Guard keys capture exactly the machine state that can
change a compiled op's cost or effects: privilege mode, the
``IA32_SPEC_CTRL`` value (IBRS/STIBP/SSBD bits), the current PCID, the
retpoline flavour and the KPTI mapping state.  Per-machine constants
(microcode patch status, CPU model) are guarded implicitly because the
engine itself is per-machine.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import counters as ctr
from .isa import Instruction, Op
from .modes import Mode
from .msr import (
    IA32_ARCH_CAPABILITIES,
    IA32_FLUSH_CMD,
    IA32_PRED_CMD,
    IA32_SPEC_CTRL,
    L1D_FLUSH_BIT,
    PRED_CMD_IBPB,
    SPEC_CTRL_IBRS,
    SPEC_CTRL_SSBD,
)

#: Engine mode names (the CLI's ``--engine`` choices).
ENGINE_BLOCK = "block"
ENGINE_INTERP = "interp"
ENGINE_MODES = (ENGINE_BLOCK, ENGINE_INTERP)

#: Ops whose cost and side effects are compile-time constants for a given
#: machine (costs never change after construction).  CALL/RSB_FILL have
#: deterministic predictor side effects, VERW/CLFLUSH/L1D_FLUSH/WRMSR
#: have deterministic flush/write side effects, and VMENTER/VMEXIT set
#: the mode to a fixed value; all are replayed from the compiled step.
#: WRMSR is admitted via :meth:`BlockEngine._wrmsr_compilable` (writes
#: the MSR file would reject stay on the interpreter so the exception
#: surfaces with per-instruction charge granularity).
PURE_OPS = frozenset({
    Op.ALU, Op.WORK, Op.NOP, Op.MUL, Op.DIV, Op.CMOV, Op.PAUSE,
    Op.LFENCE, Op.CALL, Op.RSB_FILL, Op.SWAPGS, Op.RDTSC, Op.RDPMC,
    Op.RDMSR, Op.XSAVE, Op.XRSTOR, Op.VERW, Op.CLFLUSH, Op.L1D_FLUSH,
    Op.VMENTER, Op.VMEXIT,
})

#: Ops the recorder can memoize under a guard key (loads/stores via
#: pre-state predicates; the rest are deterministic under the guard).
#: Retpoline-flagged indirect branches and the per-machine MOV_CR3 /
#: SYSCALL gates are decided at classification time, not listed here.
RECORDABLE_OPS = frozenset({Op.LOAD, Op.STORE, Op.SYSRET})

#: Records that fail this many times for one guard stop probing and fall
#: through to the plain interpreter permanently (for that guard).
MAX_RECORD_FAILURES = 8

#: Compiled-block cache entries per engine before a wholesale clear (a
#: backstop against id-keyed growth from one-shot JIT blocks).
MAX_CACHED_BLOCKS = 4096

#: Guard variants memoized per recorded step before new guards stop
#: being recorded (existing memos keep working).
MAX_GUARDS_PER_STEP = 32

#: Memo variants kept per guard.  A block can run in several recurring
#: machine-state *phases* under one guard (e.g. cold-TLB on the first
#: handler call of an iteration, warm on the rest); each phase gets its
#: own memo, selected by whichever variant's predicates pass.
MAX_MEMO_VARIANTS = 4

_RETIRED = ctr.INSTRUCTIONS_RETIRED

# Step tags.
_PURE, _TERM, _RECORDED = 0, 1, 2


def _touch_many(container: Any, keys: Tuple[Any, ...]) -> None:
    """Replay a run of LRU touches against one OrderedDict."""
    move = container.move_to_end
    for key in keys:
        move(key)


def _replay_accesses(target: Any, addresses: Tuple[int, ...]) -> None:
    """Replay a recorded access stream through the live structure.

    ``target`` is the TLB or the cache hierarchy: both expose
    ``access(address)``, and calling the real method replays every fill,
    eviction and LRU move exactly as the interpreter would have."""
    access = target.access
    for address in addresses:
        access(address)


def _fits(container: Any, limit: int) -> bool:
    """Value-check predicate: does ``container`` have eviction headroom?"""
    return len(container) <= limit


def _touch_tlb_pages(tlb: Any, pages: Tuple[int, ...]) -> None:
    """Replay deferred TLB LRU touches under the *live* PCID.

    Memoized TLB hits are checked against ``(current_pcid, page)`` at
    replay time, so their LRU touches must build keys the same way."""
    entries = tlb._entries
    pcid = tlb.current_pcid if tlb.supports_pcid else 0
    move = entries.move_to_end
    for page in pages:
        move((pcid, page))


class EngineStats:
    """Process-wide engine telemetry (merged across executor workers)."""

    __slots__ = ("blocks_compiled", "block_hits", "memo_hits",
                 "memo_records", "interp_fallbacks")

    FIELDS = ("blocks_compiled", "block_hits", "memo_hits",
              "memo_records", "interp_fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.blocks_compiled = 0
        self.block_hits = 0
        self.memo_hits = 0
        self.memo_records = 0
        self.interp_fallbacks = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def merge(self, state: Dict[str, int]) -> None:
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + int(state.get(name, 0)))

    def hit_rate(self) -> float:
        """Fraction of engine-eligible block executions served compiled."""
        total = self.block_hits + self.interp_fallbacks
        return self.block_hits / total if total else 0.0

    def summary(self) -> str:
        return (f"{self.blocks_compiled} blocks compiled, "
                f"{self.block_hits} block hits, "
                f"{self.memo_hits} memo hits / {self.memo_records} records, "
                f"{self.interp_fallbacks} interp fallbacks "
                f"({100.0 * self.hit_rate():.1f}% hit rate)")


#: Module-level stats: every BlockEngine in the process bumps these.
STATS = EngineStats()


def publish_metrics(registry: Any) -> None:
    """Copy the current stats into a MetricsRegistry as counters.

    Called on the parent's registry by ``spectresim profile`` and on the
    worker's registry before its payload ships home, so parallel runs
    aggregate naturally through the existing absorb path.
    """
    for name in EngineStats.FIELDS:
        value = getattr(STATS, name)
        if value:
            registry.counter(f"engine.{name}").inc(value)


# ----------------------------------------------------------------------
# Ambient engine mode (mirrors obs.spans / obs.ledger).

_default_mode = os.environ.get("SPECTRESIM_ENGINE", ENGINE_BLOCK)


def default_engine() -> str:
    """The engine mode new machines adopt (``block`` unless overridden)."""
    return _default_mode


def set_default_engine(mode: str) -> str:
    """Set the ambient engine mode; returns the previous one."""
    global _default_mode
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; want one of "
                         f"{ENGINE_MODES}")
    previous = _default_mode
    _default_mode = mode
    return previous


@contextmanager
def use_engine(mode: str) -> Iterator[str]:
    previous = set_default_engine(mode)
    try:
        yield mode
    finally:
        set_default_engine(previous)


# ----------------------------------------------------------------------
# Compiled-block data structures.

class _Memo:
    """One clean recording of a recorded step under one guard key."""

    __slots__ = ("checks", "tlb_checks", "value_checks", "ops", "cycles",
                 "postings", "bumps", "load_residue", "store_residue",
                 "final_mode", "final_pcid")

    def __init__(self) -> None:
        self.checks: Tuple[Tuple[Any, Any, bool], ...] = ()
        # TLB membership predicates stored as (page, expected) and keyed
        # with the *live* PCID at check time, so one memo stays valid
        # across the PCID churn of process re-creation.
        self.tlb_checks: Tuple[Tuple[int, bool], ...] = ()
        # Prebound value predicates: replay is valid iff fn(*args) still
        # returns the recorded value (e.g. a BTB lookup outcome).
        self.value_checks: Tuple[Tuple[Any, Tuple[Any, ...], Any], ...] = ()
        # Replay ops are prebound (callable, args) pairs: the containers
        # they close over are mutated in place by the machine (cleared,
        # never reassigned), so the bindings stay live.
        self.ops: Tuple[Tuple[Any, Tuple[Any, ...]], ...] = ()
        self.cycles = 0
        self.postings: Tuple[Tuple[str, str, int], ...] = ()
        self.bumps: Tuple[Tuple[str, int], ...] = ()
        self.load_residue: Optional[Tuple[int, Any]] = None
        self.store_residue: Optional[Tuple[int, Any]] = None
        self.final_mode: Optional[Any] = None
        self.final_pcid: Optional[int] = None


class _GuardState:
    """Per-guard recording state: memo variants plus a failure budget."""

    __slots__ = ("variants", "failures")

    def __init__(self) -> None:
        self.variants: List[_Memo] = []
        self.failures = 0


class _Recorded:
    """A segment containing recordable ops: per-guard memo dictionary."""

    __slots__ = ("instrs", "memos")

    def __init__(self, instrs: Tuple[Instruction, ...]) -> None:
        self.instrs = instrs
        # guard -> _GuardState (memo variants + failure count)
        self.memos: Dict[Any, _GuardState] = {}


class _Compiled:
    __slots__ = ("steps",)

    def __init__(self, steps: Tuple[Any, ...]) -> None:
        self.steps = steps


class _Entry:
    """One block-cache entry: pins the sequence, snapshots its contents."""

    __slots__ = ("seq", "instrs", "compiled")

    def __init__(self, seq: Sequence[Instruction]) -> None:
        self.seq = seq                    # strong ref: id stays unique
        self.instrs = tuple(seq)          # identity-compared on lookup
        self.compiled: Optional[_Compiled] = None


class BlockEngine:
    """Per-machine block compiler and executor.

    Transparent fast path for ``Machine.run``: sequences seen once run
    through the interpreter (and are fingerprinted); sequences seen again
    unchanged are compiled and thereafter executed as batched steps.
    """

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self._blocks: Dict[int, _Entry] = {}
        # The MSR value dict is mutated in place, never reassigned; a
        # direct reference keeps the per-block guard computation cheap.
        self._msr_values = machine.msr._values
        # Whether VERW clears buffers on this machine (per-machine
        # constants, so decidable at compile time).
        self._verw_clearing = (machine.cpu.vulns.mds
                               and machine.microcode_patched
                               and machine.costs.verw_clear is not None)

    # -- public entry points ------------------------------------------- #

    def run(self, seq: Sequence[Instruction]) -> int:
        """Execute ``seq`` on the committed path; returns total cycles.

        The entry pins ``seq``, so a matching id means the same object;
        tuples are immutable and skip the in-place-mutation check that
        lists need.
        """
        machine = self.machine
        if machine.leakage is not None or machine.timeline is not None:
            # Leakage tracing on: taint is a guard-key input the compiled
            # deltas do not model.  Timeline recording on: batched replay
            # deduplicates LRU touches and collapses residue, so it cannot
            # reproduce the per-event stream.  Either way the segment
            # replays interpreted (bit-identical by the engine's
            # differential contract), so the recorded event stream under
            # --engine=block equals the interpreter's.
            STATS.interp_fallbacks += 1
            return self._interpret(seq)
        entry = self._blocks.get(id(seq))
        if entry is None or (seq.__class__ is not tuple
                             and entry.instrs != tuple(seq)):
            if len(self._blocks) >= MAX_CACHED_BLOCKS:
                self._blocks.clear()
            self._blocks[id(seq)] = _Entry(seq)
            STATS.interp_fallbacks += 1
            return self._interpret(seq)
        if entry.compiled is None:
            entry.compiled = self._compile(entry.instrs)
        STATS.block_hits += 1
        return self._execute_compiled(entry.compiled)

    def prime(self, seq: Sequence[Instruction]) -> None:
        """Pre-register ``seq`` as a compiled block (skips the warm-up
        sighting).  Used for kernel entry/exit streams and handler blocks
        whose reuse is known up front."""
        entry = self._blocks.get(id(seq))
        if entry is None or entry.instrs != tuple(seq):
            entry = _Entry(seq)
            self._blocks[id(seq)] = entry
        if entry.compiled is None:
            entry.compiled = self._compile(entry.instrs)

    # -- compilation ---------------------------------------------------- #

    def _wrmsr_compilable(self, instr: Instruction) -> bool:
        """Would this MSR write succeed?  Rejected writes raise inside the
        MSR file; those must run interpreted so the exception fires with
        the interpreter's per-instruction charge granularity."""
        msr_file = self.machine.msr
        if instr.msr == IA32_SPEC_CTRL:
            value = instr.value
            if value & SPEC_CTRL_IBRS and not (msr_file.supports_ibrs
                                               or msr_file.supports_eibrs):
                return False
            if value & SPEC_CTRL_SSBD and not msr_file.supports_ssbd:
                return False
            return True
        return instr.msr != IA32_ARCH_CAPABILITIES

    def _classify(self, instr: Instruction) -> int:
        """0 = pure, 1 = recordable, 2 = terminator."""
        op = instr.op
        if op in PURE_OPS:
            return 0
        if op in RECORDABLE_OPS:
            return 1
        if op is Op.WRMSR:
            return 0 if self._wrmsr_compilable(instr) else 2
        machine = self.machine
        if op in (Op.BRANCH_INDIRECT, Op.CALL_INDIRECT):
            # Retpolines never consult or train the BTB: cost depends only
            # on the retpoline flavour (in the guard), effects on the BHB
            # (and RSB for calls) are deterministic pushes.  Raw indirects
            # are memoized against a recorded BTB-lookup predicate; the
            # recorder bails to the interpreter on the mispredict/transient
            # path, so only converged (hit or stable-miss) branches memoize.
            return 1
        if op is Op.MOV_CR3 and machine.tlb.supports_pcid:
            # PCID-preserving cr3 write: constant cost, deterministic
            # current_pcid update.  Without PCIDs the cost depends on the
            # live TLB occupancy, so it terminates the block instead.
            return 1
        if op is Op.SYSCALL and not machine.cpu.predictor.eibrs_periodic_scrub:
            # Entry cost is constant unless the part periodically scrubs
            # the BTB on entry (hidden countdown + RNG state).
            return 1
        return 2

    def _compile(self, instrs: Tuple[Instruction, ...]) -> _Compiled:
        steps: List[Any] = []
        buf: List[Instruction] = []
        buf_recordable = False

        def flush() -> None:
            nonlocal buf, buf_recordable
            if not buf:
                return
            if buf_recordable:
                steps.append((_RECORDED, _Recorded(tuple(buf))))
            else:
                steps.append(self._compile_pure(buf))
            buf = []
            buf_recordable = False

        for instr in instrs:
            kind = self._classify(instr)
            if kind == 2:
                flush()
                steps.append((_TERM, instr))
            else:
                buf.append(instr)
                if kind == 1:
                    buf_recordable = True
        flush()
        STATS.blocks_compiled += 1
        return _Compiled(tuple(steps))

    def _compile_pure(self, buf: Sequence[Instruction]) -> Tuple[Any, ...]:
        """Precompute one pure segment's batched charge at compile time."""
        machine = self.machine
        costs = machine.costs
        cycles = 0
        postings: Dict[Tuple[Any, Any], int] = {}
        bump_acc: Dict[str, int] = {}
        effects: List[Tuple[Any, Tuple[Any, ...]]] = []
        for instr in buf:
            op = instr.op
            if op is Op.ALU:
                c = costs.alu
            elif op is Op.WORK:
                c = instr.value
            elif op is Op.NOP:
                c = costs.nop
            elif op is Op.MUL:
                c = costs.mul
            elif op is Op.DIV:
                c = costs.div
                bump_acc[ctr.DIVIDER_ACTIVE] = \
                    bump_acc.get(ctr.DIVIDER_ACTIVE, 0) + costs.div
            elif op is Op.CMOV:
                c = costs.cmov
            elif op is Op.PAUSE:
                c = costs.pause
            elif op is Op.LFENCE:
                c = costs.lfence
            elif op is Op.CALL:
                c = costs.call
                effects.append((machine.rsb.push, (instr.pc,)))
                effects.append((machine.bhb.push, (instr.pc,)))
            elif op is Op.RSB_FILL:
                c = costs.rsb_fill
                effects.append((machine.rsb.stuff, ()))
            elif op is Op.SWAPGS:
                c = costs.swapgs
            elif op is Op.RDTSC:
                c = costs.rdtsc
            elif op is Op.RDPMC:
                c = costs.rdpmc
            elif op is Op.RDMSR:
                c = costs.rdmsr
            elif op is Op.XSAVE:
                c = costs.xsave
            elif op is Op.XRSTOR:
                c = costs.xrstor
            elif op is Op.VERW:
                if self._verw_clearing:
                    c = costs.verw_clear
                    effects.append((machine.mds_buffers.clear, ()))
                    bump_acc[ctr.VERW_CLEARS] = \
                        bump_acc.get(ctr.VERW_CLEARS, 0) + 1
                else:
                    c = costs.verw_legacy
            elif op is Op.WRMSR:
                if (instr.msr == IA32_PRED_CMD
                        and instr.value & PRED_CMD_IBPB):
                    c = costs.ibpb
                elif (instr.msr == IA32_FLUSH_CMD
                        and instr.value & L1D_FLUSH_BIT):
                    c = costs.l1d_flush
                else:
                    c = costs.wrmsr
                effects.append((machine.msr.write, (instr.msr, instr.value)))
            elif op is Op.CLFLUSH:
                c = costs.clflush
                effects.append((machine.caches.flush_line, (instr.address,)))
            elif op is Op.L1D_FLUSH:
                c = costs.l1d_flush
                effects.append((machine.msr.write,
                                (IA32_FLUSH_CMD, L1D_FLUSH_BIT)))
            elif op is Op.VMENTER:
                c = costs.vmenter
                effects.append((setattr,
                                (machine, "mode", Mode.GUEST_KERNEL)))
            else:  # Op.VMEXIT — _classify admits nothing else
                c = costs.vmexit
                effects.append((setattr, (machine, "mode", Mode.KERNEL)))
            cycles += c
            tag = instr.attr_tag
            postings[tag] = postings.get(tag, 0) + c
        posting_list = tuple((mit, prim, c) for (mit, prim), c
                             in postings.items())
        return (_PURE, cycles, posting_list, tuple(bump_acc.items()),
                len(buf), tuple(effects))

    # -- execution ------------------------------------------------------- #

    def _interpret(self, seq: Sequence[Instruction]) -> int:
        machine = self.machine
        total = 0
        for instr in seq:
            total += machine.execute(instr)
        return total

    def _execute_compiled(self, compiled: _Compiled) -> int:
        machine = self.machine
        counters = machine.counters
        events = counters.events
        ledger = machine.ledger
        total = 0
        for step in compiled.steps:
            tag = step[0]
            if tag == _PURE:
                _, cycles, postings, bumps, retired, effects = step
                if ledger is None:
                    # add_cycles() without a ledger is exactly this.
                    counters.tsc += cycles
                else:
                    for mit, prim, c in postings:
                        ledger.set_tag(mit, prim)
                        counters.add_cycles(c)
                    ledger.clear_tag()
                for name, amount in bumps:
                    events[name] = events.get(name, 0) + amount
                events[_RETIRED] = events.get(_RETIRED, 0) + retired
                for fn, args in effects:
                    fn(*args)
                total += cycles
            elif tag == _TERM:
                total += machine.execute(step[1])
            else:
                total += self._run_recorded(step[1])
        return total

    # -- recorded segments ---------------------------------------------- #

    def _guard(self) -> Tuple[Any, ...]:
        # The active PCID is deliberately NOT part of the guard: PCIDs are
        # allocated from a global counter, so keying on them would orphan
        # every memo whenever a workload re-creates its processes.  The
        # recorder instead pins ``tlb.current_pcid`` with a value check on
        # exactly the segments whose replay depends on it (non-global TLB
        # keys); segments touching only global kernel pages replay under
        # any PCID.
        machine = self.machine
        return (machine.mode,
                self._msr_values.get(IA32_SPEC_CTRL, 0),
                machine.retpoline_variant,
                machine.kernel_mapped_in_user)

    def _run_recorded(self, rec: _Recorded) -> int:
        guard = self._guard()
        state = rec.memos.get(guard)
        if state is None:
            if len(rec.memos) >= MAX_GUARDS_PER_STEP:
                STATS.interp_fallbacks += 1
                return self._interpret(rec.instrs)
            state = _GuardState()
            rec.memos[guard] = state
        else:
            checks_pass = self._checks_pass
            variants = state.variants
            for i, memo in enumerate(variants):
                if checks_pass(memo):
                    if i:
                        # Phases run in streaks (one cold sighting, then
                        # many warm ones): keep the matching variant first.
                        del variants[i]
                        variants.insert(0, memo)
                    STATS.memo_hits += 1
                    return self._apply_memo(memo)
            if state.failures >= MAX_RECORD_FAILURES:
                STATS.interp_fallbacks += 1
                return self._interpret(rec.instrs)
        return self._record(rec, state)

    def _checks_pass(self, memo: _Memo) -> bool:
        for container, key, expected in memo.checks:
            if (key in container) != expected:
                return False
        if memo.tlb_checks:
            tlb = self.machine.tlb
            entries = tlb._entries
            pcid = tlb.current_pcid if tlb.supports_pcid else 0
            for page, expected in memo.tlb_checks:
                if ((pcid, page) in entries) != expected:
                    return False
        for fn, args, expected in memo.value_checks:
            if fn(*args) != expected:
                return False
        return True

    def _apply_memo(self, memo: _Memo) -> int:
        machine = self.machine
        counters = machine.counters
        ledger = machine.ledger
        if ledger is None:
            counters.tsc += memo.cycles
        else:
            for mit, prim, c in memo.postings:
                ledger.set_tag(mit, prim)
                counters.add_cycles(c)
            ledger.clear_tag()
        events = counters.events
        for name, amount in memo.bumps:
            events[name] = events.get(name, 0) + amount
        for fn, args in memo.ops:
            fn(*args)
        buffers = machine.mds_buffers
        if memo.load_residue is not None:
            buffers.deposit_load(*memo.load_residue)
        if memo.store_residue is not None:
            buffers.deposit_store(*memo.store_residue)
        if memo.final_mode is not None:
            machine.mode = memo.final_mode
        if memo.final_pcid is not None:
            machine.tlb.current_pcid = memo.final_pcid
        return memo.cycles

    def _record(self, rec: _Recorded, state: _GuardState) -> int:
        """Execute ``rec`` through the interpreter while recording the
        pre-state predicates and deltas needed to replay it.

        The recording is authoritative — the interpreter runs as normal,
        so even a rejected (unclean) recording costs only the probing
        overhead.  A clean recording is stored as a new memo variant for
        this guard.
        """
        machine = self.machine
        counters = machine.counters
        ledger = machine.ledger
        tlb = machine.tlb
        sb = machine.store_buffer
        l1 = machine.caches.l1
        entries = tlb._entries
        global_pages = tlb._global_pages
        pending = sb._pending
        supports_pcid = tlb.supports_pcid
        l1_sets = l1._sets
        num_sets = l1.num_sets
        l2 = machine.caches.l2
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        btb = machine.btb
        btb_table = btb._table
        thread_id = machine.thread_id

        tsc_before = counters.tsc
        events_before = dict(counters.events)
        ledger_before = dict(ledger._entries) if ledger is not None else None

        checks: List[Tuple[Any, Any, bool]] = []
        value_checks: List[Tuple[Any, Tuple[Any, ...], Any]] = []
        ops: List[Tuple[Any, Tuple[Any, ...]]] = []
        # LRU touches, deduplicated: for back-to-back move_to_end calls
        # only the *last* touch of each key decides the final order, and
        # nothing observes the dict between replayed ops.  Keyed by
        # (container id, key); del-then-insert keeps last-touch order.
        touches: Dict[Tuple[int, Any], Tuple[Any, Tuple[Any, ...]]] = {}
        clean = True
        pushed_lines = set()
        push_count = 0
        needs_push_bound = False
        load_residue = None
        store_residue = None
        mode_changed = False
        pcid_changed = False
        # Raw-indirect soundness state: lookup predicates are evaluated
        # against the replay *pre*-state, so they are only sound while no
        # earlier in-segment op has retrained the same pc (seg_trained),
        # rewritten the whole table (an IBPB), or risked a capacity
        # eviction that a later lookup could observe.
        seg_trained = set()
        btb_dirty = False
        # Per-structure replay batches.  The structures are mutually
        # independent (a store-buffer push never observes BHB or BTB
        # state and vice versa), so partitioning the recorded ops by
        # structure and replaying each run through one batched call
        # preserves every per-structure order that matters.  The one
        # cross-structure interaction — an in-segment IBPB rewriting the
        # BTB — flushes the pending train batch first (below).
        sb_pushes: List[Tuple[int, int]] = []
        bhb_pcs: List[int] = []
        btb_trains: List[Tuple[Any, ...]] = []
        # Miss-y segments replay the *entire* recorded access stream
        # through the live TLB / cache hierarchy (one batched call each),
        # so fills, evictions and LRU moves reproduce the interpreter
        # exactly.  Validity needs the access *outcomes* to be
        # reproducible from the pre-state: hits in fill-free sets are
        # pinned by membership checks, while any set that takes a fill is
        # pinned by an exact content-order snapshot (its eviction choices
        # are then deterministic).  The TLB instead gets a capacity
        # headroom predicate — big enough that in-segment eviction never
        # happens in practice, and falls back to recording when it would.
        tlb_addrs: List[int] = []
        cache_addrs: List[int] = []
        # TLB predicates and LRU touches recorded *before* any in-segment
        # CR3 switch are stored by page and resolved against the live PCID
        # at replay time (``pcid_is_ambient``); after a switch the PCID is
        # determined by the MOV_CR3 instruction itself, so static keys are
        # exact.  This keeps kernel-handler memos alive across the PCID
        # churn of workload process re-creation.
        tlb_page_checks: List[Tuple[int, bool]] = []
        tlb_touches: Dict[int, bool] = {}
        pcid_is_ambient = True
        tlb_fills = 0
        cache_fills = 0
        seg_tlb_filled = set()
        seg_l1_filled = set()
        seg_l2_filled = set()
        l1_fill_sets = set()
        l2_fill_sets = set()
        l1_snapshots: Dict[int, Tuple[int, ...]] = {}
        l2_snapshots: Dict[int, Tuple[int, ...]] = {}
        cache_flush_seen = False

        for instr in rec.instrs:
            op = instr.op
            if op is Op.LOAD or op is Op.STORE:
                if clean:
                    address = instr.address
                    tlb_addrs.append(address)
                    cache_addrs.append(address)
                    page = address // 4096
                    if page in global_pages:
                        checks.append((global_pages, page, True))
                    else:
                        key = ((tlb.current_pcid if supports_pcid else 0),
                               page)
                        if key in entries:
                            if key not in seg_tlb_filled:
                                if pcid_is_ambient:
                                    tlb_page_checks.append((page, True))
                                    if page in tlb_touches:
                                        del tlb_touches[page]
                                    tlb_touches[page] = True
                                else:
                                    checks.append((entries, key, True))
                                    tkey = (id(entries), key)
                                    if tkey in touches:
                                        del touches[tkey]
                                    touches[tkey] = (entries.move_to_end,
                                                     (key,))
                        else:
                            # TLB miss: verifiable absence, and the fill
                            # replays through the access stream.
                            if pcid_is_ambient:
                                tlb_page_checks.append((page, False))
                            else:
                                checks.append((entries, key, False))
                            seg_tlb_filled.add(key)
                            tlb_fills += 1
                    line = address // 64
                    set_index = line % num_sets
                    cset = l1_sets[set_index]
                    if set_index not in l1_snapshots:
                        l1_snapshots[set_index] = tuple(cset)
                    if line in cset:
                        if line not in seg_l1_filled:
                            checks.append((cset, line, True))
                            tkey = (id(cset), line)
                            if tkey in touches:
                                del touches[tkey]
                            touches[tkey] = (cset.move_to_end, (line,))
                    else:
                        # L1 miss: the fill-set gets pinned by an exact
                        # snapshot, and the L2 probe decides the cost.
                        if cache_flush_seen:
                            clean = False
                        cache_fills += 1
                        seg_l1_filled.add(line)
                        l1_fill_sets.add(set_index)
                        l2_index = line % l2_num_sets
                        l2_set = l2_sets[l2_index]
                        if l2_index not in l2_snapshots:
                            l2_snapshots[l2_index] = tuple(l2_set)
                        if line in l2_set:
                            if line not in seg_l2_filled:
                                checks.append((l2_set, line, True))
                        else:
                            seg_l2_filled.add(line)
                            l2_fill_sets.add(l2_index)
                if op is Op.LOAD:
                    if clean:
                        line = instr.address // 64
                        if line in pending:
                            if line in pushed_lines:
                                # Guaranteed by our own replayed pushes as
                                # long as they cannot have drained.
                                needs_push_bound = True
                            elif push_count == 0:
                                checks.append((pending, line, True))
                            else:
                                # Pre-state entry that may have been
                                # evicted by our pushes on a different
                                # pre-state: not verifiable cheaply.
                                clean = False
                        elif line in pushed_lines:
                            clean = False  # our push drained: len-dependent
                        else:
                            checks.append((pending, line, False))
                    load_residue = (instr.value or instr.address,
                                    machine.mode)
                else:
                    if clean:
                        sb_pushes.append((instr.address, instr.value))
                        pushed_lines.add(instr.address // 64)
                        push_count += 1
                    store_residue = (instr.value or instr.address,
                                     machine.mode)
            elif op is Op.CALL:
                ops.append((machine.rsb.push, (instr.pc,)))
                bhb_pcs.append(instr.pc)
            elif op is Op.RSB_FILL:
                ops.append((machine.rsb.stuff, ()))
            elif op is Op.BRANCH_INDIRECT or op is Op.CALL_INDIRECT:
                if not instr.retpoline and clean:
                    pc = instr.pc
                    if (btb_dirty or pc in seg_trained
                            or len(btb_table) > btb.capacity - 64):
                        clean = False
                    else:
                        mode_now = machine.mode
                        stibp = machine.msr.stibp_enabled
                        if machine._indirect_prediction_allowed():
                            predicted = btb.lookup(pc, mode_now, thread_id,
                                                   stibp)
                            if (predicted is None
                                    or predicted == instr.target):
                                value_checks.append(
                                    (btb.lookup,
                                     (pc, mode_now, thread_id, stibp),
                                     predicted))
                            else:
                                # Mispredict: a transient window would run.
                                clean = False
                        # Prediction suppressed (IBRS): the outcome is
                        # deterministic under the guard, no check needed.
                        if clean:
                            btb_trains.append((pc, instr.target, mode_now,
                                               thread_id))
                            seg_trained.add(pc)
                bhb_pcs.append(instr.pc)
                if op is Op.CALL_INDIRECT:
                    ops.append((machine.rsb.push, (instr.pc,)))
            elif op is Op.SYSCALL or op is Op.SYSRET:
                mode_changed = True
            elif op is Op.MOV_CR3:
                pcid_changed = True
                # From here on the live PCID is fixed by the instruction,
                # so later TLB keys are static.
                pcid_is_ambient = False
            elif op is Op.VERW:
                if self._verw_clearing:
                    ops.append((machine.mds_buffers.clear, ()))
                    # Only residue deposited after the last clear survives.
                    load_residue = None
                    store_residue = None
            elif op is Op.CLFLUSH:
                # Cache-mutating op: flush the deferred LRU touches first
                # so the removal replays at its recorded position.  Mixed
                # with cache fills the interleaving cannot be replayed
                # (the flush sits outside the batched access stream).
                if cache_fills:
                    clean = False
                cache_flush_seen = True
                ops.extend(touches.values())
                touches.clear()
                ops.append((machine.caches.flush_line, (instr.address,)))
            elif op is Op.L1D_FLUSH:
                if cache_fills:
                    clean = False
                cache_flush_seen = True
                ops.extend(touches.values())
                touches.clear()
                ops.append((machine.msr.write,
                            (IA32_FLUSH_CMD, L1D_FLUSH_BIT)))
            elif op is Op.WRMSR:
                if (instr.msr == IA32_FLUSH_CMD
                        and instr.value & L1D_FLUSH_BIT):
                    if cache_fills:
                        clean = False
                    cache_flush_seen = True
                    ops.extend(touches.values())
                    touches.clear()
                elif (instr.msr == IA32_PRED_CMD
                        and instr.value & PRED_CMD_IBPB):
                    # IBPB rewrites every BTB entry: later in-segment
                    # lookup predicates would be probed against a state
                    # the pre-state check cannot see, and pending trains
                    # must replay before the barrier does.
                    btb_dirty = True
                    if btb_trains:
                        ops.append((btb.train_many, (tuple(btb_trains),)))
                        btb_trains = []
                ops.append((machine.msr.write, (instr.msr, instr.value)))
            elif op is Op.VMENTER or op is Op.VMEXIT:
                mode_changed = True
            machine.execute(instr)

        if needs_push_bound and push_count > sb.depth:
            clean = False
        if tlb_fills and pcid_changed:
            # The batched TLB replay would key post-switch fills with the
            # pre-switch PCID.
            clean = False

        if not clean:
            state.failures += 1
            STATS.interp_fallbacks += 1
            return counters.tsc - tsc_before

        memo = _Memo()
        # Checks all evaluate against the pre-state (replay runs them
        # before any op), so repeats of one (container, key) predicate
        # are redundant.
        seen = set()
        unique = []
        for check in checks:
            ckey = (id(check[0]), check[1], check[2])
            if ckey not in seen:
                seen.add(ckey)
                unique.append(check)
        # Miss-y segments: emit the eviction-headroom / exact-content
        # predicates and the batched access-stream replays, dropping the
        # deferred touches they supersede (the replayed stream reproduces
        # every LRU move in recorded order).
        id_entries = id(entries)
        if tlb_fills:
            value_checks.append(
                (_fits, (entries, tlb.capacity - tlb_fills), True))
            tlb_touches.clear()
            for tkey in [k for k in touches if k[0] == id_entries]:
                del touches[tkey]
            ops.append((_replay_accesses, (tlb, tuple(tlb_addrs))))
        if cache_fills:
            for set_index in l1_fill_sets:
                value_checks.append((tuple, (l1_sets[set_index],),
                                     l1_snapshots[set_index]))
            for l2_index in l2_fill_sets:
                value_checks.append((tuple, (l2_sets[l2_index],),
                                     l2_snapshots[l2_index]))
            for tkey in [k for k in touches if k[0] != id_entries]:
                del touches[tkey]
            ops.append((_replay_accesses,
                        (machine.caches, tuple(cache_addrs))))
        memo.checks = tuple(unique)
        if tlb_page_checks:
            seen_pages = set()
            unique_pages = []
            for pair in tlb_page_checks:
                if pair not in seen_pages:
                    seen_pages.add(pair)
                    unique_pages.append(pair)
            memo.tlb_checks = tuple(unique_pages)
        memo.value_checks = tuple(value_checks)
        # Pre-switch (ambient-PCID) TLB touches replay before any static
        # post-switch touches of the same structure, preserving last-touch
        # order even when the switch lands on the same PCID.
        if tlb_touches:
            ops.append((_touch_tlb_pages, (tlb, tuple(tlb_touches))))
        # Emit the per-structure batches (one replay call each), then the
        # deduplicated LRU touches grouped by container.  All of these
        # target disjoint structures, so their relative order is
        # unobservable; within each batch the recorded order is kept.
        if sb_pushes:
            if len(sb_pushes) == 1:
                ops.append((sb.push, sb_pushes[0]))
            else:
                ops.append((sb.push_many, (tuple(sb_pushes),)))
        if bhb_pcs:
            if len(bhb_pcs) == 1:
                ops.append((machine.bhb.push, (bhb_pcs[0],)))
            else:
                ops.append((machine.bhb.push_many, (tuple(bhb_pcs),)))
        if btb_trains:
            if len(btb_trains) == 1:
                ops.append((btb.train, btb_trains[0]))
            else:
                ops.append((btb.train_many, (tuple(btb_trains),)))
        groups: Dict[int, Tuple[Any, List[Any]]] = {}
        for fn, args in touches.values():
            container = fn.__self__
            grouped = groups.get(id(container))
            if grouped is None:
                groups[id(container)] = (container, [args[0]])
            else:
                grouped[1].append(args[0])
        for container, keys in groups.values():
            if len(keys) == 1:
                ops.append((container.move_to_end, (keys[0],)))
            else:
                ops.append((_touch_many, (container, tuple(keys))))
        memo.ops = tuple(ops)
        memo.cycles = counters.tsc - tsc_before
        memo.bumps = tuple(
            (name, value - events_before.get(name, 0))
            for name, value in counters.events.items()
            if value != events_before.get(name, 0))
        if ledger is not None:
            postings: Dict[Tuple[str, str], int] = {}
            for (layer, mit, prim), value in ledger._entries.items():
                delta = value - ledger_before.get((layer, mit, prim), 0)
                if delta:
                    key2 = (mit, prim)
                    postings[key2] = postings.get(key2, 0) + delta
            memo.postings = tuple((mit, prim, c) for (mit, prim), c
                                  in postings.items())
        memo.load_residue = load_residue
        memo.store_residue = store_residue
        memo.final_mode = machine.mode if mode_changed else None
        memo.final_pcid = tlb.current_pcid if pcid_changed else None
        if len(state.variants) >= MAX_MEMO_VARIANTS:
            # Machine-state phases drift over a long-lived machine (old
            # PCIDs die, working sets migrate): retire the least recently
            # matched variant (hits keep theirs at the front) rather than
            # freezing this guard on stale pins.
            del state.variants[-1]
        state.variants.insert(0, memo)
        STATS.memo_records += 1
        return memo.cycles

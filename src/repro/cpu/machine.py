"""The cycle-accounting machine: executes abstract instruction streams.

:class:`Machine` binds one :class:`~repro.cpu.model.CPUModel` to live
microarchitectural state — caches, TLB, BTB/BHB, RSB, store buffer, the
MDS-leakable buffers, MSRs and performance counters — and executes
:class:`~repro.cpu.isa.Instruction` streams, returning cycle costs.

Two execution paths exist:

* the **committed** path (:meth:`execute` / :meth:`run`) advances the TSC
  and architectural state;
* the **transient** path (:meth:`_transient_window`) models wrong-path
  execution after a branch misprediction: it costs no committed cycles but
  leaves microarchitectural footprints — cache fills, divider activity,
  MDS buffer residue — which is precisely what every attack in the paper
  observes and every mitigation tries to erase.

The machine is deterministic: all randomness (only the eIBRS periodic-scrub
interval uses any) flows from the seed passed at construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import SegmentationFault, UnsupportedFeatureError
from ..obs import ledger as obs_ledger
from ..obs import leakage as obs_leakage
from ..obs import spans as obs_spans
from ..obs import timeline as obs_timeline
from . import counters as ctr
from . import engine as blockengine
from . import msr as msrdef
from .btb import BranchHistoryBuffer, BranchTargetBuffer
from .buffers import MicroarchBuffers
from .condbp import ConditionalPredictor
from .cache import Cache, CacheHierarchy
from .counters import PerfCounters
from .isa import Instruction, Op, OP_DEFAULT_TAGS, SERIALIZING_OPS
from .model import CPUModel
from .modes import Mode
from .msr import MSRFile
from .rsb import BENIGN_ENTRY, ReturnStackBuffer
from .storebuffer import StoreBuffer

_RETIRED = ctr.INSTRUCTIONS_RETIRED
from .tlb import TLB

#: Retpoline flavors (paper Figure 4).
GENERIC_RETPOLINE = "generic"
AMD_RETPOLINE = "amd"

#: Default (mitigation, primitive) attribution for ops that *are* a
#: mitigation primitive even when the emitting site forgot to tag them.
#: Explicit Instruction.mitigation tags always win.  The table lives in
#: repro.cpu.isa so instructions can resolve their tag at construction;
#: the old name is kept as an alias.
_OP_DEFAULT_TAGS = OP_DEFAULT_TAGS

#: Ambient scrub probe (see :mod:`repro.cpu.replicas`): machines built
#: while one is installed register themselves and report every
#: scrub-eligible kernel entry, which is all the replica tier needs to
#: prove two seeds execute bit-identically without running both.
_SCRUB_PROBE = None


@contextmanager
def use_scrub_probe(probe):
    """Install ``probe`` for machines constructed inside the block.

    The probe is duck-typed: ``register(machine, seed) -> slot`` at
    construction, ``count(slot)`` per scrub-eligible kernel entry.
    Counting only — the machine's own floats and state transitions are
    untouched, so a probed run is bit-identical to an unprobed one.
    """
    global _SCRUB_PROBE
    previous = _SCRUB_PROBE
    _SCRUB_PROBE = probe
    try:
        yield probe
    finally:
        _SCRUB_PROBE = previous


class Machine:
    """One logical CPU executing abstract instructions with cycle accounting."""

    def __init__(self, cpu: CPUModel, seed: int = 0, microcode_patched: bool = True,
                 engine: Optional[str] = None) -> None:
        self.cpu = cpu
        self.costs = cpu.costs
        self.mode = Mode.USER
        self.microcode_patched = microcode_patched

        self.counters = PerfCounters()
        self.msr = MSRFile(
            supports_ibrs=cpu.predictor.supports_ibrs,
            supports_eibrs=cpu.predictor.supports_eibrs,
            supports_ssbd=True,
            arch_capabilities=cpu.arch_capabilities,
        )
        self.btb = BranchTargetBuffer(
            entries=cpu.btb_entries,
            mode_tagged=cpu.predictor.btb_mode_tagged,
            opaque_index=cpu.predictor.btb_opaque_index,
        )
        self.bhb = BranchHistoryBuffer()
        self.cond_predictor = ConditionalPredictor()
        self.rsb = ReturnStackBuffer(
            depth=cpu.rsb_depth,
            underflow_falls_back_to_btb=cpu.predictor.rsb_underflow_uses_btb,
        )
        self.caches = CacheHierarchy(
            l1=Cache(cpu.l1d_kb * 1024, cpu.l1_ways),
            l2=Cache(cpu.l2_kb * 1024, cpu.l2_ways),
        )
        self.tlb = TLB(entries=cpu.tlb_entries, supports_pcid=cpu.supports_pcid)
        self.store_buffer = StoreBuffer(depth=cpu.store_buffer_depth)
        self.mds_buffers = MicroarchBuffers(vulnerable=cpu.vulns.mds)

        # Program memory: code address -> instruction block.  Transient
        # windows launched at an address execute the registered block.
        self.program: Dict[int, List[Instruction]] = {}

        # KPTI state, owned by the kernel model: when True, kernel pages
        # are reachable from user-mode page tables, so a Meltdown-vulnerable
        # part can transiently read them from user mode.
        self.kernel_mapped_in_user = True

        # Retpoline flavor used when an instruction is marked retpoline.
        self.retpoline_variant = GENERIC_RETPOLINE

        # SMT sibling identity: 0 on a standalone machine.  SMTCore sets
        # 1 on the second hyperthread and shares predictor/cache state.
        self.thread_id = 0

        # Optional instrumentation: called as tracer(instr, cycles,
        # transient, mode) after every executed instruction.  See
        # repro.cpu.trace.ExecutionTrace.
        self.tracer = None

        # Observability: adopt the installed span tracer as this machine's
        # trace clock.  The default NullTracer makes both calls no-ops.
        self.obs = obs_spans.current_tracer()
        self.obs.bind_machine(self)

        # Cycle-attribution ledger: when one is installed, every TSC
        # advance is filed under (layer, mitigation, primitive) via the
        # counter-file hook; attach() registers us for the sum-to-TSC
        # invariant check.
        self.ledger = obs_ledger.current_ledger()
        if self.ledger is not None:
            self.counters.ledger = self.ledger
            self.ledger.attach(self.counters)

        # Speculative-leakage tracer and microarchitectural event
        # timeline: when installed, taint flows / structure-state
        # transitions (train/flush/hit/miss/...) are recorded (see
        # repro.obs.leakage and repro.obs.timeline).  None = off,
        # strictly zero cost.  Both slots must exist before either
        # attach runs: attach_leakage re-tees an already-attached
        # timeline behind the tracer.
        self.leakage = None
        self.timeline = None
        ambient_leakage = obs_leakage.current_leakage()
        if ambient_leakage is not None:
            self.attach_leakage(ambient_leakage)
        ambient_timeline = obs_timeline.current_timeline()
        if ambient_timeline is not None:
            self.attach_timeline(ambient_timeline)

        # eIBRS periodic BTB scrub state (paper section 6.2.2).
        self._rng = np.random.default_rng(seed)
        self._scrub_countdown = self._next_scrub_interval()

        # Replica-batch scrub probe (see repro.cpu.replicas): the only
        # seed-dependent behavior in the machine is the scrub interval
        # above, so counting scrub-eligible kernel entries is enough for
        # the batch tier to decide which replica seeds share this run's
        # execution bit-for-bit.
        self._scrub_probe = _SCRUB_PROBE
        self._scrub_probe_slot = (
            self._scrub_probe.register(self, seed)
            if self._scrub_probe is not None else -1)

        # Wire MSR side effects.
        self.msr.on_ibpb(self._do_ibpb)
        self.msr.on_l1d_flush(self._do_l1d_flush)

        # Last committed load value seen per address is not tracked; the
        # attack demos track data flow themselves.  The machine tracks the
        # last transient load addresses so demos can check the side channel.
        self.transient_loads: List[int] = []

        # Block-compilation engine: a transparent fast path for run() that
        # memoizes straight-line sequence deltas (see repro.cpu.engine).
        # None means pure interpretation (--engine=interp).
        self.engine_mode = engine if engine is not None else blockengine.default_engine()
        self.engine = (blockengine.BlockEngine(self)
                       if self.engine_mode == blockengine.ENGINE_BLOCK else None)

    def attach_leakage(self, tracer) -> None:
        """Adopt a :class:`repro.obs.leakage.LeakageTracer`: wire it onto
        this machine's microarchitectural structures and key its events to
        this CPU.  With a tracer attached, ``run()`` always interprets —
        taint is a guard-key input the block engine does not model, so
        traced segments fall back to bit-identical interpreted replay."""
        self.leakage = tracer
        tracer.bind_machine(self)
        if self.timeline is not None:
            # The leakage tracer claimed the structure observer slots;
            # rebind the timeline so it tees itself back in.
            self.timeline.bind_machine(self)

    def attach_timeline(self, timeline) -> None:
        """Adopt a :class:`repro.obs.timeline.EventTimeline`: every
        structure-state transition on this machine is recorded into its
        ring buffer.  Composes with an attached leakage tracer (the
        shared observer slots are teed) and, like the tracer, forces
        ``run()`` onto the interpreter — batched block-engine replay
        cannot reproduce the per-event stream, and the interpreted
        fallback is bit-identical by the engine's differential
        contract."""
        self.timeline = timeline
        timeline.bind_machine(self)

    # ------------------------------------------------------------------ #
    # MSR side effects
    # ------------------------------------------------------------------ #

    def _do_ibpb(self) -> None:
        self.btb.barrier()
        self.counters.bump(ctr.IBPB_COUNT)

    def _do_l1d_flush(self) -> None:
        self.caches.flush_l1()
        self.counters.bump(ctr.L1D_FLUSHES)

    def _next_scrub_interval(self) -> int:
        low, high = self.cpu.predictor.eibrs_scrub_period
        return int(self._rng.integers(low, high + 1))

    # ------------------------------------------------------------------ #
    # Code registration (for transient windows and the probe)
    # ------------------------------------------------------------------ #

    def register_code(self, address: int, block: Sequence[Instruction]) -> None:
        """Place an instruction block at a code address.

        Transient execution steered to ``address`` (by a poisoned BTB entry
        or an RSB underflow fallback) will execute this block wrong-path.
        """
        if address == 0:
            raise ValueError("address 0 is reserved as the harmless target")
        self.program[address] = list(block)

    # ------------------------------------------------------------------ #
    # Committed execution
    # ------------------------------------------------------------------ #

    def run(self, instructions: Iterable[Instruction]) -> int:
        """Execute a stream on the committed path; returns total cycles.

        Concrete multi-instruction sequences route through the block
        engine (when enabled and no tracer wants per-instruction events);
        everything else — generators, single instructions, traced runs —
        interprets instruction by instruction.  Both paths are
        bit-identical by construction (see repro.cpu.engine).
        """
        engine = self.engine
        if (engine is not None and self.tracer is None
                and self.leakage is None
                and self.timeline is None
                and instructions.__class__ in (list, tuple)
                and len(instructions) > 1):
            return engine.run(instructions)
        total = 0
        for instr in instructions:
            total += self.execute(instr)
        return total

    def prime_block(self, instructions: Sequence[Instruction]) -> None:
        """Pre-compile a known-hot sequence (kernel entry/exit, handler
        bodies) so even its first execution takes the engine fast path."""
        if (self.engine is not None
                and instructions.__class__ in (list, tuple)
                and len(instructions) > 1):
            self.engine.prime(instructions)

    def execute(self, instr: Instruction) -> int:
        """Execute one instruction on the committed path; returns cycles."""
        handler = instr.handler
        if handler is None:
            handler = _DISPATCH.get(instr.op)
            if handler is None:  # pragma: no cover - exhaustive over Op
                raise UnsupportedFeatureError(f"unhandled op {instr.op}")
            instr.handler = handler
        cycles = handler(self, instr)

        counters = self.counters
        ledger = self.ledger
        if ledger is None:
            # add_cycles() without an attached ledger is exactly this.
            counters.tsc += cycles
        else:
            mitigation, primitive = instr.attr_tag
            ledger.set_tag(mitigation, primitive)
            counters.add_cycles(cycles)
            ledger.clear_tag()
        events = counters.events
        events[_RETIRED] = events.get(_RETIRED, 0) + 1
        if self.tracer is not None:
            self.tracer(instr, cycles, False, self.mode)
        return cycles

    def _attribution_tag(self, instr: Instruction):
        """(mitigation, primitive) the ledger files this instruction under.

        Tags are now resolved once at Instruction construction (see
        ``Instruction.attr_tag``); this accessor remains for callers and
        tests that consult the policy explicitly.
        """
        return instr.attr_tag

    # -- per-op dispatch targets (bound via the module-level _DISPATCH
    #    table; each returns the instruction's cycle cost) --------------- #

    def _op_alu(self, instr: Instruction) -> int:
        return self.costs.alu

    def _op_work(self, instr: Instruction) -> int:
        return instr.value

    def _op_nop(self, instr: Instruction) -> int:
        return self.costs.nop

    def _op_mul(self, instr: Instruction) -> int:
        return self.costs.mul

    def _op_div(self, instr: Instruction) -> int:
        self.counters.bump(ctr.DIVIDER_ACTIVE, self.costs.div)
        return self.costs.div

    def _op_cmov(self, instr: Instruction) -> int:
        return self.costs.cmov

    def _op_pause(self, instr: Instruction) -> int:
        return self.costs.pause

    def _op_clflush(self, instr: Instruction) -> int:
        self.caches.flush_line(instr.address)
        return self.costs.clflush

    def _op_indirect(self, instr: Instruction) -> int:
        cycles = self._execute_indirect(instr)
        if instr.op is Op.CALL_INDIRECT:
            self.rsb.push(instr.pc)
        return cycles

    def _op_call(self, instr: Instruction) -> int:
        self.rsb.push(instr.pc)
        self.bhb.push(instr.pc)
        return self.costs.call

    def _op_lfence(self, instr: Instruction) -> int:
        return self.costs.lfence

    def _op_verw(self, instr: Instruction) -> int:
        return self._execute_verw()

    def _op_rsb_fill(self, instr: Instruction) -> int:
        self.rsb.stuff()
        return self.costs.rsb_fill

    def _op_syscall(self, instr: Instruction) -> int:
        return self._execute_syscall_entry()

    def _op_sysret(self, instr: Instruction) -> int:
        previous = self.mode
        self.mode = Mode.GUEST_USER if self.mode.is_guest else Mode.USER
        if self.leakage is not None:
            self.leakage.on_boundary(previous, self.mode)
        return self.costs.sysret

    def _op_swapgs(self, instr: Instruction) -> int:
        return self.costs.swapgs

    def _op_mov_cr3(self, instr: Instruction) -> int:
        invalidated = self.tlb.switch_context(pcid=instr.value)
        return self.costs.swap_cr3 + invalidated // 8  # shootdown refill drag

    def _op_rdmsr(self, instr: Instruction) -> int:
        return self.costs.rdmsr

    def _op_xsave(self, instr: Instruction) -> int:
        return self.costs.xsave

    def _op_xrstor(self, instr: Instruction) -> int:
        return self.costs.xrstor

    def _op_l1d_flush(self, instr: Instruction) -> int:
        self.msr.write(msrdef.IA32_FLUSH_CMD, msrdef.L1D_FLUSH_BIT)
        return self.costs.l1d_flush

    def _op_vmenter(self, instr: Instruction) -> int:
        previous = self.mode
        self.mode = Mode.GUEST_KERNEL
        if self.leakage is not None:
            self.leakage.on_boundary(previous, self.mode)
        return self.costs.vmenter

    def _op_vmexit(self, instr: Instruction) -> int:
        previous = self.mode
        self.mode = Mode.KERNEL
        self.counters.bump(ctr.VM_EXITS)
        if self.leakage is not None:
            self.leakage.on_boundary(previous, self.mode)
        return self.costs.vmexit

    def _op_rdtsc(self, instr: Instruction) -> int:
        return self.costs.rdtsc

    def _op_rdpmc(self, instr: Instruction) -> int:
        return self.costs.rdpmc

    def charge(self, cycles: int, mitigation: Optional[str] = None,
               primitive: Optional[str] = None) -> int:
        """Charge raw cycles (no instruction) with ledger attribution.

        For cost sites that advance the TSC directly — exception-vector
        overhead, lazy-FPU traps, TLB shootdown drag — so their cycles
        stay attributed instead of landing in base/other.
        """
        ledger = self.ledger
        if ledger is None:
            self.counters.add_cycles(cycles)
        else:
            ledger.set_tag(mitigation, primitive)
            self.counters.add_cycles(cycles)
            ledger.clear_tag()
        return cycles

    # -- op helpers ----------------------------------------------------- #

    def _execute_load(self, instr: Instruction) -> int:
        if instr.kernel_address and not self.mode.is_kernel:
            # Architectural access to kernel memory from user mode faults.
            # (Transient accesses go through _transient_load instead.)
            raise SegmentationFault(instr.address, str(self.mode))
        costs = self.costs
        cycles = 0
        if not self.tlb.access(instr.address):
            self.counters.bump(ctr.TLB_MISSES)
            cycles += costs.tlb_miss
        if self.store_buffer.match(instr.address):
            if self.msr.ssbd_enabled:
                # SSBD: the load must wait for older store addresses.
                self.counters.bump(ctr.STLF_BLOCKED)
                if self.leakage is not None:
                    self.leakage.on_stlf_blocked(instr.address)
                level = self.caches.access(instr.address)
                penalty = self.cpu.ssbd_load_penalty
                cycles += self._load_latency(level) + penalty
                if self.ledger is not None:
                    self.ledger.add_split(penalty, "ssbd", "stlf_block")
            else:
                self.counters.bump(ctr.STLF_HITS)
                self.caches.access(instr.address)  # line still warms
                cycles += costs.store_forward
        else:
            level = self.caches.access(instr.address)
            cycles += self._load_latency(level)
        self.mds_buffers.deposit_load(instr.value or instr.address, self.mode)
        return cycles

    def _load_latency(self, level: int) -> int:
        costs = self.costs
        if level == 1:
            return costs.load_l1
        if level == 2:
            self.counters.bump(ctr.L1_MISSES)
            return costs.load_l2
        self.counters.bump(ctr.L1_MISSES)
        return costs.load_mem

    def _execute_store(self, instr: Instruction) -> int:
        cycles = self.costs.store
        if not self.tlb.access(instr.address):
            self.counters.bump(ctr.TLB_MISSES)
            cycles += self.costs.tlb_miss
        self.caches.access(instr.address)  # write-allocate
        self.store_buffer.push(instr.address, instr.value)
        self.mds_buffers.deposit_store(instr.value or instr.address, self.mode)
        return cycles

    def _execute_cond_branch(self, instr: Instruction) -> int:
        """A conditional branch through the 2-bit predictor.

        ``instr.value`` is the architectural outcome (1 = taken); a
        mispredicted not-taken branch whose *taken* path has registered
        code runs that path transiently — the Spectre V1 front door.
        """
        self.bhb.push(instr.pc)
        taken = bool(instr.value)
        predicted = self.cond_predictor.predict(instr.pc)
        self.cond_predictor.update(instr.pc, taken)
        cycles = self.costs.cond_branch
        if predicted != taken:
            cycles += self.costs.mispredict_penalty
            if predicted and instr.target:
                # Wrongly predicted taken: the taken-path body runs
                # transiently (the mistrained bounds check).
                leakage = self.leakage
                if leakage is not None:
                    leakage.window_begin(obs_leakage.SPECTRE_PHT, self.mode,
                                         target=instr.target)
                self._transient_window(instr.target)
                if leakage is not None:
                    leakage.window_end()
        return cycles

    def _indirect_prediction_allowed(self) -> bool:
        """Does this CPU consult the BTB for indirect branches right now?

        Encodes the section-6 policy matrix: plain parts always predict;
        IBRS on pre-eIBRS parts (and Zen 2/3) blocks all prediction; Ice
        Lake Client with IBRS set stops predicting in kernel mode.
        """
        behavior = self.cpu.predictor
        if not self.msr.ibrs_enabled:
            return True
        if behavior.ibrs_blocks_all_prediction and not behavior.supports_eibrs:
            return False
        if behavior.supports_eibrs:
            if behavior.eibrs_blocks_kernel_prediction and self.mode.is_kernel:
                return False
            return True
        return True

    def _execute_indirect(self, instr: Instruction) -> int:
        costs = self.costs
        self.bhb.push(instr.pc)

        if instr.retpoline:
            # Retpolines never consult or train the BTB; they simply cost
            # more (Table 5) and are unpoisonable by construction.
            extra = self._retpoline_extra()
            if self.ledger is not None:
                self.ledger.add_split(extra, "spectre_v2", "retpoline")
            if self.leakage is not None:
                self.leakage.on_predictor_bypass(instr.pc, "retpoline")
            return costs.indirect_base + extra

        if not self._indirect_prediction_allowed():
            # IBRS is suppressing prediction: pay the Table 5 IBRS delta.
            extra = costs.ibrs_extra if costs.ibrs_extra is not None else 0
            if self.ledger is not None:
                self.ledger.add_split(extra, "spectre_v2", "ibrs_no_predict")
            if self.leakage is not None:
                self.leakage.on_predictor_bypass(instr.pc, "ibrs_no_predict")
            self.btb.train(instr.pc, instr.target, self.mode,
                           thread=self.thread_id)
            return costs.indirect_base + extra

        predicted = self.btb.lookup(instr.pc, self.mode,
                                    thread=self.thread_id,
                                    stibp=self.msr.stibp_enabled)
        cycles = costs.indirect_base
        if self.msr.eibrs_active and costs.ibrs_extra:
            cycles += costs.ibrs_extra
            if self.ledger is not None:
                self.ledger.add_split(costs.ibrs_extra, "spectre_v2", "eibrs")
        leakage = self.leakage
        if predicted is None:
            self.counters.bump(ctr.BTB_MISSES)
            cycles += costs.mispredict_penalty
            if leakage is not None:
                # A tainted entry may exist but be invisible here (mode
                # tagging, STIBP): hardware isolation blocked the redirect.
                leakage.on_redirect_suppressed(instr.pc)
        elif predicted == instr.target:
            self.counters.bump(ctr.BTB_HITS)
        else:
            # Mispredict: transient execution runs at the *redirect* target
            # (None on Zen 3, where the probe could never land).
            self.counters.bump(ctr.MISPREDICTED_INDIRECT)
            cycles += costs.mispredict_penalty
            redirect = self.btb.redirect_target(
                instr.pc, self.mode, thread=self.thread_id,
                stibp=self.msr.stibp_enabled)
            if redirect is not None:
                if leakage is not None:
                    leakage.window_begin(obs_leakage.SPECTRE_BTB, self.mode,
                                         pc=instr.pc, target=redirect)
                self._transient_window(redirect)
                if leakage is not None:
                    leakage.window_end()
            elif leakage is not None:
                leakage.on_redirect_suppressed(instr.pc)
        self.btb.train(instr.pc, instr.target, self.mode,
                       thread=self.thread_id)
        return cycles

    def _retpoline_extra(self) -> int:
        costs = self.costs
        if self.retpoline_variant == AMD_RETPOLINE:
            if costs.amd_retpoline_extra is None:
                raise UnsupportedFeatureError(
                    f"AMD retpolines are not modelled for {self.cpu.key} "
                    "(the paper only measures them on AMD parts)"
                )
            return costs.amd_retpoline_extra
        return costs.generic_retpoline_extra

    def _execute_ret(self, instr: Instruction) -> int:
        costs = self.costs
        self.bhb.push(instr.pc)
        predicted = self.rsb.pop()
        leakage = self.leakage
        if predicted is None:
            # Underflow: Skylake+ Intel falls back to the BTB (the
            # SpectreRSB surface); others stall.
            if self.rsb.underflow_falls_back_to_btb and self._indirect_prediction_allowed():
                redirect = self.btb.redirect_target(
                    instr.pc, self.mode, thread=self.thread_id,
                    stibp=self.msr.stibp_enabled)
                if redirect is not None and redirect != instr.target:
                    self.counters.bump(ctr.MISPREDICTED_INDIRECT)
                    if leakage is not None:
                        leakage.window_begin(obs_leakage.SPECTRE_RSB,
                                             self.mode, pc=instr.pc,
                                             target=redirect)
                    self._transient_window(redirect)
                    if leakage is not None:
                        leakage.window_end()
            return costs.ret_ + costs.mispredict_penalty
        if predicted == instr.target:
            return costs.ret_
        # Stale or benign entry: mispredicted return.
        self.counters.bump(ctr.MISPREDICTED_INDIRECT)
        if predicted != BENIGN_ENTRY:
            if leakage is not None:
                leakage.window_begin(obs_leakage.SPECTRE_RSB, self.mode,
                                     target=predicted)
            self._transient_window(predicted)
            if leakage is not None:
                leakage.window_end()
        return costs.ret_ + costs.mispredict_penalty

    def _execute_wrmsr(self, instr: Instruction) -> int:
        """MSR writes: cost depends on which MSR (IBPB and L1D flush are
        command MSRs with their own, much larger, calibrated costs)."""
        self.msr.write(instr.msr, instr.value)
        if instr.msr == msrdef.IA32_PRED_CMD and instr.value & msrdef.PRED_CMD_IBPB:
            return self.costs.ibpb
        if instr.msr == msrdef.IA32_FLUSH_CMD and instr.value & msrdef.L1D_FLUSH_BIT:
            return self.costs.l1d_flush
        return self.costs.wrmsr

    def _execute_verw(self) -> int:
        clearing = (
            self.cpu.vulns.mds
            and self.microcode_patched
            and self.costs.verw_clear is not None
        )
        if clearing:
            self.mds_buffers.clear()
            self.counters.bump(ctr.VERW_CLEARS)
            return self.costs.verw_clear  # type: ignore[return-value]
        return self.costs.verw_legacy

    def _execute_syscall_entry(self) -> int:
        previous = self.mode
        self.mode = Mode.GUEST_KERNEL if self.mode.is_guest else Mode.KERNEL
        if self.leakage is not None:
            self.leakage.on_boundary(previous, self.mode)
        self.counters.bump(ctr.KERNEL_ENTRIES)
        cycles = self.costs.syscall
        behavior = self.cpu.predictor
        if behavior.eibrs_periodic_scrub and self.msr.eibrs_active:
            if self._scrub_probe is not None:
                self._scrub_probe.count(self._scrub_probe_slot)
            self._scrub_countdown -= 1
            if self._scrub_countdown <= 0:
                self._scrub_countdown = self._next_scrub_interval()
                self.btb.flush()
                self.counters.bump(ctr.BTB_FLUSH_ON_ENTRY)
                cycles += behavior.eibrs_scrub_extra_cycles
                if self.ledger is not None:
                    self.ledger.add_split(behavior.eibrs_scrub_extra_cycles,
                                          "spectre_v2", "eibrs_scrub")
        return cycles

    # ------------------------------------------------------------------ #
    # Transient (wrong-path) execution
    # ------------------------------------------------------------------ #

    def speculate(self, block: Sequence[Instruction]) -> int:
        """Execute ``block`` transiently, as if down a mispredicted path.

        Public entry point used by the attack demonstrations and the JS
        sandbox model: it is the machine-level analogue of "the processor
        speculatively executed the body of the if statement".  Returns the
        number of instructions that executed before the window closed
        (serializing instruction, blocked access, or window exhaustion).
        No committed cycles are charged.
        """
        leakage = self.leakage
        if leakage is not None:
            leakage.window_begin(obs_leakage.SPECTRE_PHT, self.mode)
        budget = self.cpu.spec_window
        executed = 0
        for instr in block:
            if budget <= 0:
                break
            if instr.op in SERIALIZING_OPS:
                if leakage is not None and instr.op is Op.LFENCE:
                    leakage.on_lfence()
                break
            if instr.op is Op.LOAD and instr.kernel_address and not self.mode.is_kernel:
                # A blocked privileged access also ends the window unless
                # the Meltdown predicate lets it through transiently.
                if not (self.cpu.vulns.meltdown and self.kernel_mapped_in_user):
                    break
            budget -= 1
            executed += 1
            self._execute_transient(instr)
        if leakage is not None:
            leakage.window_end()
        if self.obs.enabled:
            self.obs.instant("cpu.transient_window", origin="speculate",
                             executed=executed, mode=str(self.mode))
        return executed

    def _transient_window(self, target: int) -> None:
        """Run wrong-path execution starting at ``target``.

        Costs no committed cycles (the mispredict penalty already accounts
        for the wasted time) but leaves microarchitectural side effects.
        """
        block = self.program.get(target)
        if not block:
            return
        leakage = self.leakage
        budget = self.cpu.spec_window
        executed = 0
        for instr in block:
            if budget <= 0:
                break
            if instr.op in SERIALIZING_OPS:
                if leakage is not None and instr.op is Op.LFENCE:
                    leakage.on_lfence()
                break  # serializing instructions end the window
            budget -= 1
            executed += 1
            self._execute_transient(instr)
        if self.obs.enabled:
            self.obs.instant("cpu.transient_window", origin="mispredict",
                             target=target, executed=executed,
                             mode=str(self.mode))

    def _execute_transient(self, instr: Instruction) -> None:
        """One wrong-path instruction: side effects plus a *modeled* cycle
        cost reported to the tracer (the cycles the wasted issue slots
        would have taken — never charged to the committed TSC)."""
        op = instr.op
        costs = self.costs
        self.counters.bump(ctr.TRANSIENT_INSTRUCTIONS)
        cycles = 0
        if op is Op.DIV:
            # The probe signal: the divider is busy even on the wrong path.
            self.counters.bump(ctr.DIVIDER_ACTIVE, costs.div)
            if self.leakage is not None:
                self.leakage.on_transient_div()
            cycles = costs.div
        elif op is Op.LOAD:
            cycles = self._transient_load(instr)
        elif op is Op.STORE:
            # Transient stores never reach memory but do leave store-buffer
            # residue visible to MDS sampling.
            self.mds_buffers.deposit_store(instr.value or instr.address, self.mode)
            cycles = costs.store
        elif op is Op.CMOV:
            # With a poisoned (zeroed) index the masking cmov redirects
            # downstream transient loads to a safe address — modelled by the
            # JIT layer, which simply omits the dangerous load.
            cycles = costs.cmov
        elif op is Op.ALU:
            cycles = costs.alu
        elif op is Op.WORK:
            cycles = instr.value
        elif op is Op.NOP:
            cycles = costs.nop
        elif op is Op.MUL:
            cycles = costs.mul
        elif op is Op.PAUSE:
            cycles = costs.pause
        # Other ops have no modelled transient cost or side effects.
        if self.tracer is not None:
            self.tracer(instr, cycles, True, self.mode)

    def _transient_load(self, instr: Instruction) -> int:
        if instr.kernel_address and not self.mode.is_kernel:
            # Meltdown predicate: the transient read succeeds only on a
            # vulnerable part with the kernel mapped into the user page
            # tables (i.e. KPTI off).
            if not (self.cpu.vulns.meltdown and self.kernel_mapped_in_user):
                return 0
        level = self.caches.access(instr.address)  # the cache side channel
        self.transient_loads.append(instr.address)
        self.mds_buffers.deposit_load(instr.value or instr.address, self.mode)
        if self.leakage is not None:
            self.leakage.on_transient_load(
                instr.address, bool(instr.kernel_address), self.mode)
        # Modeled latency only — no miss-counter bumps: PMCs other than the
        # divider only advance at retirement.
        if level == 1:
            return self.costs.load_l1
        if level == 2:
            return self.costs.load_l2
        return self.costs.load_mem

    # ------------------------------------------------------------------ #
    # Measurement harness (the paper's rdtsc timed-loop methodology)
    # ------------------------------------------------------------------ #

    def measure(
        self,
        body: Sequence[Instruction],
        iterations: int = 1000,
        warmup: int = 32,
    ) -> float:
        """Average per-iteration cycle cost of ``body``, rdtsc-style.

        Mirrors the paper's section 5 methodology: run the sequence in a
        loop bracketed by timestamp counter reads, subtract the measured
        empty-loop overhead, and average over many iterations.  ``body``
        instructions are re-executed each iteration, so steady-state cache
        and predictor behaviour emerges naturally after ``warmup``.
        """
        loop_overhead = self.costs.cond_branch + self.costs.alu

        for _ in range(warmup):
            self.run(body)

        start = self.counters.tsc
        self.counters.add_cycles(self.costs.rdtsc)
        for _ in range(iterations):
            self.run(body)
            self.counters.add_cycles(loop_overhead)
        self.counters.add_cycles(self.costs.rdtsc)
        elapsed = self.counters.tsc - start

        overhead = 2 * self.costs.rdtsc + iterations * loop_overhead
        return (elapsed - overhead) / iterations

    def read_tsc(self) -> int:
        """Current value of the simulated timestamp counter."""
        return self.counters.tsc


#: Op-indexed dispatch table for the committed path: one dict lookup per
#: instruction instead of a ~30-arm if/elif scan.  Built once at import;
#: entries are plain functions called as handler(machine, instr).
_DISPATCH = {
    Op.ALU: Machine._op_alu,
    Op.WORK: Machine._op_work,
    Op.NOP: Machine._op_nop,
    Op.MUL: Machine._op_mul,
    Op.DIV: Machine._op_div,
    Op.CMOV: Machine._op_cmov,
    Op.PAUSE: Machine._op_pause,
    Op.LOAD: Machine._execute_load,
    Op.STORE: Machine._execute_store,
    Op.CLFLUSH: Machine._op_clflush,
    Op.BRANCH_COND: Machine._execute_cond_branch,
    Op.BRANCH_INDIRECT: Machine._op_indirect,
    Op.CALL_INDIRECT: Machine._op_indirect,
    Op.CALL: Machine._op_call,
    Op.RET: Machine._execute_ret,
    Op.LFENCE: Machine._op_lfence,
    Op.VERW: Machine._op_verw,
    Op.RSB_FILL: Machine._op_rsb_fill,
    Op.SYSCALL: Machine._op_syscall,
    Op.SYSRET: Machine._op_sysret,
    Op.SWAPGS: Machine._op_swapgs,
    Op.MOV_CR3: Machine._op_mov_cr3,
    Op.WRMSR: Machine._execute_wrmsr,
    Op.RDMSR: Machine._op_rdmsr,
    Op.XSAVE: Machine._op_xsave,
    Op.XRSTOR: Machine._op_xrstor,
    Op.L1D_FLUSH: Machine._op_l1d_flush,
    Op.VMENTER: Machine._op_vmenter,
    Op.VMEXIT: Machine._op_vmexit,
    Op.RDTSC: Machine._op_rdtsc,
    Op.RDPMC: Machine._op_rdpmc,
}

"""Privilege modes of the simulated machine.

The paper's experiments cross three security boundaries: user/kernel,
JavaScript sandbox (which lives inside user mode), and guest/hypervisor.
The hardware predictor models care about the four hardware modes below;
the JS sandbox boundary is enforced in software by the model JIT.
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """Hardware privilege mode."""

    USER = "user"
    KERNEL = "kernel"
    GUEST_USER = "guest_user"
    GUEST_KERNEL = "guest_kernel"

    @property
    def is_kernel(self) -> bool:
        return self in (Mode.KERNEL, Mode.GUEST_KERNEL)

    @property
    def is_guest(self) -> bool:
        return self in (Mode.GUEST_USER, Mode.GUEST_KERNEL)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

"""Microarchitectural Data Sampling (MDS) buffer model.

MDS attacks (RIDL, ZombieLoad, Fallout — paper section 3.3) leak stale data
from small internal CPU buffers: the line fill buffers, the store buffer,
and the load ports.  Unlike Spectre/Meltdown, the attacker cannot choose an
address — it samples whatever the victim left behind.

The mitigation is to clear these buffers on every privilege-domain
crossing with the microcode-extended ``verw`` instruction (Table 4 of the
paper: ~500 cycles on vulnerable parts), or to disable SMT so no sibling
thread can sample concurrently.

We model each buffer class as "the last value that passed through it,
tagged with the privilege mode that produced it".  That is exactly the
property MDS exploits and ``verw`` erases; the data values themselves are
model payloads used by the attack-demonstration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .modes import Mode

FILL_BUFFER = "fill_buffer"
STORE_BUFFER = "store_buffer"
LOAD_PORT = "load_port"

_ALL = (FILL_BUFFER, STORE_BUFFER, LOAD_PORT)


@dataclass
class Residue:
    """Stale data lingering in one buffer."""

    value: int
    mode: Mode


class MicroarchBuffers:
    """The MDS-leakable buffer set of one physical core.

    ``vulnerable`` mirrors the CPU's MDS errata status: on immune parts
    (``MDS_NO``) sampling never returns foreign data, regardless of
    clearing, because the forwarding paths were fixed in hardware.
    """

    def __init__(self, vulnerable: bool) -> None:
        self.vulnerable = vulnerable
        self._residue: Dict[str, Optional[Residue]] = {name: None for name in _ALL}
        #: Optional leakage tracer hook (``repro.obs.leakage``).
        self.observer = None

    # -- victim side ---------------------------------------------------------

    def deposit_load(self, value: int, mode: Mode) -> None:
        """A load passed through a fill buffer and a load port."""
        self._residue[FILL_BUFFER] = Residue(value, mode)
        self._residue[LOAD_PORT] = Residue(value, mode)
        if self.observer is not None:
            self.observer.residue_load(value, mode)

    def deposit_store(self, value: int, mode: Mode) -> None:
        """A store left its data in the store buffer (Fallout surface)."""
        self._residue[STORE_BUFFER] = Residue(value, mode)
        if self.observer is not None:
            self.observer.residue_store(value, mode)

    # -- mitigation side -------------------------------------------------------

    def clear(self) -> None:
        """The microcode-extended ``verw``: overwrite all buffers."""
        for name in _ALL:
            self._residue[name] = None
        if self.observer is not None:
            self.observer.residue_clear()

    # -- attacker side -----------------------------------------------------------

    def sample(self, attacker_mode: Mode) -> Dict[str, int]:
        """Attempt an MDS sample from ``attacker_mode``.

        Returns a mapping of buffer name to leaked value for every buffer
        that still holds data deposited by a *different* privilege mode.
        Empty when the part is immune, the buffers were cleared, or the
        residue belongs to the attacker's own domain (no boundary crossed).
        """
        if not self.vulnerable:
            return {}
        leaked: Dict[str, int] = {}
        for name in _ALL:
            residue = self._residue[name]
            if residue is not None and residue.mode is not attacker_mode:
                leaked[name] = residue.value
        return leaked

    def holds_foreign_data(self, attacker_mode: Mode) -> bool:
        """Convenience predicate used by tests and the attack demos."""
        return bool(self.sample(attacker_mode))

"""Abstract instruction set for the timing simulator.

The simulator does not interpret real x86 machine code.  Instead, workloads
and the model OS kernel are expressed as streams of :class:`Instruction`
objects drawn from a small abstract ISA that captures everything the paper's
measurements depend on:

* ordinary compute (``ALU``, ``MUL``, ``DIV``, ``CMOV``) — ``DIV`` matters
  because the speculation probe of the paper's Figure 6 detects transient
  execution through the ``ARITH.DIVIDER_ACTIVE`` performance counter;
* memory operations (``LOAD``, ``STORE``, ``CLFLUSH``) that interact with
  the cache, TLB, store buffer and the MDS-leakable fill buffers;
* control flow (``BRANCH_COND``, ``BRANCH_INDIRECT``, ``CALL``,
  ``CALL_INDIRECT``, ``RET``) that interacts with the BTB and RSB and can
  trigger transient execution windows;
* privileged/system instructions (``SYSCALL``, ``SYSRET``, ``SWAPGS``,
  ``MOV_CR3``, ``WRMSR``, ``RDMSR``, ``VERW``, ``LFENCE``, ``XSAVE``,
  ``XRSTOR``, ``VMENTER``, ``VMEXIT``, ``L1D_FLUSH``) whose per-CPU costs
  are the calibration inputs taken from the paper's Tables 3-8;
* measurement instructions (``RDTSC``, ``RDPMC``) used by the
  microbenchmark harness exactly the way the paper uses them.

Instructions are plain slotted objects: cheap to construct, hashable by
identity, and safe to reuse across iterations of a timed loop (executing an
instruction never mutates it).
"""

from __future__ import annotations

import enum
import functools
from typing import Optional, Tuple

from .msr import (
    IA32_FLUSH_CMD,
    IA32_PRED_CMD,
    IA32_SPEC_CTRL,
    L1D_FLUSH_BIT,
    PRED_CMD_IBPB,
)


class Op(enum.Enum):
    """Operation kinds understood by :class:`repro.cpu.machine.Machine`."""

    # Compute
    NOP = "nop"
    ALU = "alu"
    # Trace compression: a block of straight-line work with a known cycle
    # cost (value = cycles).  Keeps cycle accounting honest for bulk
    # compute without executing thousands of Python-level ALU ops.
    WORK = "work"
    MUL = "mul"
    DIV = "div"
    CMOV = "cmov"
    PAUSE = "pause"

    # Memory
    LOAD = "load"
    STORE = "store"
    CLFLUSH = "clflush"

    # Control flow
    BRANCH_COND = "branch_cond"
    BRANCH_INDIRECT = "branch_indirect"
    CALL = "call"
    CALL_INDIRECT = "call_indirect"
    RET = "ret"

    # Serialization / mitigation primitives
    LFENCE = "lfence"
    VERW = "verw"
    RSB_FILL = "rsb_fill"

    # Privileged / system
    SYSCALL = "syscall"
    SYSRET = "sysret"
    SWAPGS = "swapgs"
    MOV_CR3 = "mov_cr3"
    WRMSR = "wrmsr"
    RDMSR = "rdmsr"
    XSAVE = "xsave"
    XRSTOR = "xrstor"
    L1D_FLUSH = "l1d_flush"
    VMENTER = "vmenter"
    VMEXIT = "vmexit"

    # Measurement
    RDTSC = "rdtsc"
    RDPMC = "rdpmc"


#: Ops that read memory (interact with cache/TLB/store buffer).
MEMORY_READ_OPS = frozenset({Op.LOAD})

#: Ops that write memory.
MEMORY_WRITE_OPS = frozenset({Op.STORE})

#: Ops that can redirect control flow through a predictor.
PREDICTED_BRANCH_OPS = frozenset({Op.BRANCH_INDIRECT, Op.CALL_INDIRECT, Op.RET})

#: Ops that serialize the pipeline (no transient window may cross them).
SERIALIZING_OPS = frozenset({Op.LFENCE, Op.WRMSR, Op.MOV_CR3, Op.VERW})


class Instruction:
    """One abstract instruction.

    Parameters
    ----------
    op:
        The operation kind.
    address:
        For memory ops, the virtual byte address accessed.
    size:
        For memory ops, the access size in bytes (informational).
    target:
        For direct control flow, the destination code address.  For
        indirect branches this is the *architectural* (true) target; the
        predictor may transiently send execution elsewhere.
    pc:
        The address of the instruction itself.  Branch predictor state is
        indexed by ``pc``, so two indirect branches at different addresses
        train different BTB entries.  Defaults to 0, which is fine for
        straight-line cost accounting where prediction is irrelevant.
    retpoline:
        For indirect branches only: this branch site was compiled as a
        retpoline (generic or AMD per the active mitigation config), so it
        never consults the BTB and can never be poisoned.
    msr:
        For ``WRMSR``/``RDMSR``, the MSR index being accessed.
    value:
        For ``WRMSR``, the value written.
    kernel_address:
        For memory ops, marks the target as kernel memory (used by the
        Meltdown model: user-mode architectural access faults).
    mitigation / primitive:
        Optional cycle-attribution tag.  Sequence builders in
        ``repro.mitigations`` stamp the instructions they emit (e.g. the
        KPTI entry ``mov cr3`` carries ``("pti", "mov_cr3")``) so the
        cycle ledger can file their cost under the responsible
        mitigation.  Untagged instructions fall back to per-op defaults,
        or to base work.

    The resolved ledger tag is precomputed into ``attr_tag`` at
    construction (instructions are immutable, so it can never change);
    the machine's per-instruction charge path reads the attribute instead
    of re-deriving the tag on every execute.
    """

    __slots__ = (
        "op",
        "address",
        "size",
        "target",
        "pc",
        "retpoline",
        "msr",
        "value",
        "kernel_address",
        "mitigation",
        "primitive",
        "attr_tag",
        "handler",
    )

    def __init__(
        self,
        op: Op,
        address: int = 0,
        size: int = 8,
        target: int = 0,
        pc: int = 0,
        retpoline: bool = False,
        msr: int = 0,
        value: int = 0,
        kernel_address: bool = False,
        mitigation: Optional[str] = None,
        primitive: Optional[str] = None,
    ) -> None:
        self.op = op
        self.address = address
        self.size = size
        self.target = target
        self.pc = pc
        self.retpoline = retpoline
        self.msr = msr
        self.value = value
        self.kernel_address = kernel_address
        self.mitigation = mitigation
        self.primitive = primitive
        if mitigation is not None:
            self.attr_tag = (mitigation, primitive or op.value)
        elif op is Op.WRMSR:
            self.attr_tag = _wrmsr_tag(msr, value)
        else:
            self.attr_tag = _DEFAULT_TAGS[op]
        # Execute-dispatch target, filled lazily by Machine.execute on
        # first use.  Per-op, machine-independent; caching it here turns
        # the hot dispatch into one attribute load (instructions are
        # interned, so the lookup happens once per distinct instruction).
        self.handler = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.op in MEMORY_READ_OPS or self.op in MEMORY_WRITE_OPS:
            parts.append(f"addr={self.address:#x}")
        if self.op in PREDICTED_BRANCH_OPS or self.op in (Op.CALL, Op.BRANCH_COND):
            parts.append(f"target={self.target:#x} pc={self.pc:#x}")
        if self.retpoline:
            parts.append("retpoline")
        return f"<Instruction {' '.join(parts)}>"


#: Default (mitigation, primitive) attribution for ops that *are* a
#: mitigation primitive even when the emitting site forgot to tag them.
#: Explicit Instruction.mitigation tags always win.
OP_DEFAULT_TAGS = {
    Op.VERW: ("mds", "verw"),
    Op.RSB_FILL: ("spectre_v2", "rsb_fill"),
    Op.L1D_FLUSH: ("l1tf", "l1d_flush"),
}

#: Fully resolved default tag per op (falls back to base work keyed by
#: the op name), so Instruction.__init__ does one dict lookup.
_DEFAULT_TAGS = {op: OP_DEFAULT_TAGS.get(op, (None, op.value)) for op in Op}


def _wrmsr_tag(msr: int, value: int):
    """WRMSR attribution dispatched on the MSR index and payload."""
    if msr == IA32_PRED_CMD and value & PRED_CMD_IBPB:
        return ("spectre_v2", "ibpb")
    if msr == IA32_FLUSH_CMD and value & L1D_FLUSH_BIT:
        return ("l1tf", "l1d_flush")
    if msr == IA32_SPEC_CTRL:
        return ("spectre_v2", "wrmsr_spec_ctrl")
    return (None, Op.WRMSR.value)


# ---------------------------------------------------------------------------
# Convenience constructors.  Workload generators use these heavily; they
# read better than repeating Instruction(Op.X, ...) everywhere.
#
# Instructions are immutable after construction, so constructors intern
# aggressively: argument-less constructors return module-level singletons,
# and the parameterised ones memoize on their (hashable) arguments.  That
# makes repeated sequence builds allocation-free and gives the block
# engine stable instruction identities to key compiled blocks on.
# ---------------------------------------------------------------------------

def nop() -> Instruction:
    return _NOP


@functools.lru_cache(maxsize=4096)
def work(cycles: int, mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    """A compressed block of straight-line work costing ``cycles``."""
    return Instruction(Op.WORK, value=cycles,
                       mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=None)
def alu(n: int = 1) -> Tuple[Instruction, ...]:
    """Return ``n`` single-cycle ALU instructions (one shared singleton)."""
    return (_ALU,) * n


def mul() -> Instruction:
    return _MUL


def div() -> Instruction:
    """A divide; occupies the divider unit, visible to the probe counter."""
    return _DIV


@functools.lru_cache(maxsize=256)
def cmov(mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.CMOV, mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=65536)
def load(address: int, size: int = 8, kernel: bool = False) -> Instruction:
    return Instruction(Op.LOAD, address=address, size=size, kernel_address=kernel)


@functools.lru_cache(maxsize=65536)
def store(address: int, size: int = 8, kernel: bool = False,
          value: int = 0) -> Instruction:
    return Instruction(Op.STORE, address=address, size=size,
                       kernel_address=kernel, value=value)


def clflush(address: int) -> Instruction:
    return Instruction(Op.CLFLUSH, address=address)


def branch_cond(target: int = 0, pc: int = 0, taken: bool = False) -> Instruction:
    """A conditional branch: ``taken`` is the architectural outcome and
    ``target`` the taken-path code address (used for wrong-path windows)."""
    return Instruction(Op.BRANCH_COND, target=target, pc=pc,
                       value=1 if taken else 0)


@functools.lru_cache(maxsize=16384)
def branch_indirect(target: int, pc: int = 0, retpoline: bool = False) -> Instruction:
    return Instruction(Op.BRANCH_INDIRECT, target=target, pc=pc, retpoline=retpoline)


def call(target: int = 0, pc: int = 0) -> Instruction:
    return Instruction(Op.CALL, target=target, pc=pc)


def call_indirect(target: int, pc: int = 0, retpoline: bool = False) -> Instruction:
    return Instruction(Op.CALL_INDIRECT, target=target, pc=pc, retpoline=retpoline)


def ret(pc: int = 0, target: int = 0) -> Instruction:
    """A return; ``target`` is the architectural return address (compared
    against the RSB prediction)."""
    return Instruction(Op.RET, pc=pc, target=target)


@functools.lru_cache(maxsize=256)
def lfence(mitigation: Optional[str] = None,
           primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.LFENCE, mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def verw(mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.VERW, mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def rsb_fill(mitigation: Optional[str] = None,
             primitive: Optional[str] = None) -> Instruction:
    """The 32-entry RSB stuffing sequence, modelled as one macro-op."""
    return Instruction(Op.RSB_FILL, mitigation=mitigation, primitive=primitive)


def syscall_instr() -> Instruction:
    return _SYSCALL


def sysret_instr() -> Instruction:
    return _SYSRET


def swapgs() -> Instruction:
    return _SWAPGS


@functools.lru_cache(maxsize=256)
def mov_cr3(pcid: int = 0, mitigation: Optional[str] = None,
            primitive: Optional[str] = None) -> Instruction:
    """Write the page table root; ``pcid`` tags the target context."""
    return Instruction(Op.MOV_CR3, value=pcid,
                       mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def wrmsr(msr: int, value: int, mitigation: Optional[str] = None,
          primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.WRMSR, msr=msr, value=value,
                       mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def rdmsr(msr: int) -> Instruction:
    return Instruction(Op.RDMSR, msr=msr)


@functools.lru_cache(maxsize=256)
def xsave(mitigation: Optional[str] = None,
          primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.XSAVE, mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def xrstor(mitigation: Optional[str] = None,
           primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.XRSTOR, mitigation=mitigation, primitive=primitive)


@functools.lru_cache(maxsize=256)
def l1d_flush(mitigation: Optional[str] = None,
              primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.L1D_FLUSH, mitigation=mitigation, primitive=primitive)


def vmenter() -> Instruction:
    return _VMENTER


def vmexit() -> Instruction:
    return _VMEXIT


def rdtsc() -> Instruction:
    return _RDTSC


def rdpmc() -> Instruction:
    return _RDPMC


# Shared singleton instructions for the argument-less constructors.
_NOP = Instruction(Op.NOP)
_ALU = Instruction(Op.ALU)
_MUL = Instruction(Op.MUL)
_DIV = Instruction(Op.DIV)
_SYSCALL = Instruction(Op.SYSCALL)
_SYSRET = Instruction(Op.SYSRET)
_SWAPGS = Instruction(Op.SWAPGS)
_VMENTER = Instruction(Op.VMENTER)
_VMEXIT = Instruction(Op.VMEXIT)
_RDTSC = Instruction(Op.RDTSC)
_RDPMC = Instruction(Op.RDPMC)

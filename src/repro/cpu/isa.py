"""Abstract instruction set for the timing simulator.

The simulator does not interpret real x86 machine code.  Instead, workloads
and the model OS kernel are expressed as streams of :class:`Instruction`
objects drawn from a small abstract ISA that captures everything the paper's
measurements depend on:

* ordinary compute (``ALU``, ``MUL``, ``DIV``, ``CMOV``) — ``DIV`` matters
  because the speculation probe of the paper's Figure 6 detects transient
  execution through the ``ARITH.DIVIDER_ACTIVE`` performance counter;
* memory operations (``LOAD``, ``STORE``, ``CLFLUSH``) that interact with
  the cache, TLB, store buffer and the MDS-leakable fill buffers;
* control flow (``BRANCH_COND``, ``BRANCH_INDIRECT``, ``CALL``,
  ``CALL_INDIRECT``, ``RET``) that interacts with the BTB and RSB and can
  trigger transient execution windows;
* privileged/system instructions (``SYSCALL``, ``SYSRET``, ``SWAPGS``,
  ``MOV_CR3``, ``WRMSR``, ``RDMSR``, ``VERW``, ``LFENCE``, ``XSAVE``,
  ``XRSTOR``, ``VMENTER``, ``VMEXIT``, ``L1D_FLUSH``) whose per-CPU costs
  are the calibration inputs taken from the paper's Tables 3-8;
* measurement instructions (``RDTSC``, ``RDPMC``) used by the
  microbenchmark harness exactly the way the paper uses them.

Instructions are plain slotted objects: cheap to construct, hashable by
identity, and safe to reuse across iterations of a timed loop (executing an
instruction never mutates it).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class Op(enum.Enum):
    """Operation kinds understood by :class:`repro.cpu.machine.Machine`."""

    # Compute
    NOP = "nop"
    ALU = "alu"
    # Trace compression: a block of straight-line work with a known cycle
    # cost (value = cycles).  Keeps cycle accounting honest for bulk
    # compute without executing thousands of Python-level ALU ops.
    WORK = "work"
    MUL = "mul"
    DIV = "div"
    CMOV = "cmov"
    PAUSE = "pause"

    # Memory
    LOAD = "load"
    STORE = "store"
    CLFLUSH = "clflush"

    # Control flow
    BRANCH_COND = "branch_cond"
    BRANCH_INDIRECT = "branch_indirect"
    CALL = "call"
    CALL_INDIRECT = "call_indirect"
    RET = "ret"

    # Serialization / mitigation primitives
    LFENCE = "lfence"
    VERW = "verw"
    RSB_FILL = "rsb_fill"

    # Privileged / system
    SYSCALL = "syscall"
    SYSRET = "sysret"
    SWAPGS = "swapgs"
    MOV_CR3 = "mov_cr3"
    WRMSR = "wrmsr"
    RDMSR = "rdmsr"
    XSAVE = "xsave"
    XRSTOR = "xrstor"
    L1D_FLUSH = "l1d_flush"
    VMENTER = "vmenter"
    VMEXIT = "vmexit"

    # Measurement
    RDTSC = "rdtsc"
    RDPMC = "rdpmc"


#: Ops that read memory (interact with cache/TLB/store buffer).
MEMORY_READ_OPS = frozenset({Op.LOAD})

#: Ops that write memory.
MEMORY_WRITE_OPS = frozenset({Op.STORE})

#: Ops that can redirect control flow through a predictor.
PREDICTED_BRANCH_OPS = frozenset({Op.BRANCH_INDIRECT, Op.CALL_INDIRECT, Op.RET})

#: Ops that serialize the pipeline (no transient window may cross them).
SERIALIZING_OPS = frozenset({Op.LFENCE, Op.WRMSR, Op.MOV_CR3, Op.VERW})


class Instruction:
    """One abstract instruction.

    Parameters
    ----------
    op:
        The operation kind.
    address:
        For memory ops, the virtual byte address accessed.
    size:
        For memory ops, the access size in bytes (informational).
    target:
        For direct control flow, the destination code address.  For
        indirect branches this is the *architectural* (true) target; the
        predictor may transiently send execution elsewhere.
    pc:
        The address of the instruction itself.  Branch predictor state is
        indexed by ``pc``, so two indirect branches at different addresses
        train different BTB entries.  Defaults to 0, which is fine for
        straight-line cost accounting where prediction is irrelevant.
    retpoline:
        For indirect branches only: this branch site was compiled as a
        retpoline (generic or AMD per the active mitigation config), so it
        never consults the BTB and can never be poisoned.
    msr:
        For ``WRMSR``/``RDMSR``, the MSR index being accessed.
    value:
        For ``WRMSR``, the value written.
    kernel_address:
        For memory ops, marks the target as kernel memory (used by the
        Meltdown model: user-mode architectural access faults).
    mitigation / primitive:
        Optional cycle-attribution tag.  Sequence builders in
        ``repro.mitigations`` stamp the instructions they emit (e.g. the
        KPTI entry ``mov cr3`` carries ``("pti", "mov_cr3")``) so the
        cycle ledger can file their cost under the responsible
        mitigation.  Untagged instructions fall back to per-op defaults
        in the machine, or to base work.
    """

    __slots__ = (
        "op",
        "address",
        "size",
        "target",
        "pc",
        "retpoline",
        "msr",
        "value",
        "kernel_address",
        "mitigation",
        "primitive",
    )

    def __init__(
        self,
        op: Op,
        address: int = 0,
        size: int = 8,
        target: int = 0,
        pc: int = 0,
        retpoline: bool = False,
        msr: int = 0,
        value: int = 0,
        kernel_address: bool = False,
        mitigation: Optional[str] = None,
        primitive: Optional[str] = None,
    ) -> None:
        self.op = op
        self.address = address
        self.size = size
        self.target = target
        self.pc = pc
        self.retpoline = retpoline
        self.msr = msr
        self.value = value
        self.kernel_address = kernel_address
        self.mitigation = mitigation
        self.primitive = primitive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.op in MEMORY_READ_OPS or self.op in MEMORY_WRITE_OPS:
            parts.append(f"addr={self.address:#x}")
        if self.op in PREDICTED_BRANCH_OPS or self.op in (Op.CALL, Op.BRANCH_COND):
            parts.append(f"target={self.target:#x} pc={self.pc:#x}")
        if self.retpoline:
            parts.append("retpoline")
        return f"<Instruction {' '.join(parts)}>"


# ---------------------------------------------------------------------------
# Convenience constructors.  Workload generators use these heavily; they
# read better than repeating Instruction(Op.X, ...) everywhere.
# ---------------------------------------------------------------------------

def nop() -> Instruction:
    return Instruction(Op.NOP)


def work(cycles: int, mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    """A compressed block of straight-line work costing ``cycles``."""
    return Instruction(Op.WORK, value=cycles,
                       mitigation=mitigation, primitive=primitive)


def alu(n: int = 1) -> Tuple[Instruction, ...]:
    """Return ``n`` single-cycle ALU instructions."""
    return tuple(Instruction(Op.ALU) for _ in range(n))


def mul() -> Instruction:
    return Instruction(Op.MUL)


def div() -> Instruction:
    """A divide; occupies the divider unit, visible to the probe counter."""
    return Instruction(Op.DIV)


def cmov(mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.CMOV, mitigation=mitigation, primitive=primitive)


def load(address: int, size: int = 8, kernel: bool = False) -> Instruction:
    return Instruction(Op.LOAD, address=address, size=size, kernel_address=kernel)


def store(address: int, size: int = 8, kernel: bool = False,
          value: int = 0) -> Instruction:
    return Instruction(Op.STORE, address=address, size=size,
                       kernel_address=kernel, value=value)


def clflush(address: int) -> Instruction:
    return Instruction(Op.CLFLUSH, address=address)


def branch_cond(target: int = 0, pc: int = 0, taken: bool = False) -> Instruction:
    """A conditional branch: ``taken`` is the architectural outcome and
    ``target`` the taken-path code address (used for wrong-path windows)."""
    return Instruction(Op.BRANCH_COND, target=target, pc=pc,
                       value=1 if taken else 0)


def branch_indirect(target: int, pc: int = 0, retpoline: bool = False) -> Instruction:
    return Instruction(Op.BRANCH_INDIRECT, target=target, pc=pc, retpoline=retpoline)


def call(target: int = 0, pc: int = 0) -> Instruction:
    return Instruction(Op.CALL, target=target, pc=pc)


def call_indirect(target: int, pc: int = 0, retpoline: bool = False) -> Instruction:
    return Instruction(Op.CALL_INDIRECT, target=target, pc=pc, retpoline=retpoline)


def ret(pc: int = 0, target: int = 0) -> Instruction:
    """A return; ``target`` is the architectural return address (compared
    against the RSB prediction)."""
    return Instruction(Op.RET, pc=pc, target=target)


def lfence(mitigation: Optional[str] = None,
           primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.LFENCE, mitigation=mitigation, primitive=primitive)


def verw(mitigation: Optional[str] = None,
         primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.VERW, mitigation=mitigation, primitive=primitive)


def rsb_fill(mitigation: Optional[str] = None,
             primitive: Optional[str] = None) -> Instruction:
    """The 32-entry RSB stuffing sequence, modelled as one macro-op."""
    return Instruction(Op.RSB_FILL, mitigation=mitigation, primitive=primitive)


def syscall_instr() -> Instruction:
    return Instruction(Op.SYSCALL)


def sysret_instr() -> Instruction:
    return Instruction(Op.SYSRET)


def swapgs() -> Instruction:
    return Instruction(Op.SWAPGS)


def mov_cr3(pcid: int = 0, mitigation: Optional[str] = None,
            primitive: Optional[str] = None) -> Instruction:
    """Write the page table root; ``pcid`` tags the target context."""
    return Instruction(Op.MOV_CR3, value=pcid,
                       mitigation=mitigation, primitive=primitive)


def wrmsr(msr: int, value: int, mitigation: Optional[str] = None,
          primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.WRMSR, msr=msr, value=value,
                       mitigation=mitigation, primitive=primitive)


def rdmsr(msr: int) -> Instruction:
    return Instruction(Op.RDMSR, msr=msr)


def xsave(mitigation: Optional[str] = None,
          primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.XSAVE, mitigation=mitigation, primitive=primitive)


def xrstor(mitigation: Optional[str] = None,
           primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.XRSTOR, mitigation=mitigation, primitive=primitive)


def l1d_flush(mitigation: Optional[str] = None,
              primitive: Optional[str] = None) -> Instruction:
    return Instruction(Op.L1D_FLUSH, mitigation=mitigation, primitive=primitive)


def vmenter() -> Instruction:
    return Instruction(Op.VMENTER)


def vmexit() -> Instruction:
    return Instruction(Op.VMEXIT)


def rdtsc() -> Instruction:
    return Instruction(Op.RDTSC)


def rdpmc() -> Instruction:
    return Instruction(Op.RDPMC)

"""Store buffer with store-to-load forwarding and Speculative Store Bypass.

Speculative Store Bypass (SSB, "Spectre V4") exploits the memory
disambiguation predictor: a load may speculatively execute *before* an
older store to the same address has resolved, observing the stale value.
The only mitigation is Speculative Store Bypass Disable (SSBD), a processor
mode that forces loads to wait for all older store addresses — which also
disables the store-to-load fast path that ordinary code depends on, hence
the large slowdowns of the paper's Figure 5.

The model keeps a window of recently retired-but-not-drained stores.  A
load against a matching address:

* with SSBD **off**: forwards from the buffer (cheap, counts as a
  forwarding hit) and — the attack surface — *may bypass* a not-yet-
  resolved store, observing stale data when executed speculatively;
* with SSBD **on**: stalls for the CPU-specific penalty while the store
  addresses resolve; no bypass is possible.

The per-CPU penalty grows on newer parts (paper 5.5: the slowdown is
"trending worse over time", up to 34% on Zen 3), which we encode in the
CPU model's ``ssbd_load_penalty``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class StoreBuffer:
    """A bounded window of pending stores keyed by (line-granular) address."""

    LINE = 64

    def __init__(self, depth: int = 56) -> None:
        self.depth = depth
        # line address -> value written (model payload; identity only)
        self._pending: "OrderedDict[int, int]" = OrderedDict()
        #: Optional leakage tracer (see ``repro.obs.leakage``); None when
        #: tracing is off, so the hot path pays one identity test.
        self.observer = None

    def __len__(self) -> int:
        return len(self._pending)

    @classmethod
    def _line_of(cls, address: int) -> int:
        return address // cls.LINE

    def push(self, address: int, value: int = 0) -> None:
        """Retire a store into the buffer; oldest entries drain to memory."""
        pending = self._pending
        line = address // 64
        if line in pending:
            pending.move_to_end(line)
        pending[line] = value
        if len(pending) > self.depth:
            pending.popitem(last=False)
        if self.observer is not None:
            self.observer.sb_push(address, value)

    def push_many(self, stores) -> None:
        """Retire a run of stores in order (the block engine's batched
        replay of recorded pushes; semantics identical to N push calls)."""
        pending = self._pending
        depth = self.depth
        move = pending.move_to_end
        pop = pending.popitem
        observer = self.observer
        for address, value in stores:
            line = address // 64
            if line in pending:
                move(line)
            pending[line] = value
            if len(pending) > depth:
                pop(last=False)
            if observer is not None:
                observer.sb_push(address, value)

    def match(self, address: int) -> bool:
        """Is there a pending store the load at ``address`` would hit?"""
        return self._line_of(address) in self._pending

    def forward(self, address: int) -> Optional[int]:
        """Store-to-load forwarding: value of the youngest matching store."""
        value = self._pending.get(self._line_of(address))
        if value is not None and self.observer is not None:
            self.observer.sb_forward(address)
        return value

    def speculative_bypass_possible(self, address: int, ssbd: bool) -> bool:
        """Could a speculative load bypass a pending store here?

        This is the SSB attack predicate: True means a transient load can
        observe the *stale* (pre-store) value.  SSBD forecloses it.
        """
        possible = not ssbd and self.match(address)
        if self.observer is not None:
            self.observer.sb_bypass(address, possible)
        return possible

    def drain(self) -> int:
        """Drain everything to memory (e.g. at a serializing instruction)."""
        count = len(self._pending)
        self._pending.clear()
        if self.observer is not None:
            self.observer.sb_drain()
        return count

"""Microarchitectural CPU simulator substrate.

This package replaces the paper's eight physical machines with calibrated
timing models.  Public surface:

* :mod:`repro.cpu.model` — :class:`CPUModel` and the catalog of the eight
  paper CPUs (``get_cpu``, ``all_cpus``, ``CPU_ORDER``).
* :mod:`repro.cpu.machine` — :class:`Machine`, the cycle-accounting
  executor with transient-execution semantics.
* :mod:`repro.cpu.isa` — the abstract instruction set.
* Predictor/cache/TLB/store-buffer/MDS-buffer components, used directly by
  tests and the speculation probe.
"""

from .btb import BranchHistoryBuffer, BranchTargetBuffer, HARMLESS_TARGET
from .buffers import MicroarchBuffers
from .cache import Cache, CacheHierarchy
from .counters import PerfCounters
from .isa import Instruction, Op
from .machine import AMD_RETPOLINE, GENERIC_RETPOLINE, Machine
from .model import (
    CATALOG,
    CPU_ORDER,
    CPUModel,
    CostTable,
    PredictorBehavior,
    VulnerabilityFlags,
    all_cpus,
    get_cpu,
)
from .modes import Mode
from .msr import MSRFile
from .rsb import ReturnStackBuffer
from .smt import SMTCore
from .storebuffer import StoreBuffer
from .tlb import TLB
from .trace import ExecutionTrace

__all__ = [
    "AMD_RETPOLINE",
    "BranchHistoryBuffer",
    "BranchTargetBuffer",
    "CATALOG",
    "CPU_ORDER",
    "CPUModel",
    "Cache",
    "CacheHierarchy",
    "CostTable",
    "ExecutionTrace",
    "GENERIC_RETPOLINE",
    "HARMLESS_TARGET",
    "Instruction",
    "MSRFile",
    "Machine",
    "MicroarchBuffers",
    "Mode",
    "Op",
    "PerfCounters",
    "PredictorBehavior",
    "ReturnStackBuffer",
    "SMTCore",
    "StoreBuffer",
    "TLB",
    "VulnerabilityFlags",
    "all_cpus",
    "get_cpu",
]

"""Seeded random program generator: Revizor-style test cases.

Programs are DAGs of basic blocks over the :mod:`repro.cpu.isa`
instruction set, built in three passes (the sca-fuzzer recipe):

1. **structure pass** — a skeleton of basic blocks filled with compute
   ops (ALU, multiply, divide, fences, counter reads...);
2. **terminator pass** — each block gets a control-flow terminator
   (conditional branch, raw/retpolined indirect branch, call, return or
   plain fallthrough) aimed at another block's label, plus privilege
   transitions (``syscall``/``sysret``/``vmenter``/``vmexit``) inserted
   under a tracked mode so the program never architecturally faults; a
   subset of blocks is marked ``landing`` and registered as code, so
   mispredicted terminators execute them *transiently*;
3. **memory pass** — loads, stores, flushes and CR3 writes woven into
   the bodies, kernel-tagged addresses only at kernel-mode positions.

The simulator executes linear instruction lists: terminators are
predictor events with declared targets/pcs, and execution falls through
to the next list element.  The DAG still matters twice over — terminator
targets decide where *transient* execution lands, and landing blocks
are registered via ``machine.register_code`` so those wrong-path
windows run real instructions.

Programs are **printable and re-runnable**: :meth:`Program.to_text`
emits a line-oriented text form and :func:`parse_program` round-trips
it byte-identically, which is what makes minimized reproducers diffable
and replayable (see :mod:`repro.fuzz.minimize`).

All addresses live in a sandbox disjoint from the speculation probe's
layout (``BRANCH_PC``/``VICTIM_TARGET``/``NOP_TARGET`` at ``0x60_0000+``
and its history-fill pcs at ``0x7000+``), so a generated program can
never alias the probe's trained entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..cpu import isa
from ..cpu.modes import Mode

#: Sandbox layout (disjoint from the probe's 0x60_0000+ window).
CODE_BASE = 0x40_0000      #: block code addresses (landing pads)
CODE_STRIDE = 0x1000
SITE_BASE = 0x50_0000      #: branch-site pcs; a small shared pool so
SITE_POOL = 4              #: distinct branches collide and cross-train
DATA_BASE = 0x90_0000      #: user data lines (one hot page)
DATA_LINES = 32
FAR_BASE = 0xA0_0000       #: cold pages for TLB pressure
FAR_PAGES = 4
KDATA_BASE = 0xC0_0000     #: kernel-tagged data lines
KDATA_LINES = 8

#: Body ops with no operands (token == kind).
_BARE_KINDS = (
    "nop", "alu", "mul", "div", "cmov", "lfence", "verw",
    "rsb_fill", "swapgs", "rdtsc", "rdpmc", "xsave", "xrstor",
    "l1d_flush", "syscall", "sysret", "vmenter", "vmexit",
)

@dataclass
class FuzzInstr:
    """One printable instruction descriptor (body op or terminator)."""

    kind: str
    addr: int = 0
    value: int = 0
    kernel: bool = False
    target: Optional[str] = None
    taken: bool = False
    pc: int = 0

    def to_token(self) -> str:
        kind = self.kind
        if kind in _BARE_KINDS:
            return kind
        if kind == "work":
            return f"work {self.value}"
        if kind == "load":
            suffix = " kernel" if self.kernel else ""
            return f"load 0x{self.addr:x}{suffix}"
        if kind == "store":
            suffix = " kernel" if self.kernel else ""
            return f"store 0x{self.addr:x} value={self.value}{suffix}"
        if kind == "clflush":
            return f"clflush 0x{self.addr:x}"
        if kind == "mov_cr3":
            return f"mov_cr3 {self.value}"
        if kind == "rdmsr":
            return f"rdmsr {self.value}"
        if kind == "branch_cond":
            target = self.target if self.target is not None else "-"
            return (f"branch_cond target={target} "
                    f"taken={1 if self.taken else 0} pc=0x{self.pc:x}")
        if kind in ("branch_indirect", "call", "call_indirect"):
            return f"{kind} target={self.target} pc=0x{self.pc:x}"
        if kind == "ret":
            return f"ret pc=0x{self.pc:x}"
        raise ValueError(f"unknown fuzz instruction kind {kind!r}")

    def clone(self) -> "FuzzInstr":
        return FuzzInstr(self.kind, self.addr, self.value, self.kernel,
                         self.target, self.taken, self.pc)


@dataclass
class Block:
    """One basic block: a label, a code address, a body, a terminator."""

    label: str
    pc: int
    landing: bool = False
    body: List[FuzzInstr] = field(default_factory=list)
    term: Optional[FuzzInstr] = None

    def clone(self) -> "Block":
        return Block(self.label, self.pc, self.landing,
                     [instr.clone() for instr in self.body],
                     self.term.clone() if self.term is not None else None)


@dataclass
class Program:
    """A generated test case: named, seeded, printable, materializable."""

    name: str
    seed: int
    blocks: List[Block] = field(default_factory=list)

    # -- queries ----------------------------------------------------------- #

    def block_pc(self, label: str) -> int:
        for block in self.blocks:
            if block.label == label:
                return block.pc
        raise KeyError(f"no block labelled {label!r} in {self.name}")

    def labels(self) -> List[str]:
        return [block.label for block in self.blocks]

    def instruction_count(self) -> int:
        return sum(len(block.body) + (1 if block.term is not None else 0)
                   for block in self.blocks)

    def data_addresses(self) -> List[int]:
        """User-mode data addresses the program touches, in program order."""
        return [instr.addr for block in self.blocks for instr in block.body
                if instr.kind in ("load", "store") and not instr.kernel]

    def clone(self) -> "Program":
        return Program(self.name, self.seed,
                       [block.clone() for block in self.blocks])

    # -- materialization ---------------------------------------------------- #

    def _materialize_one(self, instr: FuzzInstr, next_pc: int,
                         retpoline: bool) -> Any:
        kind = instr.kind
        if kind == "nop":
            return isa.nop()
        if kind == "alu":
            return isa.alu(1)[0]
        if kind == "mul":
            return isa.mul()
        if kind == "div":
            return isa.div()
        if kind == "cmov":
            return isa.cmov()
        if kind == "lfence":
            return isa.lfence()
        if kind == "verw":
            return isa.verw()
        if kind == "rsb_fill":
            return isa.rsb_fill()
        if kind == "swapgs":
            return isa.swapgs()
        if kind == "rdtsc":
            return isa.rdtsc()
        if kind == "rdpmc":
            return isa.rdpmc()
        if kind == "xsave":
            return isa.xsave()
        if kind == "xrstor":
            return isa.xrstor()
        if kind == "l1d_flush":
            return isa.l1d_flush()
        if kind == "syscall":
            return isa.syscall_instr()
        if kind == "sysret":
            return isa.sysret_instr()
        if kind == "vmenter":
            return isa.vmenter()
        if kind == "vmexit":
            return isa.vmexit()
        if kind == "work":
            return isa.work(instr.value)
        if kind == "load":
            return isa.load(instr.addr, kernel=instr.kernel)
        if kind == "store":
            return isa.store(instr.addr, kernel=instr.kernel,
                             value=instr.value)
        if kind == "clflush":
            return isa.clflush(instr.addr)
        if kind == "mov_cr3":
            return isa.mov_cr3(pcid=instr.value)
        if kind == "rdmsr":
            return isa.rdmsr(instr.value)
        if kind == "branch_cond":
            target = self.block_pc(instr.target) if instr.target else 0
            return isa.branch_cond(target=target, pc=instr.pc,
                                   taken=instr.taken)
        if kind == "branch_indirect":
            return isa.branch_indirect(self.block_pc(instr.target),
                                       pc=instr.pc, retpoline=retpoline)
        if kind == "call":
            return isa.call(target=self.block_pc(instr.target), pc=instr.pc)
        if kind == "call_indirect":
            return isa.call_indirect(self.block_pc(instr.target),
                                     pc=instr.pc, retpoline=retpoline)
        if kind == "ret":
            return isa.ret(pc=instr.pc, target=next_pc)
        raise ValueError(f"unknown fuzz instruction kind {kind!r}")

    def instructions(self, retpoline: bool = False) -> List[Any]:
        """The flat committed-path instruction stream.

        ``retpoline`` converts indirect terminators into retpolines, the
        policy-dependent decision made at materialization time so the
        program *text* stays policy-independent (one reproducer replays
        under every policy).
        """
        stream: List[Any] = []
        for i, block in enumerate(self.blocks):
            next_pc = (self.blocks[i + 1].pc
                       if i + 1 < len(self.blocks) else 0)
            for instr in block.body:
                stream.append(self._materialize_one(instr, next_pc,
                                                    retpoline))
            if block.term is not None:
                stream.append(self._materialize_one(block.term, next_pc,
                                                    retpoline))
        return stream

    def install(self, machine: Any, retpoline: bool = False) -> None:
        """Register landing blocks as code: mispredicted terminators
        steering transient execution to their pcs run their bodies."""
        for i, block in enumerate(self.blocks):
            if not block.landing:
                continue
            next_pc = (self.blocks[i + 1].pc
                       if i + 1 < len(self.blocks) else 0)
            pad = [self._materialize_one(instr, next_pc, retpoline)
                   for instr in block.body]
            if pad:
                machine.register_code(block.pc, pad)

    # -- text form ----------------------------------------------------------- #

    def to_text(self) -> str:
        lines = [f"program {self.name} seed={self.seed}"]
        for block in self.blocks:
            landing = " landing" if block.landing else ""
            lines.append(f"block {block.label} pc=0x{block.pc:x}{landing}")
            for instr in block.body:
                lines.append(f"  {instr.to_token()}")
            if block.term is not None:
                lines.append(f"  term {block.term.to_token()}")
        return "\n".join(lines) + "\n"


def _parse_kv(tokens: Sequence[str]) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for token in tokens:
        key, _, value = token.partition("=")
        out[key] = value
    return out


def _parse_instr(tokens: Sequence[str]) -> FuzzInstr:
    kind = tokens[0]
    rest = tokens[1:]
    if kind in _BARE_KINDS:
        return FuzzInstr(kind)
    if kind == "work":
        return FuzzInstr(kind, value=int(rest[0]))
    if kind == "load":
        return FuzzInstr(kind, addr=int(rest[0], 0),
                         kernel="kernel" in rest[1:])
    if kind == "store":
        kv = _parse_kv(rest[1:])
        return FuzzInstr(kind, addr=int(rest[0], 0),
                         value=int(kv.get("value", "0")),
                         kernel="kernel" in rest[1:])
    if kind == "clflush":
        return FuzzInstr(kind, addr=int(rest[0], 0))
    if kind in ("mov_cr3", "rdmsr"):
        return FuzzInstr(kind, value=int(rest[0], 0))
    if kind == "branch_cond":
        kv = _parse_kv(rest)
        target = kv.get("target", "-")
        return FuzzInstr(kind,
                         target=None if target == "-" else target,
                         taken=kv.get("taken", "0") == "1",
                         pc=int(kv.get("pc", "0"), 0))
    if kind in ("branch_indirect", "call", "call_indirect"):
        kv = _parse_kv(rest)
        return FuzzInstr(kind, target=kv["target"],
                         pc=int(kv.get("pc", "0"), 0))
    if kind == "ret":
        kv = _parse_kv(rest)
        return FuzzInstr(kind, pc=int(kv.get("pc", "0"), 0))
    raise ValueError(f"unparseable fuzz instruction {' '.join(tokens)!r}")


def parse_program(text: str) -> Program:
    """Parse :meth:`Program.to_text` output (comments/# lines ignored).

    ``parse_program(p.to_text()).to_text() == p.to_text()`` — the
    round-trip is byte-identical, which the determinism tests pin.
    """
    program: Optional[Program] = None
    block: Optional[Block] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if tokens[0] == "program":
            kv = _parse_kv(tokens[2:])
            program = Program(name=tokens[1], seed=int(kv.get("seed", "0")))
        elif tokens[0] == "block":
            if program is None:
                raise ValueError("block before program header")
            kv = _parse_kv(tokens[2:])
            block = Block(label=tokens[1], pc=int(kv.get("pc", "0"), 0),
                          landing="landing" in tokens[2:])
            program.blocks.append(block)
        elif tokens[0] == "term":
            if block is None:
                raise ValueError("term outside a block")
            block.term = _parse_instr(tokens[1:])
        else:
            if block is None:
                raise ValueError(f"instruction outside a block: {line!r}")
            block.body.append(_parse_instr(tokens))
    if program is None:
        raise ValueError("no program header found")
    return program


# --------------------------------------------------------------------------- #
# Generation: structure pass, terminator pass, memory pass
# --------------------------------------------------------------------------- #

#: Compute-op pool for the structure pass: (kind, weight).
_COMPUTE_POOL = (
    ("nop", 4), ("alu", 6), ("work", 6), ("mul", 3), ("div", 3),
    ("cmov", 2), ("rdtsc", 1), ("rdpmc", 1), ("swapgs", 1),
    ("xsave", 1), ("xrstor", 1), ("lfence", 1), ("verw", 1),
    ("rsb_fill", 1), ("rdmsr", 1),
)

#: Terminator pool: (kind, weight).  ``None`` = plain fallthrough.
_TERM_POOL = (
    (None, 4), ("branch_cond", 5), ("branch_indirect", 4),
    ("call", 3), ("call_indirect", 2), ("ret", 2),
)


def _weighted(rng: random.Random, pool) -> Any:
    total = sum(weight for _, weight in pool)
    pick = rng.randrange(total)
    for kind, weight in pool:
        pick -= weight
        if pick < 0:
            return kind
    raise AssertionError("unreachable")


def _compute_op(rng: random.Random) -> FuzzInstr:
    kind = _weighted(rng, _COMPUTE_POOL)
    if kind == "work":
        return FuzzInstr(kind, value=10 * rng.randint(1, 12))
    if kind == "rdmsr":
        return FuzzInstr(kind, value=0x10)
    return FuzzInstr(kind)


def _memory_op(rng: random.Random, mode: Mode) -> FuzzInstr:
    roll = rng.randrange(10)
    if roll < 4:  # load
        kernel = mode.is_kernel and rng.randrange(3) == 0
        addr = (KDATA_BASE + 64 * rng.randrange(KDATA_LINES) if kernel
                else _data_address(rng))
        return FuzzInstr("load", addr=addr, kernel=kernel)
    if roll < 8:  # store
        return FuzzInstr("store", addr=_data_address(rng),
                         value=rng.randrange(1, 256))
    if roll < 9:
        return FuzzInstr("clflush", addr=_data_address(rng))
    return FuzzInstr("mov_cr3", value=rng.randrange(4))


def _data_address(rng: random.Random) -> int:
    if rng.randrange(4) == 0:
        return FAR_BASE + 4096 * rng.randrange(FAR_PAGES)
    return DATA_BASE + 64 * rng.randrange(DATA_LINES)


def _mode_after(instr: FuzzInstr, mode: Mode) -> Mode:
    if instr.kind == "syscall":
        return Mode.GUEST_KERNEL if mode.is_guest else Mode.KERNEL
    if instr.kind == "sysret":
        return Mode.GUEST_USER if mode.is_guest else Mode.USER
    if instr.kind == "vmenter":
        return Mode.GUEST_KERNEL
    if instr.kind == "vmexit":
        return Mode.KERNEL
    return mode


def generate_program(seed: int,
                     min_blocks: int = 2, max_blocks: int = 6,
                     min_body: int = 2, max_body: int = 8) -> Program:
    """One seeded random program; same seed, same bytes, always.

    ``WRMSR`` is deliberately excluded from every pool: it could toggle
    ``SPEC_CTRL`` and silently change the mitigation policy under test.
    """
    rng = random.Random(seed)
    program = Program(name=f"fz{seed:08x}", seed=seed)

    # Structure pass: skeleton blocks full of compute ops.
    n_blocks = rng.randint(min_blocks, max_blocks)
    for i in range(n_blocks):
        body = [_compute_op(rng)
                for _ in range(rng.randint(min_body, max_body))]
        program.blocks.append(Block(label=f"b{i}",
                                    pc=CODE_BASE + CODE_STRIDE * i,
                                    body=body))

    # Terminator pass: control flow, landing pads, privilege transitions.
    labels = program.labels()
    mode = Mode.USER
    for i, block in enumerate(program.blocks):
        block.landing = rng.random() < 0.4
        # Maybe one privilege transition, legal for the tracked mode.
        if rng.random() < 0.35:
            if mode is Mode.USER:
                trans = FuzzInstr("syscall")
            elif mode is Mode.KERNEL:
                trans = FuzzInstr("vmenter" if rng.randrange(4) == 0
                                  else "sysret")
            else:  # GUEST_KERNEL
                trans = FuzzInstr("vmexit")
            block.body.insert(rng.randrange(len(block.body) + 1), trans)
        for instr in block.body:
            mode = _mode_after(instr, mode)
        kind = _weighted(rng, _TERM_POOL)
        if kind is not None:
            site = SITE_BASE + 0x40 * rng.randrange(SITE_POOL)
            target = rng.choice(labels)
            if kind == "branch_cond":
                block.term = FuzzInstr(kind, target=target,
                                       taken=rng.randrange(2) == 1, pc=site)
            elif kind == "ret":
                block.term = FuzzInstr(kind, pc=site)
            else:
                block.term = FuzzInstr(kind, target=target, pc=site)
    if not any(block.landing for block in program.blocks):
        program.blocks[rng.randrange(n_blocks)].landing = True
    # Normalize back to user mode so repeated runs see the same modes.
    tail = program.blocks[-1].body
    if mode is Mode.GUEST_KERNEL:
        tail.append(FuzzInstr("vmexit"))
        mode = Mode.KERNEL
    if mode is Mode.KERNEL:
        tail.append(FuzzInstr("sysret"))

    # Memory pass: weave loads/stores in, kernel-tagged only in kernel.
    mode = Mode.USER
    for block in program.blocks:
        new_body: List[FuzzInstr] = []
        for instr in block.body:
            if rng.random() < 0.45:
                new_body.append(_memory_op(rng, mode))
            new_body.append(instr)
            mode = _mode_after(instr, mode)
        block.body = new_body
    return program

"""Differential harness: generated programs vs two machine-checkable
contracts.

Each generated program is swept across the full CPU catalogue under the
three mitigation policies the leakage grid knows (`default`, `off`,
`ibrs`), and every (program, cpu, policy) cell is checked against two
oracles:

* **engine parity** — the block-compilation engine must be bit-identical
  to the interpreter: same per-repeat cycles, same TSC, same value for
  every counter in ``ALL_COUNTERS``, same cycle-ledger paths/rollup, and
  the same store-buffer and TLB state in the same order.  The program is
  run several times so sequences compile and memos replay.

* **leakage contract** — the section 6 BTB probe, run after the program
  has perturbed every predictor/cache structure, must (a) keep the taint
  oracle and the divider-counter signal in agreement
  (``leaked == speculated``), and (b) never leak on a cell whose policy
  or hardware *promises* to block the BTB primitive (retpolines, IBRS
  prediction suppression, eIBRS mode tags, Zen 3's opaque index — the
  Table 9/10 shape).  The contract is deliberately one-sided: must-leak
  is never asserted, because the eIBRS periodic scrub consumes seeded
  randomness and generated-program syscalls shift it, making individual
  leaks seed-dependent (section 6.2.2).

Violations carry a printable reproducer (the program text) and enough
metadata to replay the exact cell; :mod:`repro.fuzz.minimize` shrinks
them.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.probe import (
    POLICY_DEFAULT,
    POLICY_IBRS,
    POLICY_OFF,
    SCENARIOS,
    Scenario,
    SpeculationProbe,
    _policy_machine,
)
from ..core.stats import derive_seed
from ..cpu import all_cpus, engine, get_cpu
from ..cpu.counters import ALL_COUNTERS
from ..cpu.model import CPUModel
from ..obs import leakage as obs_leakage
from ..obs import ledger as obs_ledger
from ..obs import timeline as obs_timeline
from .generator import Program, generate_program, parse_program

#: Policy sweep order (stable: cell keys and history records depend on it).
POLICIES: Tuple[str, ...] = (POLICY_DEFAULT, POLICY_OFF, POLICY_IBRS)

ORACLE_PARITY = "engine_parity"
ORACLE_LEAKAGE = "leakage_contract"

#: Block compilation triggers after a sequence is seen twice, so three
#: repeats guarantee at least one replay through the compiled path.
PARITY_REPEATS = 3

#: Probe trials per scenario.  The contract is one-sided, so fewer trials
#: than the Table 9/10 default (6) stay sound; 2 keeps the grid fast.
FUZZ_TRIALS = 2


@dataclass(frozen=True)
class Violation:
    """One oracle failure, addressable and replayable.

    ``problems`` is the machine-readable form: one dict per finding,
    each with a ``kind`` plus kind-specific fields and its rendered
    ``detail`` line; the flat ``detail`` string is the joined rendering
    kept for compatibility.  ``divergence`` (engine-parity only) carries
    the first divergent timeline event — structure, tsc, instruction
    index and the surrounding window — from
    :func:`repro.obs.timeline.first_divergence`.
    """

    oracle: str
    program: str
    seed: int
    cpu: str
    policy: str
    detail: str
    scenario: str = ""
    problems: Tuple[Dict[str, Any], ...] = ()
    divergence: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "program": self.program,
            "seed": self.seed,
            "cpu": self.cpu,
            "policy": self.policy,
            "detail": self.detail,
            "scenario": self.scenario,
            "problems": [dict(problem) for problem in self.problems],
            "divergence": self.divergence,
        }


# --------------------------------------------------------------------------- #
# Test-only parity-fault injection
# --------------------------------------------------------------------------- #

#: When set (op name, lower case), the block-engine side of the parity
#: check reports one extra TSC cycle per occurrence of that op in the
#: stream — a deliberate, deterministic parity bug that exercises the
#: violation -> minimize -> reproduce pipeline end to end without
#: touching engine code.  Never set outside tests.
_parity_fault_op: Optional[str] = None


@contextmanager
def parity_fault(op_name: str) -> Iterator[None]:
    """Scoped test hook: perturb the block-side TSC per ``op_name``."""
    global _parity_fault_op
    previous = _parity_fault_op
    _parity_fault_op = op_name.lower()
    try:
        yield
    finally:
        _parity_fault_op = previous


def _fault_delta(stream: Sequence[Any]) -> int:
    if _parity_fault_op is None:
        return 0
    return sum(1 for instr in stream
               if instr.op.name.lower() == _parity_fault_op)


# --------------------------------------------------------------------------- #
# Oracle (a): engine parity
# --------------------------------------------------------------------------- #

def _run_parity_side(program: Program, cpu: CPUModel, policy: str,
                     seed: int, mode: str, repeats: int):
    with engine.use_engine(mode):
        ledger = obs_ledger.CycleLedger()
        with obs_ledger.use_ledger(ledger):
            machine, retpoline = _policy_machine(cpu, policy, seed)
            program.install(machine, retpoline=retpoline)
            stream = program.instructions(retpoline=retpoline)
            cycles = [machine.run(stream) for _ in range(repeats)]
    return cycles, machine, ledger, stream


def _problem(kind: str, detail: str, **fields: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"kind": kind, "detail": detail}
    entry.update(fields)
    return entry


def _traced_parity_run(program: Program, cpu: CPUModel, policy: str,
                       seed: int, repeats: int,
                       fault_op: Optional[str] = None
                       ) -> obs_timeline.EventTimeline:
    """One interpreted, timeline-recorded run of a parity cell.

    An attached timeline already forces interpretation (bit-identical by
    the engine's differential contract), so the recorded stream stands
    for *both* engine modes.  ``fault_op`` re-applies the injected
    parity fault in the execution domain: the extra cycle per matching
    op is charged *before* the instruction executes, so every event the
    faulted instruction files — and everything after it — carries the
    skewed TSC, and the first divergent event lands exactly on the
    faulted instruction.
    """
    with engine.use_engine(engine.ENGINE_INTERP):
        timeline = obs_timeline.EventTimeline(capacity=None)
        with obs_timeline.use_timeline(timeline):
            machine, retpoline = _policy_machine(cpu, policy, seed)
            program.install(machine, retpoline=retpoline)
            stream = program.instructions(retpoline=retpoline)
            for _ in range(repeats):
                if fault_op is None:
                    machine.run(stream)
                else:
                    for instr in stream:
                        if instr.op.name.lower() == fault_op:
                            machine.counters.tsc += 1
                        machine.execute(instr)
    return timeline


def explain_parity(program: Program, cpu: CPUModel, policy: str, seed: int,
                   repeats: int = PARITY_REPEATS,
                   fault_op: Optional[str] = None):
    """Timeline-diffed diagnosis of one parity cell.

    Returns ``(timeline_base, timeline_other, divergence)``: the clean
    interpreted event stream, the stream with ``fault_op`` re-applied,
    and their first divergence (None when the streams agree — e.g. a
    hypothetical engine-internal divergence the interpreted replay
    cannot reproduce, which the structured ``problems`` still record).
    """
    base = _traced_parity_run(program, cpu, policy, seed, repeats)
    other = _traced_parity_run(program, cpu, policy, seed, repeats,
                               fault_op=fault_op)
    return base, other, obs_timeline.first_divergence(base, other)


@dataclass
class ExplainReport:
    """One explained parity cell: two traced streams and their diff."""

    program: str
    cpu: str
    policy: str
    base_seed: int
    fault_op: Optional[str]
    timeline_base: obs_timeline.EventTimeline
    timeline_other: obs_timeline.EventTimeline
    divergence: Optional[obs_timeline.Divergence]

    def diverged(self) -> bool:
        return self.divergence is not None

    def telemetry(self) -> Dict[str, Any]:
        """Flat ``timeline.*`` gauges for the history store (floats only)."""
        base = self.timeline_base
        values: Dict[str, float] = {
            "events": float(base.total),
            "dropped": float(base.dropped),
            "digest": float(base.digest()),
            "diverged": 1.0 if self.diverged() else 0.0,
        }
        if self.divergence is not None:
            values["divergence_index"] = float(self.divergence.index)
            values["divergence_tsc"] = float(self.divergence.tsc)
            values["divergence_instr"] = float(self.divergence.instr)
        for structure, count in sorted(base.structure_counts().items()):
            values[f"count.{structure}"] = float(count)
        return {"timeline": values}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "cpu": self.cpu,
            "policy": self.policy,
            "base_seed": self.base_seed,
            "fault_op": self.fault_op,
            "base": self.timeline_base.stats(),
            "other": self.timeline_other.stats(),
            "divergence": (self.divergence.to_dict()
                           if self.divergence is not None else None),
        }

    def render(self, window: int = 8) -> str:
        lines = [f"cell: {self.program} cpu={self.cpu} "
                 f"policy={self.policy} base-seed={self.base_seed}",
                 f"events: base={self.timeline_base.total} "
                 f"other={self.timeline_other.total}"]
        if self.fault_op is not None:
            lines.append(f"injected fault: op={self.fault_op}")
        if self.divergence is None:
            lines.append("streams agree: no divergent event")
        else:
            div = obs_timeline.first_divergence(
                self.timeline_base, self.timeline_other, window=window)
            lines.append(obs_timeline.render_divergence(
                div, label_a="base", label_b="faulted"
                if self.fault_op is not None else "other"))
        return "\n".join(lines) + "\n"


def explain_cell(program: Program, cpu: CPUModel, policy: str,
                 base_seed: int, repeats: int = PARITY_REPEATS,
                 fault_op: Optional[str] = None) -> ExplainReport:
    """Trace one cell (same seed derivation as :func:`check_cell`) and
    diff the clean stream against one with ``fault_op`` re-applied."""
    seed = derive_seed(base_seed, "fuzz", program.name, cpu.key, policy)
    base, other, div = explain_parity(program, cpu, policy, seed,
                                      repeats=repeats, fault_op=fault_op)
    return ExplainReport(program=program.name, cpu=cpu.key, policy=policy,
                         base_seed=base_seed, fault_op=fault_op,
                         timeline_base=base, timeline_other=other,
                         divergence=div)


def check_engine_parity(program: Program, cpu: CPUModel, policy: str,
                        seed: int,
                        repeats: int = PARITY_REPEATS) -> List[Violation]:
    """Block engine vs interpreter on one cell; empty list = parity."""
    blk_cycles, blk_machine, blk_ledger, stream = _run_parity_side(
        program, cpu, policy, seed, engine.ENGINE_BLOCK, repeats)
    int_cycles, int_machine, int_ledger, _ = _run_parity_side(
        program, cpu, policy, seed, engine.ENGINE_INTERP, repeats)

    problems: List[Dict[str, Any]] = []
    blk_tsc = blk_machine.read_tsc() + _fault_delta(stream)
    int_tsc = int_machine.read_tsc()
    if blk_tsc != int_tsc:
        problems.append(_problem(
            "tsc", f"tsc: block={blk_tsc} interp={int_tsc}",
            block=blk_tsc, interp=int_tsc))
    if blk_cycles != int_cycles:
        problems.append(_problem(
            "cycles",
            f"per-repeat cycles: block={blk_cycles} interp={int_cycles}",
            block=list(blk_cycles), interp=list(int_cycles)))
    for name in sorted(ALL_COUNTERS):
        blk = blk_machine.counters.events.get(name, 0)
        ref = int_machine.counters.events.get(name, 0)
        if blk != ref:
            problems.append(_problem(
                "counter", f"counter {name}: block={blk} interp={ref}",
                name=name, block=blk, interp=ref))
    if blk_ledger.paths() != int_ledger.paths():
        problems.append(_problem("ledger_paths", "ledger paths diverged"))
    if blk_ledger.rollup() != int_ledger.rollup():
        problems.append(_problem("ledger_rollup", "ledger rollup diverged"))
    if (list(blk_machine.store_buffer._pending.items())
            != list(int_machine.store_buffer._pending.items())):
        problems.append(_problem("store_buffer",
                                 "store-buffer state diverged"))
    if (list(blk_machine.tlb._entries.items())
            != list(int_machine.tlb._entries.items())):
        problems.append(_problem("tlb", "TLB state diverged"))
    if not problems:
        return []
    if _parity_fault_op is not None:
        problems.append(_problem(
            "injected_fault", f"injected_fault: op={_parity_fault_op}",
            op=_parity_fault_op))
    _, _, diverged = explain_parity(program, cpu, policy, seed,
                                    repeats=repeats,
                                    fault_op=_parity_fault_op)
    return [Violation(oracle=ORACLE_PARITY, program=program.name,
                      seed=program.seed, cpu=cpu.key, policy=policy,
                      detail="; ".join(p["detail"] for p in problems),
                      problems=tuple(problems),
                      divergence=(diverged.to_dict()
                                  if diverged is not None else None))]


# --------------------------------------------------------------------------- #
# Oracle (b): leakage contract
# --------------------------------------------------------------------------- #

def blocked_promise(cpu: CPUModel, policy: str, scenario: Scenario,
                    retpoline: bool) -> Tuple[str, ...]:
    """Mechanisms that *promise* to block the BTB primitive on this cell.

    Mirrors ``Machine._indirect_prediction_allowed`` and the BTB's
    hardware filters; a non-empty promise means the cell must never
    leak, whatever program ran beforehand (the Table 9/10 shape).
    """
    pred = cpu.predictor
    promises: List[str] = []
    if retpoline:
        promises.append("spectre_v2/retpoline")
    ibrs_on = policy == POLICY_IBRS or (policy == POLICY_DEFAULT
                                        and not retpoline)
    if ibrs_on:
        if pred.ibrs_blocks_all_prediction and not pred.supports_eibrs:
            promises.append("spectre_v2/ibrs_no_predict")
        if (pred.supports_eibrs and pred.eibrs_blocks_kernel_prediction
                and scenario.victim_mode.is_kernel):
            promises.append("spectre_v2/ibrs_no_predict")
    if pred.btb_opaque_index:
        promises.append("hardware/btb_isolation")
    if pred.btb_mode_tagged and scenario.train_mode is not scenario.victim_mode:
        promises.append("hardware/btb_isolation")
    return tuple(promises)


def check_leakage_contract(program: Program, cpu: CPUModel, policy: str,
                           seed: int,
                           trials: int = FUZZ_TRIALS) -> List[Violation]:
    """Run the program, then the section 6 probe, per scenario."""
    violations: List[Violation] = []
    for scenario in SCENARIOS:
        machine, retpoline = _policy_machine(cpu, policy, seed)
        tracer = obs_leakage.LeakageTracer(policy=policy)
        machine.attach_leakage(tracer)
        program.install(machine, retpoline=retpoline)
        data = program.data_addresses()
        if data:
            # Exercise the data-taint propagation paths (store-buffer,
            # caches, TLB, MDS residue) while the program runs.
            tracer.taint_address(data[0])
        machine.run(program.instructions(retpoline=retpoline))
        probe = SpeculationProbe(machine, retpoline=retpoline,
                                 policy=policy)
        verdict = probe.probe_verdict(scenario, trials)
        if verdict.leaked != verdict.speculated:
            problem = _problem(
                "oracle_disagreement",
                (f"oracle disagreement: leaked={verdict.leaked} "
                 f"speculated={verdict.speculated}"),
                leaked=bool(verdict.leaked),
                speculated=bool(verdict.speculated))
            violations.append(Violation(
                oracle=ORACLE_LEAKAGE, program=program.name,
                seed=program.seed, cpu=cpu.key, policy=policy,
                scenario=scenario.label, detail=problem["detail"],
                problems=(problem,)))
        promises = blocked_promise(cpu, policy, scenario, retpoline)
        if promises and verdict.leaked:
            problem = _problem(
                "promise_broken",
                (f"leak on a promised-blocked cell: "
                 f"{', '.join(promises)} promised, but "
                 f"{verdict.events} leakage event(s) fired"),
                promises=list(promises), events=verdict.events)
            violations.append(Violation(
                oracle=ORACLE_LEAKAGE, program=program.name,
                seed=program.seed, cpu=cpu.key, policy=policy,
                scenario=scenario.label, detail=problem["detail"],
                problems=(problem,)))
    return violations


# --------------------------------------------------------------------------- #
# Cells and campaigns
# --------------------------------------------------------------------------- #

def cell_supported(cpu: CPUModel, policy: str) -> bool:
    """False for the Table 10 N/A row (IBRS on a part without it)."""
    if policy != POLICY_IBRS:
        return True
    return cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs


def check_cell(program: Program, cpu: CPUModel, policy: str,
               base_seed: int, repeats: int = PARITY_REPEATS,
               trials: int = FUZZ_TRIALS) -> List[Violation]:
    """Both oracles on one (program, cpu, policy) cell."""
    seed = derive_seed(base_seed, "fuzz", program.name, cpu.key, policy)
    violations = check_engine_parity(program, cpu, policy, seed,
                                     repeats=repeats)
    violations.extend(check_leakage_contract(program, cpu, policy, seed,
                                             trials=trials))
    return violations


def _cell_worker(args: Tuple[str, str, str, int, int, int, Optional[str]]
                 ) -> List[Violation]:
    """Module-level so ProcessPoolExecutor can pickle it; ships the
    parity-fault op explicitly so parallel runs match serial ones."""
    text, cpu_key, policy, base_seed, repeats, trials, fault = args
    program = parse_program(text)
    cpu = get_cpu(cpu_key)
    if fault is not None:
        with parity_fault(fault):
            return check_cell(program, cpu, policy, base_seed,
                              repeats=repeats, trials=trials)
    return check_cell(program, cpu, policy, base_seed,
                      repeats=repeats, trials=trials)


@dataclass
class FuzzConfig:
    """One campaign's knobs (all deterministic given ``seed``)."""

    seed: int = 1
    programs: int = 25
    cpu_keys: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = POLICIES
    repeats: int = PARITY_REPEATS
    trials: int = FUZZ_TRIALS
    jobs: int = 1

    def resolved_cpu_keys(self) -> Tuple[str, ...]:
        if self.cpu_keys:
            return self.cpu_keys
        return tuple(cpu.key for cpu in all_cpus())


@dataclass
class CampaignResult:
    """Everything a campaign learned, serializable for the history DB."""

    config: FuzzConfig
    programs: List[Program] = field(default_factory=list)
    cells: int = 0
    skipped: int = 0
    violations: List[Violation] = field(default_factory=list)

    def verdict_map(self) -> Dict[str, str]:
        """cell key -> 'ok' | violation detail; the determinism witness."""
        verdicts: Dict[str, str] = {}
        for program in self.programs:
            for cpu_key in self.config.resolved_cpu_keys():
                for policy in self.config.policies:
                    key = f"{program.name}/{cpu_key}/{policy}"
                    if not cell_supported(get_cpu(cpu_key), policy):
                        verdicts[key] = "skipped"
                    else:
                        verdicts[key] = "ok"
        for violation in self.violations:
            key = (f"{violation.program}/{violation.cpu}/"
                   f"{violation.policy}")
            verdicts[key] = f"violation: {violation.detail}"
        return verdicts

    def telemetry(self) -> Dict[str, Any]:
        return {
            "fuzz": {
                "seed": self.config.seed,
                "programs": len(self.programs),
                "cells": self.cells,
                "skipped": self.skipped,
                "violations": len(self.violations),
            }
        }


def generate_corpus(config: FuzzConfig) -> List[Program]:
    """The campaign's programs; program i is seeded independently via
    ``derive_seed`` so corpora never correlate across base seeds."""
    return [generate_program(derive_seed(config.seed, "fuzz-program",
                                         str(i)))
            for i in range(config.programs)]


def fuzz_campaign(config: FuzzConfig,
                  programs: Optional[Sequence[Program]] = None,
                  progress: Optional[Any] = None,
                  ) -> CampaignResult:
    """Sweep the corpus over the CPU x policy grid, both oracles per
    cell.  ``jobs > 1`` fans cells out over processes; results are
    assembled in submission order, so parallel == serial bit for bit.

    ``progress``, when given, is called as ``progress(done, total)``
    after every completed cell (``pool.map`` yields results in order, so
    the parallel path reports incrementally too).
    """
    corpus = list(programs) if programs is not None \
        else generate_corpus(config)
    result = CampaignResult(config=config, programs=corpus)
    tasks: List[Tuple[str, str, str, int, int, int, Optional[str]]] = []
    for program in corpus:
        text = program.to_text()
        for cpu_key in config.resolved_cpu_keys():
            for policy in config.policies:
                if not cell_supported(get_cpu(cpu_key), policy):
                    result.skipped += 1
                    continue
                tasks.append((text, cpu_key, policy, config.seed,
                              config.repeats, config.trials,
                              _parity_fault_op))
    result.cells = len(tasks)
    done = 0
    if config.jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            for cell_violations in pool.map(_cell_worker, tasks):
                result.violations.extend(cell_violations)
                done += 1
                if progress is not None:
                    progress(done, len(tasks))
    else:
        for task in tasks:
            result.violations.extend(_cell_worker(task))
            done += 1
            if progress is not None:
                progress(done, len(tasks))
    return result

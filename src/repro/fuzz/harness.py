"""Differential harness: generated programs vs two machine-checkable
contracts.

Each generated program is swept across the full CPU catalogue under the
three mitigation policies the leakage grid knows (`default`, `off`,
`ibrs`), and every (program, cpu, policy) cell is checked against two
oracles:

* **engine parity** — the block-compilation engine must be bit-identical
  to the interpreter: same per-repeat cycles, same TSC, same value for
  every counter in ``ALL_COUNTERS``, same cycle-ledger paths/rollup, and
  the same store-buffer and TLB state in the same order.  The program is
  run several times so sequences compile and memos replay.

* **leakage contract** — the section 6 BTB probe, run after the program
  has perturbed every predictor/cache structure, must (a) keep the taint
  oracle and the divider-counter signal in agreement
  (``leaked == speculated``), and (b) never leak on a cell whose policy
  or hardware *promises* to block the BTB primitive (retpolines, IBRS
  prediction suppression, eIBRS mode tags, Zen 3's opaque index — the
  Table 9/10 shape).  The contract is deliberately one-sided: must-leak
  is never asserted, because the eIBRS periodic scrub consumes seeded
  randomness and generated-program syscalls shift it, making individual
  leaks seed-dependent (section 6.2.2).

Violations carry a printable reproducer (the program text) and enough
metadata to replay the exact cell; :mod:`repro.fuzz.minimize` shrinks
them.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.probe import (
    POLICY_DEFAULT,
    POLICY_IBRS,
    POLICY_OFF,
    SCENARIOS,
    Scenario,
    SpeculationProbe,
    _policy_machine,
)
from ..core.stats import derive_seed
from ..cpu import all_cpus, engine, get_cpu
from ..cpu.counters import ALL_COUNTERS
from ..cpu.model import CPUModel
from ..obs import leakage as obs_leakage
from ..obs import ledger as obs_ledger
from .generator import Program, generate_program, parse_program

#: Policy sweep order (stable: cell keys and history records depend on it).
POLICIES: Tuple[str, ...] = (POLICY_DEFAULT, POLICY_OFF, POLICY_IBRS)

ORACLE_PARITY = "engine_parity"
ORACLE_LEAKAGE = "leakage_contract"

#: Block compilation triggers after a sequence is seen twice, so three
#: repeats guarantee at least one replay through the compiled path.
PARITY_REPEATS = 3

#: Probe trials per scenario.  The contract is one-sided, so fewer trials
#: than the Table 9/10 default (6) stay sound; 2 keeps the grid fast.
FUZZ_TRIALS = 2


@dataclass(frozen=True)
class Violation:
    """One oracle failure, addressable and replayable."""

    oracle: str
    program: str
    seed: int
    cpu: str
    policy: str
    detail: str
    scenario: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "program": self.program,
            "seed": self.seed,
            "cpu": self.cpu,
            "policy": self.policy,
            "detail": self.detail,
            "scenario": self.scenario,
        }


# --------------------------------------------------------------------------- #
# Test-only parity-fault injection
# --------------------------------------------------------------------------- #

#: When set (op name, lower case), the block-engine side of the parity
#: check reports one extra TSC cycle per occurrence of that op in the
#: stream — a deliberate, deterministic parity bug that exercises the
#: violation -> minimize -> reproduce pipeline end to end without
#: touching engine code.  Never set outside tests.
_parity_fault_op: Optional[str] = None


@contextmanager
def parity_fault(op_name: str) -> Iterator[None]:
    """Scoped test hook: perturb the block-side TSC per ``op_name``."""
    global _parity_fault_op
    previous = _parity_fault_op
    _parity_fault_op = op_name.lower()
    try:
        yield
    finally:
        _parity_fault_op = previous


def _fault_delta(stream: Sequence[Any]) -> int:
    if _parity_fault_op is None:
        return 0
    return sum(1 for instr in stream
               if instr.op.name.lower() == _parity_fault_op)


# --------------------------------------------------------------------------- #
# Oracle (a): engine parity
# --------------------------------------------------------------------------- #

def _run_parity_side(program: Program, cpu: CPUModel, policy: str,
                     seed: int, mode: str, repeats: int):
    with engine.use_engine(mode):
        ledger = obs_ledger.CycleLedger()
        with obs_ledger.use_ledger(ledger):
            machine, retpoline = _policy_machine(cpu, policy, seed)
            program.install(machine, retpoline=retpoline)
            stream = program.instructions(retpoline=retpoline)
            cycles = [machine.run(stream) for _ in range(repeats)]
    return cycles, machine, ledger, stream


def check_engine_parity(program: Program, cpu: CPUModel, policy: str,
                        seed: int,
                        repeats: int = PARITY_REPEATS) -> List[Violation]:
    """Block engine vs interpreter on one cell; empty list = parity."""
    blk_cycles, blk_machine, blk_ledger, stream = _run_parity_side(
        program, cpu, policy, seed, engine.ENGINE_BLOCK, repeats)
    int_cycles, int_machine, int_ledger, _ = _run_parity_side(
        program, cpu, policy, seed, engine.ENGINE_INTERP, repeats)

    problems: List[str] = []
    blk_tsc = blk_machine.read_tsc() + _fault_delta(stream)
    if blk_tsc != int_machine.read_tsc():
        problems.append(f"tsc: block={blk_tsc} "
                        f"interp={int_machine.read_tsc()}")
    if blk_cycles != int_cycles:
        problems.append(f"per-repeat cycles: block={blk_cycles} "
                        f"interp={int_cycles}")
    for name in sorted(ALL_COUNTERS):
        blk = blk_machine.counters.events.get(name, 0)
        ref = int_machine.counters.events.get(name, 0)
        if blk != ref:
            problems.append(f"counter {name}: block={blk} interp={ref}")
    if blk_ledger.paths() != int_ledger.paths():
        problems.append("ledger paths diverged")
    if blk_ledger.rollup() != int_ledger.rollup():
        problems.append("ledger rollup diverged")
    if (list(blk_machine.store_buffer._pending.items())
            != list(int_machine.store_buffer._pending.items())):
        problems.append("store-buffer state diverged")
    if (list(blk_machine.tlb._entries.items())
            != list(int_machine.tlb._entries.items())):
        problems.append("TLB state diverged")
    if not problems:
        return []
    return [Violation(oracle=ORACLE_PARITY, program=program.name,
                      seed=program.seed, cpu=cpu.key, policy=policy,
                      detail="; ".join(problems))]


# --------------------------------------------------------------------------- #
# Oracle (b): leakage contract
# --------------------------------------------------------------------------- #

def blocked_promise(cpu: CPUModel, policy: str, scenario: Scenario,
                    retpoline: bool) -> Tuple[str, ...]:
    """Mechanisms that *promise* to block the BTB primitive on this cell.

    Mirrors ``Machine._indirect_prediction_allowed`` and the BTB's
    hardware filters; a non-empty promise means the cell must never
    leak, whatever program ran beforehand (the Table 9/10 shape).
    """
    pred = cpu.predictor
    promises: List[str] = []
    if retpoline:
        promises.append("spectre_v2/retpoline")
    ibrs_on = policy == POLICY_IBRS or (policy == POLICY_DEFAULT
                                        and not retpoline)
    if ibrs_on:
        if pred.ibrs_blocks_all_prediction and not pred.supports_eibrs:
            promises.append("spectre_v2/ibrs_no_predict")
        if (pred.supports_eibrs and pred.eibrs_blocks_kernel_prediction
                and scenario.victim_mode.is_kernel):
            promises.append("spectre_v2/ibrs_no_predict")
    if pred.btb_opaque_index:
        promises.append("hardware/btb_isolation")
    if pred.btb_mode_tagged and scenario.train_mode is not scenario.victim_mode:
        promises.append("hardware/btb_isolation")
    return tuple(promises)


def check_leakage_contract(program: Program, cpu: CPUModel, policy: str,
                           seed: int,
                           trials: int = FUZZ_TRIALS) -> List[Violation]:
    """Run the program, then the section 6 probe, per scenario."""
    violations: List[Violation] = []
    for scenario in SCENARIOS:
        machine, retpoline = _policy_machine(cpu, policy, seed)
        tracer = obs_leakage.LeakageTracer(policy=policy)
        machine.attach_leakage(tracer)
        program.install(machine, retpoline=retpoline)
        data = program.data_addresses()
        if data:
            # Exercise the data-taint propagation paths (store-buffer,
            # caches, TLB, MDS residue) while the program runs.
            tracer.taint_address(data[0])
        machine.run(program.instructions(retpoline=retpoline))
        probe = SpeculationProbe(machine, retpoline=retpoline,
                                 policy=policy)
        verdict = probe.probe_verdict(scenario, trials)
        if verdict.leaked != verdict.speculated:
            violations.append(Violation(
                oracle=ORACLE_LEAKAGE, program=program.name,
                seed=program.seed, cpu=cpu.key, policy=policy,
                scenario=scenario.label,
                detail=(f"oracle disagreement: leaked={verdict.leaked} "
                        f"speculated={verdict.speculated}")))
        promises = blocked_promise(cpu, policy, scenario, retpoline)
        if promises and verdict.leaked:
            violations.append(Violation(
                oracle=ORACLE_LEAKAGE, program=program.name,
                seed=program.seed, cpu=cpu.key, policy=policy,
                scenario=scenario.label,
                detail=(f"leak on a promised-blocked cell: "
                        f"{', '.join(promises)} promised, but "
                        f"{verdict.events} leakage event(s) fired")))
    return violations


# --------------------------------------------------------------------------- #
# Cells and campaigns
# --------------------------------------------------------------------------- #

def cell_supported(cpu: CPUModel, policy: str) -> bool:
    """False for the Table 10 N/A row (IBRS on a part without it)."""
    if policy != POLICY_IBRS:
        return True
    return cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs


def check_cell(program: Program, cpu: CPUModel, policy: str,
               base_seed: int, repeats: int = PARITY_REPEATS,
               trials: int = FUZZ_TRIALS) -> List[Violation]:
    """Both oracles on one (program, cpu, policy) cell."""
    seed = derive_seed(base_seed, "fuzz", program.name, cpu.key, policy)
    violations = check_engine_parity(program, cpu, policy, seed,
                                     repeats=repeats)
    violations.extend(check_leakage_contract(program, cpu, policy, seed,
                                             trials=trials))
    return violations


def _cell_worker(args: Tuple[str, str, str, int, int, int, Optional[str]]
                 ) -> List[Violation]:
    """Module-level so ProcessPoolExecutor can pickle it; ships the
    parity-fault op explicitly so parallel runs match serial ones."""
    text, cpu_key, policy, base_seed, repeats, trials, fault = args
    program = parse_program(text)
    cpu = get_cpu(cpu_key)
    if fault is not None:
        with parity_fault(fault):
            return check_cell(program, cpu, policy, base_seed,
                              repeats=repeats, trials=trials)
    return check_cell(program, cpu, policy, base_seed,
                      repeats=repeats, trials=trials)


@dataclass
class FuzzConfig:
    """One campaign's knobs (all deterministic given ``seed``)."""

    seed: int = 1
    programs: int = 25
    cpu_keys: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = POLICIES
    repeats: int = PARITY_REPEATS
    trials: int = FUZZ_TRIALS
    jobs: int = 1

    def resolved_cpu_keys(self) -> Tuple[str, ...]:
        if self.cpu_keys:
            return self.cpu_keys
        return tuple(cpu.key for cpu in all_cpus())


@dataclass
class CampaignResult:
    """Everything a campaign learned, serializable for the history DB."""

    config: FuzzConfig
    programs: List[Program] = field(default_factory=list)
    cells: int = 0
    skipped: int = 0
    violations: List[Violation] = field(default_factory=list)

    def verdict_map(self) -> Dict[str, str]:
        """cell key -> 'ok' | violation detail; the determinism witness."""
        verdicts: Dict[str, str] = {}
        for program in self.programs:
            for cpu_key in self.config.resolved_cpu_keys():
                for policy in self.config.policies:
                    key = f"{program.name}/{cpu_key}/{policy}"
                    if not cell_supported(get_cpu(cpu_key), policy):
                        verdicts[key] = "skipped"
                    else:
                        verdicts[key] = "ok"
        for violation in self.violations:
            key = (f"{violation.program}/{violation.cpu}/"
                   f"{violation.policy}")
            verdicts[key] = f"violation: {violation.detail}"
        return verdicts

    def telemetry(self) -> Dict[str, Any]:
        return {
            "fuzz": {
                "seed": self.config.seed,
                "programs": len(self.programs),
                "cells": self.cells,
                "skipped": self.skipped,
                "violations": len(self.violations),
            }
        }


def generate_corpus(config: FuzzConfig) -> List[Program]:
    """The campaign's programs; program i is seeded independently via
    ``derive_seed`` so corpora never correlate across base seeds."""
    return [generate_program(derive_seed(config.seed, "fuzz-program",
                                         str(i)))
            for i in range(config.programs)]


def fuzz_campaign(config: FuzzConfig,
                  programs: Optional[Sequence[Program]] = None,
                  ) -> CampaignResult:
    """Sweep the corpus over the CPU x policy grid, both oracles per
    cell.  ``jobs > 1`` fans cells out over processes; results are
    assembled in submission order, so parallel == serial bit for bit."""
    corpus = list(programs) if programs is not None \
        else generate_corpus(config)
    result = CampaignResult(config=config, programs=corpus)
    tasks: List[Tuple[str, str, str, int, int, int, Optional[str]]] = []
    for program in corpus:
        text = program.to_text()
        for cpu_key in config.resolved_cpu_keys():
            for policy in config.policies:
                if not cell_supported(get_cpu(cpu_key), policy):
                    result.skipped += 1
                    continue
                tasks.append((text, cpu_key, policy, config.seed,
                              config.repeats, config.trials,
                              _parity_fault_op))
    result.cells = len(tasks)
    if config.jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            for cell_violations in pool.map(_cell_worker, tasks):
                result.violations.extend(cell_violations)
    else:
        for task in tasks:
            result.violations.extend(_cell_worker(task))
    return result

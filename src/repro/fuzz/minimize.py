"""Test-case minimization: shrink a violating program to a minimal
printable reproducer.

Two phases, re-checking the oracle after every candidate edit (so the
output is guaranteed to still violate):

1. **block pass** — repeatedly try deleting whole basic blocks;
   terminators that referenced a deleted label are retargeted to the
   first surviving block (or dropped for conditional branches, which
   tolerate a missing target);
2. **instruction pass** — ddmin-style binary search over the remaining
   instructions: delete halving-size chunks of each block's body, then
   single instructions, then the terminators themselves.

The predicate is any ``Program -> bool`` callable; the harness-level
helpers in :mod:`repro.fuzz.harness` (``check_cell`` et al.) are the
intended ones.  Minimization is deterministic: same input program and
predicate, same reproducer.
"""

from __future__ import annotations

from typing import Callable, List

from .generator import Block, Program

Predicate = Callable[[Program], bool]


def _drop_block(program: Program, index: int) -> Program:
    """A copy of ``program`` without block ``index``, references fixed."""
    reduced = program.clone()
    removed = reduced.blocks.pop(index)
    survivors = [block.label for block in reduced.blocks]
    fallback = survivors[0] if survivors else None
    for block in reduced.blocks:
        term = block.term
        if term is None or term.target != removed.label:
            continue
        if term.kind == "branch_cond":
            term.target = None
        elif fallback is None:
            block.term = None
        else:
            term.target = fallback
    return reduced


def _minimize_blocks(program: Program, predicate: Predicate) -> Program:
    changed = True
    while changed and len(program.blocks) > 1:
        changed = False
        for index in range(len(program.blocks) - 1, -1, -1):
            if len(program.blocks) == 1:
                break
            candidate = _drop_block(program, index)
            if predicate(candidate):
                program = candidate
                changed = True
    return program


def _drop_body_range(program: Program, block_index: int, start: int,
                     stop: int) -> Program:
    reduced = program.clone()
    body = reduced.blocks[block_index].body
    del body[start:stop]
    return reduced


def _minimize_block_body(program: Program, block_index: int,
                         predicate: Predicate) -> Program:
    """Binary-search chunk deletion over one block's body."""
    chunk = max(1, len(program.blocks[block_index].body) // 2)
    while chunk >= 1:
        start = 0
        while start < len(program.blocks[block_index].body):
            stop = min(start + chunk,
                       len(program.blocks[block_index].body))
            candidate = _drop_body_range(program, block_index, start, stop)
            if candidate.instruction_count() > 0 and predicate(candidate):
                program = candidate  # retry the same offset
            else:
                start = stop
        if chunk == 1:
            break
        chunk //= 2
    return program


def _minimize_terminators(program: Program,
                          predicate: Predicate) -> Program:
    for index in range(len(program.blocks)):
        if program.blocks[index].term is None:
            continue
        candidate = program.clone()
        candidate.blocks[index].term = None
        if candidate.instruction_count() > 0 and predicate(candidate):
            program = candidate
    return program


def minimize_program(program: Program, predicate: Predicate,
                     ) -> Program:
    """Shrink ``program`` while ``predicate`` keeps returning True.

    ``predicate(program)`` must be True on entry; the result is the
    smallest program this strategy reaches that still satisfies it.
    """
    if not predicate(program):
        raise ValueError("predicate does not hold on the input program; "
                         "nothing to minimize")
    program = _minimize_blocks(program, predicate)
    for index in range(len(program.blocks)):
        program = _minimize_block_body(program, index, predicate)
    program = _minimize_terminators(program, predicate)
    # Deleting instructions may have made more whole blocks droppable.
    program = _minimize_blocks(program, predicate)
    empty: List[int] = [i for i, block in enumerate(program.blocks)
                        if not block.body and block.term is None]
    for index in reversed(empty):
        if len(program.blocks) == 1:
            break
        candidate = _drop_block(program, index)
        if predicate(candidate):
            program = candidate
    return program

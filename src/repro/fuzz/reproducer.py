"""Reproducer files: a violating program plus its cell, in one text file.

The format is the printable program form from
:mod:`repro.fuzz.generator` preceded by ``# key: value`` directives that
pin the violating cell, so ``spectresim fuzz --replay <file>`` can
re-run the exact (cpu, policy) pair with the exact derived seed and
confirm the violation still fires.  ``parse_program`` skips comment
lines, so a reproducer file is itself a valid program file.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from ..cpu import get_cpu
from .generator import Program, parse_program
from .harness import ExplainReport, Violation, check_cell, explain_cell
from .minimize import minimize_program


def reproducer_text(program: Program, violation: Violation,
                    base_seed: int) -> str:
    lines = [
        "# spectresim fuzz reproducer",
        f"# oracle: {violation.oracle}",
        f"# cpu: {violation.cpu}",
        f"# policy: {violation.policy}",
        f"# base-seed: {base_seed}",
    ]
    if violation.scenario:
        lines.append(f"# scenario: {violation.scenario}")
    for problem in violation.problems:
        if problem.get("kind") == "injected_fault":
            # Lets `spectresim explain --replay` re-apply the fault;
            # `fuzz --replay` ignores it (clean replay semantics).
            lines.append(f"# fault: {problem['op']}")
    lines.append(f"# detail: {violation.detail}")
    lines.append("# replay: spectresim fuzz --replay <this file>")
    return "\n".join(lines) + "\n" + program.to_text()


def write_reproducer(out_dir: str, program: Program, violation: Violation,
                     base_seed: int) -> str:
    """Write one reproducer; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    name = (f"{program.name}__{violation.cpu}__{violation.policy}"
            f"__{violation.oracle}.prog")
    path = os.path.join(out_dir, name)
    with open(path, "w") as handle:
        handle.write(reproducer_text(program, violation, base_seed))
    return path


def load_reproducer(path: str) -> Tuple[Program, Dict[str, str]]:
    """Parse a reproducer file into (program, directives)."""
    with open(path) as handle:
        text = handle.read()
    directives: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith("#"):
            continue
        key, sep, value = line.lstrip("# ").partition(":")
        if sep:
            directives[key.strip()] = value.strip()
    return parse_program(text), directives


def replay_reproducer(path: str) -> List[Violation]:
    """Re-run a reproducer's cell; non-empty means it still violates."""
    program, directives = load_reproducer(path)
    cpu = get_cpu(directives["cpu"])
    policy = directives["policy"]
    base_seed = int(directives.get("base-seed", "1"))
    return check_cell(program, cpu, policy, base_seed)


def explain_reproducer(path: str) -> ExplainReport:
    """Timeline-trace a reproducer's cell and diff against its injected
    fault (if the file carries a ``# fault:`` directive)."""
    program, directives = load_reproducer(path)
    cpu = get_cpu(directives["cpu"])
    policy = directives["policy"]
    base_seed = int(directives.get("base-seed", "1"))
    fault_op = directives.get("fault")
    return explain_cell(program, cpu, policy, base_seed, fault_op=fault_op)


def minimize_violation(program: Program, violation: Violation,
                       base_seed: int) -> Program:
    """Shrink ``program`` while its cell keeps violating the same oracle."""
    cpu = get_cpu(violation.cpu)

    def still_fails(candidate: Program) -> bool:
        found = check_cell(candidate, cpu, violation.policy, base_seed)
        return any(v.oracle == violation.oracle for v in found)

    return minimize_program(program, still_fails)

"""Mitigation-primitive microbenchmarks: the paper's Tables 3-8.

Each function measures one primitive with the paper's section-5
methodology: execute the sequence in an rdtsc-bracketed loop, subtract
loop overhead, average over many iterations.  The measurements run through
the full :class:`~repro.cpu.machine.Machine` execution path (prediction,
caches, MSR side effects), so they validate that the measurement pipeline
recovers the calibrated hardware behaviour — and they expose the dynamic
effects tables can't show (e.g. a retpoline-free indirect branch only hits
its baseline cost once the BTB is warm).

Values the paper reports as N/A (swap-cr3 on Meltdown-immune parts, verw
clears on MDS-immune parts, AMD retpolines on Intel) are returned as
``None`` by the ``table*_row`` helpers, keyed off the same vulnerability
flags the reporting layer uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cpu import isa
from ..cpu.machine import AMD_RETPOLINE, GENERIC_RETPOLINE, Machine
from ..cpu.model import CPUModel
from ..cpu.modes import Mode
from ..cpu.msr import IA32_PRED_CMD, PRED_CMD_IBPB
from ..errors import UnsupportedFeatureError

#: Iterations for the timed loops.  The paper uses one million on real
#: hardware; the simulator's per-iteration determinism converges far
#: sooner, so the default trades nothing but matches the structure.
DEFAULT_ITERATIONS = 2000

#: Code addresses for the indirect-branch microbenchmark.
_BRANCH_PC = 0x50_0000
_BRANCH_TARGET = 0x50_8000


def measure_syscall(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles of the ``syscall`` instruction (Table 3)."""
    return machine.measure([isa.syscall_instr()], iterations)


def measure_sysret(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles of the ``sysret`` instruction (Table 3)."""
    machine.mode = Mode.KERNEL
    return machine.measure([isa.sysret_instr()], iterations)


def measure_swap_cr3(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles to swap page tables, KPTI-style (Table 3).

    Alternates between the two halves of a KPTI PCID pair, exactly like
    the entry/exit paths do, so PCID-preserving switches are what's
    measured (section 5.1: TLB impacts are marginal next to this).
    """
    machine.mode = Mode.KERNEL
    body = [isa.mov_cr3(pcid=0x001), isa.mov_cr3(pcid=0x801)]
    return machine.measure(body, iterations) / 2.0


def measure_verw(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles of ``verw`` (Table 4): the microcode-extended
    buffer clear on MDS-vulnerable parts, legacy behaviour otherwise."""
    machine.mode = Mode.KERNEL
    return machine.measure([isa.verw()], iterations)


def measure_lfence(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles of a back-to-back ``lfence`` loop (Table 8).

    The paper's caveat applies here too: with no loads in flight this is
    the primitive's floor, not its cost inside a real gadget.
    """
    return machine.measure([isa.lfence()], iterations)


def measure_indirect_branch(
    machine: Machine,
    variant: str = "baseline",
    iterations: int = DEFAULT_ITERATIONS,
) -> float:
    """Average cycles of an indirect branch under one Table 5 variant.

    ``variant`` is one of ``baseline``, ``ibrs``, ``generic`` or ``amd``.
    The same branch site jumps to the same target every iteration, so
    after warmup the predictor path is steady state.
    """
    if variant == "ibrs":
        if not (machine.cpu.predictor.supports_ibrs
                or machine.cpu.predictor.supports_eibrs):
            raise UnsupportedFeatureError(
                f"{machine.cpu.key} does not support IBRS (Table 5: N/A)")
        machine.msr.set_ibrs(True)
        body = [isa.branch_indirect(_BRANCH_TARGET, pc=_BRANCH_PC)]
    elif variant == "baseline":
        machine.msr.set_ibrs(False)
        body = [isa.branch_indirect(_BRANCH_TARGET, pc=_BRANCH_PC)]
    elif variant in (GENERIC_RETPOLINE, AMD_RETPOLINE):
        machine.msr.set_ibrs(False)
        machine.retpoline_variant = variant
        body = [isa.branch_indirect(_BRANCH_TARGET, pc=_BRANCH_PC, retpoline=True)]
    else:
        raise ValueError(f"unknown indirect branch variant {variant!r}")
    return machine.measure(body, iterations)


def measure_ibpb(machine: Machine, iterations: int = 200) -> float:
    """Average cycles of an IBPB (Table 6)."""
    machine.mode = Mode.KERNEL
    body = [isa.wrmsr(IA32_PRED_CMD, PRED_CMD_IBPB)]
    return machine.measure(body, iterations)


def measure_rsb_fill(machine: Machine, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Average cycles of the RSB stuffing sequence (Table 7)."""
    machine.mode = Mode.KERNEL
    return machine.measure([isa.rsb_fill()], iterations)


# --------------------------------------------------------------------------- #
# Table-shaped results
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class EntryExitRow:
    """One Table 3 row."""

    cpu: str
    syscall: float
    sysret: float
    swap_cr3: Optional[float]  # None = N/A (not Meltdown-vulnerable)


def table3_row(cpu: CPUModel, iterations: int = DEFAULT_ITERATIONS) -> EntryExitRow:
    machine = Machine(cpu)
    syscall = measure_syscall(machine, iterations)
    sysret = measure_sysret(machine, iterations)
    swap = measure_swap_cr3(Machine(cpu), iterations) if cpu.vulns.meltdown else None
    return EntryExitRow(cpu=cpu.key, syscall=syscall, sysret=sysret, swap_cr3=swap)


def table4_value(cpu: CPUModel, iterations: int = DEFAULT_ITERATIONS) -> Optional[float]:
    """Table 4: verw clear cycles, or None (N/A) on MDS-immune parts."""
    if not cpu.vulns.mds:
        return None
    return measure_verw(Machine(cpu), iterations)


@dataclass(frozen=True)
class IndirectBranchRow:
    """One Table 5 row: baseline plus per-variant *extra* cycles."""

    cpu: str
    baseline: float
    ibrs_extra: Optional[float]
    generic_extra: float
    amd_extra: Optional[float]


def table5_row(cpu: CPUModel, iterations: int = DEFAULT_ITERATIONS) -> IndirectBranchRow:
    baseline = measure_indirect_branch(Machine(cpu), "baseline", iterations)
    ibrs: Optional[float]
    if cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs:
        ibrs = measure_indirect_branch(Machine(cpu), "ibrs", iterations) - baseline
    else:
        ibrs = None
    generic = measure_indirect_branch(Machine(cpu), GENERIC_RETPOLINE,
                                      iterations) - baseline
    amd: Optional[float]
    if cpu.costs.amd_retpoline_extra is not None:
        amd = measure_indirect_branch(Machine(cpu), AMD_RETPOLINE,
                                      iterations) - baseline
    else:
        amd = None
    return IndirectBranchRow(cpu=cpu.key, baseline=baseline, ibrs_extra=ibrs,
                             generic_extra=generic, amd_extra=amd)


def kernel_entry_latencies(
    cpu: CPUModel,
    entries: int = 200,
    eibrs: bool = True,
    seed: int = 0,
) -> list:
    """Per-entry ``syscall`` latencies, for the section 6.2.2 analysis.

    With eIBRS enabled on a part that has it, most entries cost the base
    amount but every 8th-to-20th entry pays an extra ~210 cycles (the
    hardware's periodic BTB scrub) — the bimodal behaviour the paper
    observed.  With eIBRS off the distribution collapses to a single mode.
    """
    machine = Machine(cpu, seed=seed)
    if eibrs:
        if not cpu.predictor.supports_eibrs:
            raise UnsupportedFeatureError(f"{cpu.key} has no enhanced IBRS")
        machine.msr.set_ibrs(True)
    latencies = []
    for _ in range(entries):
        latencies.append(machine.execute(isa.syscall_instr()))
        machine.execute(isa.sysret_instr())
    return latencies


def table6_value(cpu: CPUModel, iterations: int = 200) -> float:
    """Table 6: IBPB cycles."""
    return measure_ibpb(Machine(cpu), iterations)


def table7_value(cpu: CPUModel, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Table 7: RSB fill cycles."""
    return measure_rsb_fill(Machine(cpu), iterations)


def table8_value(cpu: CPUModel, iterations: int = DEFAULT_ITERATIONS) -> float:
    """Table 8: lfence cycles."""
    return measure_lfence(Machine(cpu), iterations)

"""Machine-readable export of experiment results (JSON / CSV).

The text renderer in :mod:`~repro.core.reporting` is for eyeballs; this
module serializes the same structures for downstream tooling (plotting,
regression tracking between library versions, diffing against the
paper's published numbers).

Every artifact embeds a provenance manifest (seed, CPUs, mitigation
config, package version — see :mod:`repro.obs.provenance`): JSON exports
are ``{"provenance": {...}, "results": [...]}`` envelopes, CSV exports
carry ``#``-prefixed manifest comment lines above the header.  Callers
with full run context pass a manifest; otherwise a minimal one is built
from the results themselves.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from ..obs.provenance import (
    RunManifest,
    build_manifest,
    manifest_comment_lines,
    stamp_payload,
)
from .attribution import AttributionResult
from .probe import SCENARIOS, Scenario
from .stats import Measurement
from .study import PairedOverhead


def _measurement_dict(m: Measurement) -> Dict[str, float]:
    return {"mean": m.mean, "ci_half_width": m.ci_half_width,
            "samples": m.samples}


def _fallback_manifest(cpus: Sequence[str], command: str) -> RunManifest:
    """Library callers that pass no manifest still get seed/cpu/config/
    version keys — unknown context is explicit ``null``, never absent."""
    return build_manifest(command=command, cpus=sorted(set(cpus)))


def attribution_to_dict(result: AttributionResult) -> Dict[str, object]:
    """One Figure 2/3 bar as a JSON-ready dict."""
    return {
        "cpu": result.cpu,
        "workload": result.workload,
        "metric": result.metric,
        "total_overhead_percent": result.total_overhead_percent,
        "baseline": _measurement_dict(result.baseline),
        "default": _measurement_dict(result.default),
        "contributions": [
            {
                "knob": c.knob,
                "boot_param": c.boot_param,
                "percent": c.percent,
                "significant": c.significant,
            }
            for c in result.contributions
        ],
        "other_percent": result.other_percent,
    }


def attributions_to_json(results: Sequence[AttributionResult],
                         indent: int = 2,
                         provenance: Optional[RunManifest] = None) -> str:
    manifest = provenance or _fallback_manifest(
        [r.cpu for r in results], "export attributions")
    return json.dumps(
        stamp_payload([attribution_to_dict(r) for r in results], manifest),
        indent=indent)


def paired_to_dict(result: PairedOverhead) -> Dict[str, object]:
    return {
        "cpu": result.cpu,
        "workload": result.workload,
        "overhead_percent": result.overhead_percent,
        "significant": result.significant,
        "baseline": _measurement_dict(result.baseline),
        "treated": _measurement_dict(result.treated),
    }


def paired_to_json(results: Sequence[PairedOverhead], indent: int = 2,
                   provenance: Optional[RunManifest] = None) -> str:
    manifest = provenance or _fallback_manifest(
        [r.cpu for r in results], "export paired")
    return json.dumps(
        stamp_payload([paired_to_dict(r) for r in results], manifest),
        indent=indent)


def paired_to_csv(results: Sequence[PairedOverhead],
                  provenance: Optional[RunManifest] = None) -> str:
    """CSV with one row per (cpu, workload) comparison.

    The provenance manifest rides above the header as ``#`` comment
    lines; readers should skip lines starting with ``#``.
    """
    manifest = provenance or _fallback_manifest(
        [r.cpu for r in results], "export paired")
    out = io.StringIO()
    for line in manifest_comment_lines(manifest):
        out.write(line + "\n")
    writer = csv.writer(out)
    writer.writerow(["cpu", "workload", "overhead_percent", "significant",
                     "baseline_mean", "treated_mean"])
    for r in results:
        writer.writerow([r.cpu, r.workload, f"{r.overhead_percent:.4f}",
                         int(r.significant), f"{r.baseline.mean:.4f}",
                         f"{r.treated.mean:.4f}"])
    return out.getvalue()


def speculation_matrix_to_json(
    matrix: Dict[str, Optional[Dict[Scenario, bool]]],
    indent: int = 2,
    provenance: Optional[RunManifest] = None,
) -> str:
    """Tables 9/10 as JSON: cpu -> scenario label -> bool (or null row).

    Rows now hold :class:`~repro.core.probe.ProbeVerdict` cells; the JSON
    keeps the historical boolean shape (the ``speculated`` bit).
    """
    serializable = {
        cpu: (None if row is None
              else {scenario.label: bool(row[scenario])
                    for scenario in SCENARIOS})
        for cpu, row in matrix.items()
    }
    manifest = provenance or _fallback_manifest(
        list(matrix), "export speculation-matrix")
    return json.dumps(stamp_payload(serializable, manifest), indent=indent)

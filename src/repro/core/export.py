"""Machine-readable export of experiment results (JSON / CSV).

The text renderer in :mod:`~repro.core.reporting` is for eyeballs; this
module serializes the same structures for downstream tooling (plotting,
regression tracking between library versions, diffing against the
paper's published numbers).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from .attribution import AttributionResult
from .probe import SCENARIOS, Scenario
from .stats import Measurement
from .study import PairedOverhead


def _measurement_dict(m: Measurement) -> Dict[str, float]:
    return {"mean": m.mean, "ci_half_width": m.ci_half_width,
            "samples": m.samples}


def attribution_to_dict(result: AttributionResult) -> Dict[str, object]:
    """One Figure 2/3 bar as a JSON-ready dict."""
    return {
        "cpu": result.cpu,
        "workload": result.workload,
        "metric": result.metric,
        "total_overhead_percent": result.total_overhead_percent,
        "baseline": _measurement_dict(result.baseline),
        "default": _measurement_dict(result.default),
        "contributions": [
            {
                "knob": c.knob,
                "boot_param": c.boot_param,
                "percent": c.percent,
                "significant": c.significant,
            }
            for c in result.contributions
        ],
        "other_percent": result.other_percent,
    }


def attributions_to_json(results: Sequence[AttributionResult],
                         indent: int = 2) -> str:
    return json.dumps([attribution_to_dict(r) for r in results],
                      indent=indent)


def paired_to_dict(result: PairedOverhead) -> Dict[str, object]:
    return {
        "cpu": result.cpu,
        "workload": result.workload,
        "overhead_percent": result.overhead_percent,
        "significant": result.significant,
        "baseline": _measurement_dict(result.baseline),
        "treated": _measurement_dict(result.treated),
    }


def paired_to_json(results: Sequence[PairedOverhead], indent: int = 2) -> str:
    return json.dumps([paired_to_dict(r) for r in results], indent=indent)


def paired_to_csv(results: Sequence[PairedOverhead]) -> str:
    """CSV with one row per (cpu, workload) comparison."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["cpu", "workload", "overhead_percent", "significant",
                     "baseline_mean", "treated_mean"])
    for r in results:
        writer.writerow([r.cpu, r.workload, f"{r.overhead_percent:.4f}",
                         int(r.significant), f"{r.baseline.mean:.4f}",
                         f"{r.treated.mean:.4f}"])
    return out.getvalue()


def speculation_matrix_to_json(
    matrix: Dict[str, Optional[Dict[Scenario, bool]]],
    indent: int = 2,
) -> str:
    """Tables 9/10 as JSON: cpu -> scenario label -> bool (or null row)."""
    serializable = {
        cpu: (None if row is None
              else {scenario.label: row[scenario] for scenario in SCENARIOS})
        for cpu, row in matrix.items()
    }
    return json.dumps(serializable, indent=indent)

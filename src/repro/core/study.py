"""End-to-end experiment drivers: one function per paper figure/finding.

Each driver enumerates its sweep as independent (cpu, config, workload,
settings) **cells** — :class:`~repro.core.executor.CellSpec`s — and hands
them to a :class:`~repro.core.executor.StudyExecutor`, which runs them
inline (the serial path), fans them out over a process pool (``jobs>1``)
or satisfies them from the persistent result cache.  Measurement is
delegated to the attribution harness (Figures 2 and 3) or direct paired
measurement (Figure 5, section 4.4/4.5 findings).

Every cell derives its own noise seed from the spec path
(:meth:`CellSpec.seed`), on the serial and parallel paths alike: distinct
(cpu, config, workload) cells must never consume identical noise
streams, or their errors correlate and bias the attribution stacks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..cpu.machine import Machine
from ..cpu.model import CPUModel, all_cpus, get_cpu
from ..jsengine import octane
from ..obs import spans as obs_spans
from ..mitigations.base import (
    JS_KNOBS,
    KERNEL_KNOBS,
    Knob,
    KNOBS_BY_NAME,
    MitigationConfig,
)
from ..mitigations.policy import linux_default
from ..workloads import lebench, lfs, parsec, vm_lebench
from .attribution import CYCLES, SCORE, AttributionResult, attribute_overhead
from .stats import (
    DEFAULT_NOISE_SIGMA,
    Measurement,
    ReplicaSampler,
    adaptive_measure,
    derive_seed,
    suite_geometric_mean,
)

#: Figure 2 stacks these kernel knobs (attribution order: most expensive
#: mitigations first, mirroring the paper's legend).
FIGURE2_KNOBS: Tuple[Knob, ...] = tuple(
    KNOBS_BY_NAME[name] for name in
    ("pti", "mds", "spectre_v2", "spectre_v1", "l1tf", "lazyfp", "ssbd")
)

#: Figure 3 stacks the JS knobs (blue) then the OS-side SSBD (green);
#: everything else lands in the "other OS" residual.
FIGURE3_KNOBS: Tuple[Knob, ...] = tuple(
    KNOBS_BY_NAME[name] for name in
    ("js_index_masking", "js_object_guards", "js_other", "ssbd")
)


@dataclass(frozen=True)
class Settings:
    """Measurement effort; ``fast()`` keeps tests snappy.

    ``replicas`` is the number of seeded machine replicas each cell
    executes through the batched replica tier (see
    :mod:`repro.cpu.replicas`): noise samples cycle over the replica
    metrics, so the measured mean averages over machine-seed variation
    the way real-hardware campaigns average over reboots.  The default
    of 1 reproduces the classic single-run measurement bit for bit.
    """

    iterations: int = 24
    warmup: int = 6
    sigma: float = DEFAULT_NOISE_SIGMA
    rel_tol: float = 0.005
    max_samples: int = 60
    seed: int = 7
    replicas: int = 1

    @classmethod
    def fast(cls) -> "Settings":
        """Fewer simulated iterations; the noise-averaging stays fairly
        tight because it is cheap (one simulation per configuration)."""
        return cls(iterations=10, warmup=3, max_samples=40, rel_tol=0.006)


def config_label(config: MitigationConfig) -> str:
    """Compact ``knob+knob`` description of the switched-on mitigations,
    for naming configs inside exceptions and cache keys."""
    parts = []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, bool):
            if value:
                parts.append(f.name)
        elif getattr(value, "name", str(value)) not in ("NONE", "OFF"):
            parts.append(f"{f.name}={getattr(value, 'value', value)}")
    return "+".join(parts) or "all-off"


def _executor(executor: Optional["StudyExecutor"]) -> "StudyExecutor":
    from .executor import StudyExecutor
    return executor if executor is not None else StudyExecutor()


# --------------------------------------------------------------------------- #
# Figure 2: LEBench overhead, attributed per mitigation
# --------------------------------------------------------------------------- #

def lebench_geomean(cpu: CPUModel, config: MitigationConfig,
                    settings: Settings, seed: Optional[int] = None) -> float:
    """Suite-level metric: geometric mean of per-case cycles/op."""
    seed = settings.seed if seed is None else seed
    results = lebench.run_suite(
        Machine(cpu, seed=seed), config,
        iterations=settings.iterations, warmup=settings.warmup,
    )
    return suite_geometric_mean(
        results, context=f"lebench on {cpu.key}, {config_label(config)}")


def _figure2_cell(spec) -> AttributionResult:
    cpu = get_cpu(spec.cpu)
    settings = spec.settings
    seed = spec.seed()
    tracer = obs_spans.current_tracer()
    run_fn = lambda config: lebench_geomean(cpu, config, settings, seed=seed)
    run_replica = lambda config, machine_seed: lebench_geomean(
        cpu, config, settings, seed=machine_seed)
    with tracer.span(f"study.figure2.{cpu.key}", cpu=cpu.key,
                     workload="lebench"):
        return attribute_overhead(
            run_fn, linux_default(cpu), FIGURE2_KNOBS,
            cpu=cpu.key, workload="lebench", metric=CYCLES,
            sigma=settings.sigma, rel_tol=settings.rel_tol,
            max_samples=settings.max_samples, seed=seed,
            replicas=settings.replicas, run_replica=run_replica,
        )


def figure2(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[AttributionResult]:
    """The paper's Figure 2: per-CPU LEBench overhead attribution."""
    from .executor import CellSpec
    settings = settings or Settings()
    specs = [CellSpec("figure2", cpu.key, "lebench", settings)
             for cpu in cpus or all_cpus()]
    return _executor(executor).run(specs)


# --------------------------------------------------------------------------- #
# Figure 3: Octane 2 slowdown, attributed per mitigation
# --------------------------------------------------------------------------- #

def octane_suite_score(cpu: CPUModel, config: MitigationConfig,
                       settings: Settings, seed: Optional[int] = None) -> float:
    seed = settings.seed if seed is None else seed
    scores = octane.run_suite(
        Machine(cpu, seed=seed), config,
        iterations=settings.iterations, warmup=settings.warmup,
    )
    return octane.suite_score(scores)


def _figure3_cell(spec) -> AttributionResult:
    cpu = get_cpu(spec.cpu)
    settings = spec.settings
    seed = spec.seed()
    tracer = obs_spans.current_tracer()
    run_fn = lambda config: octane_suite_score(cpu, config, settings, seed=seed)
    run_replica = lambda config, machine_seed: octane_suite_score(
        cpu, config, settings, seed=machine_seed)
    with tracer.span(f"study.figure3.{cpu.key}", cpu=cpu.key,
                     workload="octane2"):
        return attribute_overhead(
            run_fn, linux_default(cpu), FIGURE3_KNOBS,
            cpu=cpu.key, workload="octane2", metric=SCORE,
            sigma=settings.sigma, rel_tol=settings.rel_tol,
            max_samples=settings.max_samples, seed=seed,
            replicas=settings.replicas, run_replica=run_replica,
        )


def figure3(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[AttributionResult]:
    """The paper's Figure 3: Octane 2 slowdown attribution per CPU."""
    from .executor import CellSpec
    settings = settings or Settings()
    specs = [CellSpec("figure3", cpu.key, "octane2", settings)
             for cpu in cpus or all_cpus()]
    return _executor(executor).run(specs)


# --------------------------------------------------------------------------- #
# Figure 5 and section 4.5: PARSEC
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PairedOverhead:
    """A with-vs-without comparison on one (CPU, workload)."""

    cpu: str
    workload: str
    baseline: Measurement
    treated: Measurement
    overhead_percent: float

    @property
    def significant(self) -> bool:
        return not self.baseline.overlaps(self.treated)


def _paired(cpu: CPUModel, workload: str, base_fn: Callable[[int], float],
            treat_fn: Callable[[int], float], settings: Settings,
            seed: Optional[int] = None) -> PairedOverhead:
    # Decorrelated noise per cell: the executor passes the spec-derived
    # seed; direct library callers fall back to the same derivation over
    # (cpu, workload).  The two arms' noise streams are derived with
    # distinct tags rather than seed/seed+1 — adjacent raw seeds can
    # collide with a neighboring cell's stream and correlate its errors.
    if seed is None:
        seed = derive_seed(settings.seed, cpu.key, workload)
    from ..cpu import replicas as replicabatch
    base_batch = replicabatch.run_replicas(base_fn, seed=seed,
                                           n=settings.replicas)
    treat_batch = replicabatch.run_replicas(treat_fn, seed=seed,
                                            n=settings.replicas)
    base_sampler = ReplicaSampler(base_batch.values, settings.sigma,
                                  derive_seed(seed, "base"))
    treat_sampler = ReplicaSampler(treat_batch.values, settings.sigma,
                                   derive_seed(seed, "treat"))
    base = adaptive_measure(
        base_sampler, rel_tol=settings.rel_tol,
        max_samples=settings.max_samples,
        sample_batch=base_sampler.sample_batch)
    treat = adaptive_measure(
        treat_sampler, rel_tol=settings.rel_tol,
        max_samples=settings.max_samples,
        sample_batch=treat_sampler.sample_batch)
    pct = 100.0 * (treat.mean / base.mean - 1.0)
    return PairedOverhead(cpu=cpu.key, workload=workload, baseline=base,
                          treated=treat, overhead_percent=pct)


def _parsec_workload(name: str) -> parsec.PARSECWorkload:
    for workload in parsec.SUITE:
        if workload.name == name:
            return workload
    raise ValueError(f"unknown PARSEC workload {name!r}; "
                     f"known: {[w.name for w in parsec.SUITE]}")


def _named_workloads(requested, suite, label: str):
    """Validate a driver's ``workloads`` argument against the suite.

    The executor addresses cells by workload *name* (names are what
    hashes, caches, and crosses process boundaries), so ad-hoc workload
    objects must go through the suite runners directly instead.
    """
    if requested is None:
        return list(suite)
    by_name = {w.name: w for w in suite}
    out = []
    for workload in requested:
        known = by_name.get(workload.name)
        if known != workload:
            raise ValueError(
                f"{label} workload {workload.name!r} is not the suite "
                f"definition; custom workloads cannot be cell-addressed — "
                f"run them via the workload module directly")
        out.append(known)
    return out


def _figure5_cell(spec) -> PairedOverhead:
    cpu = get_cpu(spec.cpu)
    workload = _parsec_workload(spec.workload)
    settings = spec.settings
    seed = spec.seed()
    tracer = obs_spans.current_tracer()
    with tracer.span(f"study.figure5.{cpu.key}", cpu=cpu.key,
                     workload="parsec"):
        return _paired(
            cpu, workload.name,
            lambda machine_seed: parsec.run_workload(
                Machine(cpu, seed=machine_seed), linux_default(cpu), workload,
                force_ssbd=False, iterations=settings.iterations,
                warmup=settings.warmup),
            lambda machine_seed: parsec.run_workload(
                Machine(cpu, seed=machine_seed), linux_default(cpu), workload,
                force_ssbd=True, iterations=settings.iterations,
                warmup=settings.warmup),
            settings, seed=seed,
        )


def figure5(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[parsec.PARSECWorkload]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[PairedOverhead]:
    """The paper's Figure 5: SSBD slowdown on the PARSEC trio."""
    from .executor import CellSpec
    settings = settings or Settings()
    selected = _named_workloads(workloads, parsec.SUITE, "PARSEC")
    specs = [CellSpec("figure5", cpu.key, workload.name, settings)
             for cpu in cpus or all_cpus()
             for workload in selected]
    return _executor(executor).run(specs)


def _parsec_default_cell(spec) -> PairedOverhead:
    cpu = get_cpu(spec.cpu)
    workload = _parsec_workload(spec.workload)
    settings = spec.settings
    seed = spec.seed()
    tracer = obs_spans.current_tracer()
    with tracer.span(f"study.parsec.{cpu.key}", cpu=cpu.key,
                     workload="parsec"):
        return _paired(
            cpu, workload.name,
            lambda machine_seed: parsec.run_workload(
                Machine(cpu, seed=machine_seed), MitigationConfig.all_off(),
                workload, iterations=settings.iterations,
                warmup=settings.warmup),
            lambda machine_seed: parsec.run_workload(
                Machine(cpu, seed=machine_seed), linux_default(cpu), workload,
                iterations=settings.iterations, warmup=settings.warmup),
            settings, seed=seed,
        )


def parsec_default_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[parsec.PARSECWorkload]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[PairedOverhead]:
    """Section 4.5: default mitigations on compute workloads (~0%)."""
    from .executor import CellSpec
    settings = settings or Settings()
    selected = _named_workloads(workloads, parsec.SUITE, "PARSEC")
    specs = [CellSpec("parsec_default", cpu.key, workload.name, settings)
             for cpu in cpus or all_cpus()
             for workload in selected]
    return _executor(executor).run(specs)


# --------------------------------------------------------------------------- #
# Section 4.4: virtual machine workloads
# --------------------------------------------------------------------------- #

def _vm_lebench_cell(spec) -> PairedOverhead:
    cpu = get_cpu(spec.cpu)
    settings = spec.settings
    seed = spec.seed()

    def run(host_config: MitigationConfig, machine_seed: int) -> float:
        results = vm_lebench.run_suite(
            Machine(cpu, seed=machine_seed), host_config,
            iterations=settings.iterations, warmup=settings.warmup)
        return suite_geometric_mean(
            results,
            context=f"vm_lebench on {cpu.key}, {config_label(host_config)}")

    tracer = obs_spans.current_tracer()
    with tracer.span(f"study.vm_lebench.{cpu.key}", cpu=cpu.key,
                     workload="vm_lebench"):
        return _paired(
            cpu, "vm_lebench",
            lambda machine_seed: run(MitigationConfig.all_off(), machine_seed),
            lambda machine_seed: run(linux_default(cpu), machine_seed),
            settings, seed=seed,
        )


def vm_lebench_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[PairedOverhead]:
    """LEBench in a guest: host mitigations on vs off (±3% band)."""
    from .executor import CellSpec
    settings = settings or Settings()
    specs = [CellSpec("vm_lebench", cpu.key, "vm_lebench", settings)
             for cpu in cpus or all_cpus()]
    return _executor(executor).run(specs)


def _lfs_workload(name: str) -> lfs.LFSWorkload:
    for workload in lfs.SUITE:
        if workload.name == name:
            return workload
    raise ValueError(f"unknown LFS workload {name!r}; "
                     f"known: {[w.name for w in lfs.SUITE]}")


def _lfs_cell(spec) -> PairedOverhead:
    cpu = get_cpu(spec.cpu)
    workload = _lfs_workload(spec.workload)
    settings = spec.settings
    seed = spec.seed()
    iters = max(4, settings.iterations // 3)
    warm = max(1, settings.warmup // 3)
    tracer = obs_spans.current_tracer()
    with tracer.span(f"study.lfs.{cpu.key}", cpu=cpu.key, workload="lfs"):
        return _paired(
            cpu, workload.name,
            lambda machine_seed: lfs.run_workload(
                Machine(cpu, seed=machine_seed), MitigationConfig.all_off(),
                workload, iterations=iters, warmup=warm),
            lambda machine_seed: lfs.run_workload(
                Machine(cpu, seed=machine_seed), linux_default(cpu), workload,
                iterations=iters, warmup=warm),
            settings, seed=seed,
        )


def lfs_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[lfs.LFSWorkload]] = None,
    settings: Optional[Settings] = None,
    executor: Optional["StudyExecutor"] = None,
) -> List[PairedOverhead]:
    """LFS smallfile/largefile: host mitigations on vs off (<2% median)."""
    from .executor import CellSpec
    settings = settings or Settings()
    selected = _named_workloads(workloads, lfs.SUITE, "LFS")
    specs = [CellSpec("lfs", cpu.key, workload.name, settings)
             for cpu in cpus or all_cpus()
             for workload in selected]
    return _executor(executor).run(specs)


# --------------------------------------------------------------------------- #
# The driver registry the executor dispatches through
# --------------------------------------------------------------------------- #

#: driver name -> cell runner (must stay importable for worker processes).
CELL_RUNNERS = {
    "figure2": _figure2_cell,
    "figure3": _figure3_cell,
    "figure5": _figure5_cell,
    "parsec_default": _parsec_default_cell,
    "vm_lebench": _vm_lebench_cell,
    "lfs": _lfs_cell,
}

#: driver name -> result kind ("attribution" or "paired").
DRIVER_KINDS = {
    "figure2": "attribution",
    "figure3": "attribution",
    "figure5": "paired",
    "parsec_default": "paired",
    "vm_lebench": "paired",
    "lfs": "paired",
}

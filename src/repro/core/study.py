"""End-to-end experiment drivers: one function per paper figure/finding.

Each driver sweeps CPUs and configurations, delegates measurement to the
attribution harness (Figures 2 and 3) or direct paired measurement
(Figure 5, section 4.4/4.5 findings), and returns structured results the
reporting layer renders and the benchmark suite regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cpu.machine import Machine
from ..cpu.model import CPUModel, all_cpus
from ..jsengine import octane
from ..obs import spans as obs_spans
from ..mitigations.base import (
    JS_KNOBS,
    KERNEL_KNOBS,
    Knob,
    KNOBS_BY_NAME,
    MitigationConfig,
)
from ..mitigations.policy import linux_default
from ..workloads import lebench, lfs, parsec, vm_lebench
from .attribution import CYCLES, SCORE, AttributionResult, attribute_overhead
from .stats import (
    DEFAULT_NOISE_SIGMA,
    Measurement,
    NoisySampler,
    adaptive_measure,
    geometric_mean,
)

#: Figure 2 stacks these kernel knobs (attribution order: most expensive
#: mitigations first, mirroring the paper's legend).
FIGURE2_KNOBS: Tuple[Knob, ...] = tuple(
    KNOBS_BY_NAME[name] for name in
    ("pti", "mds", "spectre_v2", "spectre_v1", "l1tf", "lazyfp", "ssbd")
)

#: Figure 3 stacks the JS knobs (blue) then the OS-side SSBD (green);
#: everything else lands in the "other OS" residual.
FIGURE3_KNOBS: Tuple[Knob, ...] = tuple(
    KNOBS_BY_NAME[name] for name in
    ("js_index_masking", "js_object_guards", "js_other", "ssbd")
)


@dataclass(frozen=True)
class Settings:
    """Measurement effort; ``fast()`` keeps tests snappy."""

    iterations: int = 24
    warmup: int = 6
    sigma: float = DEFAULT_NOISE_SIGMA
    rel_tol: float = 0.005
    max_samples: int = 60
    seed: int = 7

    @classmethod
    def fast(cls) -> "Settings":
        """Fewer simulated iterations; the noise-averaging stays fairly
        tight because it is cheap (one simulation per configuration)."""
        return cls(iterations=10, warmup=3, max_samples=40, rel_tol=0.006)


# --------------------------------------------------------------------------- #
# Figure 2: LEBench overhead, attributed per mitigation
# --------------------------------------------------------------------------- #

def lebench_geomean(cpu: CPUModel, config: MitigationConfig,
                    settings: Settings) -> float:
    """Suite-level metric: geometric mean of per-case cycles/op."""
    results = lebench.run_suite(
        Machine(cpu, seed=settings.seed), config,
        iterations=settings.iterations, warmup=settings.warmup,
    )
    return geometric_mean(results.values())


def figure2(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
) -> List[AttributionResult]:
    """The paper's Figure 2: per-CPU LEBench overhead attribution."""
    settings = settings or Settings()
    tracer = obs_spans.current_tracer()
    out: List[AttributionResult] = []
    for cpu in cpus or all_cpus():
        run_fn = lambda config, _cpu=cpu: lebench_geomean(_cpu, config, settings)
        with tracer.span(f"study.figure2.{cpu.key}", cpu=cpu.key,
                         workload="lebench"):
            out.append(attribute_overhead(
                run_fn, linux_default(cpu), FIGURE2_KNOBS,
                cpu=cpu.key, workload="lebench", metric=CYCLES,
                sigma=settings.sigma, rel_tol=settings.rel_tol,
                max_samples=settings.max_samples, seed=settings.seed,
            ))
    return out


# --------------------------------------------------------------------------- #
# Figure 3: Octane 2 slowdown, attributed per mitigation
# --------------------------------------------------------------------------- #

def octane_suite_score(cpu: CPUModel, config: MitigationConfig,
                       settings: Settings) -> float:
    scores = octane.run_suite(
        Machine(cpu, seed=settings.seed), config,
        iterations=settings.iterations, warmup=settings.warmup,
    )
    return octane.suite_score(scores)


def figure3(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
) -> List[AttributionResult]:
    """The paper's Figure 3: Octane 2 slowdown attribution per CPU."""
    settings = settings or Settings()
    tracer = obs_spans.current_tracer()
    out: List[AttributionResult] = []
    for cpu in cpus or all_cpus():
        run_fn = lambda config, _cpu=cpu: octane_suite_score(_cpu, config, settings)
        with tracer.span(f"study.figure3.{cpu.key}", cpu=cpu.key,
                         workload="octane2"):
            out.append(attribute_overhead(
                run_fn, linux_default(cpu), FIGURE3_KNOBS,
                cpu=cpu.key, workload="octane2", metric=SCORE,
                sigma=settings.sigma, rel_tol=settings.rel_tol,
                max_samples=settings.max_samples, seed=settings.seed,
            ))
    return out


# --------------------------------------------------------------------------- #
# Figure 5 and section 4.5: PARSEC
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PairedOverhead:
    """A with-vs-without comparison on one (CPU, workload)."""

    cpu: str
    workload: str
    baseline: Measurement
    treated: Measurement
    overhead_percent: float

    @property
    def significant(self) -> bool:
        return not self.baseline.overlaps(self.treated)


def _paired(cpu: CPUModel, workload: str, base_fn: Callable[[], float],
            treat_fn: Callable[[], float], settings: Settings) -> PairedOverhead:
    import zlib
    # Decorrelated noise per (cpu, workload): see attribution module.
    seed = (settings.seed
            + zlib.crc32(f"{cpu.key}/{workload}".encode())) & 0x7FFF_FFFF
    base_value = float(base_fn())
    treat_value = float(treat_fn())
    base = adaptive_measure(
        NoisySampler(lambda: base_value, settings.sigma, seed),
        rel_tol=settings.rel_tol, max_samples=settings.max_samples)
    treat = adaptive_measure(
        NoisySampler(lambda: treat_value, settings.sigma, seed + 1),
        rel_tol=settings.rel_tol, max_samples=settings.max_samples)
    pct = 100.0 * (treat.mean / base.mean - 1.0)
    return PairedOverhead(cpu=cpu.key, workload=workload, baseline=base,
                          treated=treat, overhead_percent=pct)


def figure5(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[parsec.PARSECWorkload]] = None,
    settings: Optional[Settings] = None,
) -> List[PairedOverhead]:
    """The paper's Figure 5: SSBD slowdown on the PARSEC trio."""
    settings = settings or Settings()
    tracer = obs_spans.current_tracer()
    out: List[PairedOverhead] = []
    for cpu in cpus or all_cpus():
        config = linux_default(cpu)
        with tracer.span(f"study.figure5.{cpu.key}", cpu=cpu.key,
                         workload="parsec"):
            for workload in workloads or parsec.SUITE:
                out.append(_paired(
                    cpu, workload.name,
                    lambda _c=cpu, _w=workload: parsec.run_workload(
                        Machine(_c, seed=settings.seed), linux_default(_c), _w,
                        force_ssbd=False, iterations=settings.iterations,
                        warmup=settings.warmup),
                    lambda _c=cpu, _w=workload: parsec.run_workload(
                        Machine(_c, seed=settings.seed), linux_default(_c), _w,
                        force_ssbd=True, iterations=settings.iterations,
                        warmup=settings.warmup),
                    settings,
                ))
    return out


def parsec_default_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[parsec.PARSECWorkload]] = None,
    settings: Optional[Settings] = None,
) -> List[PairedOverhead]:
    """Section 4.5: default mitigations on compute workloads (~0%)."""
    settings = settings or Settings()
    tracer = obs_spans.current_tracer()
    out: List[PairedOverhead] = []
    for cpu in cpus or all_cpus():
        with tracer.span(f"study.parsec.{cpu.key}", cpu=cpu.key,
                         workload="parsec"):
            for workload in workloads or parsec.SUITE:
                out.append(_paired(
                    cpu, workload.name,
                    lambda _c=cpu, _w=workload: parsec.run_workload(
                        Machine(_c, seed=settings.seed), MitigationConfig.all_off(),
                        _w, iterations=settings.iterations, warmup=settings.warmup),
                    lambda _c=cpu, _w=workload: parsec.run_workload(
                        Machine(_c, seed=settings.seed), linux_default(_c), _w,
                        iterations=settings.iterations, warmup=settings.warmup),
                    settings,
                ))
    return out


# --------------------------------------------------------------------------- #
# Section 4.4: virtual machine workloads
# --------------------------------------------------------------------------- #

def vm_lebench_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    settings: Optional[Settings] = None,
) -> List[PairedOverhead]:
    """LEBench in a guest: host mitigations on vs off (±3% band)."""
    settings = settings or Settings()

    def run(cpu: CPUModel, host_config: MitigationConfig) -> float:
        results = vm_lebench.run_suite(
            Machine(cpu, seed=settings.seed), host_config,
            iterations=settings.iterations, warmup=settings.warmup)
        return geometric_mean(results.values())

    tracer = obs_spans.current_tracer()
    out: List[PairedOverhead] = []
    for cpu in cpus or all_cpus():
        with tracer.span(f"study.vm_lebench.{cpu.key}", cpu=cpu.key,
                         workload="vm_lebench"):
            out.append(_paired(
                cpu, "vm_lebench",
                lambda _c=cpu: run(_c, MitigationConfig.all_off()),
                lambda _c=cpu: run(_c, linux_default(_c)),
                settings,
            ))
    return out


def lfs_overheads(
    cpus: Optional[Sequence[CPUModel]] = None,
    workloads: Optional[Sequence[lfs.LFSWorkload]] = None,
    settings: Optional[Settings] = None,
) -> List[PairedOverhead]:
    """LFS smallfile/largefile: host mitigations on vs off (<2% median)."""
    settings = settings or Settings()
    tracer = obs_spans.current_tracer()
    iters = max(4, settings.iterations // 3)
    warm = max(1, settings.warmup // 3)
    out: List[PairedOverhead] = []
    for cpu in cpus or all_cpus():
        with tracer.span(f"study.lfs.{cpu.key}", cpu=cpu.key,
                         workload="lfs"):
            for workload in workloads or lfs.SUITE:
                out.append(_paired(
                    cpu, workload.name,
                    lambda _c=cpu, _w=workload: lfs.run_workload(
                        Machine(_c, seed=settings.seed), MitigationConfig.all_off(),
                        _w, iterations=iters, warmup=warm),
                    lambda _c=cpu, _w=workload: lfs.run_workload(
                        Machine(_c, seed=settings.seed), linux_default(_c), _w,
                        iterations=iters, warmup=warm),
                    settings,
                ))
    return out

"""The speculation probe: the paper's Figure 6 / section 6 methodology.

The probe determines whether a poisoned Branch Target Buffer entry can
steer *transient* execution to an attacker-chosen landing pad, using a
performance counter that the landing pad perturbs even on the wrong path:
``ARITH.DIVIDER_ACTIVE`` (a divide at the pad keeps the divider busy;
Bölük's technique).

Protocol, mirroring Figure 6:

1. register a ``victim_target`` landing pad containing a divide, and a
   ``nop_target`` pad containing nothing interesting;
2. **train**: in the attacker's mode, repeatedly execute the indirect
   branch at a fixed PC with ``victim_target`` as its real target;
3. optionally perform an intervening ``syscall``/``sysret`` (the paper's
   two column groups);
4. **probe**: in the victim's mode, fill the branch history, flush the
   target variable, read the divider counter, execute the same branch
   with ``nop_target`` as the real target, and re-read the counter.
   A counter delta means the poisoned prediction was consumed and the
   divide at ``victim_target`` executed transiently.

Tables 9 and 10 are this probe swept over five (attacker, victim,
intervening-syscall) scenarios with IBRS off and on respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu import counters as ctr
from ..cpu import isa
from ..cpu.machine import Machine
from ..cpu.model import CPUModel
from ..cpu.modes import Mode
from ..errors import UnsupportedFeatureError

#: Probe code layout: the shared branch site and the two landing pads.
BRANCH_PC = 0x60_0000
VICTIM_TARGET = 0x61_0000
NOP_TARGET = 0x62_0000

#: Training repetitions (the paper uses 1024; the model BTB trains in one,
#: but we keep several to exercise re-installation).
TRAIN_ROUNDS = 8

#: Independent probe trials; any success counts (the eIBRS periodic scrub
#: can eat individual trials on the syscall paths, cf. section 6.2.2).
DEFAULT_TRIALS = 6


@dataclass(frozen=True)
class Scenario:
    """One Table 9/10 column: train mode -> victim mode, syscall or not."""

    train_mode: Mode
    victim_mode: Mode
    intervening_syscall: bool

    @property
    def label(self) -> str:
        arrow = f"{self.train_mode.value}->{self.victim_mode.value}"
        suffix = "syscall" if self.intervening_syscall else "direct"
        return f"{arrow} ({suffix})"


#: The five scenarios of Tables 9 and 10, in column order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(Mode.USER, Mode.KERNEL, True),
    Scenario(Mode.USER, Mode.USER, True),
    Scenario(Mode.KERNEL, Mode.KERNEL, True),
    Scenario(Mode.USER, Mode.USER, False),
    Scenario(Mode.KERNEL, Mode.KERNEL, False),
)

#: The extra scenario the paper mentions in prose (kernel->user behaves
#: like user->kernel on vulnerable parts).
KERNEL_TO_USER = Scenario(Mode.KERNEL, Mode.USER, True)


class SpeculationProbe:
    """Drives the Figure 6 protocol on one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        machine.register_code(VICTIM_TARGET, [isa.div()])
        machine.register_code(NOP_TARGET, [isa.nop()])

    # -- protocol steps ---------------------------------------------------- #

    def train(self, mode: Mode, rounds: int = TRAIN_ROUNDS) -> None:
        machine = self.machine
        machine.mode = mode
        for _ in range(rounds):
            machine.execute(isa.branch_indirect(VICTIM_TARGET, pc=BRANCH_PC))

    def _intervening_transition(self, scenario: Scenario) -> None:
        """Cross modes with real syscall/sysret instructions."""
        machine = self.machine
        if scenario.train_mode is Mode.USER:
            machine.execute(isa.syscall_instr())      # user -> kernel
            if scenario.victim_mode is Mode.USER:
                machine.execute(isa.sysret_instr())   # back to user
        else:
            machine.execute(isa.sysret_instr())       # kernel -> user
            if scenario.victim_mode is Mode.KERNEL:
                machine.execute(isa.syscall_instr())  # back to kernel

    def probe_once(self, scenario: Scenario) -> bool:
        """One full train->probe round; True if the pad ran transiently."""
        machine = self.machine
        self.train(scenario.train_mode)
        if scenario.intervening_syscall:
            self._intervening_transition(scenario)
        machine.mode = scenario.victim_mode

        # divide_happened() from Figure 6: fill branch history, flush the
        # target from cache, bracket the branch with counter reads.
        for i in range(16):
            machine.execute(isa.branch_cond(pc=0x7000 + 4 * i))
        machine.execute(isa.clflush(NOP_TARGET))
        before = machine.counters.read(ctr.DIVIDER_ACTIVE)
        machine.execute(isa.rdpmc())
        machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC))
        machine.execute(isa.rdpmc())
        return machine.counters.read(ctr.DIVIDER_ACTIVE) > before

    def probe(self, scenario: Scenario, trials: int = DEFAULT_TRIALS) -> bool:
        """True if any trial steers transient execution to the pad."""
        return any(self.probe_once(scenario) for _ in range(trials))

    def probe_both_counters(self, scenario: Scenario) -> Tuple[bool, bool]:
        """One round, reading *both* counters the paper discusses.

        Returns ``(mispredicted, divider_active)``.  The two can disagree:
        "we sometimes observed mispredicted indirect branches without any
        divide instructions being performed, which we interpret as the
        processor speculatively executing instructions at a different
        location" (section 6.1) — e.g. after an IBPB, when entries point
        at the harmless gadget.  This disagreement is exactly why the
        paper (and this probe) trusts the divider counter.
        """
        machine = self.machine
        self.train(scenario.train_mode)
        if scenario.intervening_syscall:
            self._intervening_transition(scenario)
        machine.mode = scenario.victim_mode
        for i in range(16):
            machine.execute(isa.branch_cond(pc=0x7000 + 4 * i))
        machine.execute(isa.clflush(NOP_TARGET))
        div_before = machine.counters.read(ctr.DIVIDER_ACTIVE)
        misp_before = machine.counters.read(ctr.MISPREDICTED_INDIRECT)
        machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC))
        mispredicted = machine.counters.read(
            ctr.MISPREDICTED_INDIRECT) > misp_before
        divider = machine.counters.read(ctr.DIVIDER_ACTIVE) > div_before
        return mispredicted, divider


def speculation_row(
    cpu: CPUModel,
    ibrs: bool,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> Optional[Dict[Scenario, bool]]:
    """One CPU's Table 9 (``ibrs=False``) or Table 10 (``ibrs=True``) row.

    Returns None when the configuration is impossible — Zen has no IBRS
    support, which the paper's Table 10 marks N/A.
    """
    if ibrs and not (cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs):
        return None
    row: Dict[Scenario, bool] = {}
    for scenario in SCENARIOS:
        machine = Machine(cpu, seed=seed)
        machine.msr.set_ibrs(ibrs)
        probe = SpeculationProbe(machine)
        row[scenario] = probe.probe(scenario, trials)
    return row


def speculation_matrix(
    cpus: Tuple[CPUModel, ...],
    ibrs: bool,
    trials: int = DEFAULT_TRIALS,
) -> Dict[str, Optional[Dict[Scenario, bool]]]:
    """The full Table 9/10 matrix over ``cpus``."""
    return {cpu.key: speculation_row(cpu, ibrs, trials) for cpu in cpus}

"""The speculation probe: the paper's Figure 6 / section 6 methodology.

The probe determines whether a poisoned Branch Target Buffer entry can
steer *transient* execution to an attacker-chosen landing pad, using a
performance counter that the landing pad perturbs even on the wrong path:
``ARITH.DIVIDER_ACTIVE`` (a divide at the pad keeps the divider busy;
Bölük's technique).

Protocol, mirroring Figure 6:

1. register a ``victim_target`` landing pad containing a divide, and a
   ``nop_target`` pad containing nothing interesting;
2. **train**: in the attacker's mode, repeatedly execute the indirect
   branch at a fixed PC with ``victim_target`` as its real target;
3. optionally perform an intervening ``syscall``/``sysret`` (the paper's
   two column groups);
4. **probe**: in the victim's mode, fill the branch history, flush the
   target variable, read the divider counter, execute the same branch
   with ``nop_target`` as the real target, and re-read the counter.
   A counter delta means the poisoned prediction was consumed and the
   divide at ``victim_target`` executed transiently.

Tables 9 and 10 are this probe swept over five (attacker, victim,
intervening-syscall) scenarios with IBRS off and on respectively.

The probe is rebased on the taint-tracking leakage tracer
(:mod:`repro.obs.leakage`) as its oracle: every probed cell returns a
structured :class:`ProbeVerdict` carrying both the legacy counter signal
(``speculated``) and the tracer's view (``leaked``, plus *blocked-by*
attribution naming the mitigation that cleared the taint).  The two
signals derive from the same mechanistic window, so they agree by
construction — the oracle-agreement tests pin that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cpu import counters as ctr
from ..cpu import isa
from ..cpu.machine import AMD_RETPOLINE, Machine
from ..cpu.model import CPUModel
from ..cpu.modes import Mode
from ..errors import UnsupportedFeatureError
from ..obs import leakage as obs_leakage

#: Probe code layout: the shared branch site and the two landing pads.
BRANCH_PC = 0x60_0000
VICTIM_TARGET = 0x61_0000
NOP_TARGET = 0x62_0000

#: Training repetitions (the paper uses 1024; the model BTB trains in one,
#: but we keep several to exercise re-installation).
TRAIN_ROUNDS = 8

#: Independent probe trials; any success counts (the eIBRS periodic scrub
#: can eat individual trials on the syscall paths, cf. section 6.2.2).
DEFAULT_TRIALS = 6


@dataclass(frozen=True)
class Scenario:
    """One Table 9/10 column: train mode -> victim mode, syscall or not."""

    train_mode: Mode
    victim_mode: Mode
    intervening_syscall: bool

    @property
    def label(self) -> str:
        arrow = f"{self.train_mode.value}->{self.victim_mode.value}"
        suffix = "syscall" if self.intervening_syscall else "direct"
        return f"{arrow} ({suffix})"


#: The five scenarios of Tables 9 and 10, in column order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(Mode.USER, Mode.KERNEL, True),
    Scenario(Mode.USER, Mode.USER, True),
    Scenario(Mode.KERNEL, Mode.KERNEL, True),
    Scenario(Mode.USER, Mode.USER, False),
    Scenario(Mode.KERNEL, Mode.KERNEL, False),
)

#: The extra scenario the paper mentions in prose (kernel->user behaves
#: like user->kernel on vulnerable parts).
KERNEL_TO_USER = Scenario(Mode.KERNEL, Mode.USER, True)

#: Leakage-grid mitigation policies.
POLICY_OFF = "off"          # everything disabled (Table 9 conditions)
POLICY_IBRS = "ibrs"        # SPEC_CTRL.IBRS set (Table 10 conditions)
POLICY_DEFAULT = "default"  # the Linux default V2 strategy per CPU


class ProbeVerdict:
    """Structured outcome of probing one (CPU, scenario) cell.

    ``speculated`` is the legacy divider-counter signal (the bare boolean
    the probe used to return); ``leaked`` is the taint oracle's verdict
    (a ``port_timing`` leakage event fired); ``blocked_by`` names the
    mitigation/primitive pairs that cleared or bypassed the tainted
    predictor state during the probe.  Verdicts compare equal to plain
    booleans on the ``speculated`` bit, so Table 9/10 expectations keep
    reading naturally.
    """

    __slots__ = ("speculated", "mispredicted", "leaked", "blocked_by",
                 "events", "label")

    def __init__(self, speculated: bool, mispredicted: bool = False,
                 leaked: bool = False,
                 blocked_by: Tuple[str, ...] = (),
                 events: int = 0, label: str = "") -> None:
        self.speculated = speculated
        self.mispredicted = mispredicted
        self.leaked = leaked
        self.blocked_by = tuple(blocked_by)
        self.events = events
        self.label = label

    def __bool__(self) -> bool:
        return self.speculated

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, ProbeVerdict):
            return (self.speculated == other.speculated
                    and self.mispredicted == other.mispredicted
                    and self.leaked == other.leaked
                    and self.blocked_by == other.blocked_by
                    and self.events == other.events)
        if isinstance(other, bool):
            return self.speculated is other
        return NotImplemented

    def __ne__(self, other: Any) -> Any:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.speculated)

    def __repr__(self) -> str:
        return ("ProbeVerdict(speculated={0}, leaked={1}, blocked_by={2})"
                .format(self.speculated, self.leaked, self.blocked_by))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "speculated": self.speculated,
            "mispredicted": self.mispredicted,
            "leaked": self.leaked,
            "blocked_by": list(self.blocked_by),
            "events": self.events,
        }


class SpeculationProbe:
    """Drives the Figure 6 protocol on one machine.

    ``retpoline`` converts the *victim-side* probe branch into a
    retpoline (the attacker's training branches stay plain — attackers
    do not compile their own code with retpolines), modelling a kernel
    built with ``CONFIG_RETPOLINE``.
    """

    def __init__(self, machine: Machine, retpoline: bool = False,
                 policy: str = "custom") -> None:
        self.machine = machine
        self.retpoline = retpoline
        self.policy = policy
        machine.register_code(VICTIM_TARGET, [isa.div()])
        machine.register_code(NOP_TARGET, [isa.nop()])

    # -- protocol steps ---------------------------------------------------- #

    def train(self, mode: Mode, rounds: int = TRAIN_ROUNDS) -> None:
        machine = self.machine
        machine.mode = mode
        for _ in range(rounds):
            machine.execute(isa.branch_indirect(VICTIM_TARGET, pc=BRANCH_PC))

    def _intervening_transition(self, scenario: Scenario) -> None:
        """Cross modes with real syscall/sysret instructions."""
        machine = self.machine
        if scenario.train_mode is Mode.USER:
            machine.execute(isa.syscall_instr())      # user -> kernel
            if scenario.victim_mode is Mode.USER:
                machine.execute(isa.sysret_instr())   # back to user
        else:
            machine.execute(isa.sysret_instr())       # kernel -> user
            if scenario.victim_mode is Mode.KERNEL:
                machine.execute(isa.syscall_instr())  # back to kernel

    def probe_once(self, scenario: Scenario) -> bool:
        """One full train->probe round; True if the pad ran transiently."""
        machine = self.machine
        self.train(scenario.train_mode)
        if scenario.intervening_syscall:
            self._intervening_transition(scenario)
        machine.mode = scenario.victim_mode

        # divide_happened() from Figure 6: fill branch history, flush the
        # target from cache, bracket the branch with counter reads.
        for i in range(16):
            machine.execute(isa.branch_cond(pc=0x7000 + 4 * i))
        machine.execute(isa.clflush(NOP_TARGET))
        before = machine.counters.read(ctr.DIVIDER_ACTIVE)
        machine.execute(isa.rdpmc())
        machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC,
                                            retpoline=self.retpoline))
        machine.execute(isa.rdpmc())
        return machine.counters.read(ctr.DIVIDER_ACTIVE) > before

    def probe(self, scenario: Scenario, trials: int = DEFAULT_TRIALS) -> bool:
        """True if any trial steers transient execution to the pad."""
        return any(self.probe_once(scenario) for _ in range(trials))

    def probe_both_counters(self, scenario: Scenario) -> Tuple[bool, bool]:
        """One round, reading *both* counters the paper discusses.

        Returns ``(mispredicted, divider_active)``.  The two can disagree:
        "we sometimes observed mispredicted indirect branches without any
        divide instructions being performed, which we interpret as the
        processor speculatively executing instructions at a different
        location" (section 6.1) — e.g. after an IBPB, when entries point
        at the harmless gadget.  This disagreement is exactly why the
        paper (and this probe) trusts the divider counter.
        """
        machine = self.machine
        self.train(scenario.train_mode)
        if scenario.intervening_syscall:
            self._intervening_transition(scenario)
        machine.mode = scenario.victim_mode
        for i in range(16):
            machine.execute(isa.branch_cond(pc=0x7000 + 4 * i))
        machine.execute(isa.clflush(NOP_TARGET))
        div_before = machine.counters.read(ctr.DIVIDER_ACTIVE)
        misp_before = machine.counters.read(ctr.MISPREDICTED_INDIRECT)
        machine.execute(isa.branch_indirect(NOP_TARGET, pc=BRANCH_PC,
                                            retpoline=self.retpoline))
        mispredicted = machine.counters.read(
            ctr.MISPREDICTED_INDIRECT) > misp_before
        divider = machine.counters.read(ctr.DIVIDER_ACTIVE) > div_before
        return mispredicted, divider

    def probe_verdict(self, scenario: Scenario,
                      trials: int = DEFAULT_TRIALS) -> ProbeVerdict:
        """Probe one scenario with the taint oracle engaged.

        Attaches a :class:`repro.obs.leakage.LeakageTracer` to the machine
        (if none is attached yet), labels the victim landing pad as
        attacker-controlled code, runs ``trials`` rounds, and folds both
        the legacy counter signal and the tracer's leakage/blocked-by
        deltas into a :class:`ProbeVerdict`.
        """
        machine = self.machine
        tracer = machine.leakage
        if tracer is None:
            tracer = obs_leakage.LeakageTracer(policy=self.policy)
            machine.attach_leakage(tracer)
        tracer.taint_code(VICTIM_TARGET)
        port_before = tracer.count(obs_leakage.PORT_TIMING)
        events_before = tracer.total_events()
        blocked_before = dict(tracer.blocked)
        mispredicted = False
        speculated = False
        for _ in range(trials):
            misp, divider = self.probe_both_counters(scenario)
            mispredicted = mispredicted or misp
            speculated = speculated or divider
        leaked = tracer.count(obs_leakage.PORT_TIMING) > port_before
        blocked_by = tuple(sorted(
            key for key, count in tracer.blocked.items()
            if count > blocked_before.get(key, 0)))
        return ProbeVerdict(
            speculated=speculated,
            mispredicted=mispredicted,
            leaked=leaked,
            blocked_by=blocked_by,
            events=tracer.total_events() - events_before,
            label=scenario.label,
        )


def speculation_row(
    cpu: CPUModel,
    ibrs: bool,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> Optional[Dict[Scenario, ProbeVerdict]]:
    """One CPU's Table 9 (``ibrs=False``) or Table 10 (``ibrs=True``) row.

    Returns None when the configuration is impossible — Zen has no IBRS
    support, which the paper's Table 10 marks N/A.  Cells are
    :class:`ProbeVerdict` objects; they compare equal to the bare booleans
    the row used to carry.
    """
    if ibrs and not (cpu.predictor.supports_ibrs or cpu.predictor.supports_eibrs):
        return None
    policy = POLICY_IBRS if ibrs else POLICY_OFF
    row: Dict[Scenario, ProbeVerdict] = {}
    for scenario in SCENARIOS:
        machine = Machine(cpu, seed=seed)
        machine.msr.set_ibrs(ibrs)
        probe = SpeculationProbe(machine, policy=policy)
        row[scenario] = probe.probe_verdict(scenario, trials)
    return row


def speculation_matrix(
    cpus: Tuple[CPUModel, ...],
    ibrs: bool,
    trials: int = DEFAULT_TRIALS,
) -> Dict[str, Optional[Dict[Scenario, ProbeVerdict]]]:
    """The full Table 9/10 matrix over ``cpus``."""
    return {cpu.key: speculation_row(cpu, ibrs, trials) for cpu in cpus}


# --------------------------------------------------------------------------- #
# Leakage grid: the probe swept under mitigation policies, tracer attached
# --------------------------------------------------------------------------- #

def _policy_machine(cpu: CPUModel, policy: str, seed: int) -> Tuple[Machine, bool]:
    """A machine configured for ``policy``; returns (machine, retpoline)."""
    machine = Machine(cpu, seed=seed)
    if policy == POLICY_OFF:
        return machine, False
    if policy == POLICY_IBRS:
        machine.msr.set_ibrs(True)
        return machine, False
    if policy == POLICY_DEFAULT:
        from ..mitigations.base import V2Strategy
        from ..mitigations.policy import default_v2_strategy
        strategy = default_v2_strategy(cpu)
        if strategy is V2Strategy.EIBRS:
            machine.msr.set_ibrs(True)
            return machine, False
        if strategy is V2Strategy.RETPOLINE_AMD:
            machine.retpoline_variant = AMD_RETPOLINE
        return machine, True
    raise ValueError(f"unknown leakage policy {policy!r}")


def leakage_row(
    cpu: CPUModel,
    policy: str = POLICY_DEFAULT,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> Optional[Dict[Scenario, ProbeVerdict]]:
    """One CPU's probe row under a mitigation ``policy``, taint oracle on.

    Returns None for impossible configurations (``ibrs`` on a part with
    no IBRS support, mirroring Table 10's N/A row).
    """
    if policy == POLICY_IBRS and not (cpu.predictor.supports_ibrs
                                      or cpu.predictor.supports_eibrs):
        return None
    row: Dict[Scenario, ProbeVerdict] = {}
    for scenario in SCENARIOS:
        machine, retpoline = _policy_machine(cpu, policy, seed)
        probe = SpeculationProbe(machine, retpoline=retpoline, policy=policy)
        row[scenario] = probe.probe_verdict(scenario, trials)
    return row


def leakage_matrix(
    cpus: Tuple[CPUModel, ...],
    policy: str = POLICY_DEFAULT,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> Dict[str, Optional[Dict[Scenario, ProbeVerdict]]]:
    """The probe grid over ``cpus`` under one mitigation policy."""
    return {cpu.key: leakage_row(cpu, policy, trials, seed) for cpu in cpus}


def leakage_report(
    cpus: Tuple[CPUModel, ...],
    policy: str = POLICY_DEFAULT,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    max_events: int = 200,
) -> Dict[str, Any]:
    """Serializable leakage surface: matrix cells, sample events, and the
    merged tracer state (the shape shipped in bench payloads, stored in
    the history DB and rendered by the dashboard panel)."""
    aggregate = obs_leakage.LeakageTracer(policy=policy)
    matrix: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    for cpu in cpus:
        if policy == POLICY_IBRS and not (cpu.predictor.supports_ibrs
                                          or cpu.predictor.supports_eibrs):
            matrix[cpu.key] = None
            continue
        cells: Dict[str, Any] = {}
        for scenario in SCENARIOS:
            machine, retpoline = _policy_machine(cpu, policy, seed)
            probe = SpeculationProbe(machine, retpoline=retpoline,
                                     policy=policy)
            verdict = probe.probe_verdict(scenario, trials)
            cells[scenario.label] = verdict.to_dict()
            tracer = machine.leakage
            if tracer is not None:
                aggregate.merge_state(tracer.state())
                for event in tracer.events:
                    if len(events) < max_events:
                        events.append(event.to_dict())
        matrix[cpu.key] = cells
    return {
        "policy": policy,
        "matrix": matrix,
        "events": events,
        "state": aggregate.state(),
        "summary": aggregate.summary().to_dict(),
    }

"""Per-mitigation overhead attribution: the paper's core method.

Section 4.1: "we run Linux with the default set of mitigations enabled,
and then use kernel boot parameters to successively disable them to
determine the overhead that each one causes."

:func:`attribute_overhead` walks a knob chain from the default config to
all-off, measuring each intermediate configuration (with run-to-run noise
and the adaptive CI methodology), and attributes the measured difference
between consecutive configurations to the knob flipped between them.
Whatever remains between the last knob and true all-off is the "other"
residual the paper plots as the unlabelled remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..mitigations.base import Knob, MitigationConfig
from .stats import (
    DEFAULT_NOISE_SIGMA,
    Measurement,
    ReplicaSampler,
    adaptive_measure,
    derive_seed,
)

#: Signature of a deterministic experiment: config -> metric value.
RunFn = Callable[[MitigationConfig], float]

#: Replica-aware variant: (config, machine_seed) -> metric value.  The
#: runner must seed every machine it builds from ``machine_seed`` so the
#: batch tier can enumerate seeded replicas (see repro.cpu.replicas).
ReplicaRunFn = Callable[[MitigationConfig, int], float]

#: Metric directions.
CYCLES = "cycles"   # lower is better (LEBench, PARSEC, LFS)
SCORE = "score"     # higher is better (Octane)


@dataclass(frozen=True)
class Contribution:
    """Overhead attributable to one mitigation knob."""

    knob: str
    boot_param: str
    #: Percent of baseline performance this knob costs (>= 0 modulo noise).
    percent: float
    with_knob: Measurement
    without_knob: Measurement

    @property
    def significant(self) -> bool:
        """Did disabling the knob move the metric beyond the CIs?"""
        return not self.with_knob.overlaps(self.without_knob)


@dataclass
class AttributionResult:
    """Full successive-disable attribution for one (CPU, workload)."""

    cpu: str
    workload: str
    metric: str
    baseline: Measurement          # every mitigation off
    default: Measurement           # stock configuration
    contributions: List[Contribution] = field(default_factory=list)
    other_percent: float = 0.0     # residual not covered by any knob

    @property
    def total_overhead_percent(self) -> float:
        """Default-config slowdown relative to all-off, in percent."""
        if self.metric == SCORE:
            return 100.0 * (1.0 - self.default.mean / self.baseline.mean)
        return 100.0 * (self.default.mean / self.baseline.mean - 1.0)

    def contribution_for(self, knob: str) -> Optional[Contribution]:
        for contribution in self.contributions:
            if contribution.knob == knob:
                return contribution
        return None

    def as_dict(self) -> Dict[str, float]:
        """Knob -> percent mapping (plus ``other``), for plotting."""
        out = {c.knob: c.percent for c in self.contributions}
        out["other"] = self.other_percent
        return out


def _measure_config(
    run_fn: RunFn,
    config: MitigationConfig,
    sigma: float,
    seed: int,
    rel_tol: float,
    max_samples: int,
    machine_seed: int = 0,
    replicas: int = 1,
    run_replica: Optional[ReplicaRunFn] = None,
) -> Measurement:
    """Measure one configuration with the section-4.1 methodology.

    The simulator is deterministic per machine seed, so each replica's
    value is computed once — through the batched replica tier
    (:mod:`repro.cpu.replicas`), which collapses converged replicas onto
    one probe run.  The run-to-run variability of real hardware is
    layered on by the seeded :class:`ReplicaSampler`, and
    :func:`adaptive_measure` converges the mean back out of the noise in
    vectorized geometric chunks.  Without a replica-aware runner the
    batch degenerates to the single probe run — the exact pre-batch
    behavior, bit for bit.
    """
    from ..cpu import replicas as replicabatch
    if run_replica is None:
        replica_fn = lambda _machine_seed: run_fn(config)
        replicas = 1
    else:
        replica_fn = lambda machine_seed: run_replica(config, machine_seed)
    batch = replicabatch.run_replicas(replica_fn, seed=machine_seed,
                                      n=replicas)
    sampler = ReplicaSampler(batch.values, sigma=sigma, seed=seed)
    return adaptive_measure(sampler, rel_tol=rel_tol, max_samples=max_samples,
                            sample_batch=sampler.sample_batch)


def attribute_overhead(
    run_fn: RunFn,
    default_config: MitigationConfig,
    knobs: Sequence[Knob],
    cpu: str,
    workload: str,
    metric: str = CYCLES,
    sigma: float = DEFAULT_NOISE_SIGMA,
    rel_tol: float = 0.005,
    max_samples: int = 60,
    seed: int = 0,
    replicas: int = 1,
    run_replica: Optional[ReplicaRunFn] = None,
) -> AttributionResult:
    """Successively disable ``knobs`` starting from ``default_config``.

    Knobs that do not change the configuration on this CPU (e.g. ``nopti``
    on an AMD part) are skipped without measurement — their contribution
    is structurally zero, matching the blank cells of Table 1.

    ``replicas``/``run_replica`` route each configuration's measurement
    through the batched replica tier: ``run_replica(config, machine_seed)``
    re-runs the cell with an explicit machine seed, and replica 0 uses
    ``seed`` itself, so ``replicas=1`` reproduces the classic single-run
    measurement exactly.
    """
    if metric not in (CYCLES, SCORE):
        raise ValueError(f"unknown metric {metric!r}")

    # The cell's machines are seeded with the caller's seed as passed
    # (replica 0 of every config re-runs exactly the classic cell run);
    # the *noise* streams below are decorrelated across CPUs/workloads —
    # real machines don't share their jitter (see stats.derive_seed).
    machine_seed = seed
    seed = derive_seed(seed, cpu, workload)

    baseline = _measure_config(run_fn, MitigationConfig.all_off(), sigma,
                               seed ^ 0x5A5A, rel_tol, max_samples,
                               machine_seed=machine_seed, replicas=replicas,
                               run_replica=run_replica)
    current_config = default_config
    current = _measure_config(run_fn, current_config, sigma, seed, rel_tol,
                              max_samples, machine_seed=machine_seed,
                              replicas=replicas, run_replica=run_replica)
    result = AttributionResult(
        cpu=cpu, workload=workload, metric=metric,
        baseline=baseline, default=current,
    )

    for index, knob in enumerate(knobs, start=1):
        next_config = knob.disable(current_config)
        if next_config == current_config:
            continue  # mitigation not in use on this part
        nxt = _measure_config(run_fn, next_config, sigma, seed + index,
                              rel_tol, max_samples,
                              machine_seed=machine_seed, replicas=replicas,
                              run_replica=run_replica)
        if metric == SCORE:
            percent = 100.0 * (nxt.mean - current.mean) / baseline.mean
        else:
            percent = 100.0 * (current.mean - nxt.mean) / baseline.mean
        result.contributions.append(Contribution(
            knob=knob.name,
            boot_param=knob.boot_param,
            percent=percent,
            with_knob=current,
            without_knob=nxt,
        ))
        current_config, current = next_config, nxt

    if metric == SCORE:
        result.other_percent = 100.0 * (baseline.mean - current.mean) / baseline.mean
    else:
        result.other_percent = 100.0 * (current.mean - baseline.mean) / baseline.mean
    return result

"""Measurement statistics: the paper's section 4.1 methodology.

"We adopted a methodology of running each benchmark configuration many
times while tracking the average and 95%-confidence interval, stopping
once the error was small enough.  Benchmark scores for individual runs of
the same configuration would vary by a couple percent each time."

:func:`adaptive_measure` is that loop; :class:`NoisySampler` reproduces
the couple-percent run-to-run variation on top of the deterministic
simulator so the convergence machinery has real work to do.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, List, Mapping, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..errors import StatisticsError

#: Default run-to-run relative noise (sigma): "a couple percent".
DEFAULT_NOISE_SIGMA = 0.015


def derive_seed(base: int, *parts: str) -> int:
    """A stable per-cell seed: ``base`` mixed with a hash of ``parts``.

    Every sweep cell — one (driver, cpu, config, workload) point of a
    study grid — must consume its *own* noise stream: real machines do
    not share their jitter, and reusing one seed across cells correlates
    their errors, turning noise into a systematic-looking bias in the
    attribution stacks.  ``zlib.crc32`` rather than ``hash()`` keeps the
    derivation stable across interpreter runs and worker processes, so
    parallel and serial executions of the same cell are bit-identical.

    Parts must not contain the ``"/"`` separator: the joined key would be
    ambiguous (``("a/b", "c")`` and ``("a", "b/c")`` would collide and
    silently correlate two cells' noise streams).  Rejecting rather than
    escaping keeps every existing legal key — and therefore every cached
    cell and recorded baseline — bit-identical.
    """
    for part in parts:
        if "/" in part:
            raise ValueError(
                f"derive_seed part {part!r} contains the '/' separator; "
                f"distinct part tuples would collide on the joined key")
    return (base + zlib.crc32("/".join(parts).encode())) & 0x7FFF_FFFF


@dataclass(frozen=True)
class Measurement:
    """A converged measurement: mean with a 95% confidence interval."""

    mean: float
    ci_half_width: float
    samples: int

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    @property
    def relative_error(self) -> float:
        """CI half-width as a fraction of the mean."""
        if self.mean == 0:
            return math.inf
        return abs(self.ci_half_width / self.mean)

    def overlaps(self, other: "Measurement") -> bool:
        """Do the two 95% CIs overlap (i.e. no significant difference)?"""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g} (n={self.samples})"


def confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> Measurement:
    """Mean and t-distribution CI half-width of ``samples``."""
    n = len(samples)
    if n == 0:
        raise StatisticsError("cannot form a confidence interval from no samples")
    arr = np.asarray(samples, dtype=float)
    mean = float(arr.mean())
    if n == 1:
        return Measurement(mean=mean, ci_half_width=math.inf, samples=1)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Measurement(mean=mean, ci_half_width=t_crit * sem, samples=n)


def adaptive_measure(
    sample: Callable[[], float],
    rel_tol: float = 0.01,
    min_samples: int = 5,
    max_samples: int = 100,
    confidence: float = 0.95,
    sample_batch: Optional[Callable[[int], Sequence[float]]] = None,
) -> Measurement:
    """Repeat ``sample()`` until the CI is tight enough (section 4.1).

    Stops when the 95% CI half-width falls below ``rel_tol`` of the mean,
    or at ``max_samples`` (the paper's runs also have to end eventually).

    ``sample_batch``, when given, must return ``n`` samples from the
    *same* stream that ``sample()`` would walk one call at a time (see
    :meth:`NoisySampler.sample_batch`).  The loop then draws in geometric
    chunks — ``min_samples``, then the current count again, capped at
    what is left before ``max_samples`` — instead of one sample per
    iteration.  Convergence is still checked at every prefix length the
    scalar loop would check, so the returned measurement (mean, CI bound
    and sample count alike) is bit-identical to the scalar path; a chunk
    may merely leave some drawn-but-unused samples behind.
    """
    if min_samples < 2:
        raise ValueError("need at least 2 samples for a confidence interval")
    if max_samples < min_samples:
        raise ValueError(
            f"max_samples ({max_samples}) must be >= min_samples "
            f"({min_samples}): the adaptive loop could never return a "
            f"legal sample count")
    if rel_tol <= 0:
        raise ValueError(
            f"rel_tol must be positive, got {rel_tol!r}: a non-positive "
            f"tolerance can never be met, so every measurement would "
            f"silently burn max_samples")
    if sample_batch is None:
        values: List[float] = [sample() for _ in range(min_samples)]
        while True:
            m = confidence_interval(values, confidence)
            if m.relative_error <= rel_tol or len(values) >= max_samples:
                return m
            values.append(sample())
    values = list(sample_batch(min_samples))
    m = confidence_interval(values, confidence)
    if m.relative_error <= rel_tol or len(values) >= max_samples:
        return m
    while True:
        chunk = sample_batch(min(len(values), max_samples - len(values)))
        for value in chunk:
            values.append(value)
            m = confidence_interval(values, confidence)
            if m.relative_error <= rel_tol or len(values) >= max_samples:
                return m


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (LEBench and Octane suite aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise StatisticsError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise StatisticsError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def suite_geometric_mean(per_case: Mapping[str, float], context: str = "") -> float:
    """Geometric mean of a ``case name -> value`` suite mapping.

    Unlike :func:`geometric_mean`, a zero/negative (or non-finite) value
    raises a :class:`StatisticsError` that *names the offending case* and
    carries the caller's context (cpu/config), so a broken LEBench or
    Octane case is diagnosable from the exception alone instead of a bare
    "requires positive values".
    """
    suffix = f" [{context}]" if context else ""
    if not per_case:
        raise StatisticsError(f"geometric mean of an empty suite{suffix}")
    for name, value in per_case.items():
        if not math.isfinite(value) or value <= 0:
            raise StatisticsError(
                f"geometric mean requires positive values: "
                f"case {name!r} = {value!r}{suffix}")
    return geometric_mean(per_case.values())


def overhead_percent(mitigated: float, baseline: float) -> float:
    """Slowdown of ``mitigated`` relative to ``baseline``, in percent.

    For cycle counts (lower better): positive means the mitigation costs.
    """
    if baseline <= 0:
        raise StatisticsError("baseline must be positive")
    return 100.0 * (mitigated / baseline - 1.0)


def score_slowdown_percent(mitigated_score: float, baseline_score: float) -> float:
    """Percent score decrease (Octane semantics: higher score is better)."""
    if baseline_score <= 0:
        raise StatisticsError("baseline score must be positive")
    return 100.0 * (1.0 - mitigated_score / baseline_score)


class NoisySampler:
    """Wraps a deterministic cycle/score function with run-to-run noise.

    Real machines vary a couple percent between runs of the same
    configuration (section 4.1); the simulator is deterministic, so this
    multiplicative log-normal-ish noise restores that property — seeded,
    hence reproducible.
    """

    def __init__(self, fn: Callable[[], float], sigma: float = DEFAULT_NOISE_SIGMA,
                 seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._fn = fn
        self._sigma = sigma
        self._rng = np.random.default_rng(seed)

    def __call__(self) -> float:
        value = float(self._fn())
        if self._sigma == 0:
            return value
        return value * float(np.exp(self._rng.normal(0.0, self._sigma)))

    def sample_batch(self, n: int) -> List[float]:
        """``n`` samples in one vectorized draw, bit-identical to ``n``
        sequential calls: NumPy's sized ``normal`` consumes the same RNG
        stream as ``n`` scalar draws, prefix-stably.  The wrapped function
        is evaluated once — it is deterministic by class contract."""
        if n < 1:
            raise ValueError("batch size must be >= 1")
        value = float(self._fn())
        if self._sigma == 0:
            return [value] * n
        draws = self._rng.normal(0.0, self._sigma, size=n)
        return [value * float(np.exp(x)) for x in draws]


class ReplicaSampler:
    """Noise sampling over a batch of per-replica deterministic values.

    The replica tier (:mod:`repro.cpu.replicas`) produces one
    deterministic metric per seeded machine replica; sample ``j`` then
    multiplies replica ``j % n``'s metric by the ``j``-th draw of one
    shared noise stream.  With a single replica this is exactly the
    :class:`NoisySampler` contract — same stream, same floats — which is
    what keeps one-replica studies bit-identical to the pre-batch code
    path.  ``__call__`` and :meth:`sample_batch` walk the same stream, so
    :func:`adaptive_measure` converges identically through either.
    """

    def __init__(self, values: Sequence[float],
                 sigma: float = DEFAULT_NOISE_SIGMA, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one replica value")
        self._values = arr
        self._sigma = sigma
        self._rng = np.random.default_rng(seed)
        self._index = 0

    def __call__(self) -> float:
        value = float(self._values[self._index % self._values.size])
        self._index += 1
        if self._sigma == 0:
            return value
        return value * float(np.exp(self._rng.normal(0.0, self._sigma)))

    def sample_batch(self, n: int) -> List[float]:
        if n < 1:
            raise ValueError("batch size must be >= 1")
        idx = (self._index + np.arange(n)) % self._values.size
        picked = self._values[idx]
        self._index += n
        if self._sigma == 0:
            return [float(v) for v in picked]
        draws = self._rng.normal(0.0, self._sigma, size=n)
        return [float(v) * float(np.exp(x)) for v, x in zip(picked, draws)]

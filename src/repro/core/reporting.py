"""Rendering: the paper's tables and figures as aligned text.

Every ``render_*`` function returns a string whose rows/series correspond
one-to-one to a table or figure in the paper, so the benchmark harness can
print paper-shaped output and EXPERIMENTS.md can diff paper-vs-measured.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cpu.model import CPUModel, all_cpus
from ..mitigations.policy import DEFAULT_KERNEL, TABLE1_ROWS, table1_matrix
from .attribution import AttributionResult
from .probe import SCENARIOS, Scenario
from .study import PairedOverhead

CHECK = "x"      # the paper's check mark (kept ASCII for plain terminals)
BANG = "!"
BLANK = ""
NA = "N/A"


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[str]]) -> str:
    """Generic aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [title, fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines) + "\n"


def render_markdown_table(title: str, headers: Sequence[str],
                          rows: Iterable[Sequence[str]]) -> str:
    """The same data as :func:`render_table`, as GitHub-flavored markdown
    (what EXPERIMENTS.md embeds)."""
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines) + "\n"


def fmt_cycles(value: Optional[float], decimals: int = 0) -> str:
    if value is None:
        return NA
    return f"{value:.{decimals}f}"


def fmt_signed(value: Optional[float]) -> str:
    if value is None:
        return NA
    return f"+{value:.0f}" if value >= 0 else f"{value:.0f}"


# --------------------------------------------------------------------------- #
# Tables 1 and 2
# --------------------------------------------------------------------------- #

def render_table1(kernel: Tuple[int, int] = DEFAULT_KERNEL) -> str:
    matrix = table1_matrix(kernel)
    headers = ["Attack", "Mitigation"] + [cpu.key for cpu in all_cpus()]
    rows = []
    for (attack, mitigation), cells in matrix.items():
        display = [CHECK if c == "yes" else (BANG if c == "!" else BLANK)
                   for c in cells]
        rows.append([attack, mitigation] + display)
    return render_table(
        f"Table 1: default mitigations per CPU (kernel {kernel[0]}.{kernel[1]})",
        headers, rows)


def render_table2() -> str:
    headers = ["Vendor", "Model", "Microarchitecture", "Power (W)",
               "Clock (GHz)", "Cores"]
    rows = [
        [cpu.vendor, cpu.model, f"{cpu.microarchitecture} ({cpu.year})",
         str(cpu.power_watts), f"{cpu.clock_ghz:g}", str(cpu.cores)]
        for cpu in all_cpus()
    ]
    return render_table("Table 2: evaluated CPUs", headers, rows)


# --------------------------------------------------------------------------- #
# Tables 3-8 (microbenchmarks)
# --------------------------------------------------------------------------- #

def render_table3(rows) -> str:
    """``rows``: iterable of microbench.EntryExitRow."""
    return render_table(
        "Table 3: syscall / sysret / page table swap cycles",
        ["CPU", "syscall", "sysret", "swap cr3"],
        [[r.cpu, fmt_cycles(r.syscall), fmt_cycles(r.sysret),
          fmt_cycles(r.swap_cr3)] for r in rows])


def render_table4(values: Dict[str, Optional[float]]) -> str:
    return render_table(
        "Table 4: cycles to clear microarchitectural buffers (verw)",
        ["CPU", "Clear Cycles"],
        [[cpu, fmt_cycles(v)] for cpu, v in values.items()])


def render_table5(rows) -> str:
    """``rows``: iterable of microbench.IndirectBranchRow."""
    return render_table(
        "Table 5: indirect branch cycles (baseline + mitigation deltas)",
        ["CPU", "Baseline", "IBRS", "Generic", "AMD"],
        [[r.cpu, fmt_cycles(r.baseline), fmt_signed(r.ibrs_extra),
          fmt_signed(r.generic_extra), fmt_signed(r.amd_extra)] for r in rows])


def render_table6(values: Dict[str, float]) -> str:
    return render_table(
        "Table 6: IBPB cycles",
        ["CPU", "IBPB cycles"],
        [[cpu, fmt_cycles(v)] for cpu, v in values.items()])


def render_table7(values: Dict[str, float]) -> str:
    return render_table(
        "Table 7: RSB stuffing cycles",
        ["CPU", "RSB Fill Cycles"],
        [[cpu, fmt_cycles(v)] for cpu, v in values.items()])


def render_table8(values: Dict[str, float]) -> str:
    return render_table(
        "Table 8: lfence cycles",
        ["CPU", "lfence cycles"],
        [[cpu, fmt_cycles(v)] for cpu, v in values.items()])


# --------------------------------------------------------------------------- #
# Tables 9 and 10 (speculation matrices)
# --------------------------------------------------------------------------- #

_SCENARIO_HEADERS = [
    "user->kernel (sc)", "user->user (sc)", "kernel->kernel (sc)",
    "user->user", "kernel->kernel",
]


def render_speculation_matrix(
    matrix: Dict[str, Optional[Dict[Scenario, bool]]],
    ibrs: bool,
) -> str:
    title = ("Table 10: speculation matrix with IBRS enabled" if ibrs
             else "Table 9: speculation matrix with IBRS disabled")
    rows = []
    for cpu, row in matrix.items():
        if row is None:
            rows.append([cpu] + [NA] * len(SCENARIOS))
        else:
            rows.append([cpu] + [CHECK if row[s] else BLANK for s in SCENARIOS])
    return render_table(title, ["CPU"] + _SCENARIO_HEADERS, rows)


# --------------------------------------------------------------------------- #
# Figures 2, 3, 5 (stacked bars as text)
# --------------------------------------------------------------------------- #

def _stacked_bar(segments: Dict[str, float], scale: float = 1.0,
                 max_width: int = 60) -> str:
    glyphs = "#*+=o~.-"
    parts = []
    for i, (name, value) in enumerate(segments.items()):
        width = max(0, int(round(value * scale)))
        width = min(width, max_width)
        if value > 0.05:
            parts.append(glyphs[i % len(glyphs)] * max(width, 1))
    return "".join(parts)


def render_attribution_figure(results: List[AttributionResult], title: str,
                              unit: str = "% overhead") -> str:
    lines = [title]
    for result in results:
        segments = result.as_dict()
        bar = _stacked_bar(segments, scale=1.5)
        lines.append(f"  {result.cpu:16s} total {result.total_overhead_percent:6.1f}{unit[0]}  |{bar}")
        detail = "  ".join(f"{k}={v:.1f}%" for k, v in segments.items()
                           if abs(v) >= 0.05)
        lines.append(f"  {'':16s} {detail}")
    return "\n".join(lines) + "\n"


def render_figure2(results: List[AttributionResult]) -> str:
    return render_attribution_figure(
        results, "Figure 2: mitigation overhead on LEBench (percent, stacked)")


def render_figure3(results: List[AttributionResult]) -> str:
    return render_attribution_figure(
        results, "Figure 3: Octane 2 slowdown from JS and OS mitigations")


def render_paired(results: List[PairedOverhead], title: str) -> str:
    lines = [title]
    for r in results:
        marker = "*" if r.significant else " "
        lines.append(
            f"  {r.cpu:16s} {r.workload:12s} {r.overhead_percent:6.2f}%{marker}"
        )
    lines.append("  (* = difference significant at 95% confidence)")
    return "\n".join(lines) + "\n"


def render_figure5(results: List[PairedOverhead]) -> str:
    return render_paired(
        results, "Figure 5: slowdown from Speculative Store Bypass Disable "
                 "on PARSEC")


# --------------------------------------------------------------------------- #
# Section 6.2.2: eIBRS bimodal kernel entries
# --------------------------------------------------------------------------- #

def render_entry_distribution(cpu: str, latencies: Sequence[int]) -> str:
    from collections import Counter
    counts = Counter(latencies)
    lines = [f"Kernel entry latency distribution on {cpu} "
             f"({len(latencies)} entries)"]
    for value in sorted(counts):
        share = 100.0 * counts[value] / len(latencies)
        lines.append(f"  {value:6d} cycles: {counts[value]:5d} ({share:4.1f}%)")
    return "\n".join(lines) + "\n"

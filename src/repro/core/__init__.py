"""The paper's contribution: measurement, attribution, probing, reporting.

* :mod:`~repro.core.stats` — section 4.1 methodology (CIs, adaptive runs)
* :mod:`~repro.core.microbench` — section 5 primitive timings (Tables 3-8)
* :mod:`~repro.core.attribution` — successive-disable overhead attribution
* :mod:`~repro.core.study` — per-figure experiment drivers
* :mod:`~repro.core.probe` — section 6 speculation probe (Tables 9-10)
* :mod:`~repro.core.reporting` — paper-shaped text rendering
"""

from .attribution import (
    CYCLES,
    SCORE,
    AttributionResult,
    Contribution,
    attribute_overhead,
)
from .executor import (
    CellSpec,
    ResultCache,
    RunStats,
    StudyExecutor,
    default_cache_dir,
)
from .export import (
    attributions_to_json,
    paired_to_csv,
    paired_to_json,
    speculation_matrix_to_json,
)
from .probe import (
    KERNEL_TO_USER,
    SCENARIOS,
    Scenario,
    SpeculationProbe,
    speculation_matrix,
    speculation_row,
)
from .stats import (
    Measurement,
    NoisySampler,
    adaptive_measure,
    confidence_interval,
    derive_seed,
    geometric_mean,
    overhead_percent,
    score_slowdown_percent,
    suite_geometric_mean,
)
from .sweeps import (
    SweepResult,
    find_crossover,
    overhead_vs_operation_size,
    ssbd_overhead_vs_forwarding_density,
    sweep,
)
from .study import (
    FIGURE2_KNOBS,
    FIGURE3_KNOBS,
    PairedOverhead,
    Settings,
    figure2,
    figure3,
    figure5,
    lebench_geomean,
    lfs_overheads,
    octane_suite_score,
    parsec_default_overheads,
    vm_lebench_overheads,
)

__all__ = [
    "AttributionResult",
    "CYCLES",
    "CellSpec",
    "Contribution",
    "FIGURE2_KNOBS",
    "FIGURE3_KNOBS",
    "KERNEL_TO_USER",
    "Measurement",
    "NoisySampler",
    "PairedOverhead",
    "ResultCache",
    "RunStats",
    "SCENARIOS",
    "SCORE",
    "Scenario",
    "Settings",
    "SpeculationProbe",
    "StudyExecutor",
    "SweepResult",
    "adaptive_measure",
    "attribute_overhead",
    "attributions_to_json",
    "default_cache_dir",
    "derive_seed",
    "find_crossover",
    "overhead_vs_operation_size",
    "paired_to_csv",
    "paired_to_json",
    "speculation_matrix_to_json",
    "ssbd_overhead_vs_forwarding_density",
    "sweep",
    "confidence_interval",
    "figure2",
    "figure3",
    "figure5",
    "geometric_mean",
    "lebench_geomean",
    "lfs_overheads",
    "octane_suite_score",
    "overhead_percent",
    "parsec_default_overheads",
    "score_slowdown_percent",
    "speculation_matrix",
    "speculation_row",
    "suite_geometric_mean",
    "vm_lebench_overheads",
]

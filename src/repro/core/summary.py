"""The paper's section 8: answer the three study questions from data.

The paper closes by revisiting its three questions.  This module computes
those answers from the actual experiment results rather than restating
them, so the conclusions regenerate with the data:

1. *Which attacks have the greatest performance impact?*  — rank
   mitigation contributions across the Figure 2/3 attributions.
2. *What drives the cost of mitigations for those attacks?*  — compare
   each primitive's cycle cost across generations (did the primitive get
   faster, or did the need for it disappear?).
3. *What predictions can we make going forward?*  — the structural facts:
   which expensive mitigations have hardware replacements on some parts
   and which have none anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.model import CPUModel, all_cpus
from . import microbench
from .attribution import AttributionResult
from .study import Settings, figure2, figure3


@dataclass
class AttackImpact:
    """Aggregate impact of one mitigation knob across CPUs."""

    knob: str
    workload: str
    mean_percent: float
    worst_cpu: str
    worst_percent: float


@dataclass
class PrimitiveTrend:
    """How one mitigation primitive's cost evolved across Intel parts."""

    name: str
    oldest_cycles: float
    newest_cycles: Optional[float]   # None = primitive no longer needed
    #: True when the *primitive* got cheaper; False when only the need
    #: for it went away (the paper's section 8 distinction).
    primitive_improved: bool


@dataclass
class StudySummary:
    question1: List[AttackImpact] = field(default_factory=list)
    question2: List[PrimitiveTrend] = field(default_factory=list)
    question3: List[str] = field(default_factory=list)


def _rank_impacts(results: Sequence[AttributionResult],
                  workload: str, top: int) -> List[AttackImpact]:
    by_knob: Dict[str, List[Tuple[str, float]]] = {}
    for result in results:
        for contribution in result.contributions:
            by_knob.setdefault(contribution.knob, []).append(
                (result.cpu, contribution.percent))
    impacts = []
    for knob, values in by_knob.items():
        worst_cpu, worst = max(values, key=lambda pair: pair[1])
        mean = sum(v for _, v in values) / len(values)
        impacts.append(AttackImpact(knob=knob, workload=workload,
                                    mean_percent=mean, worst_cpu=worst_cpu,
                                    worst_percent=worst))
    impacts.sort(key=lambda impact: impact.mean_percent, reverse=True)
    return impacts[:top]


def question1_attack_impacts(settings: Optional[Settings] = None,
                             top: int = 4) -> List[AttackImpact]:
    """Rank mitigations by measured impact, per workload family."""
    settings = settings or Settings.fast()
    impacts = _rank_impacts(figure2(settings=settings), "lebench", top)
    impacts += _rank_impacts(figure3(settings=settings), "octane2", top)
    return impacts


def question2_primitive_trends(iterations: int = 300) -> List[PrimitiveTrend]:
    """Did the expensive primitives get faster, or just unnecessary?

    Oldest = Broadwell, newest = Ice Lake Server, matching the paper's
    Intel arc.  IBPB is the exception that genuinely got faster; PTI and
    verw didn't improve — the new parts simply don't need them.
    """
    from ..cpu.model import get_cpu
    old = get_cpu("broadwell")
    new = get_cpu("ice_lake_server")
    trends: List[PrimitiveTrend] = []

    old_cr3 = microbench.table3_row(old, iterations).swap_cr3
    trends.append(PrimitiveTrend(
        "page table swap (PTI)", old_cr3,
        microbench.table3_row(new, iterations).swap_cr3,
        primitive_improved=False))

    trends.append(PrimitiveTrend(
        "verw buffer clear (MDS)",
        microbench.table4_value(old, iterations),
        microbench.table4_value(new, iterations),
        primitive_improved=False))

    old_ibpb = microbench.table6_value(old, 60)
    new_ibpb = microbench.table6_value(new, 60)
    trends.append(PrimitiveTrend(
        "IBPB (Spectre V2)", old_ibpb, new_ibpb,
        primitive_improved=new_ibpb < old_ibpb / 2))

    old_retp = microbench.table5_row(old, iterations).generic_extra
    new_retp = microbench.table5_row(new, iterations).generic_extra
    trends.append(PrimitiveTrend(
        "generic retpoline (Spectre V2)", old_retp, new_retp,
        primitive_improved=new_retp < old_retp / 2))

    trends.append(PrimitiveTrend(
        "lfence (Spectre V1)",
        microbench.table8_value(old, iterations),
        microbench.table8_value(new, iterations),
        primitive_improved=False))
    return trends


def question3_outlook(cpus: Optional[Sequence[CPUModel]] = None) -> List[str]:
    """Structural facts supporting the paper's cautious optimism."""
    cpus = list(cpus or all_cpus())
    newest = max(cpus, key=lambda c: c.year)
    facts: List[str] = []
    if not newest.vulns.meltdown and not newest.vulns.mds:
        facts.append(
            "the most expensive OS-boundary mitigations (PTI, verw) are "
            f"unnecessary on the newest part ({newest.microarchitecture}): "
            "hardware fixes, not faster software, removed the cost")
    if all(cpu.vulns.ssb for cpu in cpus):
        facts.append(
            "no part of either vendor sets SSB_NO — Speculative Store "
            "Bypass still has no hardware fix, and its SSBD penalty grows "
            "on newer parts")
    if all(cpu.vulns.spectre_v1 for cpu in cpus):
        facts.append(
            "Spectre V1 has no hardware mitigation anywhere: the JS "
            "sandbox keeps paying index masking and object guards on "
            "every generation")
    eibrs = [cpu.key for cpu in cpus if cpu.predictor.supports_eibrs]
    if eibrs:
        facts.append(
            "eIBRS replaced retpolines on "
            f"{', '.join(eibrs)} but does not protect same-mode kernel "
            "branches (the BHI gap)")
    return facts


def summarize(settings: Optional[Settings] = None) -> StudySummary:
    """Compute the full section-8 answer set."""
    return StudySummary(
        question1=question1_attack_impacts(settings),
        question2=question2_primitive_trends(),
        question3=question3_outlook(),
    )


def render_summary(summary: StudySummary) -> str:
    lines = ["Section 8, recomputed from the data", ""]
    lines.append("Q1: which attacks have the greatest performance impact?")
    for impact in summary.question1:
        lines.append(
            f"  {impact.workload:8s} {impact.knob:18s} mean "
            f"{impact.mean_percent:5.1f}%  worst {impact.worst_percent:5.1f}% "
            f"on {impact.worst_cpu}")
    lines.append("")
    lines.append("Q2: did the mitigations themselves get faster?")
    for trend in summary.question2:
        newest = ("no longer needed" if trend.newest_cycles is None
                  else f"{trend.newest_cycles:.0f} cycles")
        verdict = "primitive improved" if trend.primitive_improved else \
            "primitive unchanged"
        lines.append(f"  {trend.name:32s} {trend.oldest_cycles:6.0f} -> "
                     f"{newest:16s} ({verdict})")
    lines.append("")
    lines.append("Q3: outlook")
    for fact in summary.question3:
        lines.append(f"  - {fact}")
    return "\n".join(lines) + "\n"

"""Regression tracking: diff two exported result sets.

Teams recalibrating the models (new microcode, corrected table values,
retuned workloads) need to know what moved.  This module loads the JSON
emitted by :mod:`~repro.core.export` and reports per-(cpu, workload,
knob) changes beyond a tolerance, in a stable, review-friendly order.

The comparison itself runs on the shared diff engine in
:mod:`repro.obs.history` (the same one behind ``spectresim check`` and
``spectresim history diff``), degenerated to a plain absolute tolerance:
exports carry no uncertainty, so the noise term is zero and ``tolerance``
becomes the floor.  This module stays a thin loader + text renderer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..obs.history import diff_values


@dataclass(frozen=True)
class Change:
    """One regression-relevant difference between two runs."""

    key: Tuple[str, ...]     # e.g. ("broadwell", "lebench", "pti")
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{'/'.join(self.key)}: {self.before:.2f} -> "
                f"{self.after:.2f} ({self.delta:+.2f})")


def _attribution_values(payload: Sequence[dict]) -> Dict[Tuple[str, ...], float]:
    values: Dict[Tuple[str, ...], float] = {}
    for entry in payload:
        base = (entry["cpu"], entry["workload"])
        values[base + ("total",)] = float(entry["total_overhead_percent"])
        values[base + ("other",)] = float(entry["other_percent"])
        for contribution in entry["contributions"]:
            values[base + (contribution["knob"],)] = \
                float(contribution["percent"])
    return values


def _paired_values(payload: Sequence[dict]) -> Dict[Tuple[str, ...], float]:
    return {
        (entry["cpu"], entry["workload"]): float(entry["overhead_percent"])
        for entry in payload
    }


def _values_of(text: str) -> Dict[Tuple[str, ...], float]:
    payload = json.loads(text)
    if isinstance(payload, dict) and "results" in payload:
        # Provenance envelope ({"provenance": ..., "results": [...]});
        # bare arrays from pre-provenance exports still parse below.
        payload = payload["results"]
    if not isinstance(payload, list):
        raise ValueError("expected a JSON array of results")
    if not payload:
        return {}
    if "contributions" in payload[0]:
        return _attribution_values(payload)
    if "overhead_percent" in payload[0]:
        return _paired_values(payload)
    raise ValueError("unrecognized result schema")


def diff_results(old_json: str, new_json: str,
                 tolerance: float = 0.5) -> List[Change]:
    """Changes between two exported runs exceeding ``tolerance`` points.

    Keys present in only one run are reported with the missing side as
    0.0 (a knob appearing or disappearing is regression-relevant too).
    """
    old = _values_of(old_json)
    new = _values_of(new_json)
    # Missing sides become explicit 0.0 entries so the shared engine sees
    # every key on both sides, then runs with zero noise term: the plain
    # ``tolerance`` floor reproduces the historical semantics exactly.
    keys = set(old) | set(new)
    old_pairs = {key: (old.get(key, 0.0), 0.0) for key in keys}
    new_pairs = {key: (new.get(key, 0.0), 0.0) for key in keys}
    diff = diff_values(old_pairs, new_pairs,
                       sigma_multiplier=0.0, floor=tolerance)
    changes = [Change(key=delta.key, before=delta.old, after=delta.new)
               for delta in diff.regressions + diff.improvements]
    changes.sort(key=lambda change: change.key)
    return changes


def render_diff(changes: Sequence[Change]) -> str:
    """Human-readable change report (empty-diff message included)."""
    if not changes:
        return "no changes beyond tolerance\n"
    lines = [f"{len(changes)} change(s):"]
    lines.extend(f"  {change}" for change in changes)
    return "\n".join(lines) + "\n"

"""Parameter sweeps and crossover finding.

The paper's qualitative claims are all statements about where curves
cross: mitigation overhead matters for syscall-sized operations but not
fork-sized ones (4.2); VM exits are too rare to matter (4.4); SSBD only
matters for forwarding-dense code (5.5).  This module provides the
machinery to draw those curves and locate the crossings, plus two
ready-made sweeps used by the benches and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..cpu.machine import Machine
from ..cpu.model import CPUModel
from ..kernel import HandlerProfile, Kernel
from ..mitigations.base import MitigationConfig


@dataclass(frozen=True)
class SweepResult:
    """One swept curve: x values and the measured y per x."""

    parameter: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")
        if not self.xs:
            raise ValueError("a sweep needs at least one point")
        for left, right in zip(self.xs, self.xs[1:]):
            if right <= left:
                raise ValueError(
                    f"xs must be strictly increasing, got {left!r} before "
                    f"{right!r} — duplicate or unsorted grids make "
                    f"interpolate/first_below report wrong crossings")

    def interpolate(self, x: float) -> float:
        """Piecewise-linear interpolation of y at ``x`` (clamped)."""
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        for i in range(1, len(xs)):
            if x == xs[i]:
                return ys[i]  # exact grid hit: no float round-trip
            if x < xs[i]:
                t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
                return ys[i - 1] + t * (ys[i] - ys[i - 1])
        return ys[-1]  # pragma: no cover - unreachable

    def first_below(self, threshold: float) -> Optional[float]:
        """x of the leftmost crossing where the curve drops below
        ``threshold``; None if no swept y is below it.

        Scanning left to right for the first y strictly below the
        threshold:

        * if that is the *first* point, the curve is never observed above
          the threshold, so the crossing is reported as ``xs[0]`` (flat
          already-below curves included) — there is no earlier segment to
          interpolate into;
        * otherwise the crossing is linearly interpolated inside the
          segment ending at that point, i.e. the returned x satisfies
          ``interpolate(x) == threshold`` up to float rounding.  The left
          endpoint of that segment has ``y >= threshold`` (it did not
          match first), so the interpolation denominator ``y0 - y1`` is
          strictly positive and no equality guard is needed; a segment
          whose left endpoint sits exactly *at* the threshold reports its
          left x.
        """
        for i, y in enumerate(self.ys):
            if y < threshold:
                if i == 0:
                    return self.xs[0]
                x0, x1 = self.xs[i - 1], self.xs[i]
                y0 = self.ys[i - 1]
                t = (y0 - threshold) / (y0 - y)
                return x0 + t * (x1 - x0)
        return None


def sweep(parameter: str, values: Sequence[float],
          run_fn: Callable[[float], float]) -> SweepResult:
    """Evaluate ``run_fn`` over ``values``."""
    return SweepResult(parameter=parameter, xs=tuple(float(v) for v in values),
                       ys=tuple(float(run_fn(v)) for v in values))


def find_crossover(a: SweepResult, b: SweepResult) -> Optional[float]:
    """x where curve ``a`` first drops to curve ``b`` (or below).

    Both sweeps must share their x grid.  Returns None when ``a`` stays
    above ``b`` over the whole range, or the first grid x when ``a``
    starts at-or-below ``b``.
    """
    if a.xs != b.xs:
        raise ValueError("sweeps must share their x grid")
    prev_diff = None
    for x, ya, yb in zip(a.xs, a.ys, b.ys):
        diff = ya - yb
        if diff <= 0:
            if prev_diff is None or prev_diff <= 0:
                return x
            # Interpolate the zero crossing within the last segment.
            x0 = a.xs[a.xs.index(x) - 1]
            t = prev_diff / (prev_diff - diff)
            return x0 + t * (x - x0)
        prev_diff = diff
    return None


# --------------------------------------------------------------------------- #
# Ready-made sweeps
# --------------------------------------------------------------------------- #

def overhead_vs_operation_size(
    cpu: CPUModel,
    config: MitigationConfig,
    sizes: Sequence[int] = (100, 300, 1000, 3000, 10000, 30000, 100000),
    iterations: int = 12,
) -> SweepResult:
    """Mitigation overhead (%) as a function of kernel-work size.

    The curve behind section 4.2's structure: boundary-crossing
    mitigations are a fixed tax per syscall, so overhead falls
    hyperbolically with operation size — getpid suffers, fork shrugs.
    """
    def one(size: float) -> float:
        profile = HandlerProfile(f"sweep_{int(size)}",
                                 work_cycles=int(size), loads=4, stores=2,
                                 indirect_branches=2)
        def cost(cfg: MitigationConfig) -> float:
            kernel = Kernel(Machine(cpu, seed=1), cfg)
            for _ in range(4):
                kernel.syscall(profile)
            return sum(kernel.syscall(profile)
                       for _ in range(iterations)) / iterations
        return 100.0 * (cost(config) / cost(MitigationConfig.all_off()) - 1.0)

    return sweep("kernel work (cycles)", sizes, one)


def ssbd_overhead_vs_forwarding_density(
    cpu: CPUModel,
    densities: Sequence[int] = (0, 20, 40, 80, 120, 160),
    iterations: int = 12,
) -> SweepResult:
    """SSBD slowdown (%) as store->load pairs per 10k-cycle iteration.

    The curve behind Figure 5: swaptions sits at the dense end, facesim
    at the sparse end, and the whole curve steepens on newer parts.
    """
    from ..cpu import isa

    def one(density: float) -> float:
        def cost(ssbd: bool) -> float:
            machine = Machine(cpu, seed=1)
            machine.msr.set_ssbd(ssbd)
            def iteration() -> int:
                cycles = machine.execute(isa.work(10_000))
                for i in range(int(density)):
                    addr = 0x9000_0000 + 64 * (i % 64)
                    cycles += machine.execute(isa.store(addr))
                    cycles += machine.execute(isa.load(addr))
                return cycles
            for _ in range(4):
                iteration()
            return sum(iteration() for _ in range(iterations)) / iterations
        return 100.0 * (cost(True) / cost(False) - 1.0)

    return sweep("store->load pairs per iteration", densities, one)

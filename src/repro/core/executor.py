"""Parallel study execution engine with a persistent result cache.

Every figure/table driver in :mod:`~repro.core.study` sweeps a grid of
independent (cpu, config, workload, settings) **cells** — exactly the
shape the paper's own measurement campaign has (eight machines, many
boot-parameter configurations, several suites, all measured separately).
This module turns that grid into explicit work items and executes them:

* :class:`CellSpec` names one cell as a hashable, picklable spec;
* per-cell seeds derive from the spec path via
  :func:`~repro.core.stats.derive_seed`, so every cell consumes its own
  noise stream and parallel results are **bit-identical** to serial ones
  regardless of scheduling;
* :class:`StudyExecutor` fans cells out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or runs
  them inline (``jobs == 1`` — the serial path is the same code);
* completed cells are memoized in a content-addressed on-disk cache
  keyed by the spec plus the package version *and* a source fingerprint
  (:func:`~repro.obs.provenance.code_fingerprint`), so re-runs skip
  finished work and stale caches can never survive a code change;
* progress checkpoints to disk after every cell, so an interrupted
  ``spectresim figure 2`` resumes (``--resume``) instead of restarting;
* worker-side span/metric collection is serialized back to the parent
  tracer (:meth:`~repro.obs.spans.SpanTracer.absorb`), keeping ``--trace``
  and ``profile`` output whole across process boundaries.

See ``docs/parallelism.md`` for the cache key anatomy and the
determinism guarantees.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cpu import engine as blockengine
from ..cpu import replicas as replicabatch
from ..errors import ExecutorError
from ..obs import leakage as obs_leakage
from ..obs import timeline as obs_timeline
from ..obs.progress import ProgressLine
from ..obs import ledger as obs_ledger
from ..obs import spans as obs_spans
from ..obs.metrics import MetricsRegistry
from ..obs.provenance import code_fingerprint
from .attribution import AttributionResult, Contribution
from .stats import Measurement, derive_seed

#: Result kinds a driver can produce (see ``study.DRIVER_KINDS``).
ATTRIBUTION = "attribution"
PAIRED = "paired"


def default_cache_dir() -> str:
    """``$SPECTRESIM_CACHE_DIR`` or ``~/.cache/spectresim``."""
    return (os.environ.get("SPECTRESIM_CACHE_DIR")
            or os.path.join(os.path.expanduser("~"), ".cache", "spectresim"))


def cache_version() -> str:
    """The code/config version component of every cache key."""
    from .. import __version__
    return f"{__version__}+{code_fingerprint()}"


# --------------------------------------------------------------------------- #
# Cell specs
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class CellSpec:
    """One independent cell of a study sweep grid.

    Hashable and picklable: ``settings`` is the frozen
    :class:`~repro.core.study.Settings` dataclass and ``params`` a sorted
    tuple of extra key/value pairs.  The spec is the *complete* input of
    the cell — two equal specs must produce bit-identical results, which
    is what makes the on-disk cache sound.
    """

    driver: str                    # e.g. "figure2"
    cpu: str                       # CPU model key
    workload: str                  # suite or workload name
    settings: Any                  # core.study.Settings (frozen dataclass)
    params: Tuple[Tuple[str, Any], ...] = ()

    def key(self) -> str:
        """Canonical human-readable identity of the cell."""
        settings = json.dumps(dataclasses.asdict(self.settings),
                              sort_keys=True)
        params = json.dumps(list(self.params), sort_keys=True)
        return (f"{self.driver}/{self.cpu}/{self.workload}"
                f"?params={params}&settings={settings}")

    def digest(self) -> str:
        """Content address: spec key + code/config version."""
        material = f"{self.key()}@{cache_version()}"
        return hashlib.sha256(material.encode()).hexdigest()

    def seed(self) -> int:
        """The cell's private noise seed (stable across processes)."""
        parts = [self.driver, self.cpu, self.workload]
        parts.extend(f"{name}={value}" for name, value in self.params)
        return derive_seed(self.settings.seed, *parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "driver": self.driver,
            "cpu": self.cpu,
            "workload": self.workload,
            "settings": dataclasses.asdict(self.settings),
            "params": [list(pair) for pair in self.params],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellSpec":
        from .study import Settings
        return cls(
            driver=data["driver"],
            cpu=data["cpu"],
            workload=data["workload"],
            settings=Settings(**data["settings"]),
            params=tuple(tuple(pair) for pair in data["params"]),
        )


# --------------------------------------------------------------------------- #
# Result codecs (JSON round-trips are bit-exact for floats)
# --------------------------------------------------------------------------- #

def _measurement_to_dict(m: Measurement) -> Dict[str, Any]:
    return {"mean": m.mean, "ci_half_width": m.ci_half_width,
            "samples": m.samples}


def _measurement_from_dict(data: Dict[str, Any]) -> Measurement:
    return Measurement(mean=data["mean"],
                       ci_half_width=data["ci_half_width"],
                       samples=data["samples"])


def encode_result(kind: str, result: Any) -> Dict[str, Any]:
    """A driver result as plain JSON types, losslessly."""
    if kind == ATTRIBUTION:
        return {
            "cpu": result.cpu,
            "workload": result.workload,
            "metric": result.metric,
            "baseline": _measurement_to_dict(result.baseline),
            "default": _measurement_to_dict(result.default),
            "other_percent": result.other_percent,
            "contributions": [
                {
                    "knob": c.knob,
                    "boot_param": c.boot_param,
                    "percent": c.percent,
                    "with_knob": _measurement_to_dict(c.with_knob),
                    "without_knob": _measurement_to_dict(c.without_knob),
                }
                for c in result.contributions
            ],
        }
    if kind == PAIRED:
        return {
            "cpu": result.cpu,
            "workload": result.workload,
            "baseline": _measurement_to_dict(result.baseline),
            "treated": _measurement_to_dict(result.treated),
            "overhead_percent": result.overhead_percent,
        }
    raise ValueError(f"unknown result kind {kind!r}")


def decode_result(kind: str, data: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    if kind == ATTRIBUTION:
        return AttributionResult(
            cpu=data["cpu"],
            workload=data["workload"],
            metric=data["metric"],
            baseline=_measurement_from_dict(data["baseline"]),
            default=_measurement_from_dict(data["default"]),
            other_percent=data["other_percent"],
            contributions=[
                Contribution(
                    knob=c["knob"],
                    boot_param=c["boot_param"],
                    percent=c["percent"],
                    with_knob=_measurement_from_dict(c["with_knob"]),
                    without_knob=_measurement_from_dict(c["without_knob"]),
                )
                for c in data["contributions"]
            ],
        )
    if kind == PAIRED:
        from .study import PairedOverhead
        return PairedOverhead(
            cpu=data["cpu"],
            workload=data["workload"],
            baseline=_measurement_from_dict(data["baseline"]),
            treated=_measurement_from_dict(data["treated"]),
            overhead_percent=data["overhead_percent"],
        )
    raise ValueError(f"unknown result kind {kind!r}")


# --------------------------------------------------------------------------- #
# On-disk cache + run checkpoints
# --------------------------------------------------------------------------- #

def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ResultCache:
    """Content-addressed memoization of completed cells.

    One JSON blob per cell under ``<dir>/cells/``, addressed by
    :meth:`CellSpec.digest` — which bakes in the package version and
    source fingerprint, so a cache can be long-lived: entries written by
    different code are simply never found.  Each blob also stores the
    full spec key and is verified on read against hash collisions and
    hand-edited files.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    #: Lookup outcomes (cache effectiveness telemetry).
    HIT = "hit"
    MISS = "miss"
    STALE = "stale"

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, "cells", digest[:2], digest + ".json")

    def lookup(self, spec: CellSpec, kind: str) -> Tuple[Optional[Any], str]:
        """(result, outcome): outcome distinguishes a plain miss (no entry
        on disk) from a *stale* entry — a blob that exists at the cell's
        address but fails key/kind verification (hash collision, result
        kind change, or a hand-edited file)."""
        path = self._path(spec.digest())
        try:
            with open(path) as f:
                record = json.load(f)
        except OSError:
            return None, self.MISS
        except ValueError:
            return None, self.STALE
        if record.get("key") != spec.key() or record.get("kind") != kind:
            return None, self.STALE
        return decode_result(kind, record["result"]), self.HIT

    def get(self, spec: CellSpec, kind: str) -> Optional[Any]:
        return self.lookup(spec, kind)[0]

    def put(self, spec: CellSpec, kind: str, result: Any) -> None:
        _atomic_write_json(self._path(spec.digest()), {
            "key": spec.key(),
            "kind": kind,
            "version": cache_version(),
            "result": encode_result(kind, result),
        })


class RunCheckpoint:
    """Progress journal for one enumerated run.

    Identified by the digest of the run's full cell list; stores each
    completed cell's encoded result inline, so resuming works even if the
    cell cache is disabled or swept.  Updated atomically after every
    cell; deleted once the run completes.
    """

    def __init__(self, root: str, specs: Sequence[CellSpec]) -> None:
        material = "\n".join(spec.digest() for spec in specs)
        self.run_digest = hashlib.sha256(material.encode()).hexdigest()
        self.path = os.path.join(root, "checkpoints",
                                 self.run_digest + ".json")
        self._completed: Dict[str, Dict[str, Any]] = {}

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Previously completed cells (digest -> encoded result)."""
        try:
            with open(self.path) as f:
                record = json.load(f)
        except (OSError, ValueError):
            return {}
        if record.get("run") != self.run_digest:
            return {}
        self._completed = dict(record.get("completed", {}))
        return dict(self._completed)

    def record(self, spec: CellSpec, kind: str, result: Any) -> None:
        self._completed[spec.digest()] = {
            "kind": kind, "result": encode_result(kind, result)}
        _atomic_write_json(self.path, {
            "run": self.run_digest,
            "completed": self._completed,
        })

    def discard(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #

@dataclass
class RunStats:
    """What one :meth:`StudyExecutor.run` actually did."""

    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale: int = 0
    resumed: int = 0
    executed: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    replicas: int = 0
    replicas_batched: int = 0
    replicas_scalar: int = 0

    def summary(self) -> str:
        return (f"{self.total} cells: {self.cache_hits} cache hits, "
                f"{self.resumed} resumed, {self.executed} executed "
                f"(jobs={self.jobs}, {self.cache_misses} misses, "
                f"{self.cache_stale} stale, {self.replicas} replicas, "
                f"{self.wall_s:.2f}s)")

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def absorb(self, other: "RunStats") -> None:
        """Fold another run's counters in (multi-driver accumulation).

        :meth:`StudyExecutor.run` resets ``stats`` per call, so callers
        sweeping several drivers through one executor (``bench``) absorb
        after each run to get whole-campaign totals.
        """
        self.total += other.total
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_stale += other.cache_stale
        self.resumed += other.resumed
        self.executed += other.executed
        self.jobs = max(self.jobs, other.jobs)
        self.wall_s += other.wall_s
        self.replicas += other.replicas
        self.replicas_batched += other.replicas_batched
        self.replicas_scalar += other.replicas_scalar

    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (resumed cells excluded)."""
        looked = self.cache_hits + self.cache_misses + self.cache_stale
        return self.cache_hits / looked if looked else 0.0

    def replicas_per_s(self) -> float:
        """Replica throughput of the run (the grid's wall-clock floor)."""
        return self.replicas / self.wall_s if self.wall_s > 0 else 0.0

    def batch_hit_rate(self) -> float:
        """Fraction of non-probe replicas served by the SoA broadcast
        (1.0 when no batch had more than one replica — vacuously, none
        needed a scalar fallback)."""
        eligible = self.replicas_batched + self.replicas_scalar
        return self.replicas_batched / eligible if eligible else 1.0


def _worker_run_cell(spec_dict: Dict[str, Any], collect_obs: bool,
                     collect_ledger: bool = False,
                     engine_mode: Optional[str] = None,
                     collect_leakage: bool = False,
                     collect_timeline: bool = False) -> Dict[str, Any]:
    """Process-pool entry point: run one cell, return result + telemetry.

    Top-level (picklable) and import-light: the heavy imports happen in
    the worker.  When the parent is tracing, the worker runs under its
    own :class:`~repro.obs.spans.SpanTracer` and ships the serialized
    timeline home for :meth:`~repro.obs.spans.SpanTracer.absorb`; when
    the parent has a cycle ledger installed, the worker likewise runs
    under its own :class:`~repro.obs.ledger.CycleLedger`, verifies the
    sum-to-TSC invariant for the cell, and ships the entries home for
    :meth:`~repro.obs.ledger.CycleLedger.merge_state`.

    ``engine_mode`` propagates the parent's ``--engine`` selection so a
    pool worker simulates with the same execution engine; the worker's
    block-engine counters for this cell are shipped home and merged into
    the parent's :data:`~repro.cpu.engine.STATS`.

    ``collect_leakage`` mirrors the ledger transport for the leakage
    tracer: the worker runs under its own
    :class:`~repro.obs.leakage.LeakageTracer` and ships ``state()`` home
    for :meth:`~repro.obs.leakage.LeakageTracer.merge_state`.

    ``collect_timeline`` does the same for the microarchitectural event
    timeline: the worker records into its own
    :class:`~repro.obs.timeline.EventTimeline` and ships ``state()``
    home for :meth:`~repro.obs.timeline.EventTimeline.merge_state`
    (the parent's ring bound still applies after the merge).
    """
    from . import study
    if engine_mode is not None:
        blockengine.set_default_engine(engine_mode)
    blockengine.STATS.reset()  # per-cell delta (workers run many cells)
    replicabatch.STATS.reset()
    spec = CellSpec.from_dict(spec_dict)
    runner = study.CELL_RUNNERS[spec.driver]
    kind = study.DRIVER_KINDS[spec.driver]
    obs_payload = None
    ledger_payload = None
    leakage_payload = None
    timeline_payload = None
    ledger = obs_ledger.CycleLedger() if collect_ledger else None
    leakage = obs_leakage.LeakageTracer() if collect_leakage else None
    timeline = (obs_timeline.EventTimeline(capacity=None)
                if collect_timeline else None)
    with obs_timeline.use_timeline(timeline):
        with obs_leakage.use_leakage(leakage):
            with obs_ledger.use_ledger(ledger):
                if collect_obs:
                    tracer = obs_spans.SpanTracer()
                    with obs_spans.use_tracer(tracer):
                        result = runner(spec)
                    obs_payload = tracer.to_payload()
                else:
                    result = runner(spec)
    if ledger is not None:
        ledger.verify()  # per-cell invariant, enforced worker-side
        ledger_payload = ledger.state()
    if leakage is not None:
        leakage_payload = leakage.state()
    if timeline is not None:
        timeline_payload = timeline.state()
    return {"result": encode_result(kind, result), "obs": obs_payload,
            "ledger": ledger_payload, "leakage": leakage_payload,
            "timeline": timeline_payload,
            "engine": blockengine.STATS.as_dict(),
            "replicas": replicabatch.STATS.as_dict()}


class StudyExecutor:
    """Executes study cells: in-process, across a process pool, or not at
    all (cache/checkpoint hits).

    ``jobs=1`` (the default, and what the plain :func:`~repro.core.study`
    drivers use) runs cells inline under the caller's tracer — the
    *serial path* — while ``jobs>1`` fans out over processes.  Both paths
    run the identical per-cell code with the identical per-cell seeds, so
    the assembled results are bit-identical; only wall-clock differs.

    ``cache_dir=None`` (the library default) disables all persistence;
    the CLI turns it on by default.  ``resume=True`` additionally replays
    a matching run checkpoint before consulting the cell cache.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 resume: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.resume = resume
        self.stats = RunStats(jobs=jobs)
        self._metrics = metrics
        self._own_metrics = MetricsRegistry()

    # -- wiring ----------------------------------------------------------- #

    @property
    def metrics(self) -> MetricsRegistry:
        """Where executor counters land: an explicit registry if one was
        given, else the installed tracer's, else a private one."""
        if self._metrics is not None:
            return self._metrics
        tracer = obs_spans.current_tracer()
        if getattr(tracer, "enabled", False):
            return tracer.metrics
        return self._own_metrics

    def _count(self, event: str, amount: int = 1) -> None:
        self.metrics.counter(f"executor.cells.{event}").inc(amount)

    # -- execution --------------------------------------------------------- #

    def run(self, specs: Sequence[CellSpec]) -> List[Any]:
        """Execute ``specs``, returning results in enumeration order.

        Completion order never leaks into the output: results are
        assembled by spec index, which is what keeps parallel output
        byte-identical to serial.
        """
        from . import study
        started = time.perf_counter()
        replicas_before = replicabatch.STATS.as_dict()
        self.stats = RunStats(total=len(specs), jobs=self.jobs)
        self._count("scheduled", len(specs))

        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        checkpoint = (RunCheckpoint(self.cache_dir, specs)
                      if self.cache_dir else None)
        resumed: Dict[str, Dict[str, Any]] = {}
        if checkpoint is not None and self.resume:
            resumed = checkpoint.load()

        # TTY-gated live line on stderr; a no-op in CI and pipes, so the
        # stderr the parallel-smoke gates grep stays byte-identical.
        meter = ProgressLine(len(specs), label="cells")
        results: Dict[int, Any] = {}
        pending: List[Tuple[int, CellSpec]] = []
        for index, spec in enumerate(specs):
            kind = study.DRIVER_KINDS[spec.driver]
            record = resumed.get(spec.digest())
            if record is not None and record.get("kind") == kind:
                results[index] = decode_result(kind, record["result"])
                self.stats.resumed += 1
                self._count("resumed")
                continue
            if cache is not None:
                hit, outcome = cache.lookup(spec, kind)
                if outcome == ResultCache.HIT:
                    results[index] = hit
                    self.stats.cache_hits += 1
                    self._count("cache_hit")
                    if checkpoint is not None:
                        checkpoint.record(spec, kind, hit)
                    continue
                if outcome == ResultCache.STALE:
                    self.stats.cache_stale += 1
                    self._count("cache_stale")
                else:
                    self.stats.cache_misses += 1
                    self._count("cache_miss")
            pending.append((index, spec))
        meter.update(len(results))  # cache/checkpoint hits count as done

        def record_completion(index: int, spec: CellSpec, result: Any) -> None:
            kind = study.DRIVER_KINDS[spec.driver]
            results[index] = result
            self.stats.executed += 1
            self._count("executed")
            if cache is not None:
                cache.put(spec, kind, result)
            if checkpoint is not None:
                checkpoint.record(spec, kind, result)
            meter.update(len(results))

        try:
            if self.jobs == 1 or len(pending) <= 1:
                for index, spec in pending:
                    record_completion(index, spec, self._run_inline(spec))
            else:
                self._run_pool(pending, record_completion)
        finally:
            meter.close()

        if checkpoint is not None and len(results) == len(specs):
            checkpoint.discard()
        self.stats.wall_s = time.perf_counter() - started
        # Replica-tier delta for this run: inline cells accumulate into
        # the process counters directly; pool workers ship their per-cell
        # counters home (merged in _run_pool), so both paths land here.
        replicas_after = replicabatch.STATS.as_dict()
        self.stats.replicas = (replicas_after["replicas"]
                               - replicas_before["replicas"])
        self.stats.replicas_batched = (replicas_after["batched"]
                                       - replicas_before["batched"])
        self.stats.replicas_scalar = (
            replicas_after["scalar_fallbacks"]
            - replicas_before["scalar_fallbacks"])
        return [results[index] for index in range(len(specs))]

    def telemetry(self) -> Dict[str, Any]:
        """The last run's counters plus derived rates, for history rows."""
        out = self.stats.as_dict()
        out["cache_hit_rate"] = self.stats.cache_hit_rate()
        out["replicas_per_s"] = self.stats.replicas_per_s()
        out["batch_hit_rate"] = self.stats.batch_hit_rate()
        return out

    def _run_inline(self, spec: CellSpec) -> Any:
        """The serial path: the cell runs under the caller's tracer."""
        from . import study
        runner = study.CELL_RUNNERS[spec.driver]
        try:
            return runner(spec)
        except Exception as exc:
            raise ExecutorError(f"cell {spec.key()} failed: {exc}") from exc

    def _run_pool(self, pending: Sequence[Tuple[int, CellSpec]],
                  record_completion: Any) -> None:
        tracer = obs_spans.current_tracer()
        collect_obs = bool(getattr(tracer, "enabled", False))
        ledger = obs_ledger.current_ledger()
        leakage = obs_leakage.current_leakage()
        timeline = obs_timeline.current_timeline()
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_worker_run_cell, spec.to_dict(), collect_obs,
                            ledger is not None,
                            blockengine.default_engine(),
                            leakage is not None,
                            timeline is not None):
                    (index, spec)
                for index, spec in pending
            }
            for future in as_completed(futures):
                index, spec = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:
                    raise ExecutorError(
                        f"cell {spec.key()} failed: {exc}") from exc
                from . import study
                kind = study.DRIVER_KINDS[spec.driver]
                if collect_obs and payload["obs"] is not None:
                    tracer.absorb(payload["obs"])
                if ledger is not None and payload.get("ledger") is not None:
                    ledger.merge_state(payload["ledger"])
                if leakage is not None and payload.get("leakage") is not None:
                    leakage.merge_state(payload["leakage"])
                if timeline is not None and payload.get("timeline") is not None:
                    timeline.merge_state(payload["timeline"])
                if payload.get("engine") is not None:
                    blockengine.STATS.merge(payload["engine"])
                if payload.get("replicas") is not None:
                    replicabatch.STATS.merge(payload["replicas"])
                record_completion(index, spec,
                                  decode_result(kind, payload["result"]))
